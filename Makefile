# Convenience targets for the REncoder reproduction.

.PHONY: install test bench bench-smoke bench-faults chaos report examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# ~30 s batch-vs-scalar equivalence + throughput smoke; writes
# BENCH_batch_query.json at the repo root (asserts >= 5x speedup).
bench-smoke:
	python benchmarks/bench_batch_query.py --preset smoke

# Crash-recovery overhead under injected faults; writes
# BENCH_fault_recovery.json (asserts every corruption detected,
# zero false negatives after recovery).
bench-faults:
	python benchmarks/bench_fault_recovery.py --preset smoke

# Fault-injection chaos suite: torn writes, bit flips, transient reads;
# REPRO_CHAOS_SEED pins the fault sequence (CI uses 20230713).
chaos:
	pytest tests/test_chaos.py tests/test_faults.py -q

report: bench
	python -m repro report

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results REPORT.md
	find . -name __pycache__ -type d -exec rm -rf {} +
