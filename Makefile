# Convenience targets for the REncoder reproduction.

.PHONY: install test bench bench-smoke report examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# ~30 s batch-vs-scalar equivalence + throughput smoke; writes
# BENCH_batch_query.json at the repo root (asserts >= 5x speedup).
bench-smoke:
	python benchmarks/bench_batch_query.py --preset smoke

report: bench
	python -m repro report

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results REPORT.md
	find . -name __pycache__ -type d -exec rm -rf {} +
