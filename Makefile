# Convenience targets for the REncoder reproduction.

.PHONY: install test lint lint-interproc lint-graph lint-baseline sanitize-stress bench bench-smoke bench-kernels bench-faults bench-overload bench-telemetry bench-telemetry-cluster bench-cluster bench-durability trace-smoke cluster-trace-smoke observability chaos serve-stress cluster-stress durability-chaos report examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Project lint engine (DESIGN.md §10): wall-clock/RNG/one-sided-error/
# lock-discipline rules; fails on findings that are neither baselined
# (lint-baseline.json) nor pragma'd.  ruff/mypy run when installed —
# the custom engine is the gate, third-party lint rides along.
lint: lint-interproc lint-graph
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests benchmarks; \
		else echo "ruff not installed; skipped (CI runs it)"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy src/repro; \
		else echo "mypy not installed; skipped (CI runs it)"; fi

# File-local rules + the four interprocedural passes + the
# stale-baseline ratchet (grandfathered debt only shrinks).
lint-interproc:
	python -m repro lint --interproc

# Export CALLGRAPH.json / LOCKGRAPH.json; fails on any cycle in the
# static ∪ runtime lock-order graph.
lint-graph:
	python -m repro lint --graph

# Rewrite the grandfathered-findings baseline from the current tree.
# Review norm: the baseline only ever shrinks.
lint-baseline:
	python -m repro lint --update-baseline

# Chaos + service stress with the runtime concurrency sanitizer on:
# every threading.Lock/RLock is order- and hold-watched; the run fails
# on any lock-order cycle and writes SANITIZER_REPORT.json.
sanitize-stress:
	REPRO_SANITIZE=1 pytest tests/test_chaos.py tests/test_service_stress.py \
		tests/test_service.py tests/test_sanitizer.py -q

bench:
	pytest benchmarks/ --benchmark-only

# Batch-engine equivalence + throughput smoke across the engine ×
# layout matrix; writes BENCH_batch_query.json at the repo root
# (asserts bit-identical answers and >= 5x speedup over scalar).
bench-smoke:
	python benchmarks/bench_batch_query.py --preset smoke

# The CI perf gate: smoke bench with the kernel phase breakdown on,
# then the regression check against the committed BENCH_trajectory.jsonl
# headline history (wide tolerance band — catches order-of-magnitude
# regressions, not runner jitter).
bench-kernels:
	REPRO_PROFILE=1 python benchmarks/bench_batch_query.py --preset smoke
	python scripts/check_perf_regression.py --preset smoke

# Crash-recovery overhead under injected faults; writes
# BENCH_fault_recovery.json (asserts every corruption detected,
# zero false negatives after recovery).
bench-faults:
	python benchmarks/bench_fault_recovery.py --preset smoke

# Overload behaviour of the concurrent filter service: shedding vs an
# unbounded baseline, load curve, breaker storm; writes
# BENCH_overload.json (asserts bounded p99 + zero false negatives).
bench-overload:
	python benchmarks/bench_overload.py --preset smoke

# Telemetry overhead on the 64-wide batch-query micro-bench; writes
# BENCH_telemetry.json (asserts tracing-on overhead < 10%).
bench-telemetry:
	python benchmarks/bench_telemetry.py --preset smoke

# Cluster-scale telemetry overhead: routed queries with tracing +
# trace store + federation on vs off; writes
# BENCH_telemetry_cluster.json (asserts overhead < 10%).
bench-telemetry-cluster:
	python benchmarks/bench_telemetry.py --preset cluster

# Sharded-cluster matrix (topology x size x fault profile) plus the
# protected-vs-unprotected failover headline; writes BENCH_cluster.json
# and run_table.csv at the repo root, then gates the headline against
# the committed trajectory.
bench-cluster:
	python benchmarks/bench_cluster.py --preset smoke
	python scripts/check_perf_regression.py --json BENCH_cluster.json \
		--bench cluster --metric headline.kqps

# Recovery-time headline: checkpoint + WAL-tail restore vs full
# rebuild; writes BENCH_durability.json, then gates the restore
# throughput against the committed trajectory.
bench-durability:
	python benchmarks/bench_durability.py --preset smoke
	python scripts/check_perf_regression.py --json BENCH_durability.json \
		--bench durability --metric headline.krps

# One traced range query through the full service stack: prints the
# span tree (queue wait, per-SSTable probes, RBF fetches) and a JSON
# rollup — the observability smoke test.
trace-smoke:
	python -m repro trace-query --n-keys 5000
	python -m repro metrics-dump --queries 50 --format prom | head -20

# Cluster observability smoke: a seeded chaos slice through a small
# cluster, then the tail-sampled cross-replica traces and the
# federated per-shard dashboard (DESIGN.md §14).
cluster-trace-smoke:
	python -m repro trace-show
	python -m repro cluster-top --frames 2

# The full observability acceptance: trace anatomy, federation merge
# equality, SLO burn-rate arc, drift crossing, seeded determinism.
# REPRO_SLO_REPORT names the SLO_REPORT.json artifact (CI uploads it).
observability:
	pytest tests/test_observability_cluster.py tests/test_telemetry.py -q \
		$$(python -c "import pytest_timeout" 2>/dev/null && echo "--timeout=600")

# Fault-injection chaos suite: torn writes, bit flips, transient reads;
# REPRO_CHAOS_SEED pins the fault sequence (CI uses 20230713).
chaos:
	pytest tests/test_chaos.py tests/test_faults.py -q

# Concurrent-service stress: live rebuilds + latency faults + shedding,
# zero false negatives.  REPRO_STRESS_SEED pins the schedule; the
# per-test timeout engages only where pytest-timeout is installed (CI).
serve-stress:
	pytest tests/test_service_stress.py tests/test_service.py -q \
		$$(python -c "import pytest_timeout" 2>/dev/null && echo "--timeout=120")

# Cluster chaos: replica kills, partitions, slow shards and a live
# resharding over >= 10k routed queries — zero false negatives.
# REPRO_CHAOS_SEED pins the whole scenario (CI uses 20230713).
cluster-stress:
	pytest tests/test_cluster_chaos.py tests/test_cluster.py -q \
		$$(python -c "import pytest_timeout" 2>/dev/null && echo "--timeout=600")

# Durability chaos: WAL tears, checkpoint/SSTable rot, crash-restarts
# through the checkpoint + WAL recovery path, then scrub + anti-entropy
# repair — zero false negatives AND zero lost acknowledged writes.
# REPRO_CHAOS_SEED pins the scenario; REPRO_SCRUB_REPORT names the JSON
# artifact the run writes (CI uploads it).
durability-chaos:
	pytest tests/test_durability_chaos.py tests/test_durability.py \
		tests/test_durability_properties.py -q \
		$$(python -c "import pytest_timeout" 2>/dev/null && echo "--timeout=600")

report: bench
	python -m repro report

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results REPORT.md
	find . -name __pycache__ -type d -exec rm -rf {} +
