# Convenience targets for the REncoder reproduction.

.PHONY: install test bench report examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report: bench
	python -m repro report

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results REPORT.md
	find . -name __pycache__ -type d -exec rm -rf {} +
