#!/usr/bin/env python3
"""All filters, one table: the paper's evaluation in miniature.

Builds every filter at the same memory budget over the same keys, runs
empty uniform and correlated range workloads, and prints the FPR / probe /
throughput comparison behind Figures 5, 6 and 9.

Run:  python examples/filter_shootout.py
"""

import time

from repro.bench.registry import build_filter
from repro.bench.tables import format_table
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)

N_KEYS = 15_000
N_QUERIES = 2_000
BPK = 18

RANGE_FILTERS = [
    "SuRF", "Rosetta", "SNARF", "Proteus", "ProteusNS",
    "REncoder", "REncoderSS", "REncoderSE", "ARF",
]


def main() -> None:
    keys = generate_keys(N_KEYS, "uniform", seed=9)
    uniform = uniform_range_queries(keys, N_QUERIES, seed=10)
    correlated = correlated_range_queries(keys, N_QUERIES, seed=11)
    sample = uniform[: N_QUERIES // 10] + correlated[: N_QUERIES // 10]

    rows = []
    for name in RANGE_FILTERS:
        start = time.perf_counter()
        filt = build_filter(name, keys, BPK, sample_queries=sample)
        build_s = time.perf_counter() - start

        filt.reset_counters()
        start = time.perf_counter()
        fp_u = sum(filt.query_range(lo, hi) for lo, hi in uniform)
        elapsed = time.perf_counter() - start
        probes = filt.probe_count / len(uniform)
        fp_c = sum(filt.query_range(lo, hi) for lo, hi in correlated)

        rows.append(
            {
                "filter": name,
                "bpk": round(filt.size_in_bits() / len(keys), 1),
                "build_ms": round(build_s * 1e3, 1),
                "uniform_fpr": fp_u / len(uniform),
                "corr_fpr": fp_c / len(correlated),
                "probes/q": round(probes, 1),
                "kq/s": round(len(uniform) / elapsed / 1e3, 1),
            }
        )
    print(format_table(rows, f"{N_KEYS} uniform keys, {BPK} bits/key, "
                             f"empty 2-32 range queries"))
    print("\nNote how the no-low-levels filters (SuRF, SNARF, ProteusNS, "
          "REncoderSS, ARF) collapse on the correlated column.")


if __name__ == "__main__":
    main()
