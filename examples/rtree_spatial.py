#!/usr/bin/env python3
"""Use Case 3: an R-tree with Z-order range filters on its leaves.

2-D points are Z-order-interleaved into 1-D keys; each leaf keeps a
REncoder over its Z codes.  A rectangle query decomposes into a few
Z-intervals, and leaves whose filters reject all intervals are never
fetched from the simulated second level.

Run:  python examples/rtree_spatial.py
"""

import numpy as np

from repro import REncoder, RTree, StorageEnv
from repro.storage.zorder import rect_to_zranges

N_POINTS = 10_000
COORD_BITS = 20
N_QUERIES = 500


def build(filtered: bool):
    env = StorageEnv()
    rng = np.random.default_rng(11)
    pts = [
        (int(x), int(y))
        for x, y in rng.integers(0, 1 << COORD_BITS, (N_POINTS, 2))
    ]
    # rmax is matched to the Z-decomposition: a 32x32 query rectangle
    # produces Z-intervals up to ~4096 codes wide, so the leaf filters
    # must store mandatory levels down to log2(4096).
    factory = (
        (lambda ks: REncoder(ks, bits_per_key=24, key_bits=2 * COORD_BITS,
                             rmax=4096))
        if filtered
        else None
    )
    rt = RTree(
        pts,
        coord_bits=COORD_BITS,
        leaf_capacity=128,
        filter_factory=factory,
        env=env,
    )
    return rt, env


def main() -> None:
    # Show a rectangle's Z-interval decomposition first.
    ranges = rect_to_zranges(100, 140, 220, 260, coord_bits=COORD_BITS,
                             max_ranges=16)
    print(f"rect [100,140]x[220,260] -> {len(ranges)} Z-intervals, e.g. "
          f"{ranges[0]}\n")

    rng = np.random.default_rng(12)
    rects = []
    for _ in range(N_QUERIES):
        x0 = int(rng.integers(0, (1 << COORD_BITS) - 32))
        y0 = int(rng.integers(0, (1 << COORD_BITS) - 32))
        rects.append((x0, x0 + 31, y0, y0 + 31))

    for filtered in (False, True):
        rt, env = build(filtered)
        env.reset()
        found = 0
        for x0, x1, y0, y1 in rects:
            found += len(rt.query_rect(x0, x1, y0, y1))
        label = "with Z-order REncoders" if filtered else "no leaf filters      "
        print(
            f"{label}: {found:4d} points found, "
            f"{env.stats.reads:5d} leaf reads "
            f"({env.stats.wasted_reads} wasted)"
        )
    print("\nMost query rectangles are empty; the Z-order filters prune "
          "their leaf accesses.")


if __name__ == "__main__":
    main()
