#!/usr/bin/env python3
"""The generic local encoder: a native quadtree range filter.

The paper notes its encoding "is generic, and it can be applied to
various tree structures".  This example instantiates the arity-4 case:
2-D points stored directly in a quadtree whose mini-trees (4 levels, 341
nodes, one 512-bit Bitmap Tree — the same block size as the paper's
binary AVX-512 configuration) are locally encoded into a Range Bloom
Filter.  A rectangle query decomposes into quadtree cells and each cell
is verified with the doubting descent — no binary flattening involved.

For comparison, the same data goes through the binary pipeline
(Z-order + 1-D REncoder, `ZOrderRangeFilter`).

Run:  python examples/quadtree_native.py
"""

import time

import numpy as np

from repro import ZOrderRangeFilter
from repro.core.generic import QuadtreeFilter

N_POINTS = 5_000
COORD_BITS = 14
RECT = 16  # query rectangle side
N_QUERIES = 400


def main() -> None:
    rng = np.random.default_rng(3)
    pts = [
        (int(x), int(y))
        for x, y in rng.integers(0, 1 << COORD_BITS, (N_POINTS, 2))
    ]
    pts_set = set(pts)

    quad = QuadtreeFilter(pts, coord_bits=COORD_BITS, bits_per_key=26)
    zorder = ZOrderRangeFilter(
        pts, coord_bits=COORD_BITS, bits_per_key=26, max_query_extent=RECT
    )
    print(f"quadtree filter: stored digit levels "
          f"{min(quad.filter.stored_levels)}..{max(quad.filter.stored_levels)}, "
          f"{quad.size_in_bits() / 8 / 1024:.0f} KiB")
    print(f"z-order filter:  {zorder.size_in_bits() / 8 / 1024:.0f} KiB\n")

    # Stored points are always found by both.
    for x, y in pts[:300]:
        assert quad.query_point(x, y)
        assert zorder.query_point(x, y)

    # Empty rectangles.
    rects = []
    while len(rects) < N_QUERIES:
        x0 = int(rng.integers(0, (1 << COORD_BITS) - RECT))
        y0 = int(rng.integers(0, (1 << COORD_BITS) - RECT))
        if any((x, y) in pts_set
               for x in range(x0, x0 + RECT) for y in range(y0, y0 + RECT)):
            continue
        rects.append((x0, x0 + RECT - 1, y0, y0 + RECT - 1))

    for name, filt in (("quadtree (arity 4)", quad),
                       ("z-order + binary ", zorder)):
        start = time.perf_counter()
        fp = sum(filt.query_rect(*r) for r in rects)
        elapsed = time.perf_counter() - start
        print(f"{name}: FPR {fp / len(rects):.4f} on {len(rects)} empty "
              f"{RECT}x{RECT} rects ({len(rects) / elapsed / 1e3:.1f} kq/s)")

    print("\nSame idea, two tree shapes: the local encoder is indifferent "
          "to arity, as the paper claims.")


if __name__ == "__main__":
    main()
