#!/usr/bin/env python3
"""Float keys with the Two-Stage REncoder (Section III-D).

Sensor-style readings (lognormal, spanning many orders of magnitude) are
stored in a Two-Stage REncoder: stage 1 covers the exponent levels
(magnitude buckets), stage 2 the mantissa levels (precision).

Run:  python examples/float_keys.py
"""

import numpy as np

from repro import TwoStageREncoder

N_KEYS = 10_000


def main() -> None:
    rng = np.random.default_rng(5)
    readings = sorted(set(float(v) for v in rng.lognormal(0.0, 4.0, N_KEYS)))
    print(f"{len(readings)} float readings spanning "
          f"[{min(readings):.3g}, {max(readings):.3g}]")

    enc = TwoStageREncoder(readings, bits_per_key=24, t_exp=0.25)
    levels = enc.stored_levels
    stage1 = [l for l in levels if l <= enc.exp_bits]
    stage2 = [l for l in levels if l > enc.exp_bits]
    print(f"stage 1 (exponent) levels: {stage1}")
    print(f"stage 2 (mantissa) levels: {stage2[:6]}"
          f"{'...' if len(stage2) > 6 else ''}")
    print(f"load factor P1 = {enc.final_p1:.3f}\n")

    # Stored readings are always found.
    sample = readings[::1000]
    assert all(enc.query_float(float(np.float32(v))) for v in sample)
    print("point queries for stored readings: all positive (no false "
          "negatives)")

    # Empty float ranges are rejected with high probability.
    fp = tried = 0
    for _ in range(5000):
        lo = float(rng.uniform(0, max(readings) * 2))
        hi = lo * 1.0001 + 1e-9
        i = int(np.searchsorted(np.array(readings), lo))
        if i < len(readings) and readings[i] <= hi:
            continue
        tried += 1
        fp += enc.query_float_range(lo, hi)
    print(f"FPR on {tried} empty float ranges: {fp / tried:.4f}")


if __name__ == "__main__":
    main()
