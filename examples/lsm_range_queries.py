#!/usr/bin/env python3
"""Use Case 1 (the paper's primary setting): range filters in an LSM-tree.

Builds three LSM-trees over the same data — no filter, per-SSTable Bloom
filter, per-SSTable REncoder — runs the same mixed workload of point and
(mostly empty) range queries, and compares second-level I/O counts and
simulated overall time.

Run:  python examples/lsm_range_queries.py
"""

import time

import numpy as np

from repro import BloomFilter, LSMTree, REncoder, StorageEnv

N_KEYS = 20_000
N_QUERIES = 3_000
BITS_PER_KEY = 18
IO_COST_NS = 500_000  # 0.5 ms per simulated second-level access


def build_tree(name, factory):
    env = StorageEnv(io_cost_ns=IO_COST_NS)
    lsm = LSMTree(factory, memtable_capacity=2048, env=env)
    rng = np.random.default_rng(7)
    keys = np.unique(rng.integers(0, 1 << 60, N_KEYS, dtype=np.uint64))
    for k in keys:
        lsm.put(int(k), int(k) % 997)
    lsm.flush()
    return name, lsm, env, keys


def run_workload(lsm, env, keys):
    rng = np.random.default_rng(8)
    env.reset()
    start = time.perf_counter()
    hits = 0
    for _ in range(N_QUERIES):
        if rng.random() < 0.2:  # point query for a stored key
            hits += lsm.get(int(keys[rng.integers(0, len(keys))]))[0]
        else:  # range query, usually empty
            lo = int(rng.integers(0, 1 << 60, dtype=np.uint64))
            hi = min(lo + int(rng.integers(2, 33)), (1 << 60) - 1)
            hits += bool(lsm.range_query(lo, hi))
    elapsed = time.perf_counter() - start
    return hits, elapsed, env


def main() -> None:
    configs = [
        ("no filter      ", None),
        ("Bloom filter   ", lambda ks: BloomFilter(ks, bits_per_key=BITS_PER_KEY)),
        ("REncoder       ", lambda ks: REncoder(ks, bits_per_key=BITS_PER_KEY)),
    ]
    print(f"{N_KEYS} keys, {N_QUERIES} queries (20% points / 80% ranges)\n")
    print(f"{'filter':16s} {'IOs':>7s} {'wasted':>7s} "
          f"{'cpu_s':>7s} {'overall_s':>9s} {'filter KiB':>10s}")
    for name, factory in configs:
        _, lsm, env, keys = build_tree(name, factory)
        hits, elapsed, env = run_workload(lsm, env, keys)
        overall = env.overall_seconds(elapsed)
        print(
            f"{name:16s} {env.stats.reads:7d} {env.stats.wasted_reads:7d} "
            f"{elapsed:7.2f} {overall:9.2f} "
            f"{lsm.filter_bits() / 8 / 1024:10.1f}"
        )
    print("\nThe range filter eliminates nearly all wasted second-level "
          "reads; the Bloom filter helps point queries but must scan "
          "ranges key-by-key.")


if __name__ == "__main__":
    main()
