#!/usr/bin/env python3
"""Persisting filters across restarts, and cheap filter merging.

An LSM-tree keeps one filter per SSTable.  On restart the filters should
come back from disk, not from an O(n) rebuild; and when two tables with
compatible filters merge, the union can be computed by OR-ing bit arrays
instead of re-inserting every key.

Run:  python examples/persistence.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import REncoder, dumps, loads

N_KEYS = 30_000


def main() -> None:
    rng = np.random.default_rng(1)
    keys_a = np.unique(rng.integers(0, 1 << 63, N_KEYS, dtype=np.uint64))
    keys_b = np.unique(
        rng.integers(1 << 63, 1 << 64, N_KEYS, dtype=np.uint64)
    )

    # Two SSTables' filters, built with identical geometry.
    total_bits = 18 * (len(keys_a) + len(keys_b))
    t0 = time.perf_counter()
    filt_a = REncoder(keys_a, total_bits, seed=7)
    filt_b = REncoder(keys_b, total_bits, seed=7)
    build_s = time.perf_counter() - t0
    print(f"built two filters over {N_KEYS} keys each in {build_s:.3f}s")

    # --- persistence -------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sstable_0001.filter"
        blob = dumps(filt_a)
        path.write_bytes(blob)
        print(f"serialized: {len(blob) / 1024:.1f} KiB -> {path.name}")

        t0 = time.perf_counter()
        restored = loads(path.read_bytes())
        load_s = time.perf_counter() - t0
        print(f"restored in {load_s * 1e3:.2f} ms "
              f"(vs {build_s / 2:.3f}s rebuild): {restored}")

        sample = [int(k) for k in keys_a[:2000]]
        assert all(restored.query_point(k) for k in sample)
        agree = sum(
            restored.query_range(k + 32, k + 63)
            == filt_a.query_range(k + 32, k + 63)
            for k in sample
        )
        print(f"restored filter agrees with the original on "
              f"{agree}/{len(sample)} probes")

    # --- merging -----------------------------------------------------
    t0 = time.perf_counter()
    merged = filt_a.union(filt_b)
    union_s = time.perf_counter() - t0
    print(f"\nunion of the two filters in {union_s * 1e3:.2f} ms "
          f"(an OR over {merged.size_in_bits() // 64} words)")
    for k in list(keys_a[:500]) + list(keys_b[:500]):
        assert merged.query_point(int(k))
    print("merged filter answers for keys of both tables — no rebuild, "
          "no false negatives")


if __name__ == "__main__":
    main()
