#!/usr/bin/env python3
"""Quickstart: build a REncoder over a key set and run range queries.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import REncoder, REncoderSS

N_KEYS = 50_000
BITS_PER_KEY = 18


def main() -> None:
    rng = np.random.default_rng(0)
    keys = np.unique(rng.integers(0, 1 << 64, N_KEYS, dtype=np.uint64))
    print(f"dataset: {len(keys)} unique 64-bit keys")

    # Build the filter.  bits_per_key is the whole memory budget; the
    # adaptive construction decides how many segment-tree levels to store.
    filt = REncoder(keys, bits_per_key=BITS_PER_KEY)
    print(f"built: {filt}")
    print(f"memory: {filt.size_in_bits() / 8 / 1024:.1f} KiB "
          f"({filt.bits_per_key(len(keys)):.1f} bits/key)")
    print(f"stored segment-tree levels: {filt.stored_levels}")

    # A range containing a key is always reported (no false negatives).
    key = int(keys[1234])
    print(f"\nquery_range({key - 5}, {key + 5}) -> "
          f"{filt.query_range(key - 5, key + 5)}   (contains stored key)")

    # Empty ranges are rejected with high probability.
    fp = 0
    n_queries = 20_000
    for _ in range(n_queries):
        lo = int(rng.integers(0, 1 << 64, dtype=np.uint64))
        hi = min(lo + int(rng.integers(1, 32)), (1 << 64) - 1)
        i = int(np.searchsorted(keys, np.uint64(lo)))
        if i < len(keys) and int(keys[i]) <= hi:
            continue  # not empty; skip
        fp += filt.query_range(lo, hi)
    print(f"false positive rate on empty 2-32 ranges: {fp / n_queries:.4f}")

    # The SS variant selects its start level from the data: fewer, more
    # significant levels -> lower FPR on uncorrelated workloads.
    ss = REncoderSS(keys, bits_per_key=BITS_PER_KEY)
    fp_ss = 0
    for _ in range(n_queries):
        lo = int(rng.integers(0, 1 << 64, dtype=np.uint64))
        hi = min(lo + int(rng.integers(1, 32)), (1 << 64) - 1)
        i = int(np.searchsorted(keys, np.uint64(lo)))
        if i < len(keys) and int(keys[i]) <= hi:
            continue
        fp_ss += ss.query_range(lo, hi)
    print(f"REncoderSS (start level {max(ss.stored_levels)} = l_kk+1): "
          f"FPR {fp_ss / n_queries:.4f}")


if __name__ == "__main__":
    main()
