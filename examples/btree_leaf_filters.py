#!/usr/bin/env python3
"""Use Case 2: a B+tree whose leaves carry in-memory range filters.

Internal nodes live in memory; every leaf access is a simulated disk read.
With a REncoder per leaf, empty point and range queries cost no I/O at
all.

Run:  python examples/btree_leaf_filters.py
"""

import numpy as np

from repro import BPlusTree, REncoder, StorageEnv

N_KEYS = 15_000
N_QUERIES = 2_000


def build(filtered: bool):
    env = StorageEnv()
    factory = (
        (lambda ks: REncoder(ks, bits_per_key=20)) if filtered else None
    )
    bt = BPlusTree(fanout=64, filter_factory=factory, env=env)
    rng = np.random.default_rng(3)
    keys = np.unique(rng.integers(0, 1 << 56, N_KEYS, dtype=np.uint64))
    for k in keys:
        bt.insert(int(k), None)
    if filtered:
        bt.rebuild_filters()
    return bt, env, keys


def main() -> None:
    for filtered in (False, True):
        bt, env, keys = build(filtered)
        rng = np.random.default_rng(4)
        env.reset()
        for _ in range(N_QUERIES):
            lo = int(rng.integers(0, 1 << 56, dtype=np.uint64))
            hi = min(lo + int(rng.integers(2, 64)), (1 << 56) - 1)
            bt.range_query(lo, hi)
        label = "with leaf REncoders" if filtered else "no leaf filters   "
        extra = (
            f"  (filter memory {bt.filter_bits() / 8 / 1024:.0f} KiB)"
            if filtered
            else ""
        )
        print(
            f"{label}: {env.stats.reads:5d} leaf reads, "
            f"{env.stats.wasted_reads:5d} wasted{extra}"
        )
    print("\nEmpty ranges skip the leaf entirely when the filter rejects "
          "them — the I/O saving the paper describes for B+trees.")


if __name__ == "__main__":
    main()
