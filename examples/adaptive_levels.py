#!/usr/bin/env python3
"""How REncoder adapts its stored levels — and when SS/SE matter.

Reproduces Section III-C's reasoning on live data: the same memory budget
leads to different stored-level choices on datasets of different skew, and
the SS/SE variants move the stored window to where the information is.
Finishes with the correlated-workload stress test of Figure 9.

Run:  python examples/adaptive_levels.py
"""

from repro import REncoder, REncoderSE, REncoderSS
from repro.workloads.datasets import dataset_skew, generate_keys
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)

N_KEYS = 20_000
BPK = 18


def fpr(filt, queries):
    return sum(filt.query_range(*q) for q in queries) / len(queries)


def main() -> None:
    print("Stored-level choice per dataset (same 18 bits/key budget):\n")
    print(f"{'dataset':8s} {'skew':>6s} {'levels':>12s} {'P1':>6s}")
    for name in ("osmc", "amzn", "face", "wiki"):
        keys = generate_keys(N_KEYS, name, seed=1)
        enc = REncoder(keys, bits_per_key=BPK)
        levels = enc.stored_levels
        print(
            f"{name:8s} {dataset_skew(keys):6.1f} "
            f"{f'{levels[0]}..{levels[-1]}':>12s} {enc.final_p1:6.3f}"
        )

    keys = generate_keys(N_KEYS, "uniform", seed=2)
    uniform = uniform_range_queries(keys, 3000, seed=3)
    correlated = correlated_range_queries(keys, 3000, seed=4)
    sample = correlated_range_queries(keys, 300, seed=5)

    base = REncoder(keys, bits_per_key=BPK)
    ss = REncoderSS(keys, bits_per_key=BPK)
    se = REncoderSE(keys, bits_per_key=BPK, sample_queries=sample)

    print("\nVariant behaviour (uniform keys):")
    print(f"  base     stores {base.stored_levels[0]}..{base.stored_levels[-1]}")
    print(f"  SS       stores {ss.stored_levels[0]}..{ss.stored_levels[-1]} "
          f"(l_kk = {ss.l_kk})")
    print(f"  SE       stores {se.stored_levels[0]}..{se.stored_levels[-1]} "
          f"(l_kq = {se.l_kq}, sampled a correlated workload)")

    print("\nFPR on uniform vs correlated 2-32 range queries:")
    print(f"{'filter':12s} {'uniform':>9s} {'correlated':>11s}")
    for name, filt in (("REncoder", base), ("REncoderSS", ss),
                       ("REncoderSE", se)):
        print(f"{name:12s} {fpr(filt, uniform):9.4f} "
              f"{fpr(filt, correlated):11.4f}")
    print("\nSS wins on uniform workloads but collapses on correlated "
          "ones; SE's sampled end-level selection keeps it accurate on "
          "both — the paper's Figure 9 in miniature.")


if __name__ == "__main__":
    main()
