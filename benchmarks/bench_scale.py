"""Scale sweep: FPR and probe counts vs key-set size.

The paper runs at 50M keys; this reproduction defaults to 20k.  The
bridge between the two is the claim this bench checks: at a fixed
bits-per-key budget, REncoder's FPR and probes-per-query are governed by
the per-key geometry (levels × hashes vs load factor), not by the
absolute key count — so the default-scale figures transfer.
"""

from common import default_config, record

from repro.bench.tables import format_table
from repro.core.rencoder import REncoder
from repro.filters.rosetta import Rosetta
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import uniform_range_queries


def test_scale_invariance(benchmark):
    cfg = default_config()
    rows = []
    for n in (5_000, 20_000, 80_000):
        keys = generate_keys(n, "uniform", seed=cfg.seed)
        queries = uniform_range_queries(
            keys, min(cfg.n_queries, 1500), seed=cfg.seed + 1
        )
        enc = REncoder(keys, bits_per_key=18, seed=cfg.seed)
        ros = Rosetta(keys, bits_per_key=18, seed=cfg.seed)
        enc.reset_counters()
        fpr_e = sum(enc.query_range(*q) for q in queries) / len(queries)
        probes_e = enc.probe_count / len(queries)
        fpr_r = sum(ros.query_range(*q) for q in queries) / len(queries)
        rows.append(
            {
                "n_keys": n,
                "rencoder_fpr": fpr_e,
                "rosetta_fpr": fpr_r,
                "rencoder_probes/q": round(probes_e, 2),
                "p1": round(enc.final_p1, 3),
                "levels": len(enc.stored_levels),
            }
        )
    record(benchmark, "scale_invariance",
           format_table(rows, "Scale sweep @ 18 bits/key"))

    # FPR stays in one band across a 16x size change (load factor and
    # stored-level count are the invariants).
    fprs = [r["rencoder_fpr"] for r in rows]
    assert max(fprs) - min(fprs) < 0.05
    p1s = [r["p1"] for r in rows]
    assert max(p1s) - min(p1s) < 0.1
    # Probe counts are size-independent too.
    probes = [r["rencoder_probes/q"] for r in rows]
    assert max(probes) - min(probes) < 2.0

    keys = generate_keys(80_000, "uniform", seed=cfg.seed)
    benchmark.pedantic(
        lambda: REncoder(keys, bits_per_key=18), rounds=3, iterations=1
    )
