"""Figure 10: range queries on the SOSD-like real datasets.

Paper shape: REncoder(SS/SE) has the lowest or near-lowest FPR on every
dataset; SS/SE gain the most on the relatively unskewed ones (osmc,
amzn); filter throughput of the REncoder family dips on the skewed ones
(face, wiki) because similar keys force more probes.
"""

from common import default_config, mean, record, series

from repro.bench.experiments import fig10_real_datasets
from repro.bench.registry import build_filter
from repro.workloads.datasets import generate_keys, split_keys
from repro.workloads.queries import left_bounded_range_queries


def test_fig10_real_datasets(benchmark):
    cfg = default_config()
    all_results, text = fig10_real_datasets(cfg)
    record(benchmark, "fig10_real_datasets", text)

    for ds, results in all_results.items():
        fpr = series(results, "fpr")
        # The adaptive REncoder family stays in the accurate band on every
        # dataset at the top of the memory sweep.
        assert fpr["REncoder"][-1] < 0.35, ds
        # SE never loses badly to the best filter.
        best = min(mean(fpr[name]) for name in fpr)
        assert mean(fpr["REncoderSE"]) <= best + 0.25, ds

    keys_all = generate_keys(cfg.n_keys + cfg.n_keys // 10, "wiki",
                             seed=cfg.seed)
    keys, holdout = split_keys(keys_all, cfg.n_keys // 10, seed=cfg.seed)
    queries = left_bounded_range_queries(keys, holdout, 200,
                                         seed=cfg.seed + 6)
    filt = build_filter("REncoder", keys, 18.0)
    benchmark.pedantic(
        lambda: [filt.query_range(lo, hi) for lo, hi in queries],
        rounds=3, iterations=1,
    )
