"""Batch query engines: fused kernels vs the legacy engine vs scalar.

Measures the batch-path tentpole on the Fig. 6 uniform workload (10 BPK,
64-wide ranges): the fused kernels (:mod:`repro.core.kernels`) against
the PR-1 FetchCache engine and the per-query scalar loop, across an
engine × layout × workload matrix —

* engines: ``legacy``, ``numpy`` (fused), ``numba`` (compiled, when the
  package is installed);
* RBF layouts: ``flat`` and cache-``blocked``;
* workloads: uniform, correlated (left bound near a key) and adjacent
  (runs of consecutive windows).

Every engine's answers are asserted bit-identical to the legacy engine
on the full workload and to the scalar loop on a subset; the headline
(fastest engine on the flat layout) is appended to the committed
``BENCH_trajectory.jsonl``, which ``scripts/check_perf_regression.py``
gates CI against.  With ``REPRO_PROFILE=1`` the kernels' own phase
breakdown (``kernel.decompose`` / ``kernel.ancestors`` /
``kernel.descend``) lands in the JSON's profile block.

Run as a script (``python benchmarks/bench_batch_query.py --preset
smoke|full``) or via pytest-benchmark like the figure benches.  Both
write ``BENCH_batch_query.json`` at the repository root; ``--preset
smoke`` fits the CI perf job's 10-second budget.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from common import append_trajectory, batch_rows, publish

from repro.bench.metrics import run_batch_filter, run_filter
from repro.core.kernels import available_backends
from repro.core.kernels.bench import time_engine
from repro.core.rencoder import REncoder
from repro.telemetry.profiler import profile_phase
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)

#: ``smoke`` fits the CI perf job (<10 s end to end); ``full`` is the
#: acceptance configuration (1M keys, 10 BPK, 64-wide ranges).
PRESETS = {
    "smoke": dict(n_keys=60_000, n_queries=20_000, n_scalar=1_000,
                  n_workload=4_000),
    "full": dict(n_keys=1_000_000, n_queries=100_000, n_scalar=5_000,
                 n_workload=20_000),
}
BPK = 10
WIDTH = 64
LAYOUTS = ("flat", "blocked")


def adjacent_range_queries(keys, n, *, run_length=16, seed=0):
    """Runs of consecutive ``WIDTH``-wide windows (cache-friendly)."""
    rng = np.random.default_rng(seed)
    top = (1 << 64) - 1
    out = []
    while len(out) < n:
        start = int(
            rng.integers(0, top - WIDTH * run_length, dtype=np.uint64)
        )
        for i in range(run_length):
            lo = start + i * WIDTH
            out.append((lo, lo + WIDTH - 1))
    return out[:n]


def run_bench(preset: str, seed: int = 1) -> dict:
    """Build the filters, run the engine matrix, return the JSON payload."""
    cfg = PRESETS[preset]
    engines = available_backends()  # e.g. ["numba", "numpy", "legacy"]
    keys = generate_keys(cfg["n_keys"], "uniform", seed=seed)
    filters = {}
    with profile_phase("build"):
        t0 = time.perf_counter()
        for layout in LAYOUTS:
            filters[layout] = REncoder(
                keys, total_bits=BPK * len(keys), layout=layout
            )
        build_seconds = time.perf_counter() - t0
    filt = filters["flat"]
    queries = uniform_range_queries(
        keys, cfg["n_queries"], min_size=WIDTH, max_size=WIDTH, seed=seed + 1
    )
    los = np.array([lo for lo, _ in queries], dtype=np.uint64)
    his = np.array([hi for _, hi in queries], dtype=np.uint64)

    # Scalar baseline on a subset (the loop is the slow side); every
    # engine × layout cell runs the whole workload.
    subset = queries[: cfg["n_scalar"]]
    with profile_phase("scalar"):
        scalar_run = run_filter(filt, subset, build_seconds=build_seconds)
        scalar_answers = [filt.query_range(lo, hi) for lo, hi in subset]

    matrix: dict[str, dict[str, dict]] = {}
    reference = None  # legacy/flat answers, the equivalence anchor
    equivalent = True
    with profile_phase("batch"):
        for layout in LAYOUTS:
            matrix[layout] = {}
            for engine in engines:
                cell = time_engine(
                    filters[layout], los, his, engine=engine
                )
                answers = cell.pop("answers")
                if layout == "flat":
                    if reference is None:
                        reference = np.asarray(answers, dtype=bool)
                    else:
                        equivalent &= bool(
                            np.array_equal(reference, answers)
                        )
                    equivalent &= (
                        [bool(a) for a in answers[: len(subset)]]
                        == scalar_answers
                    )
                matrix[layout][engine] = cell

    # Workload matrix on the flat filter: locality changes per engine
    # (the legacy cache thrives on adjacency; the kernels don't care).
    workloads: dict[str, dict[str, float]] = {}
    hit_rates: dict[str, float] = {}
    with profile_phase("workloads"):
        for name, wl in (
            ("uniform", queries[: cfg["n_workload"]]),
            (
                "correlated",
                correlated_range_queries(
                    keys, cfg["n_workload"], max_size=WIDTH, seed=seed + 2
                ),
            ),
            (
                "adjacent",
                adjacent_range_queries(
                    keys, cfg["n_workload"], seed=seed + 3
                ),
            ),
        ):
            workloads[name] = {}
            for engine in engines:
                run = run_batch_filter(filt, wl, engine=engine)
                workloads[name][engine] = round(run.filter_kqps, 1)
                if engine == "legacy":
                    hit_rates[name] = round(run.cache_hit_rate, 3)

    best_engine = engines[0]  # available_backends() is fastest-first
    headline = matrix["flat"][best_engine]
    batch_run = run_batch_filter(
        filt, queries, build_seconds=build_seconds, engine=best_engine
    )
    speedup = headline["kqps"] / round(scalar_run.filter_kqps, 1)

    payload = {
        "preset": preset,
        "n_keys": cfg["n_keys"],
        "bits_per_key": BPK,
        "range_width": WIDTH,
        "n_queries": cfg["n_queries"],
        "engine": best_engine,
        "scalar": {
            "n_queries": len(subset),
            "seconds": round(scalar_run.filter_seconds, 4),
            "kqps": round(scalar_run.filter_kqps, 1),
            "probes_per_query": round(scalar_run.probes_per_query, 2),
        },
        "batch": dict(headline),
        "engines": matrix,
        "workloads": workloads,
        "speedup": round(speedup, 2),
        "equivalent": bool(equivalent),
        "cache_hit_rate_by_workload": hit_rates,
    }
    payload["_runs"] = (scalar_run, batch_run)
    return payload


def _finish(payload: dict, benchmark=None) -> dict:
    scalar_run, batch_run = payload.pop("_runs")
    publish(
        benchmark,
        "batch_query",
        batch_rows([scalar_run, batch_run]),
        "BENCH_batch_query.json",
        payload,
    )
    append_trajectory(
        "batch_query",
        payload["preset"],
        payload["batch"]["kqps"],
        engine=payload["engine"],
    )
    assert payload["equivalent"], "engines diverged from the legacy/scalar answers"
    assert payload["speedup"] >= 5.0, (
        f"batch speedup {payload['speedup']}x below the 5x target"
    )
    engines = payload["engines"]["flat"]
    if "numpy" in engines and "legacy" in engines:
        fused = engines["numpy"]["kqps"]
        legacy = engines["legacy"]["kqps"]
        assert fused >= 1.3 * legacy, (
            f"fused kernel {fused} kq/s below 1.3x the legacy engine "
            f"({legacy} kq/s)"
        )
    assert all(v > 0 for v in payload["cache_hit_rate_by_workload"].values())
    return payload


def test_batch_query(benchmark):
    """Pytest entry point: the smoke preset, timed by pytest-benchmark."""
    payload = run_bench("smoke")
    _finish(payload, benchmark)
    keys = generate_keys(20_000, "uniform", seed=1)
    filt = REncoder(keys, total_bits=BPK * len(keys))
    queries = uniform_range_queries(keys, 2_000, max_size=WIDTH, seed=2)
    benchmark.pedantic(lambda: filt.query_many(queries), rounds=3, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    payload = run_bench(args.preset, seed=args.seed)
    _finish(payload)
    print(
        f"engine {payload['engine']}: {payload['batch']['kqps']} kq/s "
        f"({payload['speedup']}x over scalar {payload['scalar']['kqps']} kq/s)"
    )
    for layout, row in payload["engines"].items():
        cells = ", ".join(f"{e}={c['kqps']}" for e, c in row.items())
        print(f"  {layout}: {cells} kq/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
