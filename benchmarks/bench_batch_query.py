"""Batch query engine: vectorised ``query_many`` vs the scalar loop.

Measures the tentpole claim: on the Fig. 6 uniform workload (10 BPK,
64-wide ranges) the vectorised batch engine answers range queries several
times faster than the per-query scalar loop, while remaining bit-identical
(the scalar subset is re-asserted on every run).  Also reports the fetch
cache's hit rate on three workloads — uniform, correlated (left bound =
key + 32) and adjacent (runs of consecutive 64-wide windows) — since
cache locality is where the batch engine's probe savings come from.

Run as a script (``python benchmarks/bench_batch_query.py --preset
smoke|full``) or via pytest-benchmark like the figure benches.  Both
write ``BENCH_batch_query.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from common import batch_rows, publish

from repro.bench.metrics import run_batch_filter, run_filter
from repro.telemetry.profiler import profile_phase
from repro.core.rencoder import REncoder
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)

#: ``smoke`` fits the CI budget (~30 s end to end); ``full`` is the
#: acceptance configuration (1M keys, 10 BPK, 64-wide ranges).
PRESETS = {
    "smoke": dict(n_keys=100_000, n_queries=20_000, n_scalar=2_000),
    "full": dict(n_keys=1_000_000, n_queries=100_000, n_scalar=5_000),
}
BPK = 10
WIDTH = 64


def adjacent_range_queries(keys, n, *, run_length=16, seed=0):
    """Runs of consecutive ``WIDTH``-wide windows (cache-friendly)."""
    rng = np.random.default_rng(seed)
    top = (1 << 64) - 1
    out = []
    while len(out) < n:
        start = int(
            rng.integers(0, top - WIDTH * run_length, dtype=np.uint64)
        )
        for i in range(run_length):
            lo = start + i * WIDTH
            out.append((lo, lo + WIDTH - 1))
    return out[:n]


def run_bench(preset: str, seed: int = 1) -> dict:
    """Build the filter, time scalar vs batch, return the JSON payload."""
    cfg = PRESETS[preset]
    keys = generate_keys(cfg["n_keys"], "uniform", seed=seed)
    with profile_phase("build"):
        t0 = time.perf_counter()
        filt = REncoder(keys, total_bits=BPK * len(keys))
        build_seconds = time.perf_counter() - t0
    queries = uniform_range_queries(
        keys, cfg["n_queries"], min_size=WIDTH, max_size=WIDTH, seed=seed + 1
    )

    # Scalar baseline on a subset (the loop is the slow side), batch on
    # the whole workload; equivalence asserted on the shared subset.
    subset = queries[: cfg["n_scalar"]]
    with profile_phase("scalar"):
        scalar_run = run_filter(filt, subset, build_seconds=build_seconds)
        scalar_answers = [filt.query_range(lo, hi) for lo, hi in subset]
    with profile_phase("batch"):
        batch_run = run_batch_filter(filt, queries, build_seconds=build_seconds)
        batch_answers = filt.query_many(queries)
    equivalent = batch_answers[: len(subset)] == scalar_answers
    speedup = batch_run.filter_kqps / scalar_run.filter_kqps

    hit_rates = {"uniform": batch_run.cache_hit_rate}
    with profile_phase("cache-workloads"):
        for name, wl in (
            (
                "correlated",
                correlated_range_queries(
                    keys, cfg["n_scalar"], max_size=WIDTH, seed=seed + 2
                ),
            ),
            (
                "adjacent",
                adjacent_range_queries(keys, cfg["n_scalar"], seed=seed + 3),
            ),
        ):
            hit_rates[name] = run_batch_filter(filt, wl).cache_hit_rate

    payload = {
        "preset": preset,
        "n_keys": cfg["n_keys"],
        "bits_per_key": BPK,
        "range_width": WIDTH,
        "n_queries": cfg["n_queries"],
        "scalar": {
            "n_queries": len(subset),
            "seconds": round(scalar_run.filter_seconds, 4),
            "kqps": round(scalar_run.filter_kqps, 1),
            "probes_per_query": round(scalar_run.probes_per_query, 2),
        },
        "batch": {
            "n_queries": cfg["n_queries"],
            "seconds": round(batch_run.filter_seconds, 4),
            "kqps": round(batch_run.filter_kqps, 1),
            "probes_per_query": round(batch_run.probes_per_query, 2),
            "cache_hit_rate": round(batch_run.cache_hit_rate, 3),
        },
        "speedup": round(speedup, 2),
        "equivalent": equivalent,
        "cache_hit_rate_by_workload": {
            k: round(v, 3) for k, v in hit_rates.items()
        },
    }
    payload["_runs"] = (scalar_run, batch_run)
    return payload


def _finish(payload: dict, benchmark=None) -> dict:
    scalar_run, batch_run = payload.pop("_runs")
    publish(
        benchmark,
        "batch_query",
        batch_rows([scalar_run, batch_run]),
        "BENCH_batch_query.json",
        payload,
    )
    assert payload["equivalent"], "batch answers diverged from scalar"
    assert payload["speedup"] >= 5.0, (
        f"batch speedup {payload['speedup']}x below the 5x target"
    )
    assert all(v > 0 for v in payload["cache_hit_rate_by_workload"].values())
    return payload


def test_batch_query(benchmark):
    """Pytest entry point: the smoke preset, timed by pytest-benchmark."""
    payload = run_bench("smoke")
    _finish(payload, benchmark)
    keys = generate_keys(20_000, "uniform", seed=1)
    filt = REncoder(keys, total_bits=BPK * len(keys))
    queries = uniform_range_queries(keys, 2_000, max_size=WIDTH, seed=2)
    benchmark.pedantic(lambda: filt.query_many(queries), rounds=3, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    payload = run_bench(args.preset, seed=args.seed)
    _finish(payload)
    print(
        f"speedup {payload['speedup']}x "
        f"(scalar {payload['scalar']['kqps']} kq/s -> "
        f"batch {payload['batch']['kqps']} kq/s), "
        f"hit rates {payload['cache_hit_rate_by_workload']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
