"""Table IV: test of bit independence in the built RBF.

Paper shape: the conditional probability that a bit is 1 given its
preceding-bit pattern stays close to the unconditional P1 — the
independence assumption behind the Section IV analysis.
"""

from common import default_config, record

from repro.bench.experiments import table4_independence
from repro.analysis.independence import independence_table
from repro.core.rencoder import REncoder
from repro.workloads.datasets import generate_keys


def test_table4_independence(benchmark):
    cfg = default_config()
    rows, text = table4_independence(cfg)
    record(benchmark, "table4_independence", text)

    p1 = next(r for r in rows if r["pattern"] == "(none)")["p1"]
    for row in rows:
        if row["pattern"] != "(none)":
            assert abs(row["p1"] - p1) < 0.12, row

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    enc = REncoder(keys, bits_per_key=18, seed=cfg.seed)
    benchmark.pedantic(
        lambda: independence_table(enc.rbf._array[:-1], context=2),
        rounds=3, iterations=1,
    )
