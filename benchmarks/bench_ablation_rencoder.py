"""Ablations of REncoder's design choices (DESIGN.md §5).

Not figures from the paper — these quantify the knobs the paper's design
discussion motivates:

* **group_bits (B)** — mini-tree size.  Larger B = more levels per fetch
  (fewer probes) at the same accuracy; B=8 is the paper's AVX-512 choice.
* **hash count (k)** — Corollaries 3–4 vs Theorem 6: small k frees memory
  for more stored levels (better uniform FPR), but correlated queries
  need k >= 2.
* **ancestor checks** — Section III-C's "additional queries": probing the
  stored levels above a sub-range costs almost nothing (same BT fetch)
  and buys FPR on distant queries.
* **levels_per_round (n_r)** — insertion granularity of the adaptive
  construction; coarse rounds overshoot the P1 target.
"""

from common import default_config, record

from repro.core.rencoder import REncoder
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)


def _fpr(filt, queries):
    return sum(filt.query_range(lo, hi) for lo, hi in queries) / len(queries)


def _probes(filt, queries):
    filt.reset_counters()
    for lo, hi in queries:
        filt.query_range(lo, hi)
    return filt.probe_count / len(queries)


def test_ablation_group_bits(benchmark):
    cfg = default_config()
    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, cfg.n_queries, seed=cfg.seed + 1)
    rows = []
    for b in (4, 5, 6, 7, 8):
        filt = REncoder(keys, bits_per_key=18, group_bits=b, seed=cfg.seed)
        rows.append(
            {
                "group_bits": b,
                "bt_bits": 1 << (b + 1),
                "fpr": _fpr(filt, queries),
                "probes/q": round(_probes(filt, queries), 2),
            }
        )
    record(benchmark, "ablation_group_bits",
           __import__("repro.bench.tables", fromlist=["format_table"])
           .format_table(rows, "Ablation: mini-tree size B"))
    # Bigger mini-trees never need more fetches for the same workload.
    assert rows[-1]["probes/q"] <= rows[0]["probes/q"] + 0.5
    # Accuracy is roughly independent of B (same bits, same ones).
    assert abs(rows[-1]["fpr"] - rows[0]["fpr"]) < 0.08

    benchmark.pedantic(
        lambda: REncoder(keys, bits_per_key=18, group_bits=8),
        rounds=3, iterations=1,
    )


def test_ablation_hash_count(benchmark):
    cfg = default_config()
    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    uniform = uniform_range_queries(keys, cfg.n_queries, seed=cfg.seed + 1)
    correlated = correlated_range_queries(
        keys, cfg.n_queries, seed=cfg.seed + 2
    )
    rows = []
    for k in (1, 2, 3, 4, 5):
        filt = REncoder(keys, bits_per_key=18, k=k, seed=cfg.seed)
        rows.append(
            {
                "k": k,
                "levels": len(filt.stored_levels),
                "uniform_fpr": _fpr(filt, uniform),
                "corr_fpr": _fpr(filt, correlated),
            }
        )
    from repro.bench.tables import format_table

    record(benchmark, "ablation_hash_count",
           format_table(rows, "Ablation: hash functions k (18 bpk)"))
    # Corollary 3/4: fewer hashes -> more stored levels.
    levels = [r["levels"] for r in rows]
    assert levels == sorted(levels, reverse=True)
    # Theorem 6: k=1 is the worst correlated configuration.
    assert rows[0]["corr_fpr"] >= max(r["corr_fpr"] for r in rows[1:]) - 0.02

    benchmark.pedantic(
        lambda: REncoder(keys, bits_per_key=18, k=2), rounds=3, iterations=1
    )


def test_ablation_ancestor_checks(benchmark):
    cfg = default_config()
    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, cfg.n_queries, seed=cfg.seed + 1)
    rows = []
    for checks in (True, False):
        filt = REncoder(keys, bits_per_key=26, seed=cfg.seed,
                        ancestor_checks=checks)
        rows.append(
            {
                "ancestor_checks": checks,
                "levels": len(filt.stored_levels),
                "fpr": _fpr(filt, queries),
                "probes/q": round(_probes(filt, queries), 2),
            }
        )
    from repro.bench.tables import format_table

    record(benchmark, "ablation_ancestor_checks",
           format_table(rows, "Ablation: ancestor-level checks (26 bpk)"))
    with_checks, without = rows
    # The additional queries never hurt accuracy...
    assert with_checks["fpr"] <= without["fpr"] + 0.01
    # ...and cost little thanks to the shared BT fetches.
    assert with_checks["probes/q"] <= without["probes/q"] + 4

    filt = REncoder(keys, bits_per_key=26, seed=cfg.seed)
    benchmark.pedantic(
        lambda: [filt.query_range(lo, hi) for lo, hi in queries[:200]],
        rounds=3, iterations=1,
    )


def test_ablation_levels_per_round(benchmark):
    cfg = default_config()
    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, cfg.n_queries, seed=cfg.seed + 1)
    rows = []
    for n_r in (1, 2, 4, 8):
        filt = REncoder(keys, bits_per_key=30, levels_per_round=n_r,
                        seed=cfg.seed)
        rows.append(
            {
                "levels_per_round": n_r,
                "levels": len(filt.stored_levels),
                "p1": round(filt.final_p1, 3),
                "fpr": _fpr(filt, queries),
            }
        )
    from repro.bench.tables import format_table

    record(benchmark, "ablation_levels_per_round",
           format_table(rows, "Ablation: insertion round size n_r (30 bpk)"))
    # Coarser rounds overshoot the P1 target (paper: set n_r small for
    # better query performance).
    assert rows[-1]["p1"] >= rows[0]["p1"] - 0.02

    benchmark.pedantic(
        lambda: REncoder(keys, bits_per_key=30, levels_per_round=8),
        rounds=3, iterations=1,
    )
