"""Two-Stage REncoder vs a naive bit-pattern REncoder on float keys.

Section III-D's motivation, measured: float keys, read as raw 31-bit
patterns, cluster by exponent; a base REncoder's one-directional level
plan either wastes levels on empty exponent space or starves the
mantissa.  The Two-Stage build splits the budget — exponent levels
upward to ``T_exp``, then mantissa levels downward to 0.5 — and wins on
float range queries over value-skewed data.
"""

import numpy as np
from common import default_config, record

from repro.bench.tables import format_table
from repro.core.rencoder import REncoder
from repro.core.two_stage import TwoStageREncoder, float_to_key


def _float_workload(n_keys, n_queries, seed):
    rng = np.random.default_rng(seed)
    values = sorted(set(float(v) for v in rng.lognormal(0.0, 5.0, n_keys)))
    arr = np.array(values)
    queries = []
    while len(queries) < n_queries:
        v = float(rng.choice(arr)) * float(rng.uniform(1.01, 1.2))
        hi = v * 1.0005
        i = int(np.searchsorted(arr, v))
        if i < len(values) and values[i] <= hi:
            continue
        queries.append((v, hi))
    return values, queries


def test_float_two_stage_vs_naive(benchmark):
    cfg = default_config()
    values, queries = _float_workload(
        cfg.n_keys // 2, cfg.n_queries // 2, cfg.seed
    )
    int_keys = [float_to_key(v) for v in values]
    int_queries = [
        (float_to_key(lo), max(float_to_key(lo), float_to_key(hi)))
        for lo, hi in queries
    ]
    rows = []
    for bpk in (14, 20, 26):
        two_stage = TwoStageREncoder(values, bits_per_key=bpk,
                                     seed=cfg.seed)
        naive = REncoder(int_keys, bits_per_key=bpk, key_bits=31,
                         seed=cfg.seed)
        fpr_ts = sum(
            two_stage.query_float_range(lo, hi) for lo, hi in queries
        ) / len(queries)
        fpr_nv = sum(
            naive.query_range(lo, hi) for lo, hi in int_queries
        ) / len(queries)
        rows.append(
            {
                "bpk": bpk,
                "two_stage_fpr": fpr_ts,
                "naive_fpr": fpr_nv,
                "ts_levels": len(two_stage.stored_levels),
                "naive_levels": len(naive.stored_levels),
            }
        )
    record(benchmark, "float_two_stage",
           format_table(rows, "Float keys: Two-Stage vs naive REncoder"))
    # The staged plan is at least competitive at every budget and stores
    # exponent levels the naive plan never reaches.
    for row in rows:
        assert row["two_stage_fpr"] <= row["naive_fpr"] + 0.05

    benchmark.pedantic(
        lambda: TwoStageREncoder(values, bits_per_key=20),
        rounds=3, iterations=1,
    )
