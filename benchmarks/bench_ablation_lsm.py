"""Ablation: LSM compaction policy × filter choice.

Tiering keeps more overlapping runs per level than leveling, so every
read consults more tables — the regime where per-run range filters earn
the most.  This bench quantifies (a) write amplification of each policy
and (b) wasted reads with no filter / Bloom / REncoder under each.
"""

import numpy as np
from common import default_config, record

from repro.bench.tables import format_table
from repro.core.rencoder import REncoder
from repro.filters.bloom import BloomFilter
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree
from repro.workloads.datasets import generate_keys


def _build(policy, factory, keys):
    env = StorageEnv()
    lsm = LSMTree(
        factory,
        memtable_capacity=512,
        base_capacity=2,
        ratio=3,
        policy=policy,
        env=env,
    )
    for k in keys:
        lsm.put(int(k), 0)
    lsm.flush()
    return lsm, env


def test_ablation_lsm_policy(benchmark):
    cfg = default_config()
    keys = generate_keys(cfg.n_keys // 2, "uniform", seed=cfg.seed)
    # Insert in arrival (random) order: sorted ingestion would produce
    # non-overlapping runs and hide the policies' read-path difference.
    keys = np.random.default_rng(cfg.seed).permutation(keys)
    rng = np.random.default_rng(cfg.seed + 1)
    probes = [
        int(lo) for lo in rng.integers(0, 1 << 64, cfg.n_queries // 2,
                                       dtype=np.uint64)
    ]
    rows = []
    for policy in ("leveling", "tiering"):
        for fname, factory in (
            ("none", None),
            ("Bloom", lambda ks: BloomFilter(ks, bits_per_key=18)),
            ("REncoder", lambda ks: REncoder(ks, bits_per_key=18)),
        ):
            lsm, env = _build(policy, factory, keys)
            written = env.stats.entries_written
            tables = lsm.table_count()
            env.reset()
            for lo in probes:
                lsm.range_query(lo, min(lo + 31, (1 << 64) - 1))
            rows.append(
                {
                    "policy": policy,
                    "filter": fname,
                    "tables": tables,
                    "entries_written": written,
                    "wasted_reads": env.stats.wasted_reads,
                }
            )
    record(benchmark, "ablation_lsm_policy",
           format_table(rows, "Ablation: compaction policy x filter"))

    by = {(r["policy"], r["filter"]): r for r in rows}
    # Tiering writes each entry fewer times...
    assert (
        by[("tiering", "none")]["entries_written"]
        <= by[("leveling", "none")]["entries_written"]
    )
    # ...but suffers more wasted reads unfiltered (more runs to touch)...
    assert (
        by[("tiering", "none")]["wasted_reads"]
        >= by[("leveling", "none")]["wasted_reads"]
    )
    # ...and the range filter claws nearly all of them back.
    assert (
        by[("tiering", "REncoder")]["wasted_reads"]
        < max(1, by[("tiering", "none")]["wasted_reads"]) / 4
    )

    lsm, _ = _build("tiering",
                    lambda ks: REncoder(ks, bits_per_key=18), keys)
    benchmark.pedantic(
        lambda: [lsm.range_query(lo, lo + 31) for lo in probes[:100]],
        rounds=3, iterations=1,
    )
