"""Figure 7: point queries — FPR (a) and filter throughput (b) vs BPK.

Paper shape: every filter's FPR improves relative to range queries (fewer
Bloom probes / extra suffix information); Rosetta's point throughput beats
REncoder's because it probes only its bottom Bloom filter; REncoder keeps
a bottom-band FPR.
"""

from common import default_config, mean, record, series

from repro.bench.experiments import fig5_fpr_range, fig7_point_queries
from repro.bench.registry import build_filter
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import point_queries


def test_fig7_point_queries(benchmark):
    cfg = default_config()
    results, text = fig7_point_queries(cfg)
    record(benchmark, "fig7_point_queries", text)

    fpr_point = series(results, "fpr")
    probes = series(results, "probes_per_query")
    range_results, _ = fig5_fpr_range(cfg, max_size=32)
    fpr_range = series(range_results, "fpr")

    # Point FPR is no worse than range FPR for the segment-tree filters.
    for name in ("REncoder", "Rosetta"):
        assert mean(fpr_point[name]) <= mean(fpr_range[name]) + 0.02
    # Rosetta's point probe collapses to its bottom Bloom filter (the
    # paper's mechanism for its point-query speed-up): far fewer probes
    # than its own range queries.
    range_probes = series(range_results, "probes_per_query")
    assert mean(probes["Rosetta"]) < mean(range_probes["Rosetta"]) / 2
    # REncoder's point path also stays within a couple of BT fetches.
    assert mean(probes["REncoder"]) < 8

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = point_queries(keys, 300, seed=cfg.seed + 3)
    filt = build_filter("REncoder", keys, 18.0)
    benchmark.pedantic(
        lambda: [filt.query_point(lo) for lo, _ in queries],
        rounds=3, iterations=1,
    )
