"""Telemetry overhead: the disabled fast path must stay under 10 %.

The instrumentation contract (DESIGN.md §9) is that every hot-path hook
— ``current_span()`` in the probe loops, ``child_span()`` around the
storage reads, the ``Instrumented`` gauges — costs one global load and
one attribute check when tracing is off.  This bench measures that
claim on the 64-wide batch-query micro-bench (the same workload as
``bench_batch_query``): ``query_many`` with the tracer disabled versus
enabled with an open root span (the worst case: every probe batch
accumulates span metrics).

The **off** run is the shipping configuration, so the assertion is on
*enabled* overhead: tracing a query may not inflate its wall time by
more than ``OVERHEAD_BUDGET`` (10 %).  Both sides take the best of
``rounds`` to shave scheduler noise.

Run as a script (``python benchmarks/bench_telemetry.py``) or via
pytest-benchmark; both write ``BENCH_telemetry.json``.
"""

from __future__ import annotations

import argparse
import sys
import time

from common import publish

from repro.core.rencoder import REncoder
from repro.telemetry.tracing import get_tracer
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import uniform_range_queries

#: ``smoke`` fits the CI budget; ``full`` is the acceptance scale.
#: ``cluster`` times *routed* queries through a healthy FilterCluster —
#: the gate on distributed tracing (contexts, hop spans, tail-sampling).
PRESETS = {
    "smoke": dict(n_keys=100_000, n_queries=20_000, rounds=5),
    "full": dict(n_keys=1_000_000, n_queries=100_000, rounds=5),
    "cluster": dict(n_keys=20_000, n_batches=40, batch=32, rounds=3),
}
BPK = 10
WIDTH = 64
OVERHEAD_BUDGET = 0.10


def _time_query_many(filt, queries, rounds: int) -> float:
    """Best-of-``rounds`` wall seconds for one ``query_many`` sweep."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        filt.query_many(queries)
        best = min(best, time.perf_counter() - t0)
    return best


def _run_cluster(seed: int) -> dict:
    """Routed-query tracing overhead: cluster off vs on (+ trace store).

    The "on" side is the full distributed pipeline — context minting,
    per-attempt hop spans, replica-side stamping, tail-sampled record —
    on every routed batch, against an identically seeded healthy
    cluster with tracing disabled.
    """
    import random

    from repro.cluster import FilterCluster
    from repro.telemetry.context import TraceStore

    cfg = PRESETS["cluster"]
    store = TraceStore(cap=256, seed=seed, sample_rate=0.05)
    cluster = FilterCluster(
        n_shards=2,
        replicas_per_shard=2,
        filter_factory=lambda ks: REncoder(ks, bits_per_key=BPK),
        seed=seed,
        segment_bits=5,
        memtable_capacity=4_096,
        workers=2,
        trace_store=store,
    )
    cluster.start()
    tracer = get_tracer()
    try:
        rng = random.Random(seed)
        keys = sorted(
            {rng.getrandbits(64) for _ in range(cfg["n_keys"])}
        )
        cluster.load(keys)
        cluster.flush()
        batches = [
            [
                (k, k + WIDTH)
                for k in rng.sample(keys, cfg["batch"])
            ]
            for _ in range(cfg["n_batches"])
        ]
        n_queries = cfg["n_batches"] * cfg["batch"]

        def sweep() -> None:
            for ranges in batches:
                cluster.query_range_many(ranges)

        tracer.disable()
        sweep()  # warm every replica's caches before either side
        off_seconds = float("inf")
        for _ in range(cfg["rounds"]):
            t0 = time.perf_counter()
            sweep()
            off_seconds = min(off_seconds, time.perf_counter() - t0)

        tracer.enable(cluster.clock)
        on_seconds = float("inf")
        for _ in range(cfg["rounds"]):
            store.clear()
            t0 = time.perf_counter()
            sweep()
            on_seconds = min(on_seconds, time.perf_counter() - t0)
        traces = store.stats()
    finally:
        tracer.disable()
        cluster.stop()

    overhead = on_seconds / off_seconds - 1.0
    return {
        "preset": "cluster",
        "n_keys": cfg["n_keys"],
        "bits_per_key": BPK,
        "range_width": WIDTH,
        "n_queries": n_queries,
        "rounds": cfg["rounds"],
        "off_seconds": round(off_seconds, 4),
        "on_seconds": round(on_seconds, 4),
        "off_kqps": round(n_queries / off_seconds / 1e3, 1),
        "on_kqps": round(n_queries / on_seconds / 1e3, 1),
        "overhead": round(overhead, 4),
        "overhead_budget": OVERHEAD_BUDGET,
        "traces": traces,
    }


def run_bench(preset: str, seed: int = 1) -> dict:
    """Time the batch engine with tracing off vs on; return the payload."""
    if preset == "cluster":
        return _run_cluster(seed)
    cfg = PRESETS[preset]
    keys = generate_keys(cfg["n_keys"], "uniform", seed=seed)
    filt = REncoder(keys, total_bits=BPK * len(keys))
    queries = uniform_range_queries(
        keys, cfg["n_queries"], min_size=WIDTH, max_size=WIDTH, seed=seed + 1
    )

    tracer = get_tracer()
    tracer.disable()
    filt.query_many(queries)  # warm the caches once before either side
    off_seconds = _time_query_many(filt, queries, cfg["rounds"])

    tracer.enable()
    try:
        with tracer.span("bench_telemetry"):
            on_seconds = _time_query_many(filt, queries, cfg["rounds"])
    finally:
        tracer.disable()

    overhead = on_seconds / off_seconds - 1.0
    return {
        "preset": preset,
        "n_keys": cfg["n_keys"],
        "bits_per_key": BPK,
        "range_width": WIDTH,
        "n_queries": cfg["n_queries"],
        "rounds": cfg["rounds"],
        "off_seconds": round(off_seconds, 4),
        "on_seconds": round(on_seconds, 4),
        "off_kqps": round(cfg["n_queries"] / off_seconds / 1e3, 1),
        "on_kqps": round(cfg["n_queries"] / on_seconds / 1e3, 1),
        "overhead": round(overhead, 4),
        "overhead_budget": OVERHEAD_BUDGET,
    }


def _rows(payload: dict) -> str:
    cols = ["mode", "seconds", "kqps"]
    lines = ["".join(c.ljust(12) for c in cols)]
    for mode in ("off", "on"):
        lines.append("".join(
            str(v).ljust(12) for v in (
                mode,
                payload[f"{mode}_seconds"],
                payload[f"{mode}_kqps"],
            )
        ))
    lines.append(f"overhead    {payload['overhead'] * 100:.1f}%")
    return "\n".join(lines)


def _finish(payload: dict, benchmark=None) -> dict:
    # The cluster preset gates a different pipeline; keep its artifact
    # separate so the two gates never overwrite each other.
    suffix = "_cluster" if payload["preset"] == "cluster" else ""
    publish(
        benchmark, f"telemetry{suffix}", _rows(payload),
        f"BENCH_telemetry{suffix}.json", payload,
    )
    assert payload["overhead"] < OVERHEAD_BUDGET, (
        f"tracing overhead {payload['overhead'] * 100:.1f}% exceeds the "
        f"{OVERHEAD_BUDGET * 100:.0f}% budget"
    )
    return payload


def test_telemetry_overhead(benchmark):
    """Pytest entry point: the smoke preset, timed by pytest-benchmark."""
    payload = run_bench("smoke")
    _finish(payload, benchmark)
    cfg = PRESETS["smoke"]
    keys = generate_keys(cfg["n_keys"], "uniform", seed=1)
    filt = REncoder(keys, total_bits=BPK * len(keys))
    queries = uniform_range_queries(
        keys, 2_000, min_size=WIDTH, max_size=WIDTH, seed=2
    )
    benchmark.pedantic(lambda: filt.query_many(queries), rounds=3, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    payload = run_bench(args.preset, seed=args.seed)
    _finish(payload)
    print(
        f"telemetry overhead {payload['overhead'] * 100:.1f}% "
        f"(off {payload['off_kqps']} kq/s -> on {payload['on_kqps']} kq/s), "
        f"budget {OVERHEAD_BUDGET * 100:.0f}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
