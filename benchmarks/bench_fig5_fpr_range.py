"""Figure 5: FPR vs BPK on uniform range queries (a: 2-32, b: 2-64).

Paper shape: REncoderSS(SE) lowest or near-lowest at every BPK; base
REncoder's FPR falls steeply with memory; SuRF is flat (no memory knob);
Rosetta is accurate but pays for it in probes (Figure 6).
"""

from common import default_config, mean, record, series

from repro.bench.experiments import fig5_fpr_range
from repro.bench.registry import build_filter
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import uniform_range_queries


def _assert_shape(results):
    fpr = series(results, "fpr")
    # SS/SE never far from the best Bloom-style competitor.
    for i in range(len(fpr["REncoderSS"])):
        best = min(fpr[name][i] for name in fpr)
        assert fpr["REncoderSS"][i] <= best + 0.06
    # Base REncoder's FPR decreases with memory.
    assert fpr["REncoder"][-1] <= fpr["REncoder"][0]
    # SuRF is flat across the BPK axis (size is data-determined).
    assert max(fpr["SuRF"]) - min(fpr["SuRF"]) < 0.02


def test_fig5a_fpr_range_2_32(benchmark):
    cfg = default_config()
    results, text = fig5_fpr_range(cfg, max_size=32)
    record(benchmark, "fig5a_fpr_2_32", text)
    _assert_shape(results)

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, 200, max_size=32, seed=cfg.seed + 1)
    filt = build_filter("REncoderSS", keys, 18.0)
    benchmark.pedantic(
        lambda: [filt.query_range(lo, hi) for lo, hi in queries],
        rounds=3, iterations=1,
    )


def test_fig5b_fpr_range_2_64(benchmark):
    cfg = default_config()
    results, text = fig5_fpr_range(cfg, max_size=64)
    record(benchmark, "fig5b_fpr_2_64", text)
    _assert_shape(results)
    # Wider ranges never make FPR better for the segment-tree filters.
    fpr64 = series(results, "fpr")
    results32, _ = fig5_fpr_range(cfg, max_size=32)
    fpr32 = series(results32, "fpr")
    assert mean(fpr64["REncoder"]) >= mean(fpr32["REncoder"]) - 0.02

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, 200, max_size=64, seed=cfg.seed + 1)
    filt = build_filter("REncoder", keys, 18.0)
    benchmark.pedantic(
        lambda: [filt.query_range(lo, hi) for lo, hi in queries],
        rounds=3, iterations=1,
    )
