"""Table II: space cost (bits per key) of REncoder for target FPRs.

Paper shape: monotone — tighter targets need more bits; REncoderSS(SE)
needs several bits per key less than the base REncoder at every target
(the paper's row pair, e.g. 6.5 vs 2 bpk at 50% FPR).
"""

from common import default_config, record

from repro.bench.experiments import table2_space_cost
from repro.core.rencoder import REncoder
from repro.workloads.datasets import generate_keys


def test_table2_space_cost(benchmark):
    cfg = default_config(n_queries=1000)
    rows, text = table2_space_cost(cfg)
    record(benchmark, "table2_space_cost", text)

    bpks_base = [r["rencoder_bpk"] for r in rows]
    bpks_ss = [r["rencoder_ss_bpk"] for r in rows]
    theory = [r["theory_bpk"] for r in rows]
    # Monotone in the target.
    assert all(a <= b + 0.6 for a, b in zip(bpks_base, bpks_base[1:]))
    assert all(a <= b + 0.6 for a, b in zip(theory, theory[1:]))
    # SS needs no more space than the base REncoder at loose targets.
    assert bpks_ss[0] <= bpks_base[0] + 0.5

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    benchmark.pedantic(
        lambda: REncoder(keys, bits_per_key=18.0),
        rounds=3, iterations=1,
    )
