"""Recovery-time headline: checkpoint + WAL tail vs full rebuild.

The durability tier's reason to exist is cheap recovery: a crashed
replica that restores from its last crash-consistent checkpoint plus the
WAL tail must come back *much* faster than one that re-ingests every key
from scratch — while answering exactly the same (zero false negatives,
no quarantine on a clean store).

This bench builds a durable LSM with persisted REncoder filters, writes
a checkpoint, appends a small post-checkpoint WAL tail, then times

* **restore** — ``DurableLSM.restore``: newest checkpoint, reload table
  data + filter blobs, replay the WAL tail;
* **rebuild** — a fresh tree re-ingesting every key through the
  memtable/flush/filter-build path (what a system without checkpoints
  would have to do).

The headline is the restore/rebuild speedup and restore throughput in
k-keys/s; the ``full`` preset (1M keys) must clear the issue's >= 5x
acceptance bar.  Run as a script (``python benchmarks/bench_durability.py
--preset smoke|full``) or via pytest-benchmark; both write
``BENCH_durability.json`` and append the headline to the trajectory.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from common import append_trajectory, publish

from repro.core.rencoder import REncoder
from repro.durability import DurableLSM
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree
from repro.workloads.datasets import generate_keys

#: ``smoke`` fits the CI budget; ``full`` is the 1M-key acceptance run.
PRESETS = {
    "smoke": dict(
        n_keys=60_000,
        memtable_capacity=4_000,
        wal_tail=1_000,
        checkpoint_every=20_000,
        n_probes=2_000,
        min_speedup=2.0,
    ),
    "full": dict(
        n_keys=1_000_000,
        memtable_capacity=16_000,
        wal_tail=10_000,
        checkpoint_every=100_000,
        n_probes=10_000,
        min_speedup=5.0,
    ),
}
BPK = 12
BATCH = 2_000  # group-commit size for ingest


def _factory(keys):
    return REncoder(keys, bits_per_key=BPK)


def _ingest(tree, keys):
    for i in range(0, len(keys), BATCH):
        tree.put_many([(int(k), int(k) & 0xFF) for k in keys[i : i + BATCH]])


def _build_durable(keys, tail, cfg):
    """Durable tree: ingest, checkpoint, then a post-checkpoint tail.

    ``checkpoint_every`` is the deployed steady state: periodic
    checkpoints truncate sealed WAL segments as ingest goes, so the
    crash-time WAL holds the truncation slack plus the tail — not the
    whole history.
    """
    env = StorageEnv()
    tree = DurableLSM(
        _factory,
        name="bench",
        env=env,
        memtable_capacity=cfg["memtable_capacity"],
        checkpoint_every=cfg["checkpoint_every"],
        policy="tiering",
    )
    _ingest(tree, keys)
    tree.flush()
    ckpt = tree.checkpoint()
    _ingest(tree, tail)  # lives only in WAL + memtable at "crash" time
    return env, tree, ckpt


def _assert_no_false_negatives(tree, keys, n_probes, seed):
    rng = np.random.default_rng(seed)
    probe = [int(k) for k in rng.choice(keys, min(n_probes, len(keys)))]
    for k in probe:
        found, value = tree.get(k)
        assert found and value == (k & 0xFF), f"lost key {k}"


def run_bench(preset: str, seed: int = 1) -> dict:
    """Time restore vs full rebuild; return the JSON payload."""
    cfg = PRESETS[preset]
    keys = generate_keys(cfg["n_keys"], "uniform", seed=seed)
    tail = generate_keys(cfg["wal_tail"], "uniform", seed=seed + 1)
    total = len(keys) + len(tail)

    env, tree, ckpt = _build_durable(keys, tail, cfg)
    stats = tree.durability_stats()

    t0 = time.perf_counter()
    restored, report = DurableLSM.restore(
        _factory,
        env=env,
        name="bench",
        memtable_capacity=cfg["memtable_capacity"],
        policy="tiering",
    )
    restore_s = time.perf_counter() - t0
    assert report["tables_quarantined"] == 0, report
    assert report["filters"]["degraded"] == 0, report
    assert report["wal_records_replayed"] >= len(tail), report
    _assert_no_false_negatives(restored, keys, cfg["n_probes"], seed + 2)
    _assert_no_false_negatives(restored, tail, cfg["n_probes"], seed + 3)

    t0 = time.perf_counter()
    rebuilt = LSMTree(
        _factory,
        env=StorageEnv(),
        memtable_capacity=cfg["memtable_capacity"],
        policy="tiering",
        persist_filters=False,
    )
    for arr in (keys, tail):
        for i in range(0, len(arr), BATCH):
            for k in arr[i : i + BATCH]:
                rebuilt.put(int(k), int(k) & 0xFF)
    rebuilt.flush()
    rebuild_s = time.perf_counter() - t0
    _assert_no_false_negatives(rebuilt, keys, cfg["n_probes"] // 4, seed + 4)

    speedup = rebuild_s / restore_s if restore_s > 0 else float("inf")
    payload = {
        "preset": preset,
        "n_keys": cfg["n_keys"],
        "wal_tail": len(tail),
        "bits_per_key": BPK,
        "checkpoint": {
            "tables": ckpt["tables"],
            "wal_lsn": ckpt["wal_lsn"],
            "memtable_pairs": ckpt["memtable_pairs"],
        },
        "restore": {
            "seconds": round(restore_s, 4),
            "tables_loaded": report["tables_loaded"],
            "filters_loaded": report["filters"]["loaded"],
            "wal_records_replayed": report["wal_records_replayed"],
            "memtable_pairs": report["memtable_pairs"],
        },
        "rebuild_seconds": round(rebuild_s, 4),
        "headline": {
            "speedup": round(speedup, 2),
            "krps": round(total / restore_s / 1_000, 1),
        },
        "wal": stats["wal"],
        "zero_false_negatives": True,
    }
    return payload


def _rows(payload: dict) -> str:
    cols = ["run", "seconds", "keys", "krps", "notes"]
    restore = payload["restore"]
    total = payload["n_keys"] + payload["wal_tail"]
    rows = [
        {
            "run": "restore",
            "seconds": restore["seconds"],
            "keys": total,
            "krps": payload["headline"]["krps"],
            "notes": (
                f"{restore['tables_loaded']} tables, "
                f"{restore['filters_loaded']} filters, "
                f"{restore['wal_records_replayed']} WAL records"
            ),
        },
        {
            "run": "rebuild",
            "seconds": payload["rebuild_seconds"],
            "keys": total,
            "krps": round(total / payload["rebuild_seconds"] / 1_000, 1),
            "notes": f"speedup {payload['headline']['speedup']}x",
        },
    ]
    lines = ["".join(c.ljust(14) for c in cols)]
    for row in rows:
        lines.append("".join(str(row[c]).ljust(14) for c in cols))
    return "\n".join(lines)


def _finish(payload: dict, benchmark=None) -> dict:
    publish(
        benchmark,
        "durability",
        _rows(payload),
        "BENCH_durability.json",
        payload,
    )
    append_trajectory(
        "durability",
        payload["preset"],
        payload["headline"]["krps"],
        speedup=payload["headline"]["speedup"],
    )
    assert payload["zero_false_negatives"]
    cfg = PRESETS[payload["preset"]]
    assert payload["headline"]["speedup"] >= cfg["min_speedup"], (
        f"restore only {payload['headline']['speedup']}x faster than "
        f"rebuild (need >= {cfg['min_speedup']}x)"
    )
    return payload


def test_durability(benchmark):
    """Pytest entry point: the smoke preset, timed by pytest-benchmark."""
    payload = run_bench("smoke")
    _finish(payload, benchmark)
    cfg = PRESETS["smoke"]
    keys = generate_keys(cfg["n_keys"], "uniform", seed=1)
    tail = generate_keys(cfg["wal_tail"], "uniform", seed=2)
    env, _, _ = _build_durable(keys, tail, cfg)

    def restore_once():
        DurableLSM.restore(
            _factory,
            env=env,
            name="bench",
            memtable_capacity=cfg["memtable_capacity"],
            policy="tiering",
        )

    benchmark.pedantic(restore_once, rounds=3, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    payload = run_bench(args.preset, seed=args.seed)
    _finish(payload)
    h = payload["headline"]
    print(
        f"restore {payload['restore']['seconds']}s vs rebuild "
        f"{payload['rebuild_seconds']}s: {h['speedup']}x speedup, "
        f"{h['krps']}k keys/s, zero false negatives"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
