"""Ablations of the baselines' own knobs.

* **Rosetta memory allocation** — equal / proportional / bottom-heavy
  split across the per-level Bloom filters.  The bottom-heavy policy
  (what Rosetta's analysis recommends and this repo defaults to) should
  dominate.
* **SuRF suffix modes** — base / hash / real / mixed, trading bits per
  key for point- and range-query sharpness.
* **SNARF Rice parameter** — how far the budget-derived parameter can be
  perturbed before space or accuracy degrades.
"""

from common import default_config, record

from repro.bench.tables import format_table
from repro.filters.rosetta import Rosetta
from repro.filters.snarf import Snarf
from repro.filters.surf import SuRF
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import point_queries, uniform_range_queries


def _fpr(filt, queries):
    return sum(filt.query_range(lo, hi) for lo, hi in queries) / len(queries)


def test_ablation_rosetta_allocation(benchmark):
    cfg = default_config()
    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, cfg.n_queries, seed=cfg.seed + 1)
    rows = []
    for allocation in ("equal", "proportional", "bottom_heavy"):
        filt = Rosetta(keys, bits_per_key=18, allocation=allocation,
                       seed=cfg.seed)
        filt.reset_counters()
        fpr = _fpr(filt, queries)
        rows.append(
            {
                "allocation": allocation,
                "fpr": fpr,
                "probes/q": round(filt.probe_count / len(queries), 1),
            }
        )
    record(benchmark, "ablation_rosetta_allocation",
           format_table(rows, "Ablation: Rosetta memory allocation (18 bpk)"))
    by_name = {r["allocation"]: r for r in rows}
    assert by_name["bottom_heavy"]["fpr"] <= by_name["equal"]["fpr"] + 0.01

    benchmark.pedantic(
        lambda: Rosetta(keys, bits_per_key=18), rounds=3, iterations=1
    )


def test_ablation_surf_suffix_modes(benchmark):
    cfg = default_config()
    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    ranges = uniform_range_queries(keys, cfg.n_queries, seed=cfg.seed + 1)
    points = point_queries(keys, cfg.n_queries, seed=cfg.seed + 2)
    rows = []
    for mode in ("base", "hash", "real", "mixed"):
        filt = SuRF(keys, mode=mode, seed=cfg.seed)
        rows.append(
            {
                "mode": mode,
                "bpk": round(filt.size_in_bits() / len(keys), 1),
                "range_fpr": _fpr(filt, ranges),
                "point_fpr": sum(
                    filt.query_point(lo) for lo, _ in points
                ) / len(points),
            }
        )
    record(benchmark, "ablation_surf_modes",
           format_table(rows, "Ablation: SuRF suffix modes"))
    by_mode = {r["mode"]: r for r in rows}
    # Hash suffixes sharpen points, real suffixes sharpen ranges.
    assert by_mode["hash"]["point_fpr"] <= by_mode["base"]["point_fpr"] + 1e-9
    assert by_mode["real"]["range_fpr"] <= by_mode["base"]["range_fpr"] + 1e-9
    # Suffixes cost bits.
    assert by_mode["mixed"]["bpk"] > by_mode["base"]["bpk"]

    benchmark.pedantic(lambda: SuRF(keys), rounds=3, iterations=1)


def test_ablation_snarf_rice_param(benchmark):
    cfg = default_config()
    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, cfg.n_queries, seed=cfg.seed + 1)
    base = Snarf(keys, bits_per_key=16, seed=cfg.seed)
    rows = []
    for delta in (-4, -2, 0, 2):
        r = max(0, base.rice_param + delta)
        filt = Snarf.__new__(Snarf)
        # Rebuild with a forced multiplier by constructing through the
        # public API at an adjusted budget equivalent.
        filt = Snarf(
            keys,
            total_bits=int((r + 2 + 3) * len(keys)) + 96 * 320,
            seed=cfg.seed,
        )
        queries_hit = _fpr(filt, queries)
        rows.append(
            {
                "rice_param": filt.rice_param,
                "bpk": round(filt.size_in_bits() / len(keys), 1),
                "fpr": queries_hit,
            }
        )
    record(benchmark, "ablation_snarf_rice",
           format_table(rows, "Ablation: SNARF Rice parameter / budget"))
    # Bigger multiplier (more positions per key) -> lower FPR.
    assert rows[-1]["fpr"] <= rows[0]["fpr"] + 0.01

    benchmark.pedantic(
        lambda: Snarf(keys, bits_per_key=16), rounds=3, iterations=1
    )
