"""Crash-recovery overhead of the fault-tolerant LSM filter stack.

Builds an LSM tree with persisted (v2, checksummed) filters, then times
:meth:`LSMTree.recover` twice: once fault-free (every blob loads clean)
and once with a seeded :class:`FaultInjector` tearing and bit-flipping
blobs at write time, so recovery must detect every damaged filter via the
manifest/CRC cross-checks and rebuild it from the table's keys.  The
overhead ratio isolates what detection + rebuild costs relative to a
clean restart.  Every run re-asserts the paper's one-sided-error
guarantee end to end: zero false negatives through the recovered tree on
both the scalar and batch query paths.

Run as a script (``python benchmarks/bench_fault_recovery.py --preset
smoke|full``) or via pytest-benchmark like the figure benches.  Both
write ``BENCH_fault_recovery.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from common import publish

from repro.bench.metrics import run_recovery
from repro.core.rencoder import REncoder
from repro.storage.env import StorageEnv
from repro.storage.faults import FaultInjector
from repro.storage.lsm import LSMTree
from repro.workloads.datasets import generate_keys

#: ``smoke`` fits the CI budget; ``full`` stresses a multi-level tree.
PRESETS = {
    "smoke": dict(n_keys=30_000, memtable_capacity=2_000, n_probes=2_000),
    "full": dict(n_keys=300_000, memtable_capacity=8_000, n_probes=10_000),
}
BPK = 12
#: Transient-read probability while recovery runs (exercises retries).
TRANSIENT_P = 0.02


def _build(keys, cfg, injector=None):
    env = StorageEnv(injector=injector)
    # Tiering keeps many tables live, so recovery exercises many blobs
    # (leveling would compact the tree down to one lucky survivor).
    lsm = LSMTree(
        lambda ks: REncoder(ks, bits_per_key=BPK),
        memtable_capacity=cfg["memtable_capacity"],
        policy="tiering",
        env=env,
        persist_filters=True,
    )
    for k in keys:
        lsm.put(int(k), int(k) & 0xFF)
    lsm.flush()
    return lsm


def _assert_no_false_negatives(lsm, keys, n_probes, seed):
    rng = np.random.default_rng(seed)
    probe = [int(k) for k in rng.choice(keys, min(n_probes, len(keys)))]
    expected = [(True, k & 0xFF) for k in probe]
    scalar = [lsm.get(k) for k in probe]
    assert scalar == expected, "false negative on the scalar path"
    assert lsm.get_many(probe) == expected, "false negative on the batch path"
    ranges = [(k, k + 15) for k in probe[:200]]
    batch = lsm.range_query_many(ranges)
    for (k, _), items in zip(ranges, batch):
        assert (k, k & 0xFF) in items, "false negative on a range"


def _damage_blobs(lsm) -> int:
    """Re-persist every table's blob, damaging two of every three.

    Round-robin torn / bit-flip / clean, so the damaged count is exact
    and the bench is deterministic (no lucky all-clean runs).  The
    manifest keeps the *intended* length/CRC; only the stored bytes are
    mangled — exactly the at-rest damage recovery must detect.
    """
    damaged = 0
    injector = lsm.env.injector
    for i, table in enumerate(lsm._tables_newest_first()):
        kind = i % 3
        if kind == 0:
            injector.arm_torn_write()
        elif kind == 1:
            injector.arm_bit_flip()
        damaged += kind != 2
        table.persist_filter()
    return damaged


def run_bench(preset: str, seed: int = 1) -> dict:
    """Time fault-free vs faulted recovery, return the JSON payload."""
    cfg = PRESETS[preset]
    keys = generate_keys(cfg["n_keys"], "uniform", seed=seed)

    # Fault-free baseline: every persisted blob loads clean.
    clean = _build(keys, cfg)
    clean.env.stats.reset()
    baseline = run_recovery(clean)
    # A clean restart is its own baseline (overhead 1.0, JSON-safe).
    baseline.baseline_seconds = baseline.recovery_seconds
    assert baseline.rebuilt == 0 and baseline.degraded == 0

    # Faulted run: the same tree shape, blobs damaged at rest, plus a
    # low transient-read rate while recovery itself runs.
    injector = FaultInjector(seed)
    faulted = _build(keys, cfg, injector=injector)
    faulted.env.stats.reset()
    n_damaged = _damage_blobs(faulted)
    injector.transient_read_p = TRANSIENT_P
    recovery = run_recovery(
        faulted, baseline_seconds=baseline.recovery_seconds
    )
    injector.transient_read_p = 0.0
    assert recovery.loaded + recovery.rebuilt == recovery.n_tables
    assert recovery.rebuilt == n_damaged, (
        f"rebuilt {recovery.rebuilt} of {n_damaged} damaged filters"
    )
    _assert_no_false_negatives(faulted, keys, cfg["n_probes"], seed + 1)

    payload = {
        "preset": preset,
        "n_keys": cfg["n_keys"],
        "bits_per_key": BPK,
        "damaged_blobs": n_damaged,
        "transient_read_p": TRANSIENT_P,
        "tables": recovery.n_tables,
        "baseline": baseline.as_row(),
        "faulted": recovery.as_row(),
        "recovery_overhead": round(recovery.overhead, 2),
        "corruptions_detected": recovery.faults["corruptions_detected"],
        "filters_rebuilt": recovery.rebuilt,
        "zero_false_negatives": True,
    }
    payload["_runs"] = (baseline, recovery)
    return payload


def _rows(runs) -> str:
    cols = [
        "run", "tables", "loaded", "rebuilt", "recovery_s", "overhead",
        "corruptions_detected", "torn_writes", "bit_flips", "retries",
    ]
    lines = ["".join(c.ljust(21) for c in cols)]
    for name, run in runs:
        row = {"run": name, **run.as_row()}
        lines.append("".join(str(row.get(c, 0)).ljust(21) for c in cols))
    return "\n".join(lines)


def _finish(payload: dict, benchmark=None) -> dict:
    baseline, recovery = payload.pop("_runs")
    publish(
        benchmark,
        "fault_recovery",
        _rows([("clean", baseline), ("faulted", recovery)]),
        "BENCH_fault_recovery.json",
        payload,
    )
    assert payload["zero_false_negatives"]
    assert payload["filters_rebuilt"] > 0, "fault mix damaged no blobs"
    assert (
        payload["corruptions_detected"] >= payload["filters_rebuilt"]
    ), "a damaged blob was rebuilt without being detected"
    return payload


def test_fault_recovery(benchmark):
    """Pytest entry point: the smoke preset, timed by pytest-benchmark."""
    payload = run_bench("smoke")
    _finish(payload, benchmark)
    cfg = PRESETS["smoke"]
    keys = generate_keys(cfg["n_keys"], "uniform", seed=1)
    lsm = _build(keys, cfg, injector=FaultInjector(7))

    def recover_once():
        _damage_blobs(lsm)
        lsm.recover()

    benchmark.pedantic(recover_once, rounds=3, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    payload = run_bench(args.preset, seed=args.seed)
    _finish(payload)
    print(
        f"{payload['tables']} tables, "
        f"{payload['filters_rebuilt']} rebuilt after "
        f"{payload['corruptions_detected']} detected corruptions; "
        f"recovery overhead {payload['recovery_overhead']}x, "
        f"zero false negatives"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
