"""Shared helpers for the figure/table benches.

Every bench (a) regenerates one paper artifact via its driver in
:mod:`repro.bench.experiments`, (b) prints and saves the resulting table
under ``results/``, (c) asserts the paper's qualitative shape, and
(d) feeds a representative operation to pytest-benchmark so the benchmark
table reports real per-operation timings.

Scale via environment: ``REPRO_N_KEYS`` (default 20000),
``REPRO_N_QUERIES`` (default 2000), ``REPRO_IO_COST_NS``.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

from repro.bench.experiments import ExperimentConfig
from repro.telemetry.profiler import get_profiler

RESULTS_DIR = Path(__file__).resolve().parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Bumped whenever the shape of a ``BENCH_*.json`` payload changes in a
#: way readers must care about; stamped into every file by
#: :func:`write_bench_json`.  v3: batch_query grew the engine × layout
#: × workload matrix and the headline moved to the fused kernels.
#: v4: cluster run_table rows grew cpu_s/rss_mb resource columns.
BENCH_SCHEMA_VERSION = 4


def process_usage() -> dict:
    """CPU seconds and peak RSS of this process, from the stdlib.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalised to MiB
    here so every bench stamps comparable columns.
    """
    import resource
    import sys

    ru = resource.getrusage(resource.RUSAGE_SELF)
    rss_kb = ru.ru_maxrss / 1024 if sys.platform == "darwin" else ru.ru_maxrss
    return {
        "cpu_s": round(ru.ru_utime + ru.ru_stime, 3),
        "rss_mb": round(rss_kb / 1024, 1),
    }

#: Append-only per-commit headline history; see :func:`append_trajectory`.
TRAJECTORY_NAME = "BENCH_trajectory.jsonl"


def default_config(**overrides) -> ExperimentConfig:
    kwargs = {
        "n_keys": int(os.environ.get("REPRO_N_KEYS", 20_000)),
        "n_queries": int(os.environ.get("REPRO_N_QUERIES", 2_000)),
    }
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def record(benchmark, name: str, text: str) -> None:
    """Print, persist and attach a result table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    if benchmark is not None:
        benchmark.extra_info["table"] = text


def series(results: dict, metric: str) -> dict[str, list[float]]:
    """Extract a metric per filter from a sweep result."""
    return {
        fname: [getattr(r, metric) for r in runs]
        for fname, runs in results.items()
    }


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


def batch_rows(runs) -> str:
    """Format FilterRun rows (scalar and batch modes side by side).

    Surfaces the batch engine's counters — probes per query, fetch-cache
    hit rate and per-batch wall time — next to throughput, so a bench
    table shows *why* the batch path is faster, not just that it is.
    """
    cols = [
        "filter", "mode", "bpk", "filter_kqps", "probes/q",
        "cache_hit_rate", "batch_seconds",
    ]
    rows = [c.ljust(15) for c in cols]
    lines = ["".join(rows)]
    for run in runs:
        row = run.as_row()
        lines.append("".join(str(row[c]).ljust(15) for c in cols))
    return "\n".join(lines)


def _git_rev() -> str:
    """Short git revision of the repo, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=5,
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def write_bench_json(name: str, payload: dict) -> Path:
    """Write a machine-readable bench result to the repository root.

    Used by the smoke benches (``BENCH_*.json``) so CI and the
    acceptance checks can read before/after numbers without parsing
    tables.  Every file is stamped with a ``meta`` block — schema
    version and git revision — and, when ``REPRO_PROFILE=1`` collected
    at least one phase, the profiler's per-phase breakdown.
    """
    out = dict(payload)
    meta = {"schema_version": BENCH_SCHEMA_VERSION, "git_rev": _git_rev()}
    profiler = get_profiler()
    if profiler.has_data():
        meta["profile"] = profiler.report()
    out["meta"] = meta
    path = REPO_ROOT / name
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    return path


def append_trajectory(
    bench: str, preset: str, kqps: float, **extra
) -> Path:
    """Append one headline row to ``BENCH_trajectory.jsonl``.

    The trajectory file is the committed, append-only per-commit history
    of each bench's headline throughput: one JSON object per line with
    ``schema_version``, ``git_rev``, ``bench``, ``preset`` and ``kqps``
    (plus any bench-specific ``extra`` fields).
    ``scripts/check_perf_regression.py`` compares a fresh run against
    the newest row from a *different* commit, so a regression is caught
    in CI before the offending commit lands.  Re-running on the same
    commit replaces that commit's row instead of appending, keeping one
    row per (bench, preset, engine, commit) — the engine is part of the
    key so a faster backend landing at some commit never erases the
    older backend's baseline measured at the same commit.
    """
    row = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_rev": _git_rev(),
        "bench": bench,
        "preset": preset,
        "kqps": round(float(kqps), 1),
    }
    row.update(extra)
    path = REPO_ROOT / TRAJECTORY_NAME
    lines = []
    if path.exists():
        lines = [l for l in path.read_text().splitlines() if l.strip()]

    def _same_cell(line: str) -> bool:
        try:
            old = json.loads(line)
        except json.JSONDecodeError:
            return False
        return (
            old.get("bench") == bench
            and old.get("preset") == preset
            and old.get("git_rev") == row["git_rev"]
            and old.get("engine") == row.get("engine")
        )

    lines = [l for l in lines if not _same_cell(l)]
    lines.append(json.dumps(row, sort_keys=True))
    path.write_text("\n".join(lines) + "\n")
    return path


def publish(benchmark, table_name: str, table: str,
            json_name: str, payload: dict) -> Path:
    """Print/persist a bench's result table *and* its stamped JSON.

    The one call every bench ``_finish`` makes: :func:`record` for the
    human-readable table under ``results/`` plus :func:`write_bench_json`
    for the machine-readable ``BENCH_*.json`` at the repo root.
    """
    record(benchmark, table_name, table)
    return write_bench_json(json_name, payload)
