"""Shared helpers for the figure/table benches.

Every bench (a) regenerates one paper artifact via its driver in
:mod:`repro.bench.experiments`, (b) prints and saves the resulting table
under ``results/``, (c) asserts the paper's qualitative shape, and
(d) feeds a representative operation to pytest-benchmark so the benchmark
table reports real per-operation timings.

Scale via environment: ``REPRO_N_KEYS`` (default 20000),
``REPRO_N_QUERIES`` (default 2000), ``REPRO_IO_COST_NS``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.bench.experiments import ExperimentConfig

RESULTS_DIR = Path(__file__).resolve().parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent


def default_config(**overrides) -> ExperimentConfig:
    kwargs = {
        "n_keys": int(os.environ.get("REPRO_N_KEYS", 20_000)),
        "n_queries": int(os.environ.get("REPRO_N_QUERIES", 2_000)),
    }
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def record(benchmark, name: str, text: str) -> None:
    """Print, persist and attach a result table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    if benchmark is not None:
        benchmark.extra_info["table"] = text


def series(results: dict, metric: str) -> dict[str, list[float]]:
    """Extract a metric per filter from a sweep result."""
    return {
        fname: [getattr(r, metric) for r in runs]
        for fname, runs in results.items()
    }


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


def batch_rows(runs) -> str:
    """Format FilterRun rows (scalar and batch modes side by side).

    Surfaces the batch engine's counters — probes per query, fetch-cache
    hit rate and per-batch wall time — next to throughput, so a bench
    table shows *why* the batch path is faster, not just that it is.
    """
    cols = [
        "filter", "mode", "bpk", "filter_kqps", "probes/q",
        "cache_hit_rate", "batch_seconds",
    ]
    rows = [c.ljust(15) for c in cols]
    lines = ["".join(rows)]
    for run in runs:
        row = run.as_row()
        lines.append("".join(str(row[c]).ljust(15) for c in cols))
    return "\n".join(lines)


def write_bench_json(name: str, payload: dict) -> Path:
    """Write a machine-readable bench result to the repository root.

    Used by the batch-query smoke bench (``BENCH_batch_query.json``) so
    CI and the acceptance checks can read before/after numbers without
    parsing tables.
    """
    path = REPO_ROOT / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
