"""Shared helpers for the figure/table benches.

Every bench (a) regenerates one paper artifact via its driver in
:mod:`repro.bench.experiments`, (b) prints and saves the resulting table
under ``results/``, (c) asserts the paper's qualitative shape, and
(d) feeds a representative operation to pytest-benchmark so the benchmark
table reports real per-operation timings.

Scale via environment: ``REPRO_N_KEYS`` (default 20000),
``REPRO_N_QUERIES`` (default 2000), ``REPRO_IO_COST_NS``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench.experiments import ExperimentConfig

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def default_config(**overrides) -> ExperimentConfig:
    kwargs = {
        "n_keys": int(os.environ.get("REPRO_N_KEYS", 20_000)),
        "n_queries": int(os.environ.get("REPRO_N_QUERIES", 2_000)),
    }
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def record(benchmark, name: str, text: str) -> None:
    """Print, persist and attach a result table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    if benchmark is not None:
        benchmark.extra_info["table"] = text


def series(results: dict, metric: str) -> dict[str, list[float]]:
    """Extract a metric per filter from a sweep result."""
    return {
        fname: [getattr(r, metric) for r in runs]
        for fname, runs in results.items()
    }


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)
