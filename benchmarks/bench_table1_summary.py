"""Table I: the normalised cross-filter summary per use case.

Paper shape (per use case): the REncoder variant has the best overall
throughput in its use case — REncoderSS in A (no sampling, no bound),
REncoderSE in B (sampling allowed), REncoder alone in C.
"""

from common import default_config, record

from repro.bench.experiments import table1_summary
from repro.bench.registry import build_filter
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import uniform_range_queries


def test_table1_summary(benchmark):
    cfg = default_config()
    rows, text = table1_summary(cfg)
    record(benchmark, "table1_summary", text)

    by_case: dict[str, list[dict]] = {}
    for row in rows:
        by_case.setdefault(row["use_case"], []).append(row)

    # Use case B: REncoderSE's overall throughput leads Rosetta's.
    case_b = {r["filter"]: r for r in by_case["B"]}
    assert case_b["REncoderSE"]["ot_vs_surf"] > case_b["Rosetta"]["ot_vs_surf"]
    # Use case A: REncoderSS beats SuRF and SNARF on overall throughput.
    case_a = {r["filter"]: r for r in by_case["A"]}
    assert case_a["REncoderSS"]["ot_vs_surf"] > case_a["SNARF"]["ot_vs_surf"] * 0.8
    # All REncoder variants need far fewer memory probes than Rosetta —
    # the deterministic signal behind the paper's FT column; wall-clock
    # FT on a busy single-core box only gets a loose band.
    for case in by_case.values():
        for row in case:
            if row["filter"].startswith("REncoder"):
                assert row["probes_vs_rosetta"] < 0.5
                assert row["ft_vs_rosetta"] > 0.6

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, 200, seed=cfg.seed + 1)
    filt = build_filter("REncoderSE", keys, 18.0,
                        sample_queries=queries[:50])
    benchmark.pedantic(
        lambda: [filt.query_range(lo, hi) for lo, hi in queries],
        rounds=3, iterations=1,
    )
