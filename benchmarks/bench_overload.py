"""Overload behaviour of the concurrent filter service.

Drives a :class:`~repro.service.FilterService` (worker pool over an LSM
tree with per-SSTable REncoder filters) well past saturation and
measures what each protection buys:

* **unprotected** — unbounded queue, no deadlines: every request is
  served eventually, so a burst at >=2x saturation turns straight into
  queue wait and the p99 grows with the backlog;
* **protected** — bounded queue (reject-new / drop-oldest) plus
  per-request deadlines: the backlog is capped, late requests degrade to
  the all-positive answer, and the p99 stays bounded;
* **breaker** — heavy slow-read faults open the circuit breaker, after
  which requests are answered degraded immediately instead of each one
  burning its deadline discovering the same outage.

A load curve (paced open-loop submission at multiples of the measured
saturation capacity) shows goodput and degraded-answer rate vs offered
load.  Every scenario re-asserts the one-sided guarantee: a query for a
present key answers positive on both the scalar and batch path, degraded
or not.

Run as a script (``python benchmarks/bench_overload.py --preset
smoke|full``) or via pytest-benchmark.  Both write
``BENCH_overload.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from common import publish

from repro.bench.metrics import run_service_load
from repro.core.rencoder import REncoder
from repro.service import CircuitBreaker, FilterService
from repro.storage.env import SimulatedClock, StorageEnv
from repro.storage.faults import FaultInjector
from repro.storage.lsm import LSMTree
from repro.workloads.datasets import generate_keys

#: ``smoke`` fits the CI budget; ``full`` drives a longer curve.
PRESETS = {
    "smoke": dict(
        n_keys=20_000, memtable_capacity=2_000,
        burst_n=400, curve_n=60, breaker_n=120, n_probes=200,
    ),
    "full": dict(
        n_keys=100_000, memtable_capacity=4_000,
        burst_n=1_500, curve_n=200, breaker_n=300, n_probes=1_000,
    ),
}
BPK = 12
WORKERS = 4
QUEUE_DEPTH = 32
#: Per-request budget for the protected configs (simulated time).  The
#: clock is shared, so the budget is consumed by *global* I/O traffic —
#: generous enough that a lightly loaded service finishes comfortably,
#: small enough that a backlogged one degrades instead of queueing.
DEADLINE_NS = 200_000_000
#: The breaker scenario's injected stall: one slow read blows a 50 ms
#: budget instantly, so every storage-touching request fails fast.
SLOW_READ_NS = 300_000_000
LOAD_POINTS = (0.5, 1.0, 2.0, 3.0)
#: Ranges per curve request (see :func:`_load_curve`).
CURVE_BATCH = 25


def _build(cfg, seed=1, injector=None):
    env = StorageEnv(clock=SimulatedClock(), injector=injector)
    lsm = LSMTree(
        lambda ks: REncoder(ks, bits_per_key=BPK),
        memtable_capacity=cfg["memtable_capacity"],
        policy="tiering",
        env=env,
    )
    keys = generate_keys(cfg["n_keys"], "uniform", seed=seed)
    for k in keys:
        lsm.put(int(k), int(k) & 0xFF)
    lsm.flush()
    return lsm, keys


def _present_ranges(keys, n, seed):
    """Ranges guaranteed non-empty (each straddles a present key)."""
    rng = np.random.default_rng(seed)
    picks = rng.choice(keys, n)
    return [(int(k), int(k) + 2) for k in picks]


def _measure_capacity(lsm, ranges) -> float:
    """Saturation throughput: burst through an unprotected service."""
    with FilterService(
        lsm, workers=WORKERS, queue_depth=0, default_deadline_ns=None
    ) as svc:
        run = run_service_load(svc, ranges, label="calibration")
    return run.completed_qps


def _burst_comparison(lsm, ranges) -> list:
    """The headline: p99 under a >=2x-saturation burst, by protection."""
    configs = [
        ("unprotected", dict(queue_depth=0, default_deadline_ns=None)),
        (
            "reject-new",
            dict(
                queue_depth=QUEUE_DEPTH,
                shed_policy="reject-new",
                default_deadline_ns=DEADLINE_NS,
            ),
        ),
        (
            "drop-oldest",
            dict(
                queue_depth=QUEUE_DEPTH,
                shed_policy="drop-oldest",
                default_deadline_ns=DEADLINE_NS,
            ),
        ),
    ]
    runs = []
    for label, kwargs in configs:
        with FilterService(lsm, workers=WORKERS, **kwargs) as svc:
            runs.append(
                run_service_load(
                    svc, ranges, label=label, offered_load=float("inf")
                )
            )
    return runs


def _load_curve(lsm, keys, cfg, seed) -> list:
    """Goodput / p99 / degraded rate vs offered load (protected config).

    Curve requests are *batches* of :data:`CURVE_BATCH` ranges: heavy
    enough that the paced inter-arrival times at every load point are
    well above ``time.sleep`` resolution, so "2x saturation" means what
    it says.  Capacity is calibrated in the same units first.
    """
    ranges = _present_ranges(keys, cfg["curve_n"] * CURVE_BATCH, seed)
    with FilterService(
        lsm, workers=WORKERS, queue_depth=0, default_deadline_ns=None
    ) as svc:
        calibration = run_service_load(
            svc, ranges, batch_size=CURVE_BATCH, label="curve-calibration"
        )
    capacity_rps = calibration.completed_qps
    runs = []
    for load in LOAD_POINTS:
        # Same workload shape at every point; fresh service so stats
        # isolate.
        with FilterService(
            lsm,
            workers=WORKERS,
            queue_depth=QUEUE_DEPTH,
            shed_policy="reject-new",
            default_deadline_ns=DEADLINE_NS,
        ) as svc:
            runs.append(
                run_service_load(
                    svc,
                    ranges,
                    rate_qps=load * capacity_rps,
                    batch_size=CURVE_BATCH,
                    label=f"reject-new@{load}x",
                    offered_load=load,
                )
            )
    return runs


def _breaker_scenario(cfg, seed) -> dict:
    """Slow-read storm: the breaker opens and serves degraded fast."""
    injector = FaultInjector(seed)
    lsm, keys = _build(cfg, seed=seed, injector=injector)
    injector.slow_read_p = 1.0
    injector.slow_read_ns = SLOW_READ_NS
    breaker = CircuitBreaker(
        lsm.env.clock, min_samples=4, failure_threshold=0.5
    )
    ranges = _present_ranges(keys, cfg["breaker_n"], seed + 1)
    with FilterService(
        lsm,
        workers=2,
        queue_depth=0,
        default_deadline_ns=50_000_000,
        breaker=breaker,
    ) as svc:
        # Paced, not burst: a burst stamps every deadline at the same
        # simulated instant, so the first slow read expires the whole
        # backlog *in queue* (not a breaker outcome by design).  Paced
        # arrivals get fresh deadlines, execute, and fail against
        # storage — the failures the breaker must see to trip.  Once
        # open, no I/O advances the clock, so later arrivals are denied
        # degraded instead of expiring.
        run = run_service_load(
            svc, ranges, rate_qps=300.0, label="breaker-storm"
        )
        snapshot = svc.breaker.snapshot()
    assert run.completed == run.n_requests, "a promise was left unsettled"
    assert snapshot["trips"] >= 1, "the slow-read storm never tripped the breaker"
    assert run.breaker_denied > 0, (
        "an open breaker should answer requests degraded without storage"
    )
    return {"run": run, "breaker": snapshot}


def _assert_one_sided(lsm, keys, cfg, seed) -> None:
    """Present keys answer positive — scalar and batch, degraded or not."""
    rng = np.random.default_rng(seed)
    probe = [int(k) for k in rng.choice(keys, cfg["n_probes"])]
    # A tiny budget forces a mix of served and degraded answers.
    with FilterService(
        lsm, workers=WORKERS, queue_depth=0, default_deadline_ns=5_000_000
    ) as svc:
        futures = [svc.submit_point(k) for k in probe]
        for f in futures:
            assert f.result().positive is True, "false negative (scalar)"
        batch = svc.query_range_batch([(k, k) for k in probe])
        assert all(batch.positive), "false negative (batch)"


def run_bench(preset: str, seed: int = 1) -> dict:
    cfg = PRESETS[preset]
    lsm, keys = _build(cfg, seed=seed)
    ranges = _present_ranges(keys, cfg["burst_n"], seed + 1)

    capacity_qps = _measure_capacity(lsm, ranges[: max(100, cfg["burst_n"] // 4)])
    burst = _burst_comparison(lsm, ranges)
    curve = _load_curve(lsm, keys, cfg, seed + 2)
    breaker = _breaker_scenario(cfg, seed + 3)
    _assert_one_sided(lsm, keys, cfg, seed + 4)

    unprotected = burst[0]
    protected = burst[1:]
    for run in protected:
        assert run.p99_ms <= unprotected.p99_ms, (
            f"{run.label}: shedding did not bound p99 "
            f"({run.p99_ms} ms vs unprotected {unprotected.p99_ms} ms)"
        )
        assert run.shed + run.rejected + run.deadline_expired > 0, (
            f"{run.label}: a saturating burst should shed or degrade"
        )

    payload = {
        "preset": preset,
        "n_keys": cfg["n_keys"],
        "bits_per_key": BPK,
        "workers": WORKERS,
        "queue_depth": QUEUE_DEPTH,
        "deadline_ms": DEADLINE_NS / 1e6,
        "capacity_qps": round(capacity_qps, 1),
        "burst": [r.as_row() for r in burst],
        "load_curve": [r.as_row() for r in curve],
        "breaker": {
            "run": breaker["run"].as_row(),
            "state": breaker["breaker"],
        },
        "p99_bound_ratio": round(
            min(r.p99_ms for r in protected)
            / max(unprotected.p99_ms, 1e-9),
            4,
        ),
        "zero_false_negatives": True,
    }
    payload["_runs"] = burst + curve + [breaker["run"]]
    return payload


def _rows(runs) -> str:
    cols = [
        "config", "load", "offered_qps", "goodput_qps", "p50_ms",
        "p99_ms", "degraded_rate", "shed", "rejected", "deadline",
        "breaker",
    ]
    lines = ["".join(c.ljust(14) for c in cols)]
    for run in runs:
        row = run.as_row()
        lines.append("".join(str(row.get(c, "")).ljust(14) for c in cols))
    return "\n".join(lines)


def _finish(payload: dict, benchmark=None) -> dict:
    runs = payload.pop("_runs")
    publish(benchmark, "overload", _rows(runs), "BENCH_overload.json", payload)
    assert payload["zero_false_negatives"]
    return payload


def test_overload(benchmark):
    """Pytest entry point: the smoke preset, timed by pytest-benchmark."""
    payload = run_bench("smoke")
    _finish(payload, benchmark)
    cfg = PRESETS["smoke"]
    lsm, keys = _build(cfg)
    ranges = _present_ranges(keys, 100, 9)

    def burst_once():
        with FilterService(
            lsm,
            workers=WORKERS,
            queue_depth=QUEUE_DEPTH,
            default_deadline_ns=DEADLINE_NS,
        ) as svc:
            run_service_load(svc, ranges, label="bench")

    benchmark.pedantic(burst_once, rounds=3, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    payload = run_bench(args.preset, seed=args.seed)
    _finish(payload)
    print(
        f"capacity {payload['capacity_qps']} qps; burst p99 "
        f"unprotected {payload['burst'][0]['p99_ms']} ms vs protected "
        f"{min(r['p99_ms'] for r in payload['burst'][1:])} ms "
        f"(ratio {payload['p99_bound_ratio']}); breaker trips "
        f"{payload['breaker']['state']['trips']}; zero false negatives"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
