"""Figure 4: overall time (build + workload) vs BPK.

Paper shape: despite REncoder's slightly slower build, its overall time
beats the Bloom filter baseline decisively (paper: 11x on average), and
REncoderSS(SE) is better still (34x) — the build cost is overshadowed by
query savings.
"""

from common import default_config, mean, record

from repro.bench.experiments import fig4_overall_time
from repro.bench.registry import build_filter
from repro.workloads.datasets import generate_keys


def test_fig4_overall_time(benchmark):
    cfg = default_config()
    rows, text = fig4_overall_time(cfg)
    record(benchmark, "fig4_overall_time", text)

    # Compare in the regime where filters operate in practice (the upper
    # half of the BPK sweep); SS beats both everywhere.
    upper = rows[len(rows) // 2 :]
    bloom = mean(r["Bloom_s"] for r in upper)
    rencoder = mean(r["REncoder_s"] for r in upper)
    ss = mean(r["REncoderSS_s"] for r in rows)
    assert rencoder < bloom, "REncoder overall time must beat Bloom"
    assert ss < bloom, "SS overall time must beat Bloom"
    assert ss <= mean(r["REncoder_s"] for r in rows), "SS beats base overall"

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    benchmark.pedantic(
        lambda: build_filter("REncoderSS", keys, 18.0),
        rounds=3,
        iterations=1,
    )
