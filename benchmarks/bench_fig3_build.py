"""Figure 3(a): build time vs number of keys, REncoder vs Bloom filter.

Paper shape: both linear in n; REncoder's build is within a small constant
factor of the Bloom filter's (the paper reports 82%) because whole Bitmap
Trees are inserted per memory access instead of one prefix at a time.
"""

from common import default_config, record

from repro.bench.experiments import fig3_build_time
from repro.bench.registry import build_filter
from repro.workloads.datasets import generate_keys


def test_fig3a_build_time(benchmark):
    cfg = default_config()
    sizes = [cfg.n_keys // 4, cfg.n_keys // 2, cfg.n_keys, cfg.n_keys * 2]
    rows, text = fig3_build_time(cfg, n_keys_list=sizes)
    record(benchmark, "fig3a_build_time", text)

    # Linearity: quadrupling n should scale build time roughly linearly
    # (allow a generous factor for fixed overheads).
    assert rows[-1]["rencoder_ms"] < rows[0]["rencoder_ms"] * 16
    # REncoder stays within a small constant of Bloom (vectorised bulk
    # construction on both sides; paper reports 0.82x, we allow 4x).
    assert rows[-1]["ratio"] < 6.0

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    benchmark.pedantic(
        lambda: build_filter("REncoder", keys, 18.0),
        rounds=3,
        iterations=1,
    )
