"""Use-case benches: the three storage integrations end to end.

Beyond the paper's figure reproductions, these measure what a deployment
cares about — second-level I/O saved per workload — for each use case:

* **LSM-tree** (Use Case 1) under a YCSB-C read-mostly stream with a high
  missing-key fraction;
* **B+tree** (Use Case 2) under empty range scans;
* **R-tree** (Use Case 3) under empty rectangle queries.

Each compares a filterless store with Bloom- and REncoder-equipped ones.
"""

import numpy as np
from common import default_config, record

from repro.bench.tables import format_table
from repro.core.rencoder import REncoder
from repro.filters.bloom import BloomFilter
from repro.storage.btree import BPlusTree
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree
from repro.storage.rtree import RTree
from repro.workloads.datasets import generate_keys
from repro.workloads.ycsb import run_ycsb, ycsb_operations


def test_usecase_lsm_ycsb(benchmark):
    cfg = default_config()
    keys = generate_keys(cfg.n_keys // 2, "uniform", seed=cfg.seed)
    rows = []
    for name, factory in (
        ("none", None),
        ("Bloom", lambda ks: BloomFilter(ks, bits_per_key=18)),
        ("REncoder", lambda ks: REncoder(ks, bits_per_key=18)),
    ):
        env = StorageEnv()
        lsm = LSMTree(factory, memtable_capacity=1024, env=env)
        for k in keys:
            lsm.put(int(k), 0)
        lsm.flush()
        env.reset()
        run_ycsb(
            lsm,
            ycsb_operations("C", keys, cfg.n_queries, seed=cfg.seed,
                            missing_fraction=0.9),
        )
        rows.append(
            {
                "filter": name,
                "reads": env.stats.reads,
                "wasted": env.stats.wasted_reads,
            }
        )
    record(benchmark, "usecase_lsm_ycsb",
           format_table(rows, "Use case 1: LSM under YCSB-C (90% missing)"))
    by = {r["filter"]: r for r in rows}
    assert by["REncoder"]["wasted"] < by["none"]["wasted"] / 2
    assert by["Bloom"]["wasted"] <= by["none"]["wasted"]

    env = StorageEnv()
    lsm = LSMTree(lambda ks: REncoder(ks, bits_per_key=18),
                  memtable_capacity=1024, env=env)
    for k in keys:
        lsm.put(int(k), 0)
    lsm.flush()
    ops = list(ycsb_operations("C", keys, 300, seed=cfg.seed + 1,
                               missing_fraction=0.9))
    benchmark.pedantic(lambda: run_ycsb(lsm, ops), rounds=3, iterations=1)


def test_usecase_btree_scans(benchmark):
    cfg = default_config()
    keys = generate_keys(cfg.n_keys // 2, "uniform", seed=cfg.seed)
    rows = []
    for name, factory in (
        ("none", None),
        ("REncoder", lambda ks: REncoder(ks, bits_per_key=20)),
    ):
        env = StorageEnv()
        bt = BPlusTree(fanout=64, filter_factory=factory, env=env)
        for k in keys:
            bt.insert(int(k), 0)
        if factory:
            bt.rebuild_filters()
        rng = np.random.default_rng(cfg.seed + 2)
        env.reset()
        for _ in range(cfg.n_queries // 2):
            lo = int(rng.integers(0, 1 << 64, dtype=np.uint64))
            bt.range_query(lo, min(lo + 31, (1 << 64) - 1))
        rows.append(
            {"filter": name, "leaf_reads": env.stats.reads,
             "wasted": env.stats.wasted_reads}
        )
    record(benchmark, "usecase_btree",
           format_table(rows, "Use case 2: B+tree empty scans"))
    by = {r["filter"]: r for r in rows}
    assert by["REncoder"]["wasted"] < max(1, by["none"]["wasted"]) / 2

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_usecase_rtree_rects(benchmark):
    cfg = default_config()
    rng = np.random.default_rng(cfg.seed)
    pts = [
        (int(x), int(y))
        for x, y in rng.integers(0, 1 << 16, (cfg.n_keys // 4, 2))
    ]
    rows = []
    for name, factory in (
        ("none", None),
        ("REncoder-Z", lambda ks: REncoder(ks, bits_per_key=24,
                                           key_bits=32, rmax=4096)),
    ):
        env = StorageEnv()
        rt = RTree(pts, coord_bits=16, leaf_capacity=64,
                   filter_factory=factory, env=env)
        q = np.random.default_rng(cfg.seed + 3)
        env.reset()
        for _ in range(cfg.n_queries // 4):
            x0 = int(q.integers(0, (1 << 16) - 32))
            y0 = int(q.integers(0, (1 << 16) - 32))
            rt.query_rect(x0, x0 + 31, y0, y0 + 31)
        rows.append(
            {"filter": name, "leaf_reads": env.stats.reads,
             "wasted": env.stats.wasted_reads}
        )
    record(benchmark, "usecase_rtree",
           format_table(rows, "Use case 3: R-tree empty rectangles"))
    by = {r["filter"]: r for r in rows}
    assert by["REncoder-Z"]["wasted"] <= by["none"]["wasted"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
