"""Cluster behaviour: failover, hedging and degradation under faults.

Drives a :class:`~repro.cluster.FilterCluster` (N shards x R replicas,
each an independent FilterService over its own LSM tree, all on one
simulated clock) through a topology x size x fault-profile matrix and
measures what the router's protections buy:

* **matrix** — for every (topology, keys, fault profile, repetition)
  cell: routed batch throughput, wall p50/p95/p99, degraded-merge rate
  and unreachable-shard count, one CSV row each (``run_table.csv`` at
  the repo root, stamped with schema version and git revision);
* **headline** — the same slow-replica weather served twice: once by
  the **protected** router (health-ranked failover + hedged requests)
  and once **unprotected** (hedging off, one attempt per shard — the
  first answer, degraded or not, is final).  Failover turns most
  would-be degraded answers into real ones from a sibling replica, so
  the comparison reports both failure rates *and* both wall p99s — the
  protection's price is the extra submission it makes on a retry.

Every cell re-asserts the one-sided contract: a query range that
contains a stored key answers positive — through failovers, hedges,
degraded merges and a crashed replica — or the bench fails.

Run as a script (``python benchmarks/bench_cluster.py --preset
smoke|full``) or via pytest-benchmark.  Both write
``BENCH_cluster.json`` and ``run_table.csv`` at the repository root and
append the headline to ``BENCH_trajectory.jsonl``.
"""

from __future__ import annotations

import argparse
import csv
import random
import sys
import time

from common import (
    BENCH_SCHEMA_VERSION,
    REPO_ROOT,
    _git_rev,
    append_trajectory,
    process_usage,
    publish,
)

from repro.cluster import FilterCluster
from repro.core.rencoder import REncoder

MS = 1_000_000
TOP64 = (1 << 64) - 1
BPK = 12
SEGMENT_BITS = 5

#: ``smoke`` fits the CI budget; ``full`` widens the matrix.
PRESETS = {
    "smoke": dict(
        topologies=[(2, 2), (3, 2)],
        n_keys=6_000,
        batches=30,
        batch=25,
        reps=2,
        headline_topology=(2, 3),
        headline_batches=60,
    ),
    "full": dict(
        topologies=[(2, 2), (3, 2), (4, 3)],
        n_keys=20_000,
        batches=100,
        batch=25,
        reps=3,
        headline_topology=(3, 3),
        headline_batches=200,
    ),
}

#: Named fault profiles: (storage-level injector weather, control-plane
#: actions applied after the build).  ``slow-shard`` stalls one replica
#: of shard 0 hard enough to blow sub-batch deadlines; ``crashy`` kills
#: that replica outright and adds transient read faults everywhere.
FAULT_PROFILES = {
    "none": dict(storage={}, slow=None, crash=None),
    "slow-shard": dict(
        storage={},
        slow=dict(shard=0, replica=0, p=0.8, ns=40 * MS),
        crash=None,
    ),
    "crashy": dict(
        storage=dict(transient_read_p=0.01),
        slow=None,
        crash=dict(shard=0, replica=0),
    ),
}

#: The headline's weather: *every* replica flaps slow — rarely, but a
#: single stall blows the whole sub-batch deadline.  The per-attempt
#: degrade probability is then moderate and independent per replica,
#: which is exactly the regime where failover (more attempts) pays off.
HEADLINE_SLOW_P = 0.03
HEADLINE_SLOW_NS = 500 * MS

RUN_TABLE = "run_table.csv"
RUN_TABLE_COLS = [
    "schema_version", "git_rev", "preset", "topology", "shards",
    "replicas", "n_keys", "fault_profile", "repetition", "batches",
    "ranges", "qps", "p50_ms", "p95_ms", "p99_ms", "degraded_rate",
    "unreachable", "retries", "failovers", "hedges", "cpu_s", "rss_mb",
]


def _build(
    shards,
    replicas,
    n_keys,
    seed,
    *,
    storage_faults=None,
    hedging=True,
    router_kwargs=None,
):
    cluster = FilterCluster(
        n_shards=shards,
        replicas_per_shard=replicas,
        filter_factory=lambda ks: REncoder(ks, bits_per_key=BPK),
        seed=seed,
        segment_bits=SEGMENT_BITS,
        fault_profile=storage_faults or {},
        hedging=hedging,
        router_kwargs=router_kwargs,
        memtable_capacity=512,
        workers=2,
    )
    cluster.start()
    rng = random.Random(seed)
    keys = sorted({rng.randrange(TOP64) for _ in range(n_keys)})
    cluster.load(keys)
    cluster.flush()
    return cluster, keys


def _percentile(sorted_ms, q):
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, int(len(sorted_ms) * q / 100))
    return round(sorted_ms[idx], 3)


def _measure(cluster, keys, seed, n_batches, batch):
    """Serve ``n_batches`` routed batches; wall latency + outcome mix.

    Half the ranges pin a stored key (guaranteed positive — the
    one-sided probes), half are random.  A false negative on a pinned
    range fails the bench on the spot.
    """
    rng = random.Random(seed)
    before = dict(cluster.health()["counters"])
    usage_before = process_usage()
    lat_ms = []
    degraded_batches = 0
    unreachable = 0
    retries = 0
    n_ranges = 0
    start = time.perf_counter()
    for batch_no in range(n_batches):
        ranges = []
        pinned = []
        for i in range(batch):
            if rng.random() < 0.5:
                k = rng.choice(keys)
                ranges.append((k, k))
                pinned.append(i)
            else:
                lo = rng.randrange(TOP64 - (1 << 40))
                ranges.append((lo, lo + rng.randrange(1 << 40)))
        t0 = time.perf_counter()
        resp = cluster.query_range_many(ranges)
        lat_ms.append((time.perf_counter() - t0) * 1e3)
        n_ranges += len(ranges)
        if resp.degraded:
            degraded_batches += 1
        unreachable += sum(
            1 for o in resp.shards if o.reason == "unreachable"
        )
        # Extra submissions beyond each shard's first: the failover
        # work the router did (a degraded first answer retried on a
        # sibling shows up here, not in the submit-skip counter).
        retries += sum(max(0, o.attempts - 1) for o in resp.shards)
        for i in pinned:
            assert resp.positives[i], (
                f"false negative on stored key (batch {batch_no}, "
                f"range {ranges[i]})"
            )
    elapsed = time.perf_counter() - start
    after = dict(cluster.health()["counters"])
    usage_after = process_usage()
    lat_ms.sort()
    return {
        "batches": n_batches,
        "ranges": n_ranges,
        "qps": round(n_ranges / elapsed, 1),
        "p50_ms": _percentile(lat_ms, 50),
        "p95_ms": _percentile(lat_ms, 95),
        "p99_ms": _percentile(lat_ms, 99),
        "degraded_rate": round(degraded_batches / n_batches, 4),
        "unreachable": unreachable,
        "retries": retries,
        "failovers": after["cluster_failovers"] - before["cluster_failovers"],
        "hedges": after["cluster_hedges"] - before["cluster_hedges"],
        # CPU is the run's delta; RSS is the process high-water mark (it
        # only ever grows, so later rows bound earlier ones).
        "cpu_s": round(usage_after["cpu_s"] - usage_before["cpu_s"], 3),
        "rss_mb": usage_after["rss_mb"],
    }


def _matrix(cfg, seed) -> list[dict]:
    """One row per topology x size x fault profile x repetition."""
    rows = []
    for shards, replicas in cfg["topologies"]:
        for profile_name, profile in FAULT_PROFILES.items():
            cluster, keys = _build(
                shards,
                replicas,
                cfg["n_keys"],
                seed + shards * 10 + replicas,
                storage_faults=profile["storage"],
            )
            try:
                if profile["slow"]:
                    s = profile["slow"]
                    cluster.slow_replica(
                        s["shard"], s["replica"], s["p"], s["ns"]
                    )
                if profile["crash"]:
                    c = profile["crash"]
                    cluster.crash_replica(c["shard"], c["replica"])
                for rep in range(cfg["reps"]):
                    run = _measure(
                        cluster,
                        keys,
                        seed + 1000 * rep,
                        cfg["batches"],
                        cfg["batch"],
                    )
                    rows.append(
                        {
                            "topology": f"{shards}x{replicas}",
                            "shards": shards,
                            "replicas": replicas,
                            "n_keys": cfg["n_keys"],
                            "fault_profile": profile_name,
                            "repetition": rep,
                            **run,
                        }
                    )
            finally:
                cluster.stop()
    return rows


def _headline(cfg, seed) -> dict:
    """Protected vs unprotected router under cluster-wide slow flapping.

    Both variants face the same weather on identically seeded clusters:
    every replica's storage stalls with probability
    :data:`HEADLINE_SLOW_P` per read, long enough to blow a sub-batch
    deadline.  The unprotected router (no hedging, one attempt per
    shard) must accept whatever its first pick returns, so its failure
    rate tracks the flap probability; the protected router retries the
    degraded answer on sibling replicas and usually finds a real one.
    """
    shards, replicas = cfg["headline_topology"]
    variants = {}
    for label, kwargs in (
        ("protected", dict(hedging=True, router_kwargs=None)),
        ("unprotected", dict(hedging=False, router_kwargs={"max_attempts": 1})),
    ):
        cluster, keys = _build(shards, replicas, cfg["n_keys"], seed, **kwargs)
        try:
            for sid in range(shards):
                for rid in range(replicas):
                    cluster.slow_replica(
                        sid, rid, HEADLINE_SLOW_P, HEADLINE_SLOW_NS
                    )
            variants[label] = _measure(
                cluster, keys, seed + 7, cfg["headline_batches"], cfg["batch"]
            )
        finally:
            cluster.stop()
    protected, unprotected = variants["protected"], variants["unprotected"]
    assert protected["degraded_rate"] < unprotected["degraded_rate"], (
        f"failover should beat first-answer-wins under flapping storage "
        f"(protected {protected['degraded_rate']} vs "
        f"unprotected {unprotected['degraded_rate']})"
    )
    return {
        "topology": f"{shards}x{replicas}",
        "kqps": round(protected["qps"] / 1e3, 1),
        "slow_p": HEADLINE_SLOW_P,
        "slow_ms": HEADLINE_SLOW_NS / 1e6,
        "protected": protected,
        "unprotected": unprotected,
        "p99_protected_ms": protected["p99_ms"],
        "p99_unprotected_ms": unprotected["p99_ms"],
        "failure_rate_ratio": round(
            protected["degraded_rate"]
            / max(unprotected["degraded_rate"], 1e-9),
            4,
        ),
    }


def _write_run_table(preset: str, rows: list[dict]) -> None:
    """The committed per-cell artifact: one CSV row per matrix cell."""
    git_rev = _git_rev()
    path = REPO_ROOT / RUN_TABLE
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=RUN_TABLE_COLS)
        writer.writeheader()
        for row in rows:
            writer.writerow(
                {
                    "schema_version": BENCH_SCHEMA_VERSION,
                    "git_rev": git_rev,
                    "preset": preset,
                    **{k: row[k] for k in RUN_TABLE_COLS[3:]},
                }
            )


def run_bench(preset: str, seed: int = 1) -> dict:
    cfg = PRESETS[preset]
    rows = _matrix(cfg, seed)
    headline = _headline(cfg, seed + 50)
    return {
        "preset": preset,
        "bits_per_key": BPK,
        "segment_bits": SEGMENT_BITS,
        "batch": cfg["batch"],
        "matrix": rows,
        "headline": headline,
        "zero_false_negatives": True,  # _measure asserts per pinned range
    }


def _rows(rows) -> str:
    cols = [
        "topology", "fault_profile", "repetition", "qps", "p50_ms",
        "p95_ms", "p99_ms", "degraded_rate", "unreachable", "retries",
        "failovers",
    ]
    lines = ["".join(c.ljust(14) for c in cols)]
    for row in rows:
        lines.append("".join(str(row.get(c, "")).ljust(14) for c in cols))
    return "\n".join(lines)


def _finish(payload: dict, benchmark=None) -> dict:
    publish(
        benchmark,
        "cluster",
        _rows(payload["matrix"]),
        "BENCH_cluster.json",
        payload,
    )
    _write_run_table(payload["preset"], payload["matrix"])
    headline = payload["headline"]
    append_trajectory(
        "cluster",
        payload["preset"],
        headline["kqps"],
        engine="router",
        p99_ms=headline["p99_protected_ms"],
        degraded_rate=headline["protected"]["degraded_rate"],
    )
    assert payload["zero_false_negatives"]
    return payload


def test_cluster(benchmark):
    """Pytest entry point: the smoke preset, timed by pytest-benchmark."""
    payload = run_bench("smoke")
    _finish(payload, benchmark)
    cluster, keys = _build(2, 2, 2_000, 17)
    rng = random.Random(17)
    ranges = [(k, k) for k in rng.sample(keys, 50)]

    def routed_batch():
        resp = cluster.query_range_many(ranges)
        assert all(resp.positives)

    try:
        benchmark.pedantic(routed_batch, rounds=3, iterations=1)
    finally:
        cluster.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    payload = run_bench(args.preset, seed=args.seed)
    _finish(payload)
    h = payload["headline"]
    print(
        f"headline ({h['topology']} @ slow_p={h['slow_p']}): protected "
        f"failure rate {h['protected']['degraded_rate']} / p99 "
        f"{h['p99_protected_ms']} ms vs unprotected "
        f"{h['unprotected']['degraded_rate']} / {h['p99_unprotected_ms']} ms; "
        f"{len(payload['matrix'])} matrix rows -> {RUN_TABLE}; "
        f"zero false negatives"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
