"""Figure 9: correlated range queries — FPR (a) and filter throughput (b).

Paper shape: the filters without the low segment-tree levels — SuRF,
SNARF, ProteusNS and REncoderSS — collapse to FPR ≈ 1; Rosetta, Proteus,
base REncoder and REncoderSE stay low.  Throughput of the Bloom-based
filters is barely affected by correlation.
"""

from common import default_config, mean, record, series

from repro.bench.experiments import fig9_correlated_queries
from repro.bench.registry import build_filter
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import correlated_range_queries


def test_fig9_correlated(benchmark):
    cfg = default_config()
    results, text = fig9_correlated_queries(cfg)
    record(benchmark, "fig9_correlated", text)

    fpr = series(results, "fpr")
    # The collapse quadrant.
    for name in ("SuRF", "SNARF", "ProteusNS", "REncoderSS"):
        assert mean(fpr[name]) > 0.8, f"{name} should collapse"
    # The robust quadrant.
    for name in ("Rosetta", "Proteus", "REncoderSE"):
        assert mean(fpr[name]) < 0.4, f"{name} should stay accurate"
    # Base REncoder is robust and improves with memory.
    assert fpr["REncoder"][-1] < 0.2

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = correlated_range_queries(keys, 200, seed=cfg.seed + 4)
    se = build_filter(
        "REncoderSE", keys, 18.0,
        sample_queries=correlated_range_queries(keys, 100, seed=cfg.seed + 5),
    )
    benchmark.pedantic(
        lambda: [se.query_range(lo, hi) for lo, hi in queries],
        rounds=3, iterations=1,
    )
