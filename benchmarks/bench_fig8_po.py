"""Figure 8: overall point-query throughput — Rosetta vs REncoder vs
REncoderPO.

Paper shape: a crossover.  At low BPK all FPRs are high, so second-level
I/O dominates and the most accurate filter (REncoder) wins overall; at
high BPK FPRs are negligible, so raw probe speed dominates and REncoderPO
(single-probe points) wins.
"""

from common import default_config, record, series

from repro.bench.experiments import fig8_point_optimised
from repro.bench.registry import build_filter
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import point_queries


def test_fig8_point_optimised(benchmark):
    cfg = default_config()
    results, text = fig8_point_optimised(cfg)
    record(benchmark, "fig8_point_optimised", text)

    fpr = series(results, "fpr")
    probes = series(results, "probes_per_query")
    ot = series(results, "overall_kqps")
    # PO trades FPR for probe speed at every BPK.
    for i in range(len(cfg.bpks)):
        assert fpr["REncoderPO"][i] >= fpr["REncoder"][i] - 0.01
        assert probes["REncoderPO"][i] <= probes["REncoder"][i] + 0.1
    # At the top of the sweep (negligible FPRs) PO's single-fetch points
    # keep pace with the base REncoder; both beat Rosetta.
    # Wall-clock comparisons on a single-core Python run are noisy; these
    # check a loose band over the upper half of the sweep, while the
    # probe/FPR tables above check the mechanism deterministically.
    half = len(cfg.bpks) // 2

    def upper_mean(series_values):
        vals = series_values[half:]
        return sum(vals) / len(vals)

    assert upper_mean(ot["REncoderPO"]) >= upper_mean(ot["REncoder"]) * 0.5
    assert upper_mean(ot["REncoderPO"]) > upper_mean(ot["Rosetta"]) * 0.4
    # At low BPK (FPR-dominated regime) the REncoder family is at least
    # competitive with Rosetta overall.
    assert ot["REncoder"][0] >= ot["Rosetta"][0] * 0.6

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = point_queries(keys, 300, seed=cfg.seed + 3)
    po = build_filter("REncoderPO", keys, 26.0)
    benchmark.pedantic(
        lambda: [po.query_point(lo) for lo, _ in queries],
        rounds=3, iterations=1,
    )
