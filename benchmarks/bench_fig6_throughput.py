"""Figure 6: filter throughput (a-b) and overall throughput (c-d) vs BPK.

Paper shape: REncoder's filter throughput is far above Rosetta's — driven
by probe counts (one BT fetch serves a whole mini-tree, Rosetta re-hashes
per level) — and REncoderSS(SE) has the best overall throughput.  In this
pure-Python reproduction the probes-per-query table is the
architecture-independent signal; wall-clock ordering for the REncoder vs
Rosetta pair follows it.
"""

from common import default_config, mean, record, series

from repro.bench.experiments import fig6_throughput_range
from repro.bench.registry import build_filter
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import uniform_range_queries


def test_fig6_throughput_2_32(benchmark):
    cfg = default_config()
    results, text = fig6_throughput_range(cfg, max_size=32)
    record(benchmark, "fig6_throughput_2_32", text)

    probes = series(results, "probes_per_query")
    ft = series(results, "filter_kqps")
    ot = series(results, "overall_kqps")
    # REncoder needs several times fewer memory probes than Rosetta.
    assert mean(probes["REncoder"]) * 3 < mean(probes["Rosetta"])
    # ... which shows up as higher filter throughput even in Python.
    assert mean(ft["REncoder"]) > mean(ft["Rosetta"])
    # Overall throughput: SS/SE beat both SuRF and Rosetta.
    assert mean(ot["REncoderSS"]) > mean(ot["Rosetta"])
    assert mean(ot["REncoderSS"]) > mean(ot["SuRF"]) * 0.8

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, 200, seed=cfg.seed + 1)
    rosetta = build_filter("Rosetta", keys, 18.0)
    benchmark.pedantic(
        lambda: [rosetta.query_range(lo, hi) for lo, hi in queries],
        rounds=3, iterations=1,
    )


def test_fig6_throughput_2_64(benchmark):
    cfg = default_config()
    results, text = fig6_throughput_range(cfg, max_size=64)
    record(benchmark, "fig6_throughput_2_64", text)
    probes = series(results, "probes_per_query")
    assert mean(probes["REncoder"]) * 2 < mean(probes["Rosetta"])

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, 200, max_size=64, seed=cfg.seed + 1)
    filt = build_filter("REncoder", keys, 18.0)
    benchmark.pedantic(
        lambda: [filt.query_range(lo, hi) for lo, hi in queries],
        rounds=3, iterations=1,
    )
