"""Figure 3(b): workload execution time vs BPK, REncoder vs Bloom filter.

Paper shape: for empty 2-32 range queries the Bloom-filter baseline must
probe every key in the range and still pays false-positive I/O; REncoder
is roughly an order of magnitude faster across BPKs.
"""

from common import default_config, record

from repro.bench.experiments import fig3_workload_time
from repro.bench.registry import build_filter
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import uniform_range_queries


def test_fig3b_workload_time(benchmark):
    cfg = default_config()
    rows, text = fig3_workload_time(cfg)
    record(benchmark, "fig3b_workload_time", text)

    # REncoder wins on workload execution at moderate-to-high BPK and the
    # win widens with memory.  (At Python scale the lowest-BPK points are
    # I/O-dominated by REncoder's own FPR; EXPERIMENTS.md discusses the
    # deviation from the paper's uniform 15x.)
    assert rows[-1]["speedup"] > 2.0
    assert sum(r["speedup"] > 1 for r in rows) >= len(rows) // 2
    speedups = [r["speedup"] for r in rows]
    assert speedups[-1] > speedups[0]

    keys = generate_keys(cfg.n_keys, "uniform", seed=cfg.seed)
    queries = uniform_range_queries(keys, 300, seed=cfg.seed + 1)
    filt = build_filter("REncoder", keys, 18.0)

    def run_workload():
        for lo, hi in queries:
            filt.query_range(lo, hi)

    benchmark.pedantic(run_workload, rounds=3, iterations=1)
