"""Stateful property test: the LSM-tree against a dict model.

Hypothesis drives random interleavings of puts, deletes, flushes, point
gets and range queries; after every step the tree must agree with a plain
dictionary model.  This is the failure-injection-style test for the
compaction machinery: flushes and cascading compactions may happen at any
point and must never lose or resurrect a key.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.rencoder import REncoder
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree

KEYS = st.integers(min_value=0, max_value=299)


class LsmMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.env = StorageEnv()
        self.lsm = LSMTree(
            lambda ks: REncoder(ks, bits_per_key=18, key_bits=64),
            memtable_capacity=8,
            base_capacity=2,
            ratio=2,
            env=self.env,
        )
        self.model: dict[int, int] = {}
        self.step = 0

    @rule(key=KEYS)
    def put(self, key):
        self.step += 1
        self.lsm.put(key, self.step)
        self.model[key] = self.step

    @rule(key=KEYS)
    def delete(self, key):
        self.lsm.delete(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.lsm.flush()

    @rule(key=KEYS)
    def get_matches_model(self, key):
        found, value = self.lsm.get(key)
        assert found == (key in self.model)
        if found:
            assert value == self.model[key]

    @rule(a=KEYS, b=KEYS)
    def range_matches_model(self, a, b):
        lo, hi = min(a, b), max(a, b)
        got = self.lsm.range_query(lo, hi)
        expected = sorted(
            (k, v) for k, v in self.model.items() if lo <= k <= hi
        )
        assert got == expected

    @invariant()
    def levels_shape_valid(self):
        if not hasattr(self, "lsm"):
            return
        # Levels beyond L0 hold at most one non-overlapping run in this
        # full-level compaction policy.
        for level in self.lsm.levels[1:]:
            assert len(level) <= 1


LsmMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestLsmStateful = LsmMachine.TestCase
