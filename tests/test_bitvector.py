"""Tests for the rank/select bit vector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trie.bitvector import BitVector


def _naive_rank1(bits, i):
    return int(sum(bits[:i]))


class TestBitVector:
    def test_empty(self):
        bv = BitVector(np.zeros(0, dtype=np.uint8))
        assert len(bv) == 0
        assert bv.ones == 0
        assert bv.rank1(0) == 0

    def test_basic_rank(self):
        bv = BitVector(np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8))
        assert bv.rank1(0) == 0
        assert bv.rank1(1) == 1
        assert bv.rank1(4) == 3
        assert bv.rank1(7) == 4
        assert bv.rank0(7) == 3

    def test_basic_select(self):
        bv = BitVector(np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8))
        assert bv.select1(1) == 0
        assert bv.select1(2) == 2
        assert bv.select1(3) == 3
        assert bv.select1(4) == 6

    def test_select_rank_inverse(self):
        rng = np.random.default_rng(0)
        bits = (rng.random(1000) < 0.3).astype(np.uint8)
        bv = BitVector(bits)
        for j in range(1, bv.ones + 1, 7):
            pos = bv.select1(j)
            assert bv.rank1(pos) == j - 1
            assert bv[pos] == 1

    def test_multiword(self):
        bits = np.zeros(300, dtype=np.uint8)
        bits[[0, 63, 64, 65, 128, 299]] = 1
        bv = BitVector(bits)
        assert bv.ones == 6
        assert bv.select1(6) == 299
        assert bv.rank1(300) == 6
        assert bv.rank1(64) == 2

    def test_getitem_bounds(self):
        bv = BitVector(np.array([1], dtype=np.uint8))
        with pytest.raises(IndexError):
            bv[1]
        with pytest.raises(IndexError):
            bv.rank1(2)
        with pytest.raises(IndexError):
            bv.select1(2)
        with pytest.raises(IndexError):
            bv.select1(0)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            BitVector(np.array([0, 2], dtype=np.uint8))

    def test_size_accounting_includes_overhead(self):
        bv = BitVector(np.ones(1000, dtype=np.uint8))
        assert bv.size_in_bits() == int(1000 * 1.0625)

    @given(st.lists(st.booleans(), min_size=1, max_size=400),
           st.integers(0, 400))
    @settings(max_examples=60)
    def test_hypothesis_rank_matches_naive(self, bits, i):
        arr = np.array(bits, dtype=np.uint8)
        bv = BitVector(arr)
        i = min(i, len(bits))
        assert bv.rank1(i) == _naive_rank1(bits, i)

    @given(st.lists(st.booleans(), min_size=1, max_size=400))
    @settings(max_examples=60)
    def test_hypothesis_select_matches_naive(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        bv = BitVector(arr)
        positions = [i for i, b in enumerate(bits) if b]
        for j, pos in enumerate(positions, start=1):
            assert bv.select1(j) == pos
