"""Tests for the optional LRU block cache in the storage cost model."""

import numpy as np
import pytest

from repro.core.rencoder import REncoder
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree


class TestEnvCache:
    def test_disabled_by_default(self):
        env = StorageEnv()
        env.read(useful=True, block=("t", 0))
        env.read(useful=True, block=("t", 0))
        assert env.stats.reads == 2
        assert env.stats.cache_hits == 0

    def test_repeat_read_hits(self):
        env = StorageEnv(cache_blocks=4)
        env.read(useful=True, block=("t", 0))
        env.read(useful=True, block=("t", 0))
        assert env.stats.reads == 1
        assert env.stats.cache_hits == 1

    def test_lru_eviction(self):
        env = StorageEnv(cache_blocks=2)
        env.read(useful=True, block="a")
        env.read(useful=True, block="b")
        env.read(useful=True, block="a")  # refresh a
        env.read(useful=True, block="c")  # evicts b
        env.read(useful=True, block="b")  # miss again
        assert env.stats.reads == 4
        assert env.stats.cache_hits == 1

    def test_blockless_reads_bypass(self):
        env = StorageEnv(cache_blocks=4)
        env.read(useful=False)
        env.read(useful=False)
        assert env.stats.reads == 2

    def test_reset_clears_cache(self):
        env = StorageEnv(cache_blocks=4)
        env.read(useful=True, block="a")
        env.reset()
        env.read(useful=True, block="a")
        assert env.stats.reads == 1
        assert env.stats.cache_hits == 0

    def test_cached_read_not_double_counted_after_reset(self):
        # A block cached before reset() must cost exactly one fresh read
        # afterwards — not one read *plus* a phantom cache hit, and not
        # zero reads from stale cache state.
        env = StorageEnv(cache_blocks=4)
        env.read(useful=True, block="a")
        env.read(useful=True, block="a")
        env.reset()
        env.read(useful=True, block="a")
        env.read(useful=True, block="a")
        assert env.stats.reads == 1
        assert env.stats.cache_hits == 1


class TestCacheUnderFaults:
    """Cache hits are served before the injector: they can never fault,
    and an armed fault waits for the next *real* second-level read."""

    def test_cache_hit_never_faults(self):
        from repro.storage.faults import FaultInjector

        env = StorageEnv(cache_blocks=4, injector=FaultInjector())
        env.read(useful=True, block="a")  # populate
        env.injector.arm_transient_reads(1)
        env.read(useful=True, block="a")  # hit: must not consume the fault
        assert env.stats.cache_hits == 1
        assert env.stats.transient_faults == 0
        # The armed fault is still pending for the next real read.
        with pytest.raises(Exception):
            env.read(useful=True, block="b")
        assert env.stats.transient_faults == 1

    def test_failed_read_not_cached(self):
        from repro.storage.faults import FaultInjector

        env = StorageEnv(cache_blocks=4, injector=FaultInjector())
        env.injector.arm_transient_reads(1)
        env.read_with_retry(useful=True, block="a")
        # The failed attempt neither counted as a read nor seeded the
        # cache; the retry did both, so a repeat is a pure hit.
        assert env.stats.reads == 1
        env.read(useful=True, block="a")
        assert env.stats.cache_hits == 1
        assert env.stats.reads == 1

    def test_cached_lsm_point_reads_dodge_faults(self):
        from repro.storage.faults import FaultInjector

        env = StorageEnv(cache_blocks=64, injector=FaultInjector())
        lsm = LSMTree(None, memtable_capacity=128, env=env)
        for k in range(500):
            lsm.put(k, k)
        lsm.flush()
        assert lsm.get(77) == (True, 77)  # warm the block
        env.stats.reset()
        env.injector.transient_read_p = 0.5
        for _ in range(50):
            assert lsm.get(77) == (True, 77)
        assert env.stats.cache_hits == 50
        assert env.stats.transient_faults == 0
        assert env.stats.retries == 0


class TestLsmWithCache:
    def test_hot_point_reads_cached(self):
        env = StorageEnv(cache_blocks=64)
        lsm = LSMTree(None, memtable_capacity=128, env=env)
        for k in range(1000):
            lsm.put(k, k)
        lsm.flush()
        env.reset()
        for _ in range(50):
            assert lsm.get(123) == (True, 123)
        assert env.stats.reads == 1
        assert env.stats.cache_hits == 49

    def test_cache_and_filter_complement(self):
        """Cache absorbs hot repeats; the filter kills empty-range reads
        the cache could never help with."""
        rng = np.random.default_rng(3)
        keys = np.unique(rng.integers(0, 1 << 40, 3000, dtype=np.uint64))
        wasted = {}
        for filtered in (False, True):
            # Cache much smaller than the table's block count, as in any
            # real deployment.
            env = StorageEnv(cache_blocks=8)
            factory = (
                (lambda ks: REncoder(ks, bits_per_key=18))
                if filtered else None
            )
            lsm = LSMTree(factory, memtable_capacity=256, env=env)
            for k in keys:
                lsm.put(int(k), 0)
            lsm.flush()
            env.reset()
            probe = np.random.default_rng(4)
            tried = 0
            while tried < 200:
                # Empty ranges *inside* the fence keys, spread across the
                # whole key span so the cache cannot absorb them.
                lo = int(probe.integers(0, 1 << 40))
                hi = lo + 31
                i = int(np.searchsorted(keys, np.uint64(lo)))
                if i < len(keys) and int(keys[i]) <= hi:
                    continue
                tried += 1
                lsm.range_query(lo, hi)
            wasted[filtered] = env.stats.wasted_reads
        # The cache alone barely helps distinct empty ranges...
        assert wasted[False] > 50
        # ...the filter eliminates them.
        assert wasted[True] < wasted[False] / 5
