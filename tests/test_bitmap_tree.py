"""Unit tests for the Bitmap Tree codec, including the paper's worked
example from Figure 2."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitmap_tree import BitmapTreeCodec, node_index, path_nodes


class TestNodeNumbering:
    def test_root(self):
        assert node_index(0, 0) == 1

    def test_depth_one(self):
        assert node_index(0b0, 1) == 2
        assert node_index(0b1, 1) == 3

    def test_paper_example_path(self):
        # Inserting suffix 0100: root node 1, then 2, 5, 10, 20 (Fig. 2).
        assert path_nodes(0b0100, 4) == [1, 2, 5, 10, 20]

    def test_children_relation(self):
        for suffix in range(16):
            node = node_index(suffix, 4)
            parent = node_index(suffix >> 1, 3)
            assert node in (2 * parent, 2 * parent + 1)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            node_index(0, -1)


class TestCodec:
    def test_paper_bitmap(self):
        # The paper: encoding 0100 yields BT
        # 1100100001 0000000001 00000000000000000000 0 0 (32 bits).
        codec = BitmapTreeCodec(4)
        bt = codec.encode_suffix(0b0100, 4)
        expected = "11001000010000000001000000000000"
        assert codec.to_bitstring(bt) == expected

    def test_encode_without_root(self):
        codec = BitmapTreeCodec(4)
        bt = codec.encode_suffix(0b0100, 4, include_root=False)
        assert not codec.get_node(bt, 1)
        assert codec.get_node(bt, 20)

    def test_encode_levels_subset(self):
        codec = BitmapTreeCodec(4)
        bt = codec.encode_levels(0b0100, 4, [2, 4])
        assert codec.decode_nodes(bt) == [5, 20]

    def test_decode_roundtrip(self):
        codec = BitmapTreeCodec(8)
        bt = codec.encode_suffix(0b10110011, 8)
        nodes = codec.decode_nodes(bt)
        assert nodes == path_nodes(0b10110011, 8)

    def test_decode_prefixes(self):
        codec = BitmapTreeCodec(4)
        bt = codec.encode_suffix(0b0100, 4)
        assert (0b0100, 4) in codec.decode_prefixes(bt)
        assert (0, 0) in codec.decode_prefixes(bt)

    def test_word_count_by_group(self):
        assert BitmapTreeCodec(4).words == 1  # 32-bit BT
        assert BitmapTreeCodec(5).words == 1  # 64-bit BT
        assert BitmapTreeCodec(8).words == 8  # 512-bit BT

    def test_get_suffix_bit(self):
        codec = BitmapTreeCodec(8)
        bt = codec.encode_suffix(0b1010, 4)
        assert codec.get_suffix_bit(bt, 0b1010, 4)
        assert not codec.get_suffix_bit(bt, 0b1011, 4)

    def test_invalid_group_bits(self):
        with pytest.raises(ValueError):
            BitmapTreeCodec(0)
        with pytest.raises(ValueError):
            BitmapTreeCodec(10)

    def test_suffix_width_bounds(self):
        codec = BitmapTreeCodec(4)
        with pytest.raises(ValueError):
            codec.encode_suffix(0, 5)

    @given(st.integers(min_value=1, max_value=9),
           st.integers(min_value=0, max_value=(1 << 9) - 1))
    def test_path_always_sets_depth_plus_one_bits(self, group_bits, raw):
        codec = BitmapTreeCodec(group_bits)
        suffix = raw & ((1 << group_bits) - 1)
        bt = codec.encode_suffix(suffix, group_bits)
        assert int(np.bitwise_count(bt).sum()) == group_bits + 1

    @given(st.integers(min_value=0, max_value=255))
    def test_distinct_suffixes_distinct_leaves(self, suffix):
        codec = BitmapTreeCodec(8)
        bt = codec.encode_suffix(suffix, 8)
        leaf = node_index(suffix, 8)
        assert codec.get_node(bt, leaf)
        other = (suffix + 1) % 256
        if other != suffix:
            assert not codec.get_node(bt, node_index(other, 8))
