"""Unit and property tests for the exact segment-tree oracle and the LCP
statistics driving the SS/SE variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segment_tree import (
    PrefixSegmentTree,
    level_cardinalities,
    max_key_lcp,
    max_key_query_lcp,
)


class TestOracle:
    def test_paper_figure1(self):
        # Inserting 1101 (13) records prefixes 1, 11, 110, 1101.
        tree = PrefixSegmentTree([13], key_bits=4)
        assert tree.contains_prefix(0b1, 1)
        assert tree.contains_prefix(0b11, 2)
        assert tree.contains_prefix(0b110, 3)
        assert tree.contains_prefix(0b1101, 4)
        assert not tree.contains_prefix(0b0, 1)

    def test_range_query_exact(self, small_keys):
        tree = PrefixSegmentTree(small_keys, key_bits=8)
        key_set = set(int(k) for k in small_keys)
        for lo in range(0, 256, 7):
            for size in (1, 2, 5, 30):
                hi = min(255, lo + size - 1)
                expected = any(lo <= k <= hi for k in key_set)
                assert tree.query_range(lo, hi) == expected

    def test_point_query(self, small_keys):
        tree = PrefixSegmentTree(small_keys, key_bits=8)
        for k in range(256):
            assert tree.query_point(k) == (k in set(int(x) for x in small_keys))

    def test_level_sizes_example(self):
        # Section III-C example: dataset A = {000, 001, 010}.
        tree = PrefixSegmentTree([0b000, 0b001, 0b010], key_bits=3)
        assert tree.level_sizes() == [1, 1, 2, 3]
        # Dataset B = {000, 010, 100} has more distinct shallow prefixes.
        tree_b = PrefixSegmentTree([0b000, 0b010, 0b100], key_bits=3)
        assert tree_b.level_sizes() == [1, 2, 3, 3]

    def test_total_nodes(self):
        tree = PrefixSegmentTree([0b000, 0b001, 0b010], key_bits=3)
        assert tree.total_nodes() == 7
        assert tree.total_nodes([2, 3]) == 5

    def test_empty_tree(self):
        tree = PrefixSegmentTree([], key_bits=8)
        assert not tree.query_range(0, 255)
        assert tree.n_keys == 0

    def test_key_out_of_domain(self):
        with pytest.raises(ValueError):
            PrefixSegmentTree([256], key_bits=8)

    @given(st.sets(st.integers(0, 255), max_size=20),
           st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60)
    def test_oracle_matches_bruteforce(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = PrefixSegmentTree(keys, key_bits=8)
        assert tree.query_range(lo, hi) == any(lo <= k <= hi for k in keys)


class TestLevelCardinalities:
    def test_matches_tree(self, uniform_keys):
        tree_levels = [10, 30, 50, 64]
        cards = level_cardinalities(uniform_keys, 64, tree_levels)
        for level in tree_levels:
            prefixes = set(int(k) >> (64 - level) for k in uniform_keys)
            assert cards[level] == len(prefixes)

    def test_level_zero(self, uniform_keys):
        assert level_cardinalities(uniform_keys, 64, [0])[0] == 1

    def test_invalid_level(self, uniform_keys):
        with pytest.raises(ValueError):
            level_cardinalities(uniform_keys, 64, [65])


class TestLcp:
    def test_max_key_lcp_simple(self):
        # 0b1010 and 0b1011 share 3 bits.
        assert max_key_lcp(np.array([0b1010, 0b1011], dtype=np.uint64), 4) == 3

    def test_max_key_lcp_singleton(self):
        assert max_key_lcp(np.array([5], dtype=np.uint64), 4) == 0

    def test_max_key_lcp_is_max_over_pairs(self):
        keys = np.array([0b0001, 0b1000, 0b1001], dtype=np.uint64)
        assert max_key_lcp(keys, 4) == 3  # 1000 vs 1001

    @given(st.sets(st.integers(0, 1023), min_size=2, max_size=30))
    @settings(max_examples=50)
    def test_max_key_lcp_bruteforce(self, keys):
        arr = np.array(sorted(keys), dtype=np.uint64)

        def lcp(a, b):
            d = a ^ b
            return 10 if d == 0 else 10 - d.bit_length()

        expected = max(
            lcp(a, b) for i, a in enumerate(sorted(keys))
            for b in sorted(keys)[i + 1:]
        )
        assert max_key_lcp(arr, 10) == expected

    def test_key_query_lcp(self):
        keys = np.array([0b10100000], dtype=np.uint64)
        # Query bound 0b10100100 shares 5 bits with the key.
        assert max_key_query_lcp(keys, [0b10100100], 8) == 5

    def test_key_query_lcp_skips_exact_hits(self):
        keys = np.array([0b1010, 0b0001], dtype=np.uint64)
        # The bound equals a key; it must not count as LCP 4.
        assert max_key_query_lcp(keys, [0b1010], 4) < 4

    @given(st.sets(st.integers(0, 1023), min_size=1, max_size=20),
           st.lists(st.integers(0, 1023), min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_key_query_lcp_bruteforce(self, keys, bounds):
        arr = np.array(sorted(keys), dtype=np.uint64)

        def lcp(a, b):
            d = a ^ b
            return 10 if d == 0 else 10 - d.bit_length()

        expected = 0
        for b in bounds:
            for k in keys:
                if k != b:
                    expected = max(expected, lcp(k, b))
        assert max_key_query_lcp(arr, bounds, 10) == expected
