"""Tests for the LOUDS-Dense/Sparse hybrid (FastSuccinctTrie)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trie.fst import FastSuccinctTrie
from repro.trie.louds import LoudsSparseTrie


def _sparse_lookup(sp: LoudsSparseTrie, kb: bytes):
    slot = sp.lookup_prefix(kb)
    if slot < 0:
        return None
    return int(sp.leaf_key_idx[slot]), int(sp.leaf_depth[slot])


def _sparse_lower(sp: LoudsSparseTrie, kb: bytes, reject=None):
    sp_reject = None
    if reject is not None:
        def sp_reject(slot):
            return reject(int(sp.leaf_key_idx[slot]),
                          int(sp.leaf_depth[slot]))
    slot, amb = sp.lower_bound_leaf(kb, reject=sp_reject)
    if slot < 0:
        return None
    return int(sp.leaf_key_idx[slot]), int(sp.leaf_depth[slot]), amb


class TestAgainstSparseReference:
    """The hybrid must answer identically to the pure sparse encoding."""

    @pytest.fixture(scope="class")
    def tries(self):
        rng = np.random.default_rng(90)
        keys = np.unique(rng.integers(0, 1 << 64, 4000, dtype=np.uint64))
        return (
            FastSuccinctTrie(keys, key_bytes=8, dense_ratio=16),
            LoudsSparseTrie(keys, key_bytes=8),
            keys,
        )

    def test_has_dense_head(self, tries):
        fst, _, _ = tries
        assert fst.cutoff >= 1
        assert fst.n_dense_nodes >= 1

    def test_lookup_agrees_on_keys(self, tries):
        fst, sp, keys = tries
        for i in range(0, len(keys), 29):
            kb = int(keys[i]).to_bytes(8, "big")
            assert fst.lookup(kb) == _sparse_lookup(sp, kb)

    def test_lookup_agrees_on_probes(self, tries):
        fst, sp, keys = tries
        rng = np.random.default_rng(91)
        for probe in rng.integers(0, 1 << 64, 1500, dtype=np.uint64):
            kb = int(probe).to_bytes(8, "big")
            assert fst.lookup(kb) == _sparse_lookup(sp, kb)

    def test_lower_bound_agrees(self, tries):
        fst, sp, keys = tries
        rng = np.random.default_rng(92)
        for probe in rng.integers(0, 1 << 64, 1500, dtype=np.uint64):
            kb = int(probe).to_bytes(8, "big")
            assert fst.lower_bound(kb) == _sparse_lower(sp, kb)

    def test_lower_bound_with_reject_agrees(self, tries):
        fst, sp, keys = tries

        def reject(idx, depth):
            return (idx + depth) % 3 == 0

        rng = np.random.default_rng(93)
        for probe in rng.integers(0, 1 << 64, 600, dtype=np.uint64):
            kb = int(probe).to_bytes(8, "big")
            assert fst.lower_bound(kb, reject=reject) == _sparse_lower(
                sp, kb, reject=reject
            )

    def test_stats_consistent(self, tries):
        fst, sp, keys = tries
        assert fst.stats.n_keys == len(keys)
        assert fst.stats.n_leaves == len(keys)
        # Edge totals agree: every sparse edge above the cutoff became a
        # dense bitmap bit.
        assert fst.stats.n_edges == sp.stats.n_edges

    def test_size_competitive(self, tries):
        fst, sp, _ = tries
        # The cutoff rule only admits dense levels that pay for themselves.
        assert fst.size_in_bits() <= sp.size_in_bits() * 1.05


class TestEdgeCases:
    def test_empty(self):
        fst = FastSuccinctTrie(np.zeros(0, dtype=np.uint64), key_bytes=2)
        assert fst.lookup(b"\x00\x01") is None
        assert fst.lower_bound(b"\x00\x01") is None
        assert fst.size_in_bits() >= 0

    def test_single_key(self):
        fst = FastSuccinctTrie(np.array([0xBEEF], dtype=np.uint64),
                               key_bytes=2)
        assert fst.lookup(b"\xbe\xef") is not None
        assert fst.lower_bound(b"\x00\x00")[0] == 0

    def test_forced_pure_sparse(self):
        keys = np.unique(
            np.random.default_rng(94).integers(0, 1 << 32, 300,
                                               dtype=np.uint64)
        )
        fst = FastSuccinctTrie(keys, key_bytes=4, dense_ratio=10 ** 9)
        assert fst.cutoff == 0
        for k in keys[:50]:
            assert fst.lookup(int(k).to_bytes(4, "big")) is not None

    def test_deep_dense_head(self):
        # Dense-friendly data: keys packed into a tiny prefix space force
        # several dense levels to pay for themselves.
        keys = np.arange(0, 1 << 14, dtype=np.uint64)
        fst = FastSuccinctTrie(keys, key_bytes=2, dense_ratio=1)
        assert fst.cutoff >= 1
        for k in (0, 100, (1 << 14) - 1):
            assert fst.lookup(int(k).to_bytes(2, "big")) is not None

    def test_prefix_value(self):
        keys = np.array([0x0100, 0xFF00], dtype=np.uint64)
        fst = FastSuccinctTrie(keys, key_bytes=2)
        found = fst.lookup(b"\xff\x12")
        assert found is not None
        key_idx, depth = found
        assert fst.prefix_value(key_idx, depth) == 0xFF00

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            FastSuccinctTrie(np.array([5, 3], dtype=np.uint64), key_bytes=2)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            FastSuccinctTrie(np.array([1], dtype=np.uint64), dense_ratio=0)

    @given(st.sets(st.integers(0, (1 << 16) - 1), min_size=1, max_size=80),
           st.integers(0, (1 << 16) - 1))
    @settings(max_examples=50, deadline=None)
    def test_hypothesis_agrees_with_sparse(self, keys, probe):
        arr = np.array(sorted(keys), dtype=np.uint64)
        fst = FastSuccinctTrie(arr, key_bytes=2, dense_ratio=2)
        sp = LoudsSparseTrie(arr, key_bytes=2)
        kb = int(probe).to_bytes(2, "big")
        assert fst.lookup(kb) == _sparse_lookup(sp, kb)
        assert fst.lower_bound(kb) == _sparse_lower(sp, kb)


class TestMultiLevelDenseHead:
    """The LOUDS-Dense head spanning two+ levels: descent and
    backtracking must cross dense->dense and dense->sparse boundaries."""

    @pytest.fixture(scope="class")
    def tries(self):
        rng = np.random.default_rng(95)
        keys = np.unique(rng.integers(0, 1 << 18, 30_000, dtype=np.uint64))
        fst = FastSuccinctTrie(keys, key_bytes=3, dense_ratio=1)
        sp = LoudsSparseTrie(keys, key_bytes=3)
        assert fst.cutoff >= 2, "fixture must exercise a deep dense head"
        return fst, sp, keys

    def test_lookup_agrees(self, tries):
        fst, sp, keys = tries
        rng = np.random.default_rng(96)
        for probe in rng.integers(0, 1 << 18, 2000, dtype=np.uint64):
            kb = int(probe).to_bytes(3, "big")
            assert fst.lookup(kb) == _sparse_lookup(sp, kb)

    def test_lookup_on_keys(self, tries):
        fst, sp, keys = tries
        for i in range(0, len(keys), 197):
            kb = int(keys[i]).to_bytes(3, "big")
            assert fst.lookup(kb) == _sparse_lookup(sp, kb)

    def test_lower_bound_agrees(self, tries):
        fst, sp, keys = tries
        rng = np.random.default_rng(97)
        for probe in rng.integers(0, 1 << 18, 2000, dtype=np.uint64):
            kb = int(probe).to_bytes(3, "big")
            assert fst.lower_bound(kb) == _sparse_lower(sp, kb)

    def test_lower_bound_with_reject_agrees(self, tries):
        fst, sp, keys = tries

        def reject(idx, depth):
            return idx % 2 == 0

        rng = np.random.default_rng(98)
        for probe in rng.integers(0, 1 << 18, 800, dtype=np.uint64):
            kb = int(probe).to_bytes(3, "big")
            assert fst.lower_bound(kb, reject=reject) == _sparse_lower(
                sp, kb, reject=reject
            )

    def test_dense_backtracking_corner(self, tries):
        fst, sp, _ = tries
        # Probes past the largest key must exhaust via dense backtracking.
        kb = (0xFFFFFF).to_bytes(3, "big")
        assert fst.lower_bound(kb) == _sparse_lower(sp, kb)

    def test_surf_on_deep_dense_head(self, tries):
        from repro.filters.surf import SuRF

        _, _, keys = tries
        surf = SuRF(keys, key_bits=24, dense_ratio=1)
        assert surf.trie.cutoff >= 2
        for k in keys[:300]:
            assert surf.query_point(int(k))
            assert surf.query_range(max(0, int(k) - 3), int(k) + 3)
