"""Tests for the Z-order 2-D range filter and double-precision keys."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.two_stage import (
    TwoStageREncoder,
    double_to_key,
    key_to_double,
)
from repro.filters.spatial import ZOrderRangeFilter


class TestZOrderRangeFilter:
    @pytest.fixture(scope="class")
    def points(self):
        rng = np.random.default_rng(80)
        return [
            (int(x), int(y)) for x, y in rng.integers(0, 1 << 14, (800, 2))
        ]

    def test_no_false_negative_points(self, points):
        zf = ZOrderRangeFilter(points, coord_bits=14, bits_per_key=24)
        for x, y in points[:200]:
            assert zf.query_point(x, y)

    def test_no_false_negative_rects(self, points):
        zf = ZOrderRangeFilter(points, coord_bits=14, bits_per_key=24)
        for x, y in points[:100]:
            assert zf.query_rect(max(0, x - 3), x + 3, max(0, y - 3), y + 3)

    def test_empty_rects_mostly_rejected(self, points):
        zf = ZOrderRangeFilter(points, coord_bits=14, bits_per_key=24,
                               max_query_extent=16)
        pts = set(points)
        rng = np.random.default_rng(81)
        fp = tried = 0
        while tried < 150:
            x0 = int(rng.integers(0, (1 << 14) - 16))
            y0 = int(rng.integers(0, (1 << 14) - 16))
            if any((x, y) in pts
                   for x in range(x0, x0 + 16) for y in range(y0, y0 + 16)):
                continue
            tried += 1
            fp += zf.query_rect(x0, x0 + 15, y0, y0 + 15)
        assert fp / tried < 0.4

    def test_custom_factory(self, points):
        from repro.filters.bloom import BloomFilter

        zf = ZOrderRangeFilter(
            points,
            coord_bits=14,
            filter_factory=lambda codes: BloomFilter(
                codes, bits_per_key=12, key_bits=28
            ),
        )
        for x, y in points[:50]:
            assert zf.query_point(x, y)

    def test_invalid_args(self, points):
        with pytest.raises(ValueError):
            ZOrderRangeFilter(points, coord_bits=0)
        with pytest.raises(ValueError):
            ZOrderRangeFilter(points, coord_bits=14, max_query_extent=0)

    def test_size_accounting(self, points):
        zf = ZOrderRangeFilter(points, coord_bits=14, bits_per_key=24)
        assert zf.size_in_bits() > 0
        zf.reset_counters()
        zf.query_point(1, 1)
        assert zf.probe_count >= 1


class TestDoubleKeys:
    def test_roundtrip(self):
        for v in (0.0, 1.0, 3.141592653589793, 1e-300, 1e300):
            assert key_to_double(double_to_key(v)) == v

    def test_monotone(self):
        values = [0.0, 1e-300, 1e-10, 1.0, 1e10, 1e300]
        keys = [double_to_key(v) for v in values]
        assert keys == sorted(keys)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            double_to_key(-0.5)

    def test_domain_check(self):
        with pytest.raises(ValueError):
            key_to_double(1 << 63)

    @given(st.floats(min_value=0.0, max_value=1e100, allow_nan=False))
    @settings(max_examples=80)
    def test_order_preserving(self, v):
        assert double_to_key(v) <= double_to_key(v * 2 + 1.0)

    def test_two_stage_double_precision(self):
        rng = np.random.default_rng(82)
        values = sorted(set(float(v) for v in rng.lognormal(0, 5, 500)))
        enc = TwoStageREncoder(values, bits_per_key=26, precision="double")
        assert enc.key_bits == 63
        assert enc.exp_bits == 11
        for v in values[:150]:
            assert enc.query_float(v)

    def test_two_stage_double_rejects_far_ranges(self):
        rng = np.random.default_rng(83)
        values = sorted(set(float(v) for v in rng.lognormal(0, 2, 500)))
        enc = TwoStageREncoder(values, bits_per_key=26, precision="double")
        top = max(values)
        fp = sum(
            enc.query_float_range(top * (10 + i), top * (10 + i) + 1e-6)
            for i in range(40)
        )
        assert fp < 40

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            TwoStageREncoder([1.0], precision="half")


class TestTExpTuning:
    def test_tune_picks_low_fpr(self):
        rng = np.random.default_rng(84)
        values = sorted(set(float(v) for v in rng.lognormal(0, 4, 600)))
        arr = np.array(values)
        sample = []
        while len(sample) < 60:
            lo = float(rng.uniform(0, max(values) * 2))
            hi = lo * 1.001 + 1e-9
            i = int(np.searchsorted(arr, lo))
            if i < len(values) and values[i] <= hi:
                continue
            sample.append((lo, hi))
        tuned = TwoStageREncoder.tune_t_exp(
            values, sample, bits_per_key=24
        )
        assert 0.0 <= tuned.tuned_fpr <= 0.5
        for v in values[:100]:
            assert tuned.query_float(float(np.float32(v)))

    def test_tune_requires_samples(self):
        with pytest.raises(ValueError):
            TwoStageREncoder.tune_t_exp([1.0, 2.0], [])
