"""Tests for the standard Bloom filter baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.bloom import BloomFilter, optimal_k


class TestOptimalK:
    def test_formula(self):
        # m/n = 10 -> k ~ 6.9 -> 7.
        assert optimal_k(10_000, 1000) == 7

    def test_clamped(self):
        assert optimal_k(1, 1000) == 1
        assert optimal_k(10_000_000, 10) == 16

    def test_empty(self):
        assert optimal_k(1000, 0) == 1


class TestBloomFilter:
    def test_no_false_negative_points(self, uniform_keys):
        bf = BloomFilter(uniform_keys, bits_per_key=12)
        for k in uniform_keys:
            assert bf.query_point(int(k))

    def test_fpr_close_to_formula(self, uniform_keys):
        bf = BloomFilter(uniform_keys, bits_per_key=12)
        rng = np.random.default_rng(1)
        probes = rng.integers(0, 1 << 64, 4000, dtype=np.uint64)
        key_set = set(int(k) for k in uniform_keys)
        negatives = [int(p) for p in probes if int(p) not in key_set]
        fpr = sum(bf.query_point(p) for p in negatives) / len(negatives)
        expected = (1 - np.exp(-bf.k * bf.n_keys / bf.bits)) ** bf.k
        assert fpr == pytest.approx(expected, abs=0.01)

    def test_p1_near_half_at_optimal_k(self, uniform_keys):
        bf = BloomFilter(uniform_keys, bits_per_key=12)
        assert 0.4 < bf.p1 < 0.6

    def test_range_query_scans_keys(self):
        bf = BloomFilter([100, 200], total_bits=4096, key_bits=16)
        assert bf.query_range(95, 105)
        assert bf.query_range(150, 250)

    def test_range_query_cap_conservative(self):
        bf = BloomFilter([5], total_bits=1024, max_range_probes=10)
        # Too-wide range: must stay one-sided by answering True.
        assert bf.query_range(0, 1 << 30)

    def test_incremental_insert(self):
        bf = BloomFilter([], total_bits=4096)
        bf.insert(777)
        assert bf.query_point(777)

    def test_probe_count(self, uniform_keys):
        bf = BloomFilter(uniform_keys, bits_per_key=12)
        bf.reset_counters()
        bf.query_point(3)
        assert bf.probe_count == bf.k
        bf.reset_counters()
        assert bf.probe_count == 0

    def test_explicit_k(self, uniform_keys):
        bf = BloomFilter(uniform_keys, bits_per_key=12, k=3)
        assert bf.k == 3

    @given(st.sets(st.integers(0, (1 << 32) - 1), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_hypothesis_no_false_negatives(self, keys):
        bf = BloomFilter(keys, total_bits=8192, key_bits=32)
        for k in keys:
            assert bf.query_point(k)
