"""Durability chaos acceptance: no lost writes, no false negatives (PR 8).

The acceptance bar, verbatim from the issue: a seeded chaos schedule
layering WAL tears, checkpoint corruption, and SSTable bit rot on top of
the crash/partition/slow weather must serve >= 10k routed range queries
with **zero false negatives** and **zero lost acknowledged writes** —
while the scrubber detects and repairs every piece of injected rot and
the anti-entropy digest pass drives all replicas back to convergence.

Writes keep flowing during the storm (an acknowledged ``put`` is part of
truth from that moment on); recovery goes through the real machinery —
WAL-tail replay, checkpoint fallback, quarantine force-positive overlay,
hinted-handoff replay, sibling refill — never through luck.

``REPRO_CHAOS_SEED`` pins the run; ``REPRO_SCRUB_REPORT`` (a path) makes
the suite drop a JSON artifact with the scrub + repair evidence.
"""

from __future__ import annotations

import json
import os
import random
from bisect import bisect_left, insort

import pytest

from repro.cluster import ClusterChaos, FilterCluster
from repro.core.rencoder import REncoder

try:  # pragma: no cover - plugin presence is environment-specific
    import pytest_timeout  # noqa: F401

    pytestmark = [pytest.mark.timeout(600)]
except ImportError:  # plugin not installed locally; CI installs it
    pytestmark = []

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", 20230713))
MS = 1_000_000
TOP64 = (1 << 64) - 1

#: The acceptance floor: total range queries routed across the run.
MIN_QUERIES = 10_000
BATCH = 25

#: Storage fault weather under the durability-specific chaos actions.
#: Torn writes stay on: the WAL's seal-and-retry must absorb them.
FAULT_PROFILE = dict(
    transient_read_p=0.01,
    torn_write_p=0.01,
    bit_flip_p=0.005,
    slow_read_p=0.01,
    slow_read_ns=10 * MS,
)

#: Durability faults are zero-weighted by default (replay stability for
#: older suites); this suite opts in, and keeps the classic weather too.
DURABILITY_WEIGHTS = {"wal_tear": 2, "rot_checkpoint": 2, "rot_table": 3}


def _factory(keys):
    return REncoder(keys, bits_per_key=14)


def _agg_scrub(per_replica):
    """Fold ``scrub_all``'s name -> report map into run totals."""
    return {
        "rot_detected": sum(
            r["rot_detected"] for r in per_replica.values()
        ),
        "repaired_local": sum(
            r["repaired_local"] for r in per_replica.values()
        ),
        "unrepairable": [
            u for r in per_replica.values() for u in r["unrepairable"]
        ],
    }


def _truth_positive(sorted_keys, lo, hi):
    i = bisect_left(sorted_keys, lo)
    return i < len(sorted_keys) and sorted_keys[i] <= hi


def _build_cluster(seed):
    cluster = FilterCluster(
        n_shards=3,
        replicas_per_shard=2,
        filter_factory=_factory,
        seed=seed,
        segment_bits=5,
        fault_profile=FAULT_PROFILE,
        memtable_capacity=512,
        workers=2,
        durability=True,
    )
    cluster.start()
    rng = random.Random(seed)
    keys = sorted({rng.randrange(TOP64) for _ in range(6_000)})
    cluster.load(keys)
    cluster.flush()
    cluster.checkpoint_all()
    return cluster, keys, rng


class TestDurabilityChaosAcceptance:
    def test_no_lost_writes_no_false_negatives_under_durability_chaos(self):
        cluster, keys, rng = _build_cluster(CHAOS_SEED)
        chaos = ClusterChaos(
            cluster, seed=CHAOS_SEED, weights=DURABILITY_WEIGHTS
        )
        n_batches = MIN_QUERIES // BATCH  # 400 batches = 10k queries
        false_negatives = []
        neg_queries = 0
        false_positives = 0
        queries = 0
        writes_acked = 0
        try:
            for batch_no in range(n_batches):
                if batch_no % 5 == 0:
                    chaos.step()
                    for sid, reps in cluster.replicas.items():
                        assert any(r.reachable() for r in reps), (
                            f"shard {sid} lost all replicas "
                            f"(step {batch_no}): {chaos.events[-3:]}"
                        )
                if batch_no % 7 == 0:
                    cluster.probe_all()
                if batch_no % 50 == 25:
                    # Fresh checkpoints mid-storm: targets for the
                    # rot_checkpoint action and real recovery points.
                    cluster.checkpoint_all()
                # Writes keep flowing; an acked put is truth from now on.
                for _ in range(3):
                    k = rng.randrange(TOP64)
                    cluster.put(k, k & 0xFF)
                    writes_acked += 1
                    if _truth_positive(keys, k, k) is False:
                        insort(keys, k)
                ranges = []
                for _ in range(BATCH):
                    if rng.random() < 0.5:
                        k = rng.choice(keys)  # guaranteed-positive probe
                        ranges.append((k, k))
                    else:
                        lo = rng.randrange(TOP64 - (1 << 40))
                        ranges.append((lo, lo + rng.randrange(1 << 40)))
                resp = cluster.query_range_many(ranges)
                queries += len(ranges)
                for (lo, hi), got in zip(ranges, resp.positives):
                    expected = _truth_positive(keys, lo, hi)
                    if expected and not got:
                        false_negatives.append((batch_no, lo, hi))
                    elif not expected:
                        neg_queries += 1
                        if got:
                            false_positives += 1

            # --- storm over: heal, scrub, repair, converge ------------
            chaos.heal_all()
            for reps in cluster.replicas.values():
                for rep in reps:
                    rep.injector.transient_read_p = 0.0
                    rep.injector.torn_write_p = 0.0
                    rep.injector.bit_flip_p = 0.0
                    rep.injector.slow_read_p = 0.0
            for _ in range(6):
                cluster.clock.advance(300 * MS)
                cluster.probe_all()

            scrub = _agg_scrub(cluster.scrub_all(repair=True))
            repair = cluster.anti_entropy()
            for _ in range(2):
                if repair["converged"] and not repair["unrepaired"]:
                    break
                repair = cluster.anti_entropy()
            second_scrub = _agg_scrub(cluster.scrub_all(repair=False))

            # Every injected rot was found and fixed — nothing is left
            # unrepairable, and a clean re-scrub finds nothing at all.
            assert not scrub["unrepairable"], scrub
            assert second_scrub["rot_detected"] == 0, second_scrub
            assert repair["converged"], repair
            assert not repair["unrepaired"], repair
            assert not cluster.quarantine_backlog()

            # Zero lost acknowledged writes: after repair, every key the
            # cluster ever acked answers positive with the weather off.
            lost = []
            all_keys = list(keys)
            for i in range(0, len(all_keys), 50):
                probe = [(k, k) for k in all_keys[i : i + 50]]
                resp = cluster.query_range_many(probe)
                for (k, _), got in zip(probe, resp.positives):
                    if not got:
                        lost.append(k)
            assert not lost, (
                f"{len(lost)} acknowledged writes lost "
                f"(seed {CHAOS_SEED}): {lost[:5]}"
            )
        finally:
            chaos.heal_all()
            cluster.stop()

        assert queries >= MIN_QUERIES
        assert writes_acked == n_batches * 3
        assert not false_negatives, (
            f"{len(false_negatives)} false negatives under durability "
            f"chaos (seed {CHAOS_SEED}): {false_negatives[:5]}"
        )
        # The storm must actually have thrown durability faults.
        summary = chaos.summary()
        assert summary["actions"].get("wal_tear", 0) >= 1
        assert summary["actions"].get("rot_table", 0) >= 1
        assert summary["actions"].get("rot_checkpoint", 0) >= 1
        assert summary["actions"].get("crash", 0) >= 1
        if neg_queries:
            assert false_positives / neg_queries < 0.9

        report_path = os.environ.get("REPRO_SCRUB_REPORT")
        if report_path:
            health = cluster.health()
            with open(report_path, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "seed": CHAOS_SEED,
                        "queries": queries,
                        "writes_acked": writes_acked,
                        "false_negatives": len(false_negatives),
                        "false_positive_rate": (
                            false_positives / neg_queries if neg_queries else 0
                        ),
                        "chaos": summary,
                        "scrub": scrub,
                        "second_scrub": second_scrub,
                        "anti_entropy": repair,
                        "hints_dropped": health["hints_dropped"],
                    },
                    fh,
                    indent=2,
                    sort_keys=True,
                )

    def test_durability_chaos_schedule_is_deterministic(self):
        events = []
        for _ in range(2):
            cluster = FilterCluster(
                n_shards=2,
                replicas_per_shard=2,
                filter_factory=None,
                seed=CHAOS_SEED,
                memtable_capacity=128,
                workers=1,
                durability=True,
            )
            cluster.start()
            cluster.load(range(0, 500, 5))
            cluster.checkpoint_all()
            chaos = ClusterChaos(
                cluster, seed=CHAOS_SEED, weights=DURABILITY_WEIGHTS
            )
            chaos.run(40)
            chaos.heal_all()
            cluster.stop()
            events.append(
                [
                    {k: v for k, v in ev.items() if k != "clock_ns"}
                    for ev in chaos.events
                ]
            )
        assert events[0] == events[1]

    def test_recovery_beats_rebuild_and_answers_converge(self):
        """Post-storm restarts go through restore, not full reload."""
        cluster, keys, rng = _build_cluster(CHAOS_SEED + 1)
        chaos = ClusterChaos(
            cluster, seed=CHAOS_SEED + 1, weights=DURABILITY_WEIGHTS
        )
        try:
            chaos.run(30)
            chaos.heal_all()
            for reps in cluster.replicas.values():
                for rep in reps:
                    rep.injector.transient_read_p = 0.0
                    rep.injector.torn_write_p = 0.0
                    rep.injector.bit_flip_p = 0.0
                    rep.injector.slow_read_p = 0.0
            cluster.scrub_all(repair=True)
            repair = cluster.anti_entropy()
            if not repair["converged"]:
                repair = cluster.anti_entropy()
            assert repair["converged"]
            # Every replica that restarted did so from a checkpoint +
            # WAL tail, and none is left degraded or quarantined.
            for reps in cluster.replicas.values():
                for rep in reps:
                    assert not rep.quarantined_ranges()
                    report = rep.last_restore_report
                    if report is not None:
                        assert report["filters"]["degraded"] == 0
            sample = [(k, k) for k in rng.sample(keys, 100)]
            resp = cluster.query_range_many(sample)
            assert all(resp.positives)
        finally:
            chaos.heal_all()
            cluster.stop()
