"""Whole-program contract analyzer: call graph + interprocedural passes.

Two layers of coverage:

* a **fixture mini-project** under ``tests/fixtures/lint/interproc/``
  containing one deliberate violation per pass — a cross-module
  negative-laundering chain, a deadline-free blocking read two hops from
  ``submit``, a static AB/BA lock cycle across two files, a lock cycle
  that exists only in the static ∪ runtime union, and one orphaned
  function — each paired with a clean twin so the passes are shown to
  be neither vacuous nor trigger-happy;

* **repo gates**: the real ``src/repro`` tree must analyze clean (every
  past finding fixed or baselined), the committed sanitizer report must
  map onto the static lock-node space, and the union lock graph must
  stay acyclic.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    InterprocAnalyzer,
    build_call_graph,
    load_runtime_report,
)
from repro.lint.interproc import (
    RULE_DEADLINE,
    RULE_DEAD_CODE,
    RULE_LOCK_ORDER,
    RULE_ONE_SIDED,
)

REPO = Path(__file__).resolve().parent.parent
FIXROOT = Path(__file__).parent / "fixtures" / "lint" / "interproc"


@pytest.fixture(scope="module")
def graph():
    return build_call_graph(FIXROOT, paths=["src/repro"])


@pytest.fixture(scope="module")
def analyzer(graph):
    return InterprocAnalyzer(graph)


def _rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# call-graph substrate
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_modules_and_functions_discovered(self, graph):
        assert "repro.filters.chain" in graph.modules
        assert "repro.cluster.beta" in graph.modules
        assert "repro.service.svc.MiniService.submit" in graph.functions

    def test_cross_module_call_edge_resolved(self, graph):
        fn = graph.functions["repro.filters.chain.ChainFilter.query_range"]
        callees = {c for call in fn.calls for c in call.callees}
        assert "repro.filters.probe.ProbeFilter.might_contain" in callees

    def test_reachability_walks_call_chains(self, graph):
        reach = graph.reachable(["repro.service.svc.MiniService.submit"])
        assert "repro.service.svc.MiniService._fetch" in reach

    def test_lock_creation_sites_keyed_by_path_line(self, graph):
        alpha = graph.classes["repro.cluster.alpha.Alpha"]
        assert alpha.lock_attrs == {
            "_lock": "src/repro/cluster/alpha.py:12"
        }


# ----------------------------------------------------------------------
# pass 1: one-sided-error taint
# ----------------------------------------------------------------------
class TestOneSided:
    def test_cross_module_laundering_is_flagged(self, analyzer):
        found = _rule(analyzer.one_sided(), RULE_ONE_SIDED)
        assert len(found) == 1
        (f,) = found
        assert f.path == "src/repro/filters/chain.py"
        assert "might_contain" in f.message
        assert "except handler" in f.message

    def test_taint_fixpoint_crosses_the_module_boundary(self, analyzer):
        tainted = analyzer.may_return_negative()
        # Source: the literal `return False` …
        assert "repro.filters.probe.ProbeFilter.might_contain" in tainted
        # … propagated into the casher that returns its result.
        assert "repro.filters.chain.ChainFilter.query_range" in tainted
        # The all-positive service chain stays untainted.
        assert "repro.service.svc.MiniService.submit" not in tainted


# ----------------------------------------------------------------------
# pass 2: deadline propagation
# ----------------------------------------------------------------------
class TestDeadline:
    def test_unscoped_io_two_hops_from_submit_is_flagged(self, analyzer):
        found = _rule(analyzer.deadline(), RULE_DEADLINE)
        assert [f.path for f in found] == ["src/repro/service/svc.py"]
        assert "_fetch()" in found[0].message

    def test_deadline_scoped_chain_is_clean(self, analyzer):
        # _covered does the same blocking read, but is only reachable
        # through `with env.deadline_scope(...)` — a protecting edge.
        assert not any(
            "_covered" in f.message for f in analyzer.deadline()
        )
        exposed = analyzer.unprotected_reachable(analyzer.submit_roots())
        assert "repro.service.svc.MiniService._fetch" in exposed
        assert "repro.service.svc.MiniService._covered" not in exposed


# ----------------------------------------------------------------------
# pass 3: lock order (static, runtime, union)
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_static_ab_ba_cycle_across_two_files(self, analyzer):
        found = _rule(analyzer.lock_order(), RULE_LOCK_ORDER)
        assert len(found) == 1
        assert "alpha.py:12" in found[0].message
        assert "beta.py:16" in found[0].message

    def test_static_edges_propagate_through_call_chains(self, analyzer):
        edges = analyzer.static_lock_edges()
        # Alpha.sweep holds A and calls Beta.drain (acquires B) — the
        # edge exists even though the nesting is never lexical.
        assert (
            "src/repro/cluster/alpha.py:12",
            "src/repro/cluster/beta.py:16",
        ) in edges

    def test_union_with_runtime_report_finds_second_cycle(self, graph):
        report = load_runtime_report(FIXROOT / "sanitizer_report.json")
        assert report is not None
        with_report = InterprocAnalyzer(graph, report)
        found = _rule(with_report.lock_order(), RULE_LOCK_ORDER)
        # The gamma cycle exists only in the union: static has G → M,
        # the runtime report contributes M → G.
        assert len(found) == 2
        assert any("gamma.py:16" in f.message for f in found)

    def test_runtime_site_drift_remaps_when_unambiguous(self, graph):
        report = load_runtime_report(FIXROOT / "sanitizer_report.json")
        with_report = InterprocAnalyzer(graph, report)
        edges = with_report.runtime_lock_edges()
        # alpha.py:999 (drifted) remaps onto the unique static site :12;
        # the foreign helper site survives untouched.
        assert (
            "src/repro/cluster/alpha.py:12",
            "tests/fixture_helper.py:7",
        ) in edges

    def test_two_runtime_locks_never_collapse_onto_one_static_site(
        self, graph
    ):
        # alpha.py has ONE static site; a report naming TWO distinct
        # runtime sites in that file must keep them distinct — remapping
        # either would merge two real locks and hide their ordering.
        report = {
            "edges": [
                {
                    "held": "src/repro/cluster/alpha.py:101",
                    "acquired": "src/repro/cluster/alpha.py:202",
                    "count": 1,
                }
            ]
        }
        edges = InterprocAnalyzer(graph, report).runtime_lock_edges()
        assert (
            "src/repro/cluster/alpha.py:101",
            "src/repro/cluster/alpha.py:202",
        ) in edges

    def test_lock_graph_dict_carries_provenance(self, graph):
        report = load_runtime_report(FIXROOT / "sanitizer_report.json")
        lg = InterprocAnalyzer(graph, report).lock_graph_dict()
        prov = {
            (e["held"], e["acquired"]): e["provenance"]
            for e in lg["edges"]
        }
        assert (
            prov[
                (
                    "src/repro/cluster/gamma.py:29",
                    "src/repro/cluster/gamma.py:16",
                )
            ]
            == "static"
        )
        assert (
            prov[
                (
                    "src/repro/cluster/gamma.py:16",
                    "src/repro/cluster/gamma.py:29",
                )
            ]
            == "runtime"
        )
        assert lg["cycles"]


# ----------------------------------------------------------------------
# pass 4: dead code
# ----------------------------------------------------------------------
class TestDeadCode:
    def test_exactly_the_orphan_is_flagged(self, analyzer):
        found = _rule(analyzer.dead_code(), RULE_DEAD_CODE)
        assert [f.path for f in found] == ["src/repro/filters/probe.py"]
        assert "_stale_scan" in found[0].message

    def test_all_wired_entry_points_are_live(self, analyzer):
        # The harness calls everything else; nothing but the orphan may
        # be reported, or the pass would be drowning signal in noise.
        names = [f.message.split()[0] for f in analyzer.dead_code()]
        assert names == ["repro.filters.probe._stale_scan"]


# ----------------------------------------------------------------------
# repo gates: the real tree stays clean
# ----------------------------------------------------------------------
class TestRepoGates:
    @pytest.fixture(scope="class")
    def repo_graph(self):
        return build_call_graph(REPO)

    @pytest.fixture(scope="class")
    def repo_analyzer(self, repo_graph):
        report = load_runtime_report(REPO / "SANITIZER_REPORT.json")
        return InterprocAnalyzer(repo_graph, report)

    def test_repo_has_no_unbaselined_interproc_findings(self, repo_analyzer):
        findings = repo_analyzer.run()
        baseline = Baseline.load(REPO / "lint-baseline.json")
        new, _ = baseline.split(findings)
        assert new == [], "\n".join(
            f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in new
        )

    def test_union_lock_graph_is_acyclic(self, repo_analyzer):
        lg = repo_analyzer.lock_graph_dict()
        assert lg["cycles"] == []
        assert lg["edges"], "lock graph vacuous: no edges extracted"

    def test_committed_report_maps_onto_static_sites(self, repo_analyzer):
        """Static ↔ runtime agreement for the committed sanitizer report.

        Every runtime site inside ``src/repro`` must correspond to a
        static creation site exactly — except lock objects the stdlib
        creates *on behalf of* repo code (``threading.Thread`` builds an
        internal Condition at its call line), which must survive as
        distinct foreign nodes rather than be folded into a repo lock.
        """
        report = repo_analyzer.runtime_report
        assert report, "SANITIZER_REPORT.json missing or unreadable"
        static = {
            s
            for sites in repo_analyzer._static_sites().values()
            for s in sites
        }
        runtime_sites = {
            site
            for e in report.get("edges", [])
            for site in (e["held"], e["acquired"])
        }
        mapped = {
            repo_analyzer._map_runtime_site(s)
            for s in runtime_sites
            if s.startswith("src/repro")
        }
        foreign = mapped - static
        # The only tolerated in-repo foreign nodes are Thread-internal
        # locks: no static `threading.Lock()` assignment on that line.
        for site in foreign:
            path, _, line = site.rpartition(":")
            text = (REPO / path).read_text().splitlines()[int(line) - 1]
            assert "threading.Thread" in text, (
                f"runtime lock {site} has no static counterpart and is "
                "not a Thread-internal lock — regenerate the report "
                "(make sanitize-stress) or fix the extractor"
            )

    def test_repo_analysis_is_fast_enough(self, repo_graph):
        # The acceptance budget is 30s for the whole CLI run; the graph
        # build dominating it is already done by the fixture, so a crude
        # sanity bound on graph size stands in for a flaky timer.
        assert len(repo_graph.functions) > 500
        assert sum(len(f.calls) for f in repo_graph.functions.values()) > 1000


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------
class TestBaselineRatchet:
    def test_stale_entries_are_reported(self, tmp_path):
        p = tmp_path / "baseline.json"
        p.write_text(
            json.dumps(
                {
                    "findings": [
                        {
                            "rule": "interproc-deadline",
                            "path": "src/repro/storage/gone.py",
                            "message": "fixed long ago",
                            "count": 2,
                        }
                    ]
                }
            )
        )
        baseline = Baseline.load(p)
        stale = baseline.stale([])
        assert stale == [
            (
                (
                    "interproc-deadline",
                    "src/repro/storage/gone.py",
                    "fixed long ago",
                ),
                2,
            )
        ]

    def test_matched_entries_are_not_stale(self):
        baseline = Baseline.load(REPO / "lint-baseline.json")
        if not baseline.counts:
            pytest.skip("repo baseline is empty")
        # The committed baseline must stay a ratchet: every entry still
        # matched by a live finding, none rotting.
        from repro.lint import LintEngine, make_default_rules

        engine = LintEngine(make_default_rules(), root=REPO)
        findings = engine.run(["src/repro"])
        graph = build_call_graph(REPO)
        report = load_runtime_report(REPO / "SANITIZER_REPORT.json")
        findings += InterprocAnalyzer(graph, report).run()
        assert baseline.stale(findings) == []


def test_cli_interproc_exits_clean_on_repo(capsys):
    from repro.cli import main

    rc = main(["lint", "--interproc"])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "0 stale" in out
