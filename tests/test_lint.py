"""Lint engine: rules against fixtures, baseline round-trip, pragmas.

Every rule has at least one *positive* fixture assertion — a finding the
rule must produce, so the test fails if the rule is removed or broken —
and *negative* assertions on idiomatic / pragma'd / out-of-scope code.
Fixtures live in ``tests/fixtures/lint/`` (see its README).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, Finding, LintEngine, make_default_rules
from repro.lint.engine import load_source
from repro.lint.rules import (
    BareExceptRule,
    LockDisciplineRule,
    MutableDefaultArgRule,
    OneSidedErrorRule,
    SpanLeakRule,
    UnseededRngRule,
    WallClockRule,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def run_rule(rule, rel_path: str) -> list[Finding]:
    """Run one rule over one fixture file, honouring pragmas."""
    ctx = load_source(FIXTURES / rel_path, rel=rel_path)
    if not rule.applies_to(rel_path):
        return []
    return [f for f in rule.check(ctx) if not ctx.suppressed(f.line, f.rule)]


def lines_of(findings) -> list[int]:
    return sorted(f.line for f in findings)


# ----------------------------------------------------------------------
# wall-clock-in-simulated-path
# ----------------------------------------------------------------------
class TestWallClock:
    def test_flags_module_and_imported_calls(self):
        found = run_rule(WallClockRule(), "wall_clock_bad.py")
        assert len(found) == 5
        assert all(f.rule == "wall-clock-in-simulated-path" for f in found)
        # both time.attr calls and from-imports are caught
        messages = " ".join(f.message for f in found)
        assert "time.perf_counter_ns" in messages
        assert "time.perf_counter" in messages
        assert "time.time" in messages

    def test_sleep_is_not_a_read(self):
        found = run_rule(WallClockRule(), "wall_clock_bad.py")
        src = (FIXTURES / "wall_clock_bad.py").read_text().splitlines()
        for f in found:
            assert "sleep" not in src[f.line - 1]

    def test_pragma_suppresses(self):
        assert run_rule(WallClockRule(), "wall_clock_pragma.py") == []

    def test_allowlisted_paths_skip(self):
        rule = WallClockRule()
        assert not rule.applies_to("src/repro/telemetry/registry.py")
        assert not rule.applies_to("src/repro/cli.py")
        assert not rule.applies_to("benchmarks/bench_scale.py")
        assert not rule.applies_to("src/repro/bench/metrics.py")
        assert rule.applies_to("src/repro/service/service.py")
        assert rule.applies_to("src/repro/storage/env.py")
        assert run_rule(WallClockRule(), "telemetry/wall_clock_ok.py") == []


# ----------------------------------------------------------------------
# unseeded-rng
# ----------------------------------------------------------------------
class TestUnseededRng:
    def test_flags_unseeded_constructions_and_globals(self):
        found = run_rule(UnseededRngRule(), "unseeded_rng.py")
        assert len(found) == 5
        messages = " ".join(f.message for f in found)
        assert "default_rng()" in messages
        assert "random.Random()" in messages
        assert "random.randint" in messages
        assert "np.random.rand" in messages

    def test_seeded_and_injected_are_clean(self):
        found = run_rule(UnseededRngRule(), "unseeded_rng.py")
        src = (FIXTURES / "unseeded_rng.py").read_text().splitlines()
        for f in found:
            assert "good" not in src[f.line - 1], f


# ----------------------------------------------------------------------
# one-sided-error
# ----------------------------------------------------------------------
class TestOneSidedError:
    def test_flags_negative_answers_on_degraded_paths(self):
        found = run_rule(OneSidedErrorRule(), "filters/one_sided.py")
        assert len(found) == 3
        origins = " ".join(f.message for f in found)
        assert "except handler" in origins
        assert "degraded branch" in origins

    def test_all_positive_and_validation_paths_clean(self):
        found = run_rule(OneSidedErrorRule(), "filters/one_sided.py")
        src = (FIXTURES / "filters/one_sided.py").read_text().splitlines()
        for f in found:
            line = src[f.line - 1]
            assert "finding" in line, f"unexpected: {f}"

    def test_scoped_to_filter_service_storage(self):
        rule = OneSidedErrorRule()
        assert rule.applies_to("src/repro/filters/surf.py")
        assert rule.applies_to("src/repro/service/service.py")
        assert rule.applies_to("src/repro/storage/sstable.py")
        assert not rule.applies_to("src/repro/core/serialize.py")
        assert run_rule(OneSidedErrorRule(), "core/one_sided_out_of_scope.py") == []


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    def test_flags_unprotected_writes(self):
        found = run_rule(LockDisciplineRule(), "lock_discipline.py")
        src = (FIXTURES / "lock_discipline.py").read_text().splitlines()
        flagged = {src[f.line - 1].strip() for f in found}
        assert len(found) == 4, found
        for line in flagged:
            assert "finding" in line

    def test_lock_held_docstring_exempts_helper(self):
        found = run_rule(LockDisciplineRule(), "lock_discipline.py")
        src = (FIXTURES / "lock_discipline.py").read_text().splitlines()
        for f in found:
            assert "_bump_locked" not in f.message

    def test_condition_and_dataclass_locks_count(self):
        found = run_rule(LockDisciplineRule(), "lock_discipline.py")
        classes = {f.message.split(".")[0] for f in found}
        assert "CondGuarded" in classes
        assert "DataGuarded" in classes
        assert "Unlocked" not in classes


# ----------------------------------------------------------------------
# span-leak
# ----------------------------------------------------------------------
class TestSpanLeak:
    def test_flags_leaked_spans_and_bare_attach(self):
        found = run_rule(SpanLeakRule(), "cluster/span_leak.py")
        assert len(found) == 5
        messages = " ".join(f.message for f in found)
        assert "discarded" in messages
        assert "never finished" in messages
        assert "req.span" in messages
        assert "with tracer.attach" in messages

    def test_closed_on_all_paths_shapes_are_clean(self):
        found = run_rule(SpanLeakRule(), "cluster/span_leak.py")
        src = (FIXTURES / "cluster/span_leak.py").read_text().splitlines()
        for f in found:
            assert "finding" in src[f.line - 1], f"unexpected: {f}"

    def test_non_tracer_attach_is_out_of_scope(self):
        found = run_rule(SpanLeakRule(), "cluster/span_leak.py")
        src = (FIXTURES / "cluster/span_leak.py").read_text().splitlines()
        for f in found:
            assert "federation" not in src[f.line - 1]

    def test_scoped_to_cluster_and_service(self):
        rule = SpanLeakRule()
        assert rule.applies_to("src/repro/cluster/router.py")
        assert rule.applies_to("src/repro/service/service.py")
        assert not rule.applies_to("src/repro/telemetry/tracing.py")
        assert not rule.applies_to("src/repro/durability/wal.py")


# ----------------------------------------------------------------------
# bare-except / mutable-default-arg
# ----------------------------------------------------------------------
class TestBareExcept:
    def test_flags_bare_and_swallowed(self):
        found = run_rule(BareExceptRule(), "bare_except.py")
        assert len(found) == 2
        messages = " ".join(f.message for f in found)
        assert "bare" in messages
        assert "swallows" in messages

    def test_reraise_typed_and_pragma_clean(self):
        found = run_rule(BareExceptRule(), "bare_except.py")
        src = (FIXTURES / "bare_except.py").read_text().splitlines()
        for f in found:
            assert "finding" in src[f.line - 1]


class TestMutableDefaultArg:
    def test_flags_literals_and_ctor_calls(self):
        found = run_rule(MutableDefaultArgRule(), "mutable_default.py")
        assert len(found) == 4

    def test_none_and_immutable_defaults_clean(self):
        found = run_rule(MutableDefaultArgRule(), "mutable_default.py")
        src = (FIXTURES / "mutable_default.py").read_text().splitlines()
        for f in found:
            assert "bad" in src[f.line - 1]


# ----------------------------------------------------------------------
# engine: discovery, pragmas, baseline
# ----------------------------------------------------------------------
class TestEngine:
    def engine(self) -> LintEngine:
        return LintEngine(make_default_rules(), root=FIXTURES)

    def test_full_fixture_sweep_counts(self):
        findings = self.engine().run()
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        assert by_rule == {
            "wall-clock-in-simulated-path": 5,
            "unseeded-rng": 5,
            "one-sided-error": 3,
            "lock-discipline": 4,
            "span-leak": 5,
            "bare-except": 2,
            "mutable-default-arg": 4,
        }

    def test_findings_are_sorted_and_suppressions_recorded(self):
        eng = self.engine()
        findings = eng.run()
        keys = [(f.path, f.line, f.col) for f in findings]
        assert keys == sorted(keys)
        # wall_clock_pragma (2), lock_discipline pragma (1), bare_except
        # pragma (1) — at least these must be recorded, not dropped.
        assert len(eng.suppressed) >= 4

    def test_parse_error_is_reported_not_fatal(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "fine.py").write_text("x = 1\n")
        eng = LintEngine(make_default_rules(), root=tmp_path)
        findings = eng.run()
        assert findings == []
        assert len(eng.errors) == 1
        assert eng.errors[0][0] == "broken.py"

    def test_baseline_round_trip(self, tmp_path):
        eng = self.engine()
        findings = eng.run()
        assert findings
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        # Reload: every current finding is absorbed, nothing new.
        loaded = Baseline.load(path)
        new, baselined = loaded.split(eng.run())
        assert new == []
        assert len(baselined) == len(findings)
        # The file is plain JSON with fingerprint counts.
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert sum(e["count"] for e in data["findings"]) == len(findings)

    def test_baseline_does_not_absorb_new_findings(self, tmp_path):
        eng = self.engine()
        findings = eng.run()
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        fresh = Finding(
            rule="bare-except",
            path="bare_except.py",
            line=99,
            col=1,
            message="a brand new finding",
        )
        new, _ = Baseline.load(path).split(findings + [fresh])
        assert new == [fresh]

    def test_baseline_matches_on_message_not_line(self, tmp_path):
        eng = self.engine()
        findings = eng.run()
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        # Simulate an edit shifting every finding down ten lines.
        shifted = [
            Finding(f.rule, f.path, f.line + 10, f.col, f.message, f.severity)
            for f in findings
        ]
        new, baselined = Baseline.load(path).split(shifted)
        assert new == []
        assert len(baselined) == len(findings)

    def test_missing_baseline_file_is_empty(self, tmp_path):
        loaded = Baseline.load(tmp_path / "nope.json")
        new, baselined = loaded.split(self.engine().run())
        assert baselined == []
        assert new


# ----------------------------------------------------------------------
# the repo itself stays clean
# ----------------------------------------------------------------------
class TestRepoIsClean:
    REPO = Path(__file__).parent.parent

    @pytest.mark.skipif(
        not (Path(__file__).parent.parent / "src" / "repro").exists(),
        reason="source tree not present",
    )
    def test_src_has_no_new_findings(self):
        eng = LintEngine(
            make_default_rules(),
            root=self.REPO,
            baseline=Baseline.load(self.REPO / "lint-baseline.json"),
        )
        findings = eng.run(["src/repro"])
        new, _ = eng.baseline.split(findings)
        assert new == [], "\n".join(f.format() for f in new)
