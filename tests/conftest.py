"""Shared fixtures: deterministic key sets and query workloads.

Sizes are kept small enough for a fast suite while exercising every code
path; the benchmarks run the larger sweeps.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.workloads.datasets import generate_keys
from repro.workloads.queries import uniform_range_queries

TOP64 = (1 << 64) - 1


@pytest.fixture(scope="session", autouse=True)
def lock_sanitizer():
    """Concurrency sanitizer, on under ``REPRO_SANITIZE=1``.

    Installs a :class:`~repro.lint.sanitizer.LockOrderWatcher` for the
    whole session so every ``threading.Lock``/``RLock`` created by the
    suites (admission queues, breakers, LSM trees, registries, ...) is
    order- and hold-watched.  At session end the report artifact is
    written (``REPRO_SANITIZE_REPORT``, default ``SANITIZER_REPORT.json``)
    and any lock-order cycle fails the run.  Yields the watcher (or
    ``None`` when disabled) so tests can inspect it.
    """
    if os.environ.get("REPRO_SANITIZE") != "1":
        yield None
        return
    from repro.lint.sanitizer import LockOrderWatcher

    watcher = LockOrderWatcher()
    watcher.install()
    try:
        yield watcher
    finally:
        watcher.uninstall()
        path = watcher.dump()
        cycles = watcher.cycles()
        assert not cycles, (
            f"lock-order cycles detected (potential deadlocks), "
            f"see {path}: {cycles}"
        )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20230713)


@pytest.fixture(scope="session")
def uniform_keys():
    """2000 sorted unique uniform 64-bit keys."""
    return generate_keys(2000, "uniform", seed=11)


@pytest.fixture(scope="session")
def small_keys():
    """A tiny fixed key set for exhaustive checks (8-bit domain)."""
    return np.array([3, 13, 37, 80, 81, 150, 200, 251], dtype=np.uint64)


@pytest.fixture(scope="session")
def empty_queries(uniform_keys):
    """500 empty 2-32 range queries against ``uniform_keys``."""
    return uniform_range_queries(
        uniform_keys, 500, min_size=2, max_size=32, seed=12
    )


def assert_no_false_negatives(filt, keys, *, pad: int = 3):
    """Every stored key must be reported for points and nearby ranges."""
    for key in keys:
        k = int(key)
        assert filt.query_point(k), f"false negative point {k}"
        lo = max(0, k - pad)
        hi = min(TOP64, k + pad)
        assert filt.query_range(lo, hi), f"false negative range around {k}"
