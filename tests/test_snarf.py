"""Tests for the SNARF baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.snarf import Snarf
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)
from tests.conftest import TOP64, assert_no_false_negatives


class TestModel:
    def test_map_is_monotone(self, uniform_keys):
        snarf = Snarf(uniform_keys, bits_per_key=16)
        probes = np.sort(
            np.random.default_rng(0).integers(0, 1 << 64, 500, dtype=np.uint64)
        )
        mapped = snarf._map(probes)
        assert (np.diff(mapped) >= 0).all()

    def test_keys_map_within_array(self, uniform_keys):
        snarf = Snarf(uniform_keys, bits_per_key=16)
        positions = snarf._map(uniform_keys)
        assert positions.min() >= 0
        assert positions.max() <= len(uniform_keys) * snarf.multiplier

    def test_sentinels_protect_domain_edges(self, uniform_keys):
        snarf = Snarf(uniform_keys, bits_per_key=16)
        # Queries far below the min key / far above the max key must not
        # collide with the extreme keys' bits.
        lo_key = int(uniform_keys[0])
        hi_key = int(uniform_keys[-1])
        if lo_key > 1_000_000:
            assert not snarf.query_range(0, 1000)
        if hi_key < TOP64 - 1_000_000:
            assert not snarf.query_range(TOP64 - 1000, TOP64)

    def test_budget_sets_rice_param(self, uniform_keys):
        lean = Snarf(uniform_keys, bits_per_key=8)
        rich = Snarf(uniform_keys, bits_per_key=24)
        assert rich.rice_param > lean.rice_param
        assert rich.size_in_bits() > lean.size_in_bits()

    def test_size_close_to_budget(self, uniform_keys):
        snarf = Snarf(uniform_keys, bits_per_key=16)
        bpk = snarf.size_in_bits() / len(uniform_keys)
        assert 10 < bpk < 19

    def test_invalid_granularity(self, uniform_keys):
        with pytest.raises(ValueError):
            Snarf(uniform_keys, spline_granularity=1)


class TestQueries:
    def test_no_false_negatives(self, uniform_keys):
        snarf = Snarf(uniform_keys, bits_per_key=14)
        assert_no_false_negatives(snarf, uniform_keys[:200])

    def test_uniform_fpr_low(self, uniform_keys, empty_queries):
        snarf = Snarf(uniform_keys, bits_per_key=18)
        fpr = sum(snarf.query_range(*q) for q in empty_queries) / len(empty_queries)
        assert fpr < 0.1

    def test_correlated_collapse(self, uniform_keys):
        # The paper's Figure 9: the learned model cannot separate queries
        # that hug the keys.
        snarf = Snarf(uniform_keys, bits_per_key=18)
        queries = correlated_range_queries(uniform_keys, 200, seed=5)
        fpr = sum(snarf.query_range(*q) for q in queries) / len(queries)
        assert fpr > 0.7

    def test_fpr_decreases_with_memory(self, uniform_keys):
        queries = uniform_range_queries(uniform_keys, 500, seed=6)
        fprs = []
        for bpk in (6, 12, 24):
            s = Snarf(uniform_keys, bits_per_key=bpk)
            fprs.append(sum(s.query_range(*q) for q in queries) / len(queries))
        assert fprs[2] <= fprs[0]

    def test_probe_counter_counts_decodes(self, uniform_keys):
        snarf = Snarf(uniform_keys, bits_per_key=16)
        snarf.reset_counters()
        snarf.query_range(1, 2)
        assert snarf.probe_count >= 0  # decodes may be zero off-block

    def test_empty_keys(self):
        snarf = Snarf([], total_bits=512)
        assert not snarf.query_range(0, TOP64)

    @given(st.sets(st.integers(0, (1 << 32) - 1), min_size=2, max_size=60),
           st.integers(0, (1 << 32) - 1), st.integers(1, 1000))
    @settings(max_examples=50, deadline=None)
    def test_hypothesis_no_false_negatives(self, keys, lo, size):
        snarf = Snarf(keys, bits_per_key=16, key_bits=32)
        hi = min((1 << 32) - 1, lo + size - 1)
        if any(lo <= k <= hi for k in keys):
            assert snarf.query_range(lo, hi)
