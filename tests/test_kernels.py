"""Property tests for the fused batch kernels (DESIGN.md §11).

The kernel package's contract is *bit-identical answers at native
speed*: for every REncoder variant, RBF layout and backend, the fused
engines must return exactly what the legacy FetchCache engine and the
scalar ``query_range`` loop return — including on the edge geometries
(width-1 ranges, the whole domain, the top key, an empty filter).
Hypothesis searches key sets and query batches; dedicated tests pin the
no-false-negative invariant per backend, the blocked-layout serialize
round-trip with its corruption negatives, the backend-selection
precedence, and the FetchCache scratch-buffer reuse.

The compiled backend's *algorithm* is always tested: when numba is not
installed its ``@njit`` decorators degrade to identity, so the same
per-query loop runs interpreted (with uint64 overflow warnings
suppressed — wraparound is the intended semantics).
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.errors import FilterCorruptionError, TruncatedError
from repro.core.kernels import (
    available_backends,
    configure,
    default_backend,
    numba_available,
    resolve_backend,
)
from repro.core.kernels.fused import NumpyKernel
from repro.core.kernels.layout import BlockedRBF
from repro.core.kernels.numba_backend import NumbaKernel
from repro.core.rencoder import FetchCache, REncoder
from repro.core.serialize import (
    VERSION,
    VERSION_BLOCKED,
    checksum,
    dumps,
    loads,
)
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS

KEY_BITS = 24
TOP = (1 << KEY_BITS) - 1

VARIANTS = [REncoder, REncoderSS, REncoderSE, REncoderPO]
LAYOUTS = ["flat", "blocked"]
#: Every engine that must agree, whether or not numba is installed
#: (without the package ``numba`` silently resolves to ``numpy``).
ENGINES = ["legacy", "numpy", "numba"]


@pytest.fixture(autouse=True)
def _reset_backend_config():
    """Keep :func:`configure` state from leaking between tests."""
    yield
    configure(None)


def _build(cls, keys, group_bits=8, layout="flat", **extra):
    kwargs = dict(key_bits=KEY_BITS, group_bits=group_bits, layout=layout)
    if cls is REncoderSE:
        kwargs["sample_queries"] = [(1, 2), (100, 200)]
    kwargs.update(extra)
    return cls(
        np.array(sorted(keys), dtype=np.uint64), 12 * len(keys), **kwargs
    )


#: Deterministic edge ranges appended to every hypothesis batch.
EDGE_RANGES = [
    (0, 0),            # width-1 at the bottom
    (TOP, TOP),        # width-1 at the very top
    (0, TOP),          # the whole domain
    (TOP - 63, TOP),   # window butting the top
]

ranges_strategy = st.lists(
    st.tuples(st.integers(0, TOP), st.integers(0, 400)).map(
        lambda t: (t[0], min(t[0] + t[1], TOP))
    ),
    min_size=1,
    max_size=25,
)


# ----------------------------------------------------------------------
# backend equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("cls", VARIANTS)
@given(
    keys=st.sets(st.integers(0, TOP), min_size=1, max_size=40),
    ranges=ranges_strategy,
)
@settings(max_examples=15, deadline=None)
def test_engines_match_scalar(cls, layout, keys, ranges):
    filt = _build(cls, keys, layout=layout)
    ranges = ranges + EDGE_RANGES
    scalar = [filt.query_range(lo, hi) for lo, hi in ranges]
    for engine in ENGINES:
        batch = filt.query_range_many(ranges, engine=engine)
        assert [bool(a) for a in batch] == scalar, engine


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("cls", [REncoder, REncoderPO])
@given(keys=st.sets(st.integers(0, TOP), min_size=1, max_size=40))
@settings(max_examples=15, deadline=None)
def test_point_engines_match_scalar(cls, layout, keys):
    filt = _build(cls, keys, layout=layout)
    points = sorted(keys)[:5] + [0, TOP, (min(keys) + 1) & TOP]
    scalar = [filt.query_point(p) for p in points]
    for engine in ENGINES:
        batch = filt.query_point_many(points, engine=engine)
        assert [bool(a) for a in batch] == scalar, engine


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("group_bits", [3, 4, 8])
def test_no_false_negatives_per_engine(layout, group_bits):
    rng = np.random.default_rng(7)
    keys = rng.integers(0, TOP, size=500, dtype=np.uint64)
    filt = _build(REncoder, set(map(int, keys)), group_bits=group_bits,
                  layout=layout)
    ranges = [(int(k), min(int(k) + 8, TOP)) for k in keys]
    for engine in ENGINES:
        answers = filt.query_range_many(ranges, engine=engine)
        assert all(bool(a) for a in answers), engine


def test_empty_filter_all_engines_negative_free():
    filt = REncoder(
        np.array([], dtype=np.uint64), 2048, key_bits=KEY_BITS
    )
    ranges = EDGE_RANGES + [(5, 500)]
    scalar = [filt.query_range(lo, hi) for lo, hi in ranges]
    for engine in ENGINES:
        batch = filt.query_range_many(ranges, engine=engine)
        assert [bool(a) for a in batch] == scalar, engine


# ----------------------------------------------------------------------
# the compiled backend's algorithm, interpreted when numba is absent
# ----------------------------------------------------------------------
@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("cls", [REncoder, REncoderSS, REncoderPO])
def test_numba_algorithm_matches_numpy(cls, layout):
    rng = np.random.default_rng(11)
    keys = set(map(int, rng.integers(0, TOP, size=200, dtype=np.uint64)))
    filt = _build(cls, keys, layout=layout)
    los = rng.integers(0, TOP - 512, size=300, dtype=np.uint64)
    his = los + rng.integers(0, 400, size=300, dtype=np.uint64)
    los = np.concatenate([los, np.array([0, TOP, 0], dtype=np.uint64)])
    his = np.concatenate([his, np.array([0, TOP, TOP], dtype=np.uint64)])

    expected = NumpyKernel(filt).range_many(los, his)
    kern = NumbaKernel(filt)
    # Force the compiled code path even when numba is missing: the
    # decorators degrade to identity, so the exact per-query loop runs
    # interpreted.  uint64 wraparound is intended — silence the warnings
    # numpy raises for it outside numba.
    kern._compiled = True
    with warnings.catch_warnings(), np.errstate(over="ignore"):
        warnings.simplefilter("ignore", RuntimeWarning)
        got = kern.range_many(los, his)
        points = kern.point_many(los[:50])
    np.testing.assert_array_equal(np.asarray(got), np.asarray(expected))
    scalar_points = [filt.query_point(int(p)) for p in los[:50]]
    assert [bool(a) for a in points] == scalar_points


def test_numba_kernel_falls_back_above_expansion_cap():
    filt = _build(REncoder, {1, 2, 3}, max_expansion=(1 << 22) + 1)
    kern = NumbaKernel(filt)
    assert not kern._compiled  # DFS stack would not fit; numpy path runs
    los = np.array([0, 1], dtype=np.uint64)
    his = np.array([10, 1], dtype=np.uint64)
    np.testing.assert_array_equal(
        np.asarray(kern.range_many(los, his)),
        np.asarray(NumpyKernel(filt).range_many(los, his)),
    )


# ----------------------------------------------------------------------
# blocked layout + serialization
# ----------------------------------------------------------------------
def test_blocked_layout_construction():
    filt = _build(REncoder, set(range(100, 200)), layout="blocked")
    rbf = filt.rbf
    assert isinstance(rbf, BlockedRBF)
    assert rbf.layout == "blocked"
    params = rbf.placement_params()
    assert params["layout"] == "blocked"
    assert params["nblocks"] * params["span_bits"] <= rbf.bits
    assert params["num_offsets"] >= 1


def test_serialize_version_bytes_by_layout():
    flat = _build(REncoder, {1, 5, 9}, layout="flat")
    blocked = _build(REncoder, {1, 5, 9}, layout="blocked")
    assert int.from_bytes(dumps(flat)[4:6], "little") == VERSION
    assert int.from_bytes(dumps(blocked)[4:6], "little") == VERSION_BLOCKED


@pytest.mark.parametrize("cls", VARIANTS)
def test_blocked_serialize_round_trip(cls):
    rng = np.random.default_rng(3)
    keys = set(map(int, rng.integers(0, TOP, size=300, dtype=np.uint64)))
    filt = _build(cls, keys, layout="blocked")
    loaded = loads(dumps(filt))
    assert isinstance(loaded.rbf, BlockedRBF)
    assert loaded.rbf.layout == "blocked"
    ranges = [(int(k), min(int(k) + 16, TOP)) for k in sorted(keys)[:64]]
    ranges += EDGE_RANGES
    for engine in ("legacy", "numpy"):
        orig = filt.query_range_many(ranges, engine=engine)
        back = loaded.query_range_many(ranges, engine=engine)
        assert [bool(a) for a in orig] == [bool(a) for a in back]


def _rewrite_version(blob: bytes, version: int) -> bytes:
    """Patch the record-type byte and fix the CRC so only the coupling
    check can reject the result."""
    body = bytearray(blob[:-4])
    body[4:6] = version.to_bytes(2, "little")
    import struct

    return bytes(body) + struct.pack("<I", checksum(bytes(body)))


def test_layout_version_coupling_rejected():
    flat = dumps(_build(REncoder, {1, 2, 3}, layout="flat"))
    blocked = dumps(_build(REncoder, {1, 2, 3}, layout="blocked"))
    # v3 record without a layout claim, and a blocked claim in v2: both
    # pass the CRC (rewritten) but must fail the coupling check.
    with pytest.raises(FilterCorruptionError, match="inconsistent"):
        loads(_rewrite_version(flat, VERSION_BLOCKED))
    with pytest.raises(FilterCorruptionError, match="inconsistent"):
        loads(_rewrite_version(blocked, VERSION))


def test_blocked_blob_truncation_and_corruption():
    blob = dumps(_build(REncoder, set(range(50)), layout="blocked"))
    for cut in (4, 9, len(blob) // 2, len(blob) - 1):
        with pytest.raises((TruncatedError, FilterCorruptionError)):
            loads(blob[:cut])
    flipped = bytearray(blob)
    flipped[len(blob) - 10] ^= 0x40  # inside the RBF payload words
    with pytest.raises(FilterCorruptionError, match="checksum"):
        loads(bytes(flipped))


def test_union_requires_matching_layout():
    a = _build(REncoder, {1, 2, 3}, layout="flat")
    b = _build(REncoder, {4, 5, 6}, layout="blocked")
    with pytest.raises(ValueError):
        a.union(b)


# ----------------------------------------------------------------------
# backend selection and routing
# ----------------------------------------------------------------------
def test_cache_with_kernel_engine_rejected():
    filt = _build(REncoder, {1, 2, 3})
    with pytest.raises(ValueError):
        filt.query_range_many([(1, 2)], cache=FetchCache(), engine="numpy")
    # cache alone, or cache + an explicit legacy engine, still works
    assert len(filt.query_range_many([(1, 2)], cache=FetchCache())) == 1
    assert len(
        filt.query_range_many(
            [(1, 2)], cache=FetchCache(), engine="legacy"
        )
    ) == 1


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    assert resolve_backend("legacy") == "legacy"
    assert resolve_backend("numpy") == "numpy"
    # numba degrades to numpy when the package is missing
    expected = "numba" if numba_available() else "numpy"
    assert resolve_backend("numba") == expected
    assert resolve_backend(None) == default_backend() == expected

    monkeypatch.setenv("REPRO_KERNELS", "legacy")
    assert resolve_backend(None) == "legacy"
    configure("numpy")  # process-wide override beats the env
    assert resolve_backend(None) == "numpy"
    assert resolve_backend("legacy") == "legacy"  # explicit arg beats both

    with pytest.raises(ValueError):
        resolve_backend("avx512")
    with pytest.raises(ValueError):
        configure("avx512")
    monkeypatch.setenv("REPRO_KERNELS", "bogus")
    configure(None)
    with pytest.raises(ValueError):
        resolve_backend(None)


def test_available_backends_shape():
    backends = available_backends()
    assert backends[-2:] == ["numpy", "legacy"]
    assert ("numba" in backends) == numba_available()


def test_kernel_cache_reused_and_invalidated():
    filt = _build(REncoder, set(range(64)))
    filt.query_range_many([(1, 2)], engine="numpy")
    cached = filt._kernel_cache
    assert cached is not None and cached[0] == "numpy"
    filt.query_range_many([(3, 4)], engine="numpy")
    assert filt._kernel_cache[1] is cached[1]  # same kernel object
    filt._finalise_levels()  # the only operation that changes the plan
    assert filt._kernel_cache is None
    # and a rebuilt kernel still agrees with the legacy engine
    ranges = [(i, i + 3) for i in range(0, 120, 7)]
    legacy = filt.query_range_many(ranges, engine="legacy")
    fused = filt.query_range_many(ranges, engine="numpy")
    assert [bool(a) for a in legacy] == [bool(a) for a in fused]


def test_union_result_answers_identically_across_engines():
    a = _build(REncoder, set(range(0, 50)))
    b = _build(REncoder, set(range(1000, 1050)))
    merged = a.union(b)
    assert getattr(merged, "_kernel_cache", None) is None
    ranges = [(i, i + 1) for i in range(0, 1100, 13)] + EDGE_RANGES
    scalar = [merged.query_range(lo, hi) for lo, hi in ranges]
    for engine in ENGINES:
        batch = merged.query_range_many(ranges, engine=engine)
        assert [bool(x) for x in batch] == scalar, engine


def test_fetch_count_accounting_on_kernel_path():
    filt = _build(REncoder, set(range(256)))
    filt.reset_counters()
    filt.query_range_many([(i, i + 7) for i in range(0, 256, 5)],
                          engine="numpy")
    # one fetch per (hash seed, probe); the kernel books k per probe
    assert filt.rbf.fetch_count > 0
    assert filt.rbf.fetch_count % filt.rbf.k == 0


# ----------------------------------------------------------------------
# FetchCache scratch reuse (legacy engine)
# ----------------------------------------------------------------------
def test_fetch_cache_scratch_buffer_reused():
    filt = _build(REncoder, set(range(512)))
    cache = FetchCache()
    ranges = [(i, i + 3) for i in range(0, 512, 4)]
    filt.query_range_many(ranges, cache=cache)
    out_buf = cache.scratch._out
    assert out_buf is not None
    cache._groups.clear()  # force refetches; the scratch must persist
    filt.query_range_many(ranges, cache=cache)
    # same underlying buffer: no per-batch reallocation at steady state
    assert cache.scratch._out is out_buf


def test_cached_bitmap_trees_survive_scratch_reuse():
    # store() must snapshot out of the reused scratch buffer, or a later
    # fetch would silently rewrite earlier cache entries in place.
    filt = _build(REncoder, set(range(512)))
    cache = FetchCache()
    ranges = [(i, i + 3) for i in range(0, 512, 4)]
    first = filt.query_range_many(ranges, cache=cache)
    snapshots = {
        group: (hps.copy(), rows.copy())
        for group, (hps, rows) in cache._groups.items()
    }
    assert snapshots, "cache should hold mini-trees after a batch"
    second = filt.query_range_many(list(reversed(ranges)), cache=cache)
    assert [bool(a) for a in second] == [bool(a) for a in reversed(first)]
    for group, (hps, rows) in snapshots.items():
        cur_hps, cur_rows = cache._groups[group]
        pos = np.searchsorted(cur_hps, hps)
        np.testing.assert_array_equal(cur_hps[pos], hps)
        np.testing.assert_array_equal(cur_rows[pos], rows)
