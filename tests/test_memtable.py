"""Tests for the memtable."""

import pytest

from repro.storage.memtable import TOMBSTONE, MemTable


class TestMemTable:
    def test_put_get(self):
        mt = MemTable()
        mt.put(5, "a")
        assert mt.get(5) == (True, "a")
        assert mt.get(6) == (False, None)

    def test_overwrite(self):
        mt = MemTable()
        mt.put(5, "a")
        mt.put(5, "b")
        assert mt.get(5) == (True, "b")
        assert len(mt) == 1

    def test_delete_is_tombstone(self):
        mt = MemTable()
        mt.put(5, "a")
        mt.delete(5)
        found, value = mt.get(5)
        assert found and value is TOMBSTONE

    def test_items_sorted(self):
        mt = MemTable()
        for k in (9, 1, 5, 3):
            mt.put(k, k)
        assert [k for k, _ in mt.items()] == [1, 3, 5, 9]

    def test_range_items(self):
        mt = MemTable()
        for k in range(0, 100, 10):
            mt.put(k, k)
        got = list(mt.range_items(15, 45))
        assert [k for k, _ in got] == [20, 30, 40]

    def test_full_flag(self):
        mt = MemTable(capacity=2)
        assert not mt.full
        mt.put(1, 1)
        mt.put(2, 2)
        assert mt.full

    def test_clear(self):
        mt = MemTable()
        mt.put(1, 1)
        mt.clear()
        assert len(mt) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemTable(capacity=0)
