"""Tests for the Golomb-Rice bitstream codec behind SNARF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.golomb import BitReader, BitWriter, RiceBlockArray


class TestBitStream:
    def test_roundtrip_bits(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        w.write_bits(0xFFFF, 16)
        w.write_bits(0, 3)
        w.write_bits(1, 1)
        r = BitReader(w.to_array())
        assert r.read_bits(4) == 0b1011
        assert r.read_bits(16) == 0xFFFF
        assert r.read_bits(3) == 0
        assert r.read_bits(1) == 1

    def test_roundtrip_unary(self):
        w = BitWriter()
        for q in (0, 1, 5, 63, 64, 200):
            w.write_unary(q)
        r = BitReader(w.to_array())
        for q in (0, 1, 5, 63, 64, 200):
            assert r.read_unary() == q

    def test_cross_word_boundary(self):
        w = BitWriter()
        w.write_bits(0, 60)
        w.write_bits(0b1111, 4)  # ends exactly at the boundary
        w.write_bits(0b1010, 4)  # starts a new word
        r = BitReader(w.to_array(), bit_offset=60)
        assert r.read_bits(4) == 0b1111
        assert r.read_bits(4) == 0b1010

    def test_bit_length(self):
        w = BitWriter()
        assert w.bit_length == 0
        w.write_bits(1, 7)
        assert w.bit_length == 7
        w.write_unary(2)  # 3 more bits
        assert w.bit_length == 10

    def test_negative_nbits(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(1, -1)

    @given(st.lists(st.tuples(st.integers(0, (1 << 32) - 1),
                              st.integers(1, 48)), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_hypothesis_roundtrip(self, chunks):
        w = BitWriter()
        for value, nbits in chunks:
            w.write_bits(value, nbits)
        r = BitReader(w.to_array())
        for value, nbits in chunks:
            assert r.read_bits(nbits) == value & ((1 << nbits) - 1)


class TestRiceBlockArray:
    def test_decode_all_roundtrip(self):
        rng = np.random.default_rng(0)
        positions = np.sort(rng.integers(0, 1 << 20, 500))
        arr = RiceBlockArray(positions, rice_param=8, block_size=32)
        assert (arr.decode_all() == positions).all()

    def test_duplicates_allowed(self):
        positions = np.array([5, 5, 5, 9])
        arr = RiceBlockArray(positions, rice_param=2)
        assert (arr.decode_all() == positions).all()

    def test_any_in_range_matches_naive(self):
        rng = np.random.default_rng(1)
        positions = np.sort(rng.integers(0, 5000, 300))
        arr = RiceBlockArray(positions, rice_param=4, block_size=16)
        pos_set = positions.tolist()
        for _ in range(300):
            lo = int(rng.integers(0, 5200))
            hi = lo + int(rng.integers(0, 50))
            expected = any(lo <= p <= hi for p in pos_set)
            got, _ = arr.any_in_range(lo, hi)
            assert got == expected, (lo, hi)

    def test_empty(self):
        arr = RiceBlockArray(np.zeros(0, dtype=np.int64), rice_param=4)
        assert arr.any_in_range(0, 100) == (False, 0)

    def test_inverted_range(self):
        arr = RiceBlockArray(np.array([5]), rice_param=2)
        assert arr.any_in_range(10, 3) == (False, 0)

    def test_range_before_first(self):
        arr = RiceBlockArray(np.array([100, 200]), rice_param=3)
        assert arr.any_in_range(0, 99) == (False, 0)

    def test_negative_query_bounds(self):
        arr = RiceBlockArray(np.array([0, 7]), rice_param=2)
        assert arr.any_in_range(-10, -1) == (False, 0)
        assert arr.any_in_range(-10, 0)[0] is True

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            RiceBlockArray(np.array([5, 3]), rice_param=2)

    def test_size_shrinks_with_good_param(self):
        rng = np.random.default_rng(2)
        gaps = rng.integers(200, 312, 400)
        positions = np.cumsum(gaps)
        right = RiceBlockArray(positions, rice_param=8).size_in_bits()
        wrong = RiceBlockArray(positions, rice_param=0).size_in_bits()
        assert right < wrong

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=120),
           st.integers(0, 10_000), st.integers(0, 200))
    @settings(max_examples=60)
    def test_hypothesis_any_in_range(self, raw, lo, width):
        positions = np.sort(np.array(raw, dtype=np.int64))
        arr = RiceBlockArray(positions, rice_param=5, block_size=8)
        hi = lo + width
        expected = any(lo <= p <= hi for p in raw)
        assert arr.any_in_range(lo, hi)[0] == expected
