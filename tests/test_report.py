"""Tests for the consolidated report generator."""

from pathlib import Path

from repro.bench.report import RESULT_SECTIONS, build_report


class TestBuildReport:
    def test_stitches_present_files(self, tmp_path):
        (tmp_path / "fig5a_fpr_2_32.txt").write_text("TABLE A\n1 2 3\n")
        (tmp_path / "table2_space_cost.txt").write_text("TABLE B\n")
        text = build_report(tmp_path)
        assert "TABLE A" in text
        assert "TABLE B" in text
        assert "Figure 5(a)" in text

    def test_missing_files_listed(self, tmp_path):
        text = build_report(tmp_path)
        assert "Not yet run" in text
        assert "fig9_correlated" in text

    def test_unknown_files_appended(self, tmp_path):
        (tmp_path / "custom_experiment.txt").write_text("CUSTOM\n")
        text = build_report(tmp_path)
        assert "custom_experiment" in text
        assert "CUSTOM" in text

    def test_writes_output(self, tmp_path):
        out = tmp_path / "REPORT.md"
        (tmp_path / "fig4_overall_time.txt").write_text("X\n")
        build_report(tmp_path, out)
        assert out.exists()
        assert "X" in out.read_text()

    def test_sections_cover_all_benches(self):
        # Every figure/table/ablation/use-case bench has a section entry.
        names = {name for name, _ in RESULT_SECTIONS}
        bench_dir = Path(__file__).resolve().parents[1] / "benchmarks"
        assert (bench_dir / "results").parent.exists()
        assert {"fig5a_fpr_2_32", "table4_independence",
                "usecase_rtree"} <= names

    def test_nonexistent_dir(self, tmp_path):
        text = build_report(tmp_path / "nope")
        assert "Not yet run" in text
