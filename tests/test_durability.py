"""Unit tests for the durability subsystem (PR 8).

Covers each layer in isolation: the CRC-framed codec, the StorageEnv
append/rename/rot primitives, the segmented WAL (group commit, torn
appends, truncation, replay), the atomic-rename checkpoint manager
(fallback chain), the DurableLSM (checkpoint + WAL-tail restore,
quarantine), the scrubber's local repairs, the merkle segment digests,
and the cluster-facing pieces (hinted-handoff cap, replica quarantine
overlay, anti-entropy refill).
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import (
    FilterCorruptionError,
    TornAppendError,
    TransientIOError,
)
from repro.durability import (
    CheckpointManager,
    DurableLSM,
    Scrubber,
    SegmentDigestTree,
    TableDataRecord,
    WriteAheadLog,
)
from repro.durability.codec import (
    decode_pairs,
    decode_record,
    encode_pairs,
    encode_record,
    frame,
    iter_frames,
)
from repro.storage.env import StorageEnv
from repro.storage.faults import FaultInjector
from repro.storage.memtable import TOMBSTONE


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_frame_roundtrip(self):
        data = frame(b"alpha") + frame(b"") + frame(b"omega")
        scan = iter_frames(data)
        assert scan.payloads == [b"alpha", b"", b"omega"]
        assert not scan.torn
        assert scan.valid_len == len(data)

    def test_torn_tail_stops_at_last_good_frame(self):
        good = frame(b"kept")
        torn = good + frame(b"damaged")[:-3]
        scan = iter_frames(torn)
        assert scan.payloads == [b"kept"]
        assert scan.torn
        assert scan.valid_len == len(good)

    def test_corrupt_crc_stops_scan(self):
        blob = bytearray(frame(b"one") + frame(b"two"))
        blob[-2] ^= 0xFF  # damage the second frame's payload
        scan = iter_frames(bytes(blob))
        assert scan.payloads == [b"one"]
        assert scan.torn

    def test_record_roundtrip_value_types(self):
        for value in (None, TOMBSTONE, 0, -5, 1 << 80, b"\x00ff", "végül"):
            lsn, key, got = decode_record(encode_record(7, 42, value))
            assert (lsn, key) == (7, 42)
            assert got == value or got is value

    def test_bool_values_rejected(self):
        with pytest.raises(TypeError):
            encode_record(1, 1, True)

    def test_pairs_roundtrip_int_fast_path(self):
        pairs = [(k, k & 0xFF) for k in range(0, 5000, 7)]
        assert decode_pairs(encode_pairs(pairs)) == pairs

    def test_pairs_roundtrip_generic(self):
        pairs = [(1, "a"), (2, TOMBSTONE), (3, None), (4, b"zz"), (5, 9)]
        got = decode_pairs(encode_pairs(pairs))
        assert got == pairs
        assert got[1][1] is TOMBSTONE

    def test_decode_record_rejects_trailing_garbage(self):
        with pytest.raises(FilterCorruptionError):
            decode_record(encode_record(1, 2, 3) + b"x")


# ----------------------------------------------------------------------
# env primitives
# ----------------------------------------------------------------------
class TestEnvPrimitives:
    def test_append_blob_concatenates_and_counts(self):
        env = StorageEnv()
        assert env.append_blob("b", b"ab") == 2
        assert env.append_blob("b", b"cd") == 4
        assert env.get_blob("b") == b"abcd"
        assert env.stats.blob_appends == 2

    def test_armed_torn_append_keeps_strict_prefix(self):
        env = StorageEnv(injector=FaultInjector(3))
        env.injector.arm_torn_append()
        with pytest.raises(TornAppendError):
            env.append_blob("b", b"0123456789")
        stored = env.get_blob("b")
        assert len(stored) < 10
        assert b"0123456789".startswith(stored)
        assert env.stats.torn_appends == 1
        # Next append is clean again.
        env.append_blob("b", b"XY")
        assert env.get_blob("b").endswith(b"XY")

    def test_rename_blob_is_atomic_and_never_mangled(self):
        env = StorageEnv(injector=FaultInjector(1, torn_write_p=1.0))
        env.injector.torn_write_p = 0.0
        env.put_blob("tmp", b"payload")
        env.injector.torn_write_p = 1.0  # renames must ignore this
        env.rename_blob("tmp", "final")
        assert env.get_blob("final") == b"payload"
        assert env.blob_len("tmp") is None
        with pytest.raises(FilterCorruptionError):
            env.rename_blob("missing", "x")

    def test_rot_blob_flips_exactly_one_bit(self):
        env = StorageEnv(injector=FaultInjector(9))
        env.put_blob("cold", bytes(range(32)))
        bit = env.rot_blob("cold")
        data = env.get_blob("cold")
        diff = [
            i for i in range(32) if data[i] != bytes(range(32))[i]
        ]
        assert len(diff) == 1
        assert bit // 8 == diff[0]
        assert env.stats.blob_rots == 1

    def test_list_blobs_and_delete(self):
        env = StorageEnv()
        env.put_blob("a:1", b"x")
        env.put_blob("a:2", b"y")
        env.put_blob("b:1", b"z")
        assert env.list_blobs("a:") == ["a:1", "a:2"]
        assert env.delete_blob("a:1")
        assert not env.delete_blob("a:1")
        assert env.list_blobs("a:") == ["a:2"]


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_replay_roundtrip(self):
        env = StorageEnv()
        wal = WriteAheadLog(env, "t", segment_records=8)
        for k in range(20):
            wal.append(k, k * 2)
        _, replay = WriteAheadLog.open(env, "t", segment_records=8)
        assert [(k, v) for _, k, v in replay.records] == [
            (k, k * 2) for k in range(20)
        ]
        assert replay.segments >= 3  # rotation happened
        assert replay.torn_segments == 0

    def test_group_commit_amortises_appends(self):
        env = StorageEnv()
        wal = WriteAheadLog(env, "t")
        first, last = wal.append_many([(k, 1) for k in range(64)])
        assert (first, last) == (1, 64)
        stats = wal.stats()
        assert stats["records_appended"] == 64
        assert stats["group_appends"] == 1

    def test_torn_append_rotates_and_retries_once(self):
        env = StorageEnv(injector=FaultInjector(5))
        wal = WriteAheadLog(env, "t")
        env.injector.arm_torn_append(1)
        lsn = wal.append(7, 7)  # tear absorbed by the retry
        assert lsn == 1
        assert wal.stats()["torn_appends"] == 1
        _, replay = WriteAheadLog.open(env, "t")
        assert (7, 7) in {(k, v) for _, k, v in replay.records}
        # The torn prefix replays as at most a truncated tail.
        assert replay.duplicates_dropped == 0

    def test_double_tear_raises_and_record_is_unacked(self):
        env = StorageEnv(injector=FaultInjector(5))
        wal = WriteAheadLog(env, "t")
        wal.append(1, 1)
        env.injector.arm_torn_append(2)
        with pytest.raises(TornAppendError):
            wal.append(2, 2)
        _, replay = WriteAheadLog.open(env, "t")
        keys = {k for _, k, _ in replay.records}
        assert 1 in keys  # acked survives
        # Whether key 2 landed depends on where the tear fell — both are
        # legal (unacked may replay); what matters is no tear is fatal.
        wal2 = WriteAheadLog(env, "t")
        assert wal2.append(3, 3) > 0

    def test_safe_lsn_tracks_inflight(self):
        env = StorageEnv()
        wal = WriteAheadLog(env, "t")
        first, last = wal.append_many([(1, 1), (2, 2), (3, 3)])
        assert wal.safe_lsn() == 0  # nothing applied yet
        wal.mark_applied(first, last)
        assert wal.safe_lsn() == last

    def test_truncate_through_drops_whole_segments(self):
        env = StorageEnv()
        wal = WriteAheadLog(env, "t", segment_records=4)
        for k in range(12):
            lsn = wal.append(k, k)
            wal.mark_applied(lsn)
        assert wal.truncate_through(8) == 2
        _, replay = WriteAheadLog.open(env, "t", segment_records=4)
        assert replay.records[0][0] == 9  # first surviving LSN

    def test_open_after_lsn_skips_fenced_records(self):
        """Records at or below the checkpoint fence are peek-skipped,
        but LSN bookkeeping (next append, truncation) is unaffected."""
        env = StorageEnv()
        wal = WriteAheadLog(env, "t", segment_records=4)
        for k in range(10):
            lsn = wal.append(k, k * 10)
            wal.mark_applied(lsn)
        wal2, replay = WriteAheadLog.open(
            env, "t", segment_records=4, after_lsn=7
        )
        assert [lsn for lsn, _, _ in replay.records] == [8, 9, 10]
        assert replay.records_scanned == 10
        assert replay.records_skipped == 7
        # Appending continues from the true tail, not the fenced view.
        assert wal2.append(99, 99) == 11
        # Sealed-segment max LSNs survived the skip: a later checkpoint
        # can still truncate the fenced segments.
        assert wal2.truncate_through(8) == 2


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
class TestCheckpointManager:
    def test_write_load_roundtrip(self):
        env = StorageEnv()
        mgr = CheckpointManager(env, "t")
        mgr.write({"tables": []}, b"payload-1", wal_lsn=10)
        mgr.write({"tables": []}, b"payload-2", wal_lsn=20)
        ckpt = mgr.load_latest()
        assert ckpt is not None
        assert (ckpt.seq, ckpt.wal_lsn, ckpt.payload) == (2, 20, b"payload-2")
        assert ckpt.fallbacks == 0

    def test_rot_falls_back_to_previous(self):
        env = StorageEnv(injector=FaultInjector(11))
        mgr = CheckpointManager(env, "t")
        mgr.write({}, b"old", wal_lsn=1)
        mgr.write({}, b"new", wal_lsn=2)
        env.rot_blob(mgr.latest_name())
        ckpt = mgr.load_latest()
        assert ckpt is not None
        assert ckpt.payload == b"old"
        assert ckpt.fallbacks == 1
        assert mgr.stats()["fallbacks"] == 1

    def test_all_corrupt_means_full_wal_replay(self):
        env = StorageEnv(injector=FaultInjector(11))
        mgr = CheckpointManager(env, "t", keep=2)
        mgr.write({}, b"a", wal_lsn=1)
        mgr.write({}, b"b", wal_lsn=2)
        for name in list(env.list_blobs(mgr.prefix)):
            if name != mgr.current_name:
                env.rot_blob(name)
        assert mgr.load_latest() is None
        assert mgr.stats()["fallbacks"] == 2

    def test_truncated_checkpoint_detected(self):
        env = StorageEnv()
        mgr = CheckpointManager(env, "t")
        name = mgr.write({}, b"full", wal_lsn=3)
        env.put_blob(name, env.get_blob(name)[:-2])  # truncate at rest
        assert mgr.load_latest() is None
        assert mgr.verify_latest()["ok"] is False

    def test_prune_keeps_configured_count(self):
        env = StorageEnv()
        mgr = CheckpointManager(env, "t", keep=2)
        for i in range(5):
            mgr.write({}, b"p%d" % i, wal_lsn=i)
        assert mgr.stats()["kept"] == 2
        assert mgr.stats()["pruned"] == 3


# ----------------------------------------------------------------------
# DurableLSM
# ----------------------------------------------------------------------
def _fill(tree, keys):
    for k in keys:
        tree.put(k, k & 0xFF)


class TestDurableLSM:
    def test_restore_equals_pre_crash(self):
        env = StorageEnv()
        tree = DurableLSM(name="t", env=env, memtable_capacity=64)
        rng = random.Random(0)
        keys = sorted({rng.getrandbits(48) for _ in range(500)})
        _fill(tree, keys)
        tree.checkpoint()
        late = sorted({rng.getrandbits(48) for _ in range(100)})
        _fill(tree, late)  # these live only in WAL + memtable
        restored, report = DurableLSM.restore(
            env=env, name="t", memtable_capacity=64
        )
        assert report["checkpoint_seq"] == 1
        assert report["wal_records_replayed"] >= len(late)
        for k in keys + late:
            found, _ = restored.get(k)
            assert found, f"lost acknowledged key {k}"
        assert report["tables_quarantined"] == 0

    def test_restore_without_checkpoint_is_full_wal_replay(self):
        env = StorageEnv()
        tree = DurableLSM(name="t", env=env, memtable_capacity=32)
        _fill(tree, range(0, 300, 3))
        restored, report = DurableLSM.restore(
            env=env, name="t", memtable_capacity=32
        )
        assert report["checkpoint_seq"] == 0
        assert report["wal_records_replayed"] == 100
        assert all(restored.get(k)[0] for k in range(0, 300, 3))

    def test_delete_replays_as_tombstone(self):
        env = StorageEnv()
        tree = DurableLSM(name="t", env=env, memtable_capacity=1024)
        tree.put(5, 1)
        tree.put(6, 1)
        tree.delete(5)
        restored, _ = DurableLSM.restore(
            env=env, name="t", memtable_capacity=1024
        )
        assert not restored.get(5)[0]
        assert restored.get(6)[0]

    def test_rotted_data_blob_quarantines_range(self):
        env = StorageEnv(injector=FaultInjector(2))
        tree = DurableLSM(name="t", env=env, memtable_capacity=64)
        _fill(tree, range(0, 1000, 2))
        tree.flush()
        tree.checkpoint()
        live = {t.table_id for t in tree.read_view().tables}
        record = next(
            r for tid, r in tree.data_records().items() if tid in live
        )
        env.rot_blob(record.blob_name)
        restored, report = DurableLSM.restore(
            env=env, name="t", memtable_capacity=64
        )
        assert report["tables_quarantined"] == 1
        [(lo, hi)] = report["quarantined"]
        assert (lo, hi) == (record.min_key, record.max_key)
        # Keys outside the quarantined table still answer.
        outside = [
            k for k in range(0, 1000, 2) if not lo <= k <= hi
        ]
        assert all(restored.get(k)[0] for k in outside)

    def test_auto_checkpoint_cadence(self):
        env = StorageEnv()
        tree = DurableLSM(
            name="t", env=env, memtable_capacity=64, checkpoint_every=50
        )
        _fill(tree, range(120))
        assert tree.checkpoints.stats()["written"] == 2

    def test_table_data_record_rejects_malformed(self):
        with pytest.raises(FilterCorruptionError):
            TableDataRecord.from_dict({"table_id": 1})
        with pytest.raises(FilterCorruptionError):
            TableDataRecord.from_dict("nope")


# ----------------------------------------------------------------------
# scrubber
# ----------------------------------------------------------------------
class TestScrubber:
    def _tree(self):
        env = StorageEnv(injector=FaultInjector(4))
        tree = DurableLSM(name="t", env=env, memtable_capacity=64)
        _fill(tree, range(0, 600, 2))
        tree.flush()
        tree.checkpoint()
        return env, tree

    def test_clean_scrub_finds_nothing(self):
        _, tree = self._tree()
        report = Scrubber(tree).scrub()
        assert report["rot_detected"] == 0
        assert report["blobs_checked"] > 0

    def test_data_rot_detected_and_repaired_locally(self):
        env, tree = self._tree()
        live = {t.table_id for t in tree.read_view().tables}
        record = next(
            r for tid, r in tree.data_records().items() if tid in live
        )
        env.rot_blob(record.blob_name)
        scrubber = Scrubber(tree)
        report = scrubber.scrub()
        assert report["rot_detected"] == 1
        assert report["repaired_local"] == 1
        assert not report["unrepairable"]
        # Idempotent: the repair really fixed the bytes.
        assert scrubber.scrub()["rot_detected"] == 0

    def test_checkpoint_rot_repaired_with_fresh_checkpoint(self):
        env, tree = self._tree()
        env.rot_blob(tree.checkpoints.latest_name())
        report = Scrubber(tree).scrub()
        assert report["rot_detected"] == 1
        assert report["repaired_local"] == 1
        assert tree.checkpoints.verify_latest()["ok"]


# ----------------------------------------------------------------------
# segment digests
# ----------------------------------------------------------------------
class TestSegmentDigestTree:
    def test_order_independent_equality(self):
        pairs = [(random.Random(1).getrandbits(62), i) for i in range(200)]
        a = SegmentDigestTree.build(pairs, segment_bits=5)
        b = SegmentDigestTree.build(reversed(pairs), segment_bits=5)
        assert a.root() == b.root()
        assert a.diff(b) == []

    def test_diff_pinpoints_divergent_segment(self):
        rng = random.Random(2)
        pairs = [(rng.getrandbits(62), 1) for _ in range(300)]
        a = SegmentDigestTree.build(pairs, segment_bits=6)
        b = SegmentDigestTree.build(pairs, segment_bits=6)
        extra_key = 3 << 56  # lands in a known segment
        b.add(extra_key, 1)
        divergent = a.diff(b)
        assert divergent == [extra_key >> (64 - 6)]

    def test_add_twice_removes(self):
        a = SegmentDigestTree(segment_bits=4)
        b = SegmentDigestTree(segment_bits=4)
        a.add(10, "x")
        a.add(10, "x")  # XOR cancels the fingerprint
        assert a.diff(b) == [] or a.segment_count(0) == 2
        # counts differ, so the leaf digest differs — that's intended:
        assert a.root() != b.root()

    def test_seed_mismatch_incomparable(self):
        a = SegmentDigestTree(segment_bits=4, seed=1)
        b = SegmentDigestTree(segment_bits=4, seed=2)
        with pytest.raises(ValueError):
            a.diff(b)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SegmentDigestTree(segment_bits=0)
        with pytest.raises(ValueError):
            SegmentDigestTree(segment_bits=65)


# ----------------------------------------------------------------------
# cluster-facing pieces
# ----------------------------------------------------------------------
class TestClusterDurability:
    def test_hint_cap_drops_oldest_and_counts(self):
        from repro.cluster import FilterCluster

        cluster = FilterCluster(
            1, 2, None, seed=3, hint_cap=5, memtable_capacity=64, workers=1
        )
        cluster.start()
        try:
            cluster.crash_replica(0, 1)
            for k in range(10):
                cluster.put(k, k)
            backlog = cluster.hint_backlog()
            assert backlog["s0r1"] == 5
            health = cluster.health()
            assert health["hints_dropped"] == 5
            # The *newest* five survive.
            with cluster._hint_lock:
                kept = [k for k, _ in cluster._hints["s0r1"]]
            assert kept == [5, 6, 7, 8, 9]
        finally:
            cluster.stop()

    def test_replica_quarantine_overlay_and_refill(self):
        from repro.cluster import FilterCluster

        cluster = FilterCluster(
            1, 2, None, seed=5, durability=True,
            memtable_capacity=64, workers=1,
        )
        cluster.start()
        try:
            rng = random.Random(7)
            keys = sorted({rng.getrandbits(62) for _ in range(600)})
            cluster.load(keys)
            rep = cluster.replica(0, 0)
            rep.checkpoint()
            cluster.crash_replica(0, 0)
            live = {t.table_id for t in rep.lsm.read_view().tables}
            record = next(
                r
                for tid, r in rep.lsm.data_records().items()
                if tid in live
            )
            rep.env.rot_blob(record.blob_name)
            report = cluster.restart_replica(0, 0)
            assert report["tables_quarantined"] == 1
            rep = cluster.replica(0, 0)
            [(qlo, qhi)] = rep.quarantined_ranges()
            # Quarantined pieces force positive on this replica alone.
            inside = [k for k in keys if qlo <= k <= qhi][:20]
            resp = rep.submit_range_batch([(k, k) for k in inside]).result()
            assert all(resp.positive)
            with pytest.raises(TransientIOError):
                rep.scan_range(qlo, qhi)
            # Anti-entropy refills from the sibling and lifts it.
            ae = cluster.anti_entropy()
            assert ae["quarantine_refilled"] == 1
            assert not rep.quarantined_ranges()
            rep.scan_range(qlo, qhi)  # now allowed
            assert all(rep.lsm.get(k)[0] for k in inside)
        finally:
            cluster.stop()

    def test_torn_append_panics_replica_and_hints_write(self):
        from repro.cluster import FilterCluster

        cluster = FilterCluster(
            1, 2, None, seed=9, durability=True,
            memtable_capacity=64, workers=1,
        )
        cluster.start()
        try:
            cluster.load(range(100))
            rep = cluster.replica(0, 0)
            rep.injector.arm_torn_append(2)
            cluster.put(424242, 1)
            assert rep.crashed
            assert cluster.hint_backlog().get("s0r0") == 1
            cluster.restart_replica(0, 0)
            assert cluster.replica(0, 0).lsm.get(424242)[0]
        finally:
            cluster.stop()

    def test_anti_entropy_repairs_manufactured_divergence(self):
        from repro.cluster import FilterCluster
        from repro.storage.lsm import LSMTree

        cluster = FilterCluster(
            1, 3, None, seed=11, durability=True,
            memtable_capacity=64, workers=1,
        )
        cluster.start()
        try:
            rng = random.Random(13)
            keys = sorted({rng.getrandbits(62) for _ in range(300)})
            cluster.load(keys)
            lone = cluster.replica(0, 2)
            # Bypass the cluster write path: only this replica sees it.
            LSMTree.put(lone.lsm, 777_000_000, 1)
            report = cluster.anti_entropy()
            assert len(report["segments_diverged"]) == 1
            assert report["converged"]
            for rid in range(3):
                assert cluster.replica(0, rid).lsm.get(777_000_000)[0]
        finally:
            cluster.stop()
