"""Chaos harness: the no-false-negative guarantee under storage faults.

The paper's headline property is one-sided error — a negative answer is
always correct.  This suite holds the whole stack to that guarantee while
the storage layer misbehaves: persisted filter blobs are torn and
bit-flipped, reads fail transiently mid-query, and crash recovery runs
over the damage.  Every test drives a seeded
:class:`~repro.storage.faults.FaultInjector` (fixed seed, overridable via
``REPRO_CHAOS_SEED`` so CI pins the fault sequence), asserts zero false
negatives across the base/SS/SE/PO variants on both the scalar and batch
query paths, and checks that every injected corruption is detected —
the v2 CRC32 catches all flips in the corpus.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FilterError, TransientIOError
from repro.core.rencoder import REncoder
from repro.core.serialize import dumps, loads
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS
from repro.storage.env import StorageEnv
from repro.storage.faults import FaultInjector
from repro.storage.lsm import LSMTree

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", 20230713))

TOP64 = (1 << 64) - 1


def _factory(cls, keys_hint=None):
    """A filter factory for ``cls`` (SE gets a small query sample)."""
    if cls is REncoderSE:
        sample = [(5, 70), (1 << 30, (1 << 30) + 64)]
        return lambda ks: cls(ks, bits_per_key=14, sample_queries=sample)
    return lambda ks: cls(ks, bits_per_key=14)


def _build_lsm(cls, keys, *, injector=None, memtable_capacity=512):
    env = StorageEnv(injector=injector)
    lsm = LSMTree(
        _factory(cls),
        memtable_capacity=memtable_capacity,
        env=env,
        persist_filters=True,
    )
    for k in keys:
        lsm.put(int(k), int(k) & 0xFF)
    lsm.flush()
    return lsm


def _assert_no_false_negatives(lsm, keys, *, sample=200):
    """Points, ranges, and both batch paths must all find every key."""
    step = max(1, len(keys) // sample)
    probe = [int(k) for k in keys[::step]]
    for k in probe:
        assert lsm.get(k) == (True, k & 0xFF), f"false negative point {k}"
    assert lsm.get_many(probe) == [(True, k & 0xFF) for k in probe]
    ranges = [(max(0, k - 2), min(TOP64, k + 2)) for k in probe[:50]]
    scalar = [lsm.range_query(lo, hi) for lo, hi in ranges]
    for (lo, hi), items in zip(ranges, scalar):
        found = {k for k, _ in items}
        k = min(max(lo, 0) + 2, hi)
        assert any(lo <= key <= hi for key in found) or k not in probe
    for k, items in zip(probe[:50], scalar):
        assert (k, k & 0xFF) in items, f"false negative range around {k}"
    assert lsm.range_query_many(ranges) == scalar


ALL_VARIANTS = [REncoder, REncoderSS, REncoderSE, REncoderPO]


@pytest.mark.parametrize("cls", ALL_VARIANTS)
class TestCrashRecovery:
    def test_clean_recovery_loads_everything(self, cls):
        keys = np.unique(
            np.random.default_rng(CHAOS_SEED).integers(
                0, 1 << 48, 1500, dtype=np.uint64
            )
        )
        lsm = _build_lsm(cls, keys)
        summary = lsm.recover()
        assert summary["tables"] > 0
        assert summary["loaded"] == summary["tables"]
        assert summary["rebuilt"] == summary["degraded"] == 0
        assert lsm.env.stats.corruptions_detected == 0
        _assert_no_false_negatives(lsm, keys)

    def test_recovery_under_all_fault_types(self, cls):
        keys = np.unique(
            np.random.default_rng(CHAOS_SEED + 1).integers(
                0, 1 << 48, 2000, dtype=np.uint64
            )
        )
        injector = FaultInjector(
            CHAOS_SEED,
            transient_read_p=0.05,
            torn_write_p=0.3,
            bit_flip_p=0.3,
        )
        lsm = _build_lsm(cls, keys, injector=injector)
        summary = lsm.recover()
        stats = lsm.env.stats
        assert summary["tables"] > 0
        assert summary["loaded"] + summary["rebuilt"] == summary["tables"]
        # Every table whose blob was damaged was detected and rebuilt:
        # nothing silently loaded garbage, nothing stayed degraded.
        assert summary["rebuilt"] == stats.filter_rebuilds > 0
        assert stats.corruptions_detected >= summary["rebuilt"] > 0
        assert stats.torn_writes + stats.bit_flips > 0
        _assert_no_false_negatives(lsm, keys)
        # Post-recovery tables are filtered again (not all-positive).
        assert all(
            t.filter is not None for t in lsm._tables_newest_first()
        )

    def test_every_blob_torn_still_correct(self, cls):
        keys = np.unique(
            np.random.default_rng(CHAOS_SEED + 2).integers(
                0, 1 << 48, 1200, dtype=np.uint64
            )
        )
        injector = FaultInjector(CHAOS_SEED, torn_write_p=1.0)
        lsm = _build_lsm(cls, keys, injector=injector)
        summary = lsm.recover()
        assert summary["rebuilt"] == summary["tables"] > 0
        _assert_no_false_negatives(lsm, keys)


class TestDegradedWindow:
    def test_deferred_rebuild_serves_all_positive(self):
        keys = np.unique(
            np.random.default_rng(CHAOS_SEED + 3).integers(
                0, 1 << 48, 1500, dtype=np.uint64
            )
        )
        injector = FaultInjector(CHAOS_SEED, bit_flip_p=1.0)
        lsm = _build_lsm(REncoder, keys, injector=injector)
        summary = lsm.recover(rebuild="deferred")
        assert summary["degraded"] == summary["tables"] > 0
        assert summary["rebuilt"] == 0
        tables = list(lsm._tables_newest_first())
        assert all(t.filter_state == "degraded" for t in tables)
        assert all(t.filter is None for t in tables)
        # The degraded window: unfiltered, therefore trivially no false
        # negatives — queries stay correct the whole time.
        _assert_no_false_negatives(lsm, keys)
        # Exit the window: rebuild in place, filters return, still correct.
        injector.bit_flip_p = 0.0
        for t in tables:
            t.rebuild_filter()
            assert t.filter_state == "rebuilt"
            assert t.filter is not None
        assert lsm.env.stats.filter_rebuilds == len(tables)
        _assert_no_false_negatives(lsm, keys)

    def test_degraded_table_costs_more_io(self):
        keys = np.unique(
            np.random.default_rng(CHAOS_SEED + 4).integers(
                0, 1 << 48, 1500, dtype=np.uint64
            )
        )
        injector = FaultInjector(CHAOS_SEED, torn_write_p=1.0)
        lsm = _build_lsm(REncoder, keys, injector=injector)
        lsm.recover(rebuild="deferred")

        def wasted(n=100):
            lsm.env.stats.reset()
            rng = np.random.default_rng(CHAOS_SEED)
            for _ in range(n):
                lo = int(rng.integers(0, 1 << 48))
                lsm.range_query(lo, lo + 15)
            return lsm.env.stats.wasted_reads

        degraded_cost = wasted()
        for t in lsm._tables_newest_first():
            t.rebuild_filter()
        rebuilt_cost = wasted()
        # The whole point of the rebuild: empty queries stop paying I/O.
        assert rebuilt_cost < degraded_cost


class TestChecksumCorpus:
    """CRC32 detects every injected flip across the variant corpus."""

    @pytest.mark.parametrize("cls", ALL_VARIANTS)
    def test_all_single_bit_flips_detected(self, cls, uniform_keys):
        blob = dumps(_factory(cls)(uniform_keys))
        rng = random.Random(CHAOS_SEED)
        for _ in range(120):
            bit = rng.randrange(len(blob) * 8)
            damaged = bytearray(blob)
            damaged[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(FilterError):
                loads(bytes(damaged))

    def test_all_truncations_detected(self, uniform_keys):
        blob = dumps(REncoder(uniform_keys, bits_per_key=12))
        rng = random.Random(CHAOS_SEED)
        cuts = {0, 1, 3, 4, 9, 10, len(blob) - 5, len(blob) - 1}
        cuts.update(rng.randrange(len(blob)) for _ in range(64))
        for cut in cuts:
            with pytest.raises(FilterError):
                loads(blob[:cut])


class TestBatchScalarEquivalenceUnderFaults:
    """Satellite: batch and scalar answers agree when a mid-batch
    transient fault fires and is retried."""

    def _lsm_and_probe(self):
        keys = np.unique(
            np.random.default_rng(CHAOS_SEED + 5).integers(
                0, 1 << 44, 1800, dtype=np.uint64
            )
        )
        injector = FaultInjector(CHAOS_SEED)
        lsm = _build_lsm(REncoder, keys, injector=injector)
        rng = np.random.default_rng(CHAOS_SEED + 6)
        present = [int(k) for k in rng.choice(keys, 40)]
        absent = [int(rng.integers(0, 1 << 44)) for _ in range(40)]
        return lsm, injector, present + absent

    def test_get_many_matches_get_with_midbatch_fault(self):
        lsm, injector, probe = self._lsm_and_probe()
        expected = [lsm.get(k) for k in probe]
        lsm.env.stats.reset()
        injector.arm_transient_reads(3, after=5)
        assert lsm.get_many(probe) == expected
        assert lsm.env.stats.retries >= 3
        assert lsm.env.stats.transient_faults >= 3

    def test_range_query_many_matches_scalar_with_midbatch_fault(self):
        lsm, injector, probe = self._lsm_and_probe()
        ranges = [(k, k + 31) for k in probe]
        expected = [lsm.range_query(lo, hi) for lo, hi in ranges]
        lsm.env.stats.reset()
        injector.arm_transient_reads(2, after=3)
        assert lsm.range_query_many(ranges) == expected
        assert lsm.env.stats.retries >= 2

    def test_filter_query_many_unaffected_by_env_faults(self):
        # RangeFilter.query_many is pure memory — an armed storage fault
        # must not leak into it, and batch == scalar regardless.
        lsm, injector, probe = self._lsm_and_probe()
        filt = next(lsm._tables_newest_first()).filter
        ranges = [(k, k + 31) for k in probe]
        injector.arm_transient_reads(5)
        batch = filt.query_many(ranges)
        scalar = [filt.query_range(lo, hi) for lo, hi in ranges]
        assert batch == scalar
        injector.arm_transient_reads(0)  # disarm for other tests


class TestVerifyInvariants:
    def test_fresh_filter_passes_with_keys(self, uniform_keys):
        for cls in ALL_VARIANTS:
            filt = _factory(cls)(uniform_keys)
            assert filt.verify_invariants(uniform_keys)

    def test_tampered_level_list_detected(self, uniform_keys):
        filt = REncoder(uniform_keys, bits_per_key=14)
        filt._stored_sorted = filt._stored_sorted[:-1]
        with pytest.raises(FilterError):
            filt.verify_invariants()

    def test_tampered_next_stored_detected(self, uniform_keys):
        filt = REncoder(uniform_keys, bits_per_key=14)
        filt._next_stored[5] = 63
        with pytest.raises(FilterError):
            filt.verify_invariants()

    def test_wiped_array_is_a_false_negative(self, uniform_keys):
        filt = REncoder(uniform_keys, bits_per_key=14)
        filt.rbf._array[:] = 0
        filt.rbf._ones_dirty = True
        with pytest.raises(FilterError):
            filt.verify_invariants(uniform_keys)

    def test_nonzero_pad_word_detected(self, uniform_keys):
        filt = REncoder(uniform_keys, bits_per_key=14)
        filt.rbf._array[-1] = 1
        with pytest.raises(FilterError):
            filt.verify_invariants()


class TestSanitizedChaos:
    """The chaos scenario under the concurrency sanitizer.

    A full ``REPRO_SANITIZE=1`` pytest run watches the whole session via
    the conftest fixture (and fails on any cycle at session end); this
    test makes the guarantee local and unconditional — a concurrent
    faulty recovery run must leave a cycle-free lock-order graph even
    when the env var is unset.
    """

    def test_chaos_run_reports_zero_cycles(self, uniform_keys):
        from repro.lint.sanitizer import LockOrderWatcher
        from repro.service import FilterService

        injector = FaultInjector(
            CHAOS_SEED, transient_read_p=0.05, torn_write_p=0.3,
            bit_flip_p=0.3,
        )
        watcher = LockOrderWatcher()
        with watcher:
            # Build inside the watcher so every lock in the stack —
            # memtable, LSM, SSTable state, breaker, admission queue,
            # metrics registry — lands in the order graph.
            lsm = _build_lsm(REncoder, uniform_keys, injector=injector)
            lsm.recover()
            with FilterService(lsm, workers=4, queue_depth=16) as svc:
                probe = [int(k) for k in uniform_keys[::40]]
                for k in probe:
                    assert svc.query_point(k).positive
                assert all(
                    svc.query_range_batch(
                        [(k, k + 2) for k in probe]
                    ).positive
                )
        report = watcher.report()
        assert report["acquisitions"] > 100, "chaos run barely locked?"
        assert report["cycles"] == [], (
            f"potential deadlock in chaos run: {report['cycles']}"
        )


@given(
    seed=st.integers(0, 2**32 - 1),
    n_keys=st.integers(50, 400),
    torn=st.floats(0.0, 1.0),
    flip=st.floats(0.0, 1.0),
    transient=st.floats(0.0, 0.2),
)
@settings(max_examples=12, deadline=None)
def test_property_no_false_negatives_under_any_fault_mix(
    seed, n_keys, torn, flip, transient
):
    """For any seeded fault mix, recovery preserves one-sided error."""
    keys = np.unique(
        np.random.default_rng(seed).integers(
            0, 1 << 40, n_keys, dtype=np.uint64
        )
    )
    injector = FaultInjector(
        seed, transient_read_p=transient, torn_write_p=torn, bit_flip_p=flip
    )
    lsm = _build_lsm(REncoder, keys, injector=injector, memtable_capacity=128)
    summary = lsm.recover()
    assert summary["loaded"] + summary["rebuilt"] == summary["tables"]
    probe = [int(k) for k in keys[:: max(1, len(keys) // 60)]]

    # One-sided error is about *answers*: a present key must never be
    # reported absent.  Exhausting the read-retry budget and re-raising
    # TransientIOError is the env's documented availability behaviour
    # (p ~= transient^(retries+1) per read chain — rare but reachable at
    # the strategy's upper bound), not a false negative, so a probe that
    # faults out is retried rather than failed.
    def eventually(fn):
        for _ in range(8):
            try:
                return fn()
            except TransientIOError:
                continue
        return fn()

    for k in probe:
        assert eventually(lambda: lsm.get(k)) == (True, k & 0xFF)
    assert eventually(lambda: lsm.get_many(probe)) == [
        (True, k & 0xFF) for k in probe
    ]
