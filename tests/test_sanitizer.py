"""Concurrency sanitizer: lock-order cycles, long holds, patching.

The headline case the ISSUE demands: an AB/BA lock-order inversion —
the classic potential deadlock — must be flagged as a cycle even though
the schedule that would actually deadlock never runs.  Also covered:
clean ordering stays clean, reentrant RLocks don't self-edge, installed
mode patches/restores the ``threading`` constructors, watched locks
keep working under ``threading.Condition``, long holds are reported,
and a real concurrent :class:`FilterService` run is cycle-free.
"""

from __future__ import annotations

import json
import threading
import time

from repro.lint.sanitizer import (
    DEFAULT_REPORT_PATH,
    LockOrderWatcher,
    raw_lock,
    raw_rlock,
)


def run_thread(fn) -> None:
    t = threading.Thread(target=fn)
    t.start()
    t.join()


class TestLockOrder:
    def test_ab_ba_inversion_is_flagged(self):
        """The deliberate AB/BA deadlock pattern must produce a cycle."""
        w = LockOrderWatcher()
        a = w.wrap(raw_lock(), name="A")
        b = w.wrap(raw_lock(), name="B")

        def ab():
            with a:
                with b:
                    pass

        def ba():
            with b:
                with a:
                    pass

        run_thread(ab)
        run_thread(ba)
        assert w.cycles() == [["A", "B"]]
        assert w.edges() == {("A", "B"): 1, ("B", "A"): 1}

    def test_consistent_order_is_clean(self):
        w = LockOrderWatcher()
        a = w.wrap(raw_lock(), name="A")
        b = w.wrap(raw_lock(), name="B")
        c = w.wrap(raw_lock(), name="C")

        def chain():
            with a, b, c:
                pass

        for _ in range(3):
            run_thread(chain)
        assert w.cycles() == []
        assert w.edges()[("A", "B")] == 3
        assert w.edges()[("A", "C")] == 3
        assert w.edges()[("B", "C")] == 3

    def test_three_way_cycle(self):
        w = LockOrderWatcher()
        locks = {n: w.wrap(raw_lock(), name=n) for n in "ABC"}

        def order(first, second):
            def fn():
                with locks[first]:
                    with locks[second]:
                        pass
            return fn

        run_thread(order("A", "B"))
        run_thread(order("B", "C"))
        run_thread(order("C", "A"))
        assert w.cycles() == [["A", "B", "C"]]

    def test_reentrant_rlock_has_no_self_edge(self):
        w = LockOrderWatcher()
        r = w.wrap(raw_rlock(), name="R")

        def reenter():
            with r:
                with r:
                    pass

        run_thread(reenter)
        assert w.edges() == {}
        assert w.cycles() == []
        # One *hold* despite two acquires (reentrancy collapsed).
        assert w.report()["holds"]["R"]["count"] == 1

    def test_same_site_two_instances_no_false_cycle(self):
        """Two locks from one creation site: nesting them produces a
        self-edge-free graph (site-level dedup, not instance-level)."""
        w = LockOrderWatcher()
        a = w.wrap(raw_lock(), name="S")
        b = w.wrap(raw_lock(), name="S")

        def nest():
            with a:
                with b:
                    pass

        run_thread(nest)
        assert w.cycles() == []


class TestHolds:
    def test_long_hold_outlier_reported(self):
        w = LockOrderWatcher(long_hold_ns=1_000_000)  # 1 ms threshold
        slow = w.wrap(raw_lock(), name="slow")
        quick = w.wrap(raw_lock(), name="quick")
        with slow:
            time.sleep(0.02)
        with quick:
            pass
        outliers = w.long_holds()
        assert [o["site"] for o in outliers] == ["slow"]
        assert outliers[0]["max_ns"] >= 1_000_000
        stats = w.report()["holds"]
        assert stats["quick"]["count"] == 1

    def test_acquisition_count(self):
        w = LockOrderWatcher()
        lk = w.wrap(raw_lock(), name="L")
        for _ in range(5):
            with lk:
                pass
        assert w.acquisitions == 5


class TestInstall:
    def test_install_patches_and_uninstall_restores(self):
        orig_lock, orig_rlock = threading.Lock, threading.RLock
        w = LockOrderWatcher()
        with w:
            assert threading.Lock is not orig_lock
            lk = threading.Lock()
            with lk:
                pass
        assert threading.Lock is orig_lock
        assert threading.RLock is orig_rlock
        assert w.acquisitions == 1
        # Site points at this test file, not the sanitizer internals.
        assert "test_sanitizer" in w.report()["sites"][0]

    def test_install_is_idempotent(self):
        w = LockOrderWatcher()
        w.install()
        w.install()
        w.uninstall()
        w.uninstall()
        assert threading.Lock is raw_lock().__class__ or callable(threading.Lock)

    def test_condition_on_watched_locks(self):
        """Condition wait/notify must work over patched constructors,
        and the wait must not be accounted as a lock hold."""
        w = LockOrderWatcher(long_hold_ns=50_000_000)
        with w:
            cond = threading.Condition()  # watched RLock inside
            ready = []

            def waiter():
                with cond:
                    while not ready:
                        cond.wait(timeout=5.0)

            t = threading.Thread(target=waiter)
            t.start()
            time.sleep(0.15)  # let the waiter block inside wait()
            with cond:
                ready.append(1)
                cond.notify_all()
            t.join(timeout=5.0)
            assert not t.is_alive()
        assert w.cycles() == []
        # The 150 ms spent in cond.wait() released the lock: no
        # long-hold outlier may be attributed to it.
        assert w.long_holds() == []

    def test_service_stack_under_watcher_is_cycle_free(self):
        """A real concurrent service run: watched end to end, no cycles."""
        w = LockOrderWatcher()
        with w:
            from repro.core.rencoder import REncoder
            from repro.service import FilterService
            from repro.storage.env import SimulatedClock, StorageEnv
            from repro.storage.lsm import LSMTree

            env = StorageEnv(clock=SimulatedClock())
            lsm = LSMTree(
                lambda ks: REncoder(ks, bits_per_key=12),
                memtable_capacity=256,
                env=env,
            )
            for k in range(0, 2000, 2):
                lsm.put(k, k & 0xFF)
            lsm.flush()
            with FilterService(lsm, workers=4, queue_depth=16) as svc:
                for k in range(0, 2000, 50):
                    assert svc.query_range(k, k + 1).positive
        report = w.report()
        assert report["acquisitions"] > 100
        assert report["cycles"] == []
        assert report["locks_watched"] >= 5


class TestReport:
    def test_dump_writes_json_artifact(self, tmp_path):
        w = LockOrderWatcher()
        a = w.wrap(raw_lock(), name="A")
        b = w.wrap(raw_lock(), name="B")
        with a:
            with b:
                pass
        path = tmp_path / "report.json"
        written = w.dump(str(path))
        assert written == str(path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert data["acquisitions"] == 2
        assert data["edges"] == [{"held": "A", "acquired": "B", "count": 1}]
        assert data["cycles"] == []
        assert set(data["holds"]) == {"A", "B"}

    def test_dump_honours_env_default(self, tmp_path, monkeypatch):
        target = tmp_path / "custom.json"
        monkeypatch.setenv("REPRO_SANITIZE_REPORT", str(target))
        w = LockOrderWatcher()
        assert w.dump() == str(target)
        assert target.exists()

    def test_default_report_path_constant(self):
        assert DEFAULT_REPORT_PATH == "SANITIZER_REPORT.json"
