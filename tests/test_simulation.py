"""Monte-Carlo validation of Lemma 1 and Theorem 2."""

import pytest

from repro.analysis.bounds import a_sequence, fpr_bound
from repro.analysis.simulation import (
    compare_with_lemma1,
    simulate_fpr,
    simulate_path_probability,
)


class TestLemma1Simulation:
    @pytest.mark.parametrize("p", [0.3, 0.5, 0.7])
    def test_matches_closed_form(self, p):
        for height in (2, 4, 6):
            closed = a_sequence(p, height)[-1]
            simulated = simulate_path_probability(
                p, height, trials=4000, seed=height
            )
            assert simulated == pytest.approx(closed, abs=0.04)

    def test_height_one_is_certain(self):
        assert simulate_path_probability(0.2, 1) == 1.0

    def test_table_helper(self):
        rows = compare_with_lemma1(0.5, heights=(2, 3), trials=2000)
        for row in rows:
            assert row["a_simulated"] == pytest.approx(
                row["a_closed_form"], abs=0.05
            )

    def test_invalid(self):
        with pytest.raises(ValueError):
            simulate_path_probability(0.0, 3)
        with pytest.raises(ValueError):
            simulate_path_probability(0.5, 0)


class TestTheorem2Simulation:
    def test_simulation_within_bound(self):
        # Theorem 2 is an upper bound; the simulated truth obeys it.
        for k in (1, 2):
            bound = fpr_bound(0.5, 10, 6, k)
            sim = simulate_fpr(0.5, 10, 6, k, trials=3000, seed=k)
            assert sim <= bound + 0.03

    def test_simulation_equals_bound_in_equality_regime(self):
        # With one hash and no stored/query gap the bound is exactly the
        # path probability — the simulation should land on it.
        bound = fpr_bound(0.5, 6, 6, 1)
        sim = simulate_fpr(0.5, 6, 6, 1, trials=5000, seed=3)
        assert sim == pytest.approx(bound, abs=0.03)

    def test_more_hashes_lower_simulated_fpr(self):
        one = simulate_fpr(0.5, 8, 6, 1, trials=3000, seed=4)
        two = simulate_fpr(0.5, 8, 6, 2, trials=3000, seed=5)
        assert two <= one + 0.02

    def test_more_levels_lower_simulated_fpr(self):
        shallow = simulate_fpr(0.5, 6, 6, 2, trials=3000, seed=6)
        deep = simulate_fpr(0.5, 12, 6, 2, trials=3000, seed=7)
        assert deep <= shallow + 0.02

    def test_invalid(self):
        with pytest.raises(ValueError):
            simulate_fpr(0.5, 4, 6, 1)
