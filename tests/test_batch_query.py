"""Property tests for the vectorised batch query engine.

The batch engine's contract is *bit-identical answers*: for every
REncoder variant, geometry (``group_bits`` 4 and 8, sub-word
``block_bits``) and workload, ``query_range_many`` must return exactly
what a sequential ``query_range`` loop would, and likewise for the point
paths.  Hypothesis searches key sets and query batches; dedicated tests
pin the no-false-negative invariant on the batch path, the
``decompose_batch`` ≡ ``decompose`` equivalence, and the LSM batch reads
(results *and* I/O accounting).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decompose import decompose, decompose_batch
from repro.core.rencoder import FetchCache, REncoder
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree

KEY_BITS = 24
TOP = (1 << KEY_BITS) - 1

VARIANTS = [REncoder, REncoderSS, REncoderSE, REncoderPO]


def _build(cls, keys, group_bits):
    kwargs = dict(key_bits=KEY_BITS, group_bits=group_bits)
    if cls is REncoderSE:
        kwargs["sample_queries"] = [(1, 2), (100, 200)]
    return cls(np.array(sorted(keys), dtype=np.uint64), 12 * len(keys), **kwargs)


ranges_strategy = st.lists(
    st.tuples(st.integers(0, TOP), st.integers(0, 400)).map(
        lambda t: (t[0], min(t[0] + t[1], TOP))
    ),
    min_size=1,
    max_size=30,
)


@pytest.mark.parametrize("cls", VARIANTS)
@pytest.mark.parametrize("group_bits", [4, 8])
@given(
    keys=st.sets(st.integers(0, TOP), min_size=1, max_size=50),
    ranges=ranges_strategy,
)
@settings(max_examples=25, deadline=None)
def test_query_range_many_matches_scalar(cls, group_bits, keys, ranges):
    filt = _build(cls, keys, group_bits)
    batch = filt.query_range_many(ranges)
    scalar = [filt.query_range(lo, hi) for lo, hi in ranges]
    assert [bool(a) for a in batch] == scalar


@pytest.mark.parametrize("cls", VARIANTS)
@given(
    keys=st.sets(st.integers(0, TOP), min_size=1, max_size=50),
    points=st.lists(st.integers(0, TOP), min_size=1, max_size=30),
)
@settings(max_examples=25, deadline=None)
def test_query_point_many_matches_scalar(cls, keys, points):
    filt = _build(cls, keys, 8)
    batch = filt.query_point_many(np.array(points, dtype=np.uint64))
    scalar = [filt.query_point(p) for p in points]
    assert [bool(a) for a in batch] == scalar


@given(keys=st.sets(st.integers(0, TOP), min_size=1, max_size=60))
@settings(max_examples=25, deadline=None)
def test_batch_path_has_no_false_negatives(keys):
    filt = _build(REncoder, keys, 8)
    arr = np.array(sorted(keys), dtype=np.uint64)
    assert all(filt.query_point_many(arr))
    ranges = [(int(k), min(int(k) + 7, TOP)) for k in arr]
    assert all(filt.query_range_many(ranges))


@pytest.mark.parametrize("group_bits", [3, 4, 5])
def test_subword_block_bits_batch_matches_scalar(group_bits):
    # group_bits <= 5 gives sub-word (<= 64-bit) Bitmap Tree blocks.
    rng = np.random.default_rng(group_bits)
    keys = np.unique(rng.integers(0, TOP, 200, dtype=np.uint64))
    filt = _build(REncoder, keys.tolist(), group_bits)
    assert filt.rbf.block_bits <= 64
    los = rng.integers(0, TOP - 500, 300, dtype=np.uint64)
    ranges = [(int(lo), int(lo) + int(w)) for lo, w in
              zip(los, rng.integers(0, 500, 300))]
    batch = filt.query_range_many(ranges)
    assert [bool(a) for a in batch] == [
        filt.query_range(lo, hi) for lo, hi in ranges
    ]


@given(
    spans=st.lists(
        st.tuples(st.integers(0, TOP), st.integers(0, TOP)).map(
            lambda t: (min(t), max(t))
        ),
        min_size=1,
        max_size=20,
    ),
)
@settings(max_examples=50, deadline=None)
def test_decompose_batch_matches_scalar(spans):
    los = np.array([lo for lo, _ in spans], dtype=np.uint64)
    his = np.array([hi for _, hi in spans], dtype=np.uint64)
    qidx, prefixes, lengths = decompose_batch(los, his, KEY_BITS)
    for q, (lo, hi) in enumerate(spans):
        mine = [
            (int(p), int(l))
            for p, l in zip(prefixes[qidx == q], lengths[qidx == q])
        ]
        assert mine == decompose(lo, hi, KEY_BITS)


def test_decompose_batch_full_64bit_domain():
    qidx, prefixes, lengths = decompose_batch(
        np.array([0], dtype=np.uint64),
        np.array([(1 << 64) - 1], dtype=np.uint64),
        64,
    )
    assert list(zip(prefixes.tolist(), lengths.tolist())) == [(0, 0)]


def test_fetch_cache_counts_and_scalar_interface():
    cache = FetchCache()
    assert cache.hit_rate == 0.0
    bt = np.arange(2, dtype=np.uint64)
    assert cache.get((1, 42)) is None
    cache[(1, 42)] = bt
    hit = cache.get((1, 42))
    assert (hit == bt).all()
    assert (cache.probes, cache.fetches, cache.hits) == (2, 1, 1)
    assert len(cache) == 1
    # batch interface sees the scalar insert and vice versa
    rows, found = cache.lookup(1, np.array([7, 42], dtype=np.uint64))
    assert found.tolist() == [False, True]
    assert (rows[1] == bt).all()
    cache.store(1, np.array([7], dtype=np.uint64),
                np.array([[9, 9]], dtype=np.uint64))
    assert cache.get((1, 7)) is not None


def test_batch_query_reports_cache_hit_rate():
    rng = np.random.default_rng(0)
    keys = np.unique(rng.integers(0, TOP, 500, dtype=np.uint64))
    filt = _build(REncoder, keys.tolist(), 8)
    base = int(rng.integers(0, TOP - 4096))
    adjacent = [(base + 64 * i, base + 64 * i + 63) for i in range(32)]
    filt.reset_counters()
    filt.query_range_many(adjacent, cache=FetchCache())
    assert filt.cache_hit_rate > 0.0
    filt.reset_counters()
    assert filt.cache_hit_rate == 0.0


def _fresh_tree(seed=11):
    env = StorageEnv()
    tree = LSMTree(
        lambda ks: REncoder(ks, 12 * len(ks), key_bits=KEY_BITS),
        memtable_capacity=128,
        env=env,
    )
    rng = np.random.default_rng(seed)
    for k in rng.integers(0, TOP, 1200, dtype=np.uint64):
        tree.put(int(k), int(k) + 1)
    for k in rng.integers(0, TOP, 30, dtype=np.uint64):
        tree.delete(int(k))
    return tree, env


def test_lsm_get_many_matches_scalar_with_identical_io():
    t1, e1 = _fresh_tree()
    t2, e2 = _fresh_tree()
    rng = np.random.default_rng(5)
    queries = [int(k) for k in rng.integers(0, TOP, 300, dtype=np.uint64)]
    queries += [int(k) for k, _ in t1.range_query(0, TOP)[:100]]
    e1.reset(); e2.reset()
    scalar = [t1.get(k) for k in queries]
    assert t2.get_many(queries) == scalar
    assert e1.stats == e2.stats


def test_lsm_range_query_many_matches_scalar_with_identical_io():
    t1, e1 = _fresh_tree()
    t2, e2 = _fresh_tree()
    rng = np.random.default_rng(6)
    ranges = []
    for _ in range(120):
        lo = int(rng.integers(0, TOP - 2000))
        ranges.append((lo, lo + int(rng.integers(0, 2000))))
    e1.reset(); e2.reset()
    scalar = [t1.range_query(lo, hi) for lo, hi in ranges]
    assert t2.range_query_many(ranges) == scalar
    assert e1.stats == e2.stats


class TestFetchCacheReuse:
    """A FetchCache reused across batches must never serve stale
    mini-trees: it records the RBF generation it was filled against and
    clears itself when the filter has been mutated since (the service's
    batch path reuses caches across requests, so staleness would be a
    false negative — the one error class this codebase forbids)."""

    def _enc(self, keys):
        return REncoder(
            np.array(sorted(keys), dtype=np.uint64),
            64 * len(keys),
            key_bits=KEY_BITS,
        )

    def test_reused_cache_sees_post_insert_keys(self):
        enc = self._enc([100])
        cache = FetchCache()
        # Fill the cache with mini-trees proving 200 is absent...
        assert not enc.query_range_many([(200, 200)], cache=cache)[0]
        # ...then mutate the filter and ask again through the same cache.
        enc.insert(200)
        assert enc.query_range_many([(200, 200)], cache=cache)[0], (
            "stale cached mini-tree produced a false negative"
        )
        assert enc.query_point_many([200], cache=cache)[0]

    def test_cache_kept_while_generation_unchanged(self):
        enc = self._enc([100, 5000])
        cache = FetchCache()
        enc.query_range_many([(100, 100), (5000, 5000)], cache=cache)
        filled = len(cache._groups)
        enc.query_range_many([(100, 100), (5000, 5000)], cache=cache)
        assert len(cache._groups) >= filled  # no spurious invalidation
        assert cache.generation == enc.rbf.generation

    def test_scalar_probe_validates_cache_too(self):
        """The scalar verify path (``_probe``) also checks generation
        when handed a long-lived FetchCache (the public scalar API uses
        a per-call dict, so only this internal path can go stale)."""
        enc = self._enc([100])
        cache = FetchCache()
        assert not enc._verify(300, KEY_BITS, cache)
        enc.insert(300)
        assert enc._verify(300, KEY_BITS, cache)

    def test_absorb_drains_cache_stats(self):
        """Folding cache stats into the filter zeroes them, so a reused
        cache never double-counts probes/fetches across batches."""
        enc = self._enc([100, 900])
        cache = FetchCache()
        enc.reset_counters()
        enc.query_range_many([(100, 100)], cache=cache)
        first = enc.probe_count
        assert cache.probes == 0 and cache.fetches == 0
        enc.query_range_many([(900, 900)], cache=cache)
        assert enc.probe_count > first  # second batch added, not doubled
