"""Serialization round-trip tests for the REncoder family."""

import numpy as np
import pytest

from repro.core.rencoder import REncoder
from repro.core.serialize import dumps, loads
from repro.core.two_stage import TwoStageREncoder
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS
from repro.workloads.queries import uniform_range_queries


def _assert_equivalent(original, restored, keys, queries):
    for k in keys[:100]:
        assert restored.query_point(int(k)) == original.query_point(int(k))
    for lo, hi in queries:
        assert restored.query_range(lo, hi) == original.query_range(lo, hi)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cls", [REncoder, REncoderSS, REncoderPO]
    )
    def test_variants(self, uniform_keys, cls):
        filt = cls(uniform_keys, bits_per_key=16, seed=3)
        restored = loads(dumps(filt))
        assert type(restored) is cls
        assert restored.stored_levels == filt.stored_levels
        assert restored.size_in_bits() == filt.size_in_bits()
        queries = uniform_range_queries(uniform_keys, 200, seed=4)
        _assert_equivalent(filt, restored, uniform_keys, queries)

    def test_se_round_trip(self, uniform_keys):
        filt = REncoderSE(
            uniform_keys, bits_per_key=16, sample_queries=[(5, 10)]
        )
        restored = loads(dumps(filt))
        assert restored.l_kq == filt.l_kq
        queries = uniform_range_queries(uniform_keys, 100, seed=5)
        _assert_equivalent(filt, restored, uniform_keys, queries)

    def test_two_stage_round_trip(self):
        rng = np.random.default_rng(6)
        values = sorted(set(float(v) for v in rng.lognormal(0, 3, 400)))
        filt = TwoStageREncoder(values, bits_per_key=24)
        restored = loads(dumps(filt))
        assert restored.offset == filt.offset
        for v in values[:100]:
            v32 = float(np.float32(v))
            assert restored.query_float(v32) == filt.query_float(v32)

    def test_metadata_preserved(self, uniform_keys):
        filt = REncoder(uniform_keys, bits_per_key=16, rmax=32, k=3,
                        seed=9)
        restored = loads(dumps(filt))
        assert restored.rmax == 32
        assert restored.rbf.k == 3
        assert restored.n_keys == filt.n_keys


class TestFormat:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            loads(b"XXXX" + b"\x00" * 32)

    def test_wrong_type(self, uniform_keys):
        from repro.filters.bloom import BloomFilter

        with pytest.raises(TypeError):
            dumps(BloomFilter(uniform_keys, bits_per_key=8))

    def test_truncated_payload(self, uniform_keys):
        blob = dumps(REncoder(uniform_keys, bits_per_key=16))
        with pytest.raises(Exception):
            loads(blob[: len(blob) // 2])

    def test_blob_is_compact(self, uniform_keys):
        filt = REncoder(uniform_keys, bits_per_key=16)
        blob = dumps(filt)
        # Metadata overhead stays under a KiB beyond the raw array.
        assert len(blob) < filt.size_in_bits() // 8 + 1024
