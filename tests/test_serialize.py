"""Serialization round-trip tests for the REncoder family.

The ``TestHostileInput``/``TestTruncation`` classes are the negative
side: ``loads`` must answer every malformed buffer — truncated at any
byte, bad magic, unknown class, hostile metadata, payload-length lies —
with a typed :class:`FilterError`, never an ``IndexError``/``KeyError``
or a huge allocation.
"""

import json
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import (
    FilterCorruptionError,
    FilterError,
    TruncatedError,
)
from repro.core.rencoder import REncoder
from repro.core.serialize import MAGIC, checksum, dumps, loads
from repro.core.two_stage import TwoStageREncoder
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS
from repro.workloads.queries import uniform_range_queries


def _repack(blob: bytes, **meta_overrides) -> bytes:
    """Rewrite a v2 blob's metadata and recompute the CRC.

    Setting a field to ``None`` deletes it.  The checksum is valid, so
    ``loads`` gets past the CRC and must reject the *content*.
    """
    _, meta_len = struct.unpack_from("<HI", blob, 4)
    meta = json.loads(blob[10 : 10 + meta_len])
    for key, value in meta_overrides.items():
        if value is None:
            meta.pop(key, None)
        else:
            meta[key] = value
    meta_blob = json.dumps(meta, sort_keys=True).encode()
    body = (
        MAGIC
        + struct.pack("<HI", 2, len(meta_blob))
        + meta_blob
        + blob[10 + meta_len : -4]
    )
    return body + struct.pack("<I", checksum(body))


def _assert_equivalent(original, restored, keys, queries):
    for k in keys[:100]:
        assert restored.query_point(int(k)) == original.query_point(int(k))
    for lo, hi in queries:
        assert restored.query_range(lo, hi) == original.query_range(lo, hi)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cls", [REncoder, REncoderSS, REncoderPO]
    )
    def test_variants(self, uniform_keys, cls):
        filt = cls(uniform_keys, bits_per_key=16, seed=3)
        restored = loads(dumps(filt))
        assert type(restored) is cls
        assert restored.stored_levels == filt.stored_levels
        assert restored.size_in_bits() == filt.size_in_bits()
        queries = uniform_range_queries(uniform_keys, 200, seed=4)
        _assert_equivalent(filt, restored, uniform_keys, queries)

    def test_se_round_trip(self, uniform_keys):
        filt = REncoderSE(
            uniform_keys, bits_per_key=16, sample_queries=[(5, 10)]
        )
        restored = loads(dumps(filt))
        assert restored.l_kq == filt.l_kq
        queries = uniform_range_queries(uniform_keys, 100, seed=5)
        _assert_equivalent(filt, restored, uniform_keys, queries)

    def test_two_stage_round_trip(self):
        rng = np.random.default_rng(6)
        values = sorted(set(float(v) for v in rng.lognormal(0, 3, 400)))
        filt = TwoStageREncoder(values, bits_per_key=24)
        restored = loads(dumps(filt))
        assert restored.offset == filt.offset
        for v in values[:100]:
            v32 = float(np.float32(v))
            assert restored.query_float(v32) == filt.query_float(v32)

    def test_metadata_preserved(self, uniform_keys):
        filt = REncoder(uniform_keys, bits_per_key=16, rmax=32, k=3,
                        seed=9)
        restored = loads(dumps(filt))
        assert restored.rmax == 32
        assert restored.rbf.k == 3
        assert restored.n_keys == filt.n_keys


class TestFormat:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            loads(b"XXXX" + b"\x00" * 32)

    def test_wrong_type(self, uniform_keys):
        from repro.filters.bloom import BloomFilter

        with pytest.raises(TypeError):
            dumps(BloomFilter(uniform_keys, bits_per_key=8))

    def test_truncated_payload(self, uniform_keys):
        blob = dumps(REncoder(uniform_keys, bits_per_key=16))
        with pytest.raises(Exception):
            loads(blob[: len(blob) // 2])

    def test_blob_is_compact(self, uniform_keys):
        filt = REncoder(uniform_keys, bits_per_key=16)
        blob = dumps(filt)
        # Metadata overhead stays under a KiB beyond the raw array.
        assert len(blob) < filt.size_in_bits() // 8 + 1024

    def test_v1_blob_without_trailer_still_loads(self, uniform_keys):
        filt = REncoder(uniform_keys, bits_per_key=16)
        blob = dumps(filt)
        v1 = b"RENC" + struct.pack("<H", 1) + blob[6:-4]
        restored = loads(v1)
        assert restored.stored_levels == filt.stored_levels
        for k in uniform_keys[:50]:
            assert restored.query_point(int(k))


@pytest.fixture(scope="module")
def small_blob():
    keys = np.unique(
        np.random.default_rng(7).integers(0, 1 << 32, 60, dtype=np.uint64)
    )
    return dumps(REncoder(keys, bits_per_key=8))


class TestTruncation:
    def test_every_truncation_length_is_typed(self, small_blob):
        """Cut the blob at *every* byte boundary: always a FilterError."""
        for cut in range(len(small_blob)):
            with pytest.raises(FilterError):
                loads(small_blob[:cut])

    def test_short_header_names_the_field(self, small_blob):
        with pytest.raises(TruncatedError, match="header"):
            loads(small_blob[:7])
        with pytest.raises(TruncatedError, match="metadata"):
            loads(small_blob[:12])

    def test_missing_checksum_is_truncation(self, small_blob):
        with pytest.raises(TruncatedError, match="checksum"):
            loads(small_blob[:-2])

    def test_empty_buffer(self):
        with pytest.raises(TruncatedError):
            loads(b"")


class TestHostileInput:
    def test_bad_magic_is_typed(self):
        with pytest.raises(FilterCorruptionError, match="magic"):
            loads(b"XXXX" + b"\x00" * 32)

    def test_unsupported_version(self, small_blob):
        body = MAGIC + struct.pack("<H", 9) + small_blob[6:-4]
        blob = body + struct.pack("<I", checksum(body))
        with pytest.raises(FilterCorruptionError, match="version"):
            loads(blob)

    def test_trailing_garbage_rejected(self, small_blob):
        with pytest.raises(FilterCorruptionError, match="trailing"):
            loads(small_blob + b"\x00")

    def test_unknown_class_is_typed_not_keyerror(self, small_blob):
        with pytest.raises(FilterCorruptionError, match="unknown filter"):
            loads(_repack(small_blob, **{"class": "EvilFilter"}))
        with pytest.raises(FilterCorruptionError):
            loads(_repack(small_blob, **{"class": None}))

    def test_undecodable_metadata(self, small_blob):
        _, meta_len = struct.unpack_from("<HI", small_blob, 4)
        body = (
            MAGIC
            + struct.pack("<HI", 2, meta_len)
            + b"\xff" * meta_len
            + small_blob[10 + meta_len : -4]
        )
        blob = body + struct.pack("<I", checksum(body))
        with pytest.raises(FilterCorruptionError, match="metadata"):
            loads(blob)

    def test_metadata_not_an_object(self, small_blob):
        meta_blob = b"[1, 2, 3]"
        body = (
            MAGIC
            + struct.pack("<HI", 2, len(meta_blob))
            + meta_blob
            + struct.pack("<I", 0)
        )
        blob = body + struct.pack("<I", checksum(body))
        with pytest.raises(FilterCorruptionError):
            loads(blob)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("group_bits", 0),       # would divide by zero downstream
            ("group_bits", 10),      # beyond the RBF's supported range
            ("group_bits", "4"),
            ("key_bits", 0),
            ("key_bits", 65),
            ("k", 0),
            ("k", 65),
            ("k", True),             # bool masquerading as int
            ("seed", -1),
            ("rmax", 0),
            ("n_keys", -5),
            ("levels_per_round", 0),
            ("max_expansion", -1),
            ("bits", 1 << 60),       # would be a huge allocation
            ("bits", 63),
            ("bits", None),          # missing entirely
            ("target_p1", 0.0),
            ("target_p1", 1.5),
            ("target_p1", "high"),
            ("stored_levels", []),
            ("stored_levels", [0]),
            ("stored_levels", [1, 999]),
            ("stored_levels", "all"),
            ("stored_levels", [True]),
            ("l_kk", -1),
            ("precision", "half"),
        ],
    )
    def test_hostile_metadata_is_typed(self, small_blob, field, value):
        with pytest.raises(FilterCorruptionError):
            loads(_repack(small_blob, **{field: value}))

    def test_bits_inconsistent_with_payload(self, small_blob):
        # In-range bits that disagree with the actual payload length must
        # be rejected before the RBF is allocated.
        with pytest.raises(FilterCorruptionError, match="geometry"):
            loads(_repack(small_blob, bits=1 << 20))

    def test_patched_payload_length_rejected(self, small_blob):
        _, meta_len = struct.unpack_from("<HI", small_blob, 4)
        pos = 10 + meta_len
        (payload_len,) = struct.unpack_from("<I", small_blob, pos)
        for lie in (payload_len + 8, payload_len - 8, 0):
            raw = bytearray(small_blob)
            struct.pack_into("<I", raw, pos, lie)
            body = bytes(raw[:-4])
            with pytest.raises(FilterError):
                loads(body + struct.pack("<I", checksum(body)))

    @given(junk=st.binary(max_size=256))
    @settings(max_examples=80, deadline=None)
    def test_fuzz_raw_bytes_never_escape_typed_errors(self, junk):
        for data in (junk, MAGIC + junk):
            try:
                loads(data)
            except FilterError:
                pass

    def test_error_messages_are_informative(self, small_blob):
        with pytest.raises(FilterCorruptionError) as exc:
            loads(_repack(small_blob, group_bits=77))
        assert "group_bits" in str(exc.value)
        assert "77" in str(exc.value)
