"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "REncoder" in out and "fig5" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "query_range" in out

    def test_figure_table4(self, capsys):
        assert main(
            ["figure", "table4", "--n-keys", "1000", "--n-queries", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_shootout(self, capsys):
        assert main(
            ["shootout", "--n-keys", "800", "--n-queries", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "REncoderSS" in out and "corr_fpr" in out

    def test_all_figures_registered(self):
        # Every experiment driver in the bench module has a CLI name.
        expected = {
            "fig3a", "fig3b", "fig4", "fig5", "fig5b", "fig6", "fig7",
            "fig8", "fig9", "fig10", "table1", "table2", "table4",
        }
        assert set(FIGURES) == expected

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
