"""Tests for REncoderSS, REncoderSE and REncoderPO."""

import numpy as np
import pytest

from repro.core.segment_tree import max_key_lcp
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS, build_variant
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)
from tests.conftest import assert_no_false_negatives


def _fpr(filt, queries):
    return sum(filt.query_range(*q) for q in queries) / len(queries)


class TestREncoderSS:
    def test_start_level_is_lkk_plus_one(self, uniform_keys):
        ss = REncoderSS(uniform_keys, bits_per_key=18)
        assert ss.l_kk == max_key_lcp(uniform_keys, 64)
        assert max(ss.stored_levels) == ss.l_kk + 1

    def test_no_false_negatives(self, uniform_keys):
        ss = REncoderSS(uniform_keys, bits_per_key=14)
        assert_no_false_negatives(ss, uniform_keys[:200])

    def test_beats_base_on_uniform(self, uniform_keys, empty_queries):
        from repro.core.rencoder import REncoder

        base = REncoder(uniform_keys, bits_per_key=14, seed=2)
        ss = REncoderSS(uniform_keys, bits_per_key=14, seed=2)
        assert _fpr(ss, empty_queries) <= _fpr(base, empty_queries) + 0.02

    def test_collapses_on_correlated(self, uniform_keys):
        ss = REncoderSS(uniform_keys, bits_per_key=18)
        queries = correlated_range_queries(uniform_keys, 200, seed=3)
        # The paper's Figure 9: SS cannot distinguish neighbours of keys.
        assert _fpr(ss, queries) > 0.9

    def test_single_key(self):
        ss = REncoderSS([7], total_bits=1024)
        assert ss.query_point(7)


class TestREncoderSE:
    def test_uncorrelated_sampling_matches_ss_plan(self, uniform_keys):
        sample = uniform_range_queries(uniform_keys, 100, seed=4)
        se = REncoderSE(uniform_keys, bits_per_key=18, sample_queries=sample)
        if se.l_kq <= se.l_kk:
            assert max(se.stored_levels) == se.l_kk + 1

    def test_correlated_sampling_stores_deep_levels(self, uniform_keys):
        sample = correlated_range_queries(uniform_keys, 100, seed=5)
        se = REncoderSE(uniform_keys, bits_per_key=18, sample_queries=sample)
        assert se.l_kq > se.l_kk
        assert min(se.stored_levels) == se.l_kq + 1
        assert max(se.stored_levels) >= se.l_kq + 1

    def test_stays_accurate_on_correlated(self, uniform_keys):
        sample = correlated_range_queries(uniform_keys, 150, seed=6)
        queries = correlated_range_queries(uniform_keys, 300, seed=7)
        se = REncoderSE(uniform_keys, bits_per_key=18, sample_queries=sample)
        ss = REncoderSS(uniform_keys, bits_per_key=18)
        assert _fpr(se, queries) < 0.5 < _fpr(ss, queries)

    def test_no_false_negatives(self, uniform_keys):
        sample = correlated_range_queries(uniform_keys, 100, seed=8)
        se = REncoderSE(uniform_keys, bits_per_key=14, sample_queries=sample)
        assert_no_false_negatives(se, uniform_keys[:200])

    def test_empty_sample_behaves_like_ss(self, uniform_keys):
        se = REncoderSE(uniform_keys, bits_per_key=18, sample_queries=[])
        assert se.l_kq == 0
        assert max(se.stored_levels) == se.l_kk + 1


class TestREncoderPO:
    def test_point_costs_single_fetch(self, uniform_keys):
        po = REncoderPO(uniform_keys, bits_per_key=18)
        po.reset_counters()
        po.query_point(12345)
        # One RBF fetch = k window probes, regardless of stored levels.
        assert po.probe_count == po.rbf.k

    def test_no_false_negative_points(self, uniform_keys):
        po = REncoderPO(uniform_keys, bits_per_key=14)
        for k in uniform_keys[:300]:
            assert po.query_point(int(k))

    def test_range_queries_unchanged(self, uniform_keys):
        from repro.core.rencoder import REncoder

        po = REncoderPO(uniform_keys, bits_per_key=18, seed=3)
        base = REncoder(uniform_keys, bits_per_key=18, seed=3)
        for q in uniform_range_queries(uniform_keys, 100, seed=9):
            assert po.query_range(*q) == base.query_range(*q)

    def test_point_fpr_worse_than_base(self, uniform_keys):
        from repro.core.rencoder import REncoder
        from repro.workloads.queries import point_queries

        po = REncoderPO(uniform_keys, bits_per_key=12, seed=3)
        base = REncoder(uniform_keys, bits_per_key=12, seed=3)
        queries = point_queries(uniform_keys, 500, seed=10)
        fpr_po = sum(po.query_point(lo) for lo, _ in queries) / len(queries)
        fpr_base = sum(base.query_point(lo) for lo, _ in queries) / len(queries)
        assert fpr_po >= fpr_base - 0.01


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["REncoder", "REncoderSS", "REncoderSE", "REncoderPO"]
    )
    def test_build_variant(self, uniform_keys, name):
        filt = build_variant(name, uniform_keys, bits_per_key=16)
        assert filt.query_point(int(uniform_keys[0]))

    def test_unknown_variant(self, uniform_keys):
        with pytest.raises(ValueError):
            build_variant("REncoderXX", uniform_keys)
