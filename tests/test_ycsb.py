"""Tests for the YCSB-style workload generator and driver."""

import numpy as np
import pytest

from repro.core.rencoder import REncoder
from repro.storage.btree import BPlusTree
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree
from repro.workloads.datasets import generate_keys
from repro.workloads.ycsb import YCSB_MIXES, run_ycsb, ycsb_operations


@pytest.fixture(scope="module")
def keys():
    return generate_keys(1000, "uniform", seed=21)


class TestGenerator:
    @pytest.mark.parametrize("letter", sorted(YCSB_MIXES))
    def test_counts_and_shapes(self, keys, letter):
        ops = list(ycsb_operations(letter, keys, 500, seed=1))
        assert len(ops) == 500
        kinds = {op[0] for op in ops}
        assert kinds <= {"get", "put", "scan", "rmw"}

    def test_mix_proportions(self, keys):
        ops = list(ycsb_operations("B", keys, 4000, seed=2))
        gets = sum(1 for op in ops if op[0] == "get")
        assert 0.9 < gets / len(ops) <= 1.0

    def test_scan_sizes(self, keys):
        ops = list(ycsb_operations("E", keys, 500, scan_size=16, seed=3))
        for op in ops:
            if op[0] == "scan":
                assert op[2] - op[1] + 1 <= 16

    def test_missing_fraction_extremes(self, keys):
        key_set = set(int(k) for k in keys)
        present = list(
            ycsb_operations("C", keys, 400, missing_fraction=0.0, seed=4)
        )
        assert all(op[1] in key_set for op in present)
        absent = list(
            ycsb_operations("C", keys, 400, missing_fraction=1.0, seed=5)
        )
        hit = sum(1 for op in absent if op[1] in key_set)
        assert hit < 10

    def test_deterministic(self, keys):
        a = list(ycsb_operations("A", keys, 100, seed=6))
        assert a == list(ycsb_operations("A", keys, 100, seed=6))

    def test_invalid(self, keys):
        with pytest.raises(ValueError):
            list(ycsb_operations("Z", keys, 10))
        with pytest.raises(ValueError):
            list(ycsb_operations("A", keys, 10, missing_fraction=2.0))
        with pytest.raises(ValueError):
            list(ycsb_operations("A", np.zeros(0, dtype=np.uint64), 10))


class TestDriver:
    def test_lsm_under_ycsb(self, keys):
        env = StorageEnv()
        lsm = LSMTree(
            lambda ks: REncoder(ks, bits_per_key=18),
            memtable_capacity=256,
            env=env,
        )
        for k in keys:
            lsm.put(int(k), 0)
        lsm.flush()
        counts = run_ycsb(
            lsm, ycsb_operations("A", keys, 600, seed=7,
                                 missing_fraction=0.5)
        )
        assert counts["get"] + counts["put"] == 600
        # Present keys are always found (no false negatives end to end).
        assert counts["found"] > 0

    def test_btree_under_ycsb(self, keys):
        bt = BPlusTree(fanout=32)
        for k in keys:
            bt.insert(int(k), 0)
        counts = run_ycsb(
            bt, ycsb_operations("E", keys, 300, seed=8,
                                missing_fraction=0.3)
        )
        assert counts["scan"] > 0

    def test_filters_cut_ycsb_io(self, keys):
        results = {}
        for name, factory in (
            ("filtered", lambda ks: REncoder(ks, bits_per_key=18)),
            ("bare", None),
        ):
            env = StorageEnv()
            lsm = LSMTree(factory, memtable_capacity=256, env=env)
            for k in keys:
                lsm.put(int(k), 0)
            lsm.flush()
            env.reset()
            run_ycsb(
                lsm,
                ycsb_operations("C", keys, 500, seed=9,
                                missing_fraction=0.9),
            )
            results[name] = env.stats.wasted_reads
        assert results["filtered"] < results["bare"]
