"""Tests for the R-tree substrate (Use Case 3)."""

import numpy as np
import pytest

from repro.core.rencoder import REncoder
from repro.storage.env import StorageEnv
from repro.storage.rtree import RTree


def _factory(keys):
    return REncoder(keys, bits_per_key=18, key_bits=32)


def _points(n=800, seed=0, top=1 << 16):
    rng = np.random.default_rng(seed)
    return [
        (int(x), int(y))
        for x, y in rng.integers(0, top, (n, 2))
    ]


class TestRTree:
    def test_query_matches_bruteforce(self):
        pts = _points()
        rt = RTree(pts, coord_bits=16)
        rng = np.random.default_rng(1)
        for _ in range(40):
            x0, x1 = sorted(int(v) for v in rng.integers(0, 1 << 16, 2))
            y0, y1 = sorted(int(v) for v in rng.integers(0, 1 << 16, 2))
            got = {p for p, _ in rt.query_rect(x0, x1, y0, y1)}
            expected = {
                (x, y) for x, y in pts if x0 <= x <= x1 and y0 <= y <= y1
            }
            assert got == expected

    def test_values_carried(self):
        pts = [(1, 1), (5, 5)]
        rt = RTree(pts, values=["a", "b"], coord_bits=8, leaf_capacity=1)
        assert rt.query_rect(5, 5, 5, 5) == [((5, 5), "b")]

    def test_filters_prune_empty_rect_io(self):
        pts = _points(500, seed=2)
        env = StorageEnv()
        rt = RTree(
            pts, coord_bits=16, leaf_capacity=32,
            filter_factory=_factory, env=env,
        )
        rng = np.random.default_rng(3)
        pts_set = set(pts)
        env.reset()
        wasted_with_filter = 0
        tested = 0
        for _ in range(60):
            x0 = int(rng.integers(0, (1 << 16) - 4))
            y0 = int(rng.integers(0, (1 << 16) - 4))
            if any((x, y) in pts_set
                   for x in range(x0, x0 + 4) for y in range(y0, y0 + 4)):
                continue
            tested += 1
            assert rt.query_rect(x0, x0 + 3, y0, y0 + 3) == []
        # The z-order filters should prune the overwhelming majority of
        # leaf reads for empty rectangles.
        assert env.stats.reads < tested

    def test_unfiltered_rtree_reads_more(self):
        pts = _points(500, seed=2)
        env_f = StorageEnv()
        env_n = StorageEnv()
        rt_f = RTree(pts, coord_bits=16, leaf_capacity=32,
                     filter_factory=_factory, env=env_f)
        rt_n = RTree(pts, coord_bits=16, leaf_capacity=32, env=env_n)
        rng = np.random.default_rng(4)
        for _ in range(40):
            x0 = int(rng.integers(0, (1 << 16) - 10))
            y0 = int(rng.integers(0, (1 << 16) - 10))
            rt_f.query_rect(x0, x0 + 9, y0, y0 + 9)
            rt_n.query_rect(x0, x0 + 9, y0, y0 + 9)
        assert env_f.stats.reads <= env_n.stats.reads

    def test_mbr_hierarchy(self):
        pts = _points(300, seed=5)
        rt = RTree(pts, coord_bits=16, leaf_capacity=16, fanout=4)
        root = rt._root
        assert root.mbr[0] == min(x for x, _ in pts)
        assert root.mbr[1] == max(x for x, _ in pts)

    def test_requires_points(self):
        with pytest.raises(ValueError):
            RTree([])

    def test_value_length_mismatch(self):
        with pytest.raises(ValueError):
            RTree([(1, 2)], values=["a", "b"])

    def test_filter_bits(self):
        pts = _points(200, seed=6)
        rt = RTree(pts, coord_bits=16, filter_factory=_factory)
        assert rt.filter_bits() > 0
