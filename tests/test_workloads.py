"""Tests for dataset and query generators."""

import numpy as np
import pytest

from repro.workloads.datasets import (
    DATASET_NAMES,
    dataset_skew,
    generate_keys,
    split_keys,
)
from repro.workloads.queries import (
    correlated_range_queries,
    is_empty_range,
    left_bounded_range_queries,
    point_queries,
    uniform_range_queries,
)


class TestDatasets:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_generates_sorted_unique(self, name):
        keys = generate_keys(3000, name, seed=1)
        assert len(keys) == 3000
        assert (np.diff(keys.astype(np.uint64)) > 0).all()

    def test_deterministic(self):
        a = generate_keys(1000, "amzn", seed=7)
        b = generate_keys(1000, "amzn", seed=7)
        assert (a == b).all()

    def test_seed_changes_data(self):
        a = generate_keys(1000, "face", seed=1)
        b = generate_keys(1000, "face", seed=2)
        assert not (a == b).all()

    def test_skew_ordering_matches_paper(self):
        # Section V-A: "ordered by skewness: wiki > face > amzn > osmc".
        skews = {
            name: dataset_skew(generate_keys(5000, name, seed=3))
            for name in ("wiki", "face", "amzn", "osmc")
        }
        assert skews["wiki"] > skews["face"] > skews["amzn"] > skews["osmc"]

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate_keys(100, "zipfian")

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            generate_keys(0, "uniform")

    def test_split_keys(self):
        keys = generate_keys(1000, "uniform", seed=4)
        stored, holdout = split_keys(keys, 100, seed=5)
        assert len(stored) == 900 and len(holdout) == 100
        assert set(stored.tolist()).isdisjoint(holdout.tolist())
        assert (np.diff(stored.astype(np.uint64)) > 0).all()

    def test_split_bounds(self):
        keys = generate_keys(100, "uniform", seed=6)
        with pytest.raises(ValueError):
            split_keys(keys, 0)
        with pytest.raises(ValueError):
            split_keys(keys, 100)


class TestQueries:
    @pytest.fixture(scope="class")
    def keys(self):
        return generate_keys(2000, "uniform", seed=10)

    def test_is_empty_range(self, keys):
        k = int(keys[0])
        assert not is_empty_range(keys, k, k)
        assert not is_empty_range(keys, k - 1, k + 1)

    def test_uniform_queries_empty_and_sized(self, keys):
        queries = uniform_range_queries(keys, 300, min_size=2, max_size=32,
                                        seed=11)
        assert len(queries) == 300
        for lo, hi in queries:
            assert 2 <= hi - lo + 1 <= 32 or hi == (1 << 64) - 1
            assert is_empty_range(keys, lo, hi)

    def test_uniform_queries_can_include_hits(self, keys):
        queries = uniform_range_queries(
            keys, 100, seed=12, ensure_empty=False
        )
        assert len(queries) == 100

    def test_correlated_queries_adjacent_to_keys(self, keys):
        queries = correlated_range_queries(keys, 200, offset=32, seed=13)
        key_set = keys
        for lo, hi in queries:
            assert is_empty_range(keys, lo, hi)
            # The left bound sits exactly 32 above some stored key.
            idx = np.searchsorted(key_set, np.uint64(lo - 32))
            assert int(key_set[idx]) == lo - 32

    def test_point_queries_are_size_one(self, keys):
        queries = point_queries(keys, 100, seed=14)
        assert all(lo == hi for lo, hi in queries)

    def test_left_bounded_queries_use_holdout(self, keys):
        stored, holdout = split_keys(keys, 200, seed=15)
        queries = left_bounded_range_queries(stored, holdout, 150, seed=16)
        bounds = set(holdout.tolist())
        for lo, hi in queries:
            assert lo in bounds
            assert is_empty_range(stored, lo, hi)

    def test_invalid_sizes(self, keys):
        with pytest.raises(ValueError):
            uniform_range_queries(keys, 10, min_size=5, max_size=2)

    def test_too_dense_keyspace_raises(self):
        dense = np.arange(256, dtype=np.uint64)
        with pytest.raises(RuntimeError):
            uniform_range_queries(dense, 10, key_bits=8, max_attempts=2)
