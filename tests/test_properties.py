"""Extra property-based tests on the core data structures.

These complement the per-module suites with algebraic invariants that
hypothesis can search aggressively:

* RBF window algebra — a fetched window always contains every BT ever
  inserted under the same hash key, for arbitrary geometry;
* serialization — a dumps/loads round trip answers identically on
  arbitrary key sets and probes;
* union — the merged filter accepts everything either input accepts
  being a key;
* decomposition/segment-tree duality — a range is non-empty iff some
  piece of its dyadic cover is a stored prefix.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap_tree import BitmapTreeCodec
from repro.core.decompose import decompose
from repro.core.rbf import RangeBloomFilter
from repro.core.rencoder import REncoder
from repro.core.segment_tree import PrefixSegmentTree
from repro.core.serialize import dumps, loads


@given(
    group_bits=st.integers(2, 9),
    k=st.integers(1, 4),
    seed=st.integers(0, 10),
    inserts=st.lists(
        st.tuples(st.integers(0, 1 << 32), st.integers(0, (1 << 9) - 1)),
        min_size=1,
        max_size=15,
    ),
)
@settings(max_examples=60, deadline=None)
def test_rbf_window_contains_all_inserts(group_bits, k, seed, inserts):
    codec = BitmapTreeCodec(group_bits)
    rbf = RangeBloomFilter(1 << 13, k=k, group_bits=group_bits, seed=seed)
    per_key: dict[int, np.ndarray] = {}
    for key, raw in inserts:
        suffix = raw & ((1 << group_bits) - 1)
        bt = codec.encode_suffix(suffix, group_bits)
        rbf.insert_bt(key, bt)
        if key in per_key:
            per_key[key] = per_key[key] | bt
        else:
            per_key[key] = bt.copy()
    for key, expected in per_key.items():
        fetched = rbf.fetch_bt(key)
        assert ((fetched & expected) == expected).all()


@given(
    keys=st.sets(st.integers(0, (1 << 24) - 1), min_size=1, max_size=60),
    probes=st.lists(st.integers(0, (1 << 24) - 1), min_size=1, max_size=20),
    seed=st.integers(0, 5),
)
@settings(max_examples=40, deadline=None)
def test_serialize_round_trip_property(keys, probes, seed):
    filt = REncoder(keys, total_bits=8192, key_bits=24, rmax=16, seed=seed)
    restored = loads(dumps(filt))
    for p in probes:
        hi = min((1 << 24) - 1, p + 7)
        assert restored.query_range(p, hi) == filt.query_range(p, hi)
        assert restored.query_point(p) == filt.query_point(p)


@given(
    a=st.sets(st.integers(0, (1 << 20) - 1), min_size=1, max_size=40),
    b=st.sets(st.integers(0, (1 << 20) - 1), min_size=1, max_size=40),
    seed=st.integers(0, 5),
)
@settings(max_examples=40, deadline=None)
def test_union_superset_property(a, b, seed):
    bits = 16 * (len(a) + len(b))
    fa = REncoder(a, bits, key_bits=20, rmax=16, seed=seed)
    fb = REncoder(b, bits, key_bits=20, rmax=16, seed=seed)
    try:
        merged = fa.union(fb)
    except ValueError as exc:
        # Disjoint adaptive level plans, or auto-k resolving differently
        # for different key counts, are legitimate refusals — the union
        # must fail loudly rather than answer wrongly.
        assert "stored levels" in str(exc) or "geometry" in str(exc)
        return
    for k in list(a)[:10] + list(b)[:10]:
        assert merged.query_point(k)


@given(
    keys=st.sets(st.integers(0, 1023), max_size=30),
    x=st.integers(0, 1023),
    y=st.integers(0, 1023),
)
@settings(max_examples=80)
def test_decompose_segment_tree_duality(keys, x, y):
    lo, hi = min(x, y), max(x, y)
    tree = PrefixSegmentTree(keys, key_bits=10)
    covered = any(
        tree.contains_prefix(p, l) for p, l in decompose(lo, hi, 10)
    )
    assert covered == any(lo <= k <= hi for k in keys)


@given(
    keys=st.sets(st.integers(0, (1 << 16) - 1), min_size=1, max_size=50),
    seed=st.integers(0, 5),
    group_bits=st.integers(4, 8),
)
@settings(max_examples=40, deadline=None)
def test_rencoder_geometry_invariants(keys, seed, group_bits):
    filt = REncoder(keys, total_bits=4096, key_bits=16, rmax=8,
                    group_bits=group_bits, seed=seed)
    levels = filt.stored_levels
    # Deepest level always stored; levels sorted and within the domain.
    assert levels[-1] == 16
    assert levels == sorted(levels)
    assert all(1 <= l <= 16 for l in levels)
    # Size accounting is exact words.
    assert filt.size_in_bits() % 64 == 0
    # P1 is a probability and matches a recount.
    assert 0.0 <= filt.final_p1 <= 1.0
