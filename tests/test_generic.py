"""Tests for the generic arity-N local encoder and the quadtree filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generic import (
    GenericPrefixFilter,
    LocalTreeEncoder,
    QuadtreeFilter,
)


class TestLocalTreeEncoder:
    def test_binary_matches_bitmap_tree_geometry(self):
        enc = LocalTreeEncoder(2, 8)
        # (2^9 - 1)/(2 - 1) = 511 nodes -> 512-bit BT: the paper's unit.
        assert enc.n_nodes == 511
        assert enc.bt_bits == 512

    def test_quad_geometry(self):
        enc = LocalTreeEncoder(4, 4)
        assert enc.n_nodes == 341  # (4^5 - 1)/3
        assert enc.bt_bits == 512

    def test_binary_numbering_matches_codec(self):
        # The arity-2 instance numbers nodes like the BitmapTreeCodec
        # (shifted by one: codec is 1-based, encoder is 0-based).
        from repro.core.bitmap_tree import node_index

        enc = LocalTreeEncoder(2, 4)
        for depth in range(5):
            for suffix in range(1 << depth):
                assert enc.node_index(suffix, depth) == (
                    node_index(suffix, depth) - 1
                )

    def test_encode_path_sets_depth_plus_one_bits(self):
        enc = LocalTreeEncoder(4, 4)
        bt = enc.encode_path(0b11011010, 4)
        assert sum(bin(int(w)).count("1") for w in bt) == 5

    def test_path_bits_are_ancestors(self):
        enc = LocalTreeEncoder(3, 3)
        suffix = 2 * 9 + 1 * 3 + 2  # digits (2, 1, 2)
        bt = enc.encode_path(suffix, 3)
        assert enc.get_node(bt, enc.node_index(suffix, 3))
        assert enc.get_node(bt, enc.node_index(suffix // 3, 2))
        assert enc.get_node(bt, enc.node_index(suffix // 9, 1))
        assert enc.get_node(bt, 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            LocalTreeEncoder(1, 4)
        with pytest.raises(ValueError):
            LocalTreeEncoder(4, 0)
        with pytest.raises(ValueError):
            LocalTreeEncoder(4, 4).node_index(0, 5)


class TestGenericPrefixFilter:
    @pytest.fixture(scope="class")
    def built(self):
        rng = np.random.default_rng(33)
        keys = sorted({int(k) for k in rng.integers(0, 4**10, 1500,
                                                    dtype=np.uint64)})
        filt = GenericPrefixFilter(keys, total_bits=24 * 1500, arity=4,
                                   num_digits=10)
        return filt, keys

    def test_no_false_negative_prefixes(self, built):
        filt, keys = built
        for key in keys[:200]:
            for level in sorted(filt.stored_levels):
                prefix = key // (4 ** (10 - level))
                assert filt.query_prefix(prefix, level)

    def test_no_false_negative_subtrees(self, built):
        filt, keys = built
        for key in keys[:200]:
            assert filt.query_subtree(key, 10)
            assert filt.query_subtree(key // 16, 8)

    def test_deep_bit_fpr_near_p1_squared(self, built):
        filt, keys = built
        key_set = set(keys)
        rng = np.random.default_rng(34)
        fp = tried = 0
        for probe in rng.integers(0, 4**10, 2000, dtype=np.uint64):
            if int(probe) in key_set:
                continue
            tried += 1
            fp += filt.query_prefix(int(probe), 10)
        expected = filt.rbf.p1 ** filt.rbf.k
        assert fp / tried == pytest.approx(expected, abs=0.08)

    def test_adaptive_levels_bottom_up(self, built):
        filt, _ = built
        levels = sorted(filt.stored_levels)
        assert levels[-1] == 10  # the deepest level is always stored
        assert levels == list(range(levels[0], 11))  # contiguous upward

    def test_incremental_insert(self, built):
        filt, keys = built
        new_key = next(
            k for k in range(4**10) if k not in set(keys)
        )
        filt.insert(new_key)
        assert filt.query_subtree(new_key, 10)

    def test_invalid(self):
        with pytest.raises(ValueError):
            GenericPrefixFilter([4**3], total_bits=512, arity=4,
                                num_digits=3)
        with pytest.raises(ValueError):
            GenericPrefixFilter([], total_bits=512, arity=4, num_digits=0)


class TestQuadtreeFilter:
    @pytest.fixture(scope="class")
    def built(self):
        rng = np.random.default_rng(35)
        pts = [
            (int(x), int(y)) for x, y in rng.integers(0, 1 << 10, (800, 2))
        ]
        return QuadtreeFilter(pts, coord_bits=10, bits_per_key=24), pts

    def test_no_false_negative_points(self, built):
        qf, pts = built
        for x, y in pts[:200]:
            assert qf.query_point(x, y)

    def test_no_false_negative_rects(self, built):
        qf, pts = built
        for x, y in pts[:100]:
            assert qf.query_rect(
                max(0, x - 2), min(1023, x + 2),
                max(0, y - 2), min(1023, y + 2),
            )

    def test_empty_rects_mostly_rejected(self, built):
        qf, pts = built
        pts_set = set(pts)
        rng = np.random.default_rng(36)
        fp = tried = 0
        while tried < 200:
            x0 = int(rng.integers(0, 1016))
            y0 = int(rng.integers(0, 1016))
            if any((x, y) in pts_set
                   for x in range(x0, x0 + 8) for y in range(y0, y0 + 8)):
                continue
            tried += 1
            fp += qf.query_rect(x0, x0 + 7, y0, y0 + 7)
        assert fp / tried < 0.25

    def test_morton_digits_order_preserving(self, built):
        qf, _ = built
        # A point's quadtree digits refine from the most significant bit.
        z_small = qf._morton(0, 0)
        z_big = qf._morton((1 << 10) - 1, (1 << 10) - 1)
        assert z_small == 0
        assert z_big == 4**10 - 1

    def test_invalid(self, built):
        qf, _ = built
        with pytest.raises(ValueError):
            qf.query_rect(5, 4, 0, 1)
        with pytest.raises(ValueError):
            qf._morton(1 << 10, 0)
        with pytest.raises(ValueError):
            QuadtreeFilter([(0, 0)], coord_bits=0)

    @given(st.sets(st.tuples(st.integers(0, 63), st.integers(0, 63)),
                   min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_hypothesis_no_false_negatives(self, pts):
        qf = QuadtreeFilter(sorted(pts), coord_bits=6, bits_per_key=24)
        for x, y in pts:
            assert qf.query_point(x, y)
            assert qf.query_rect(x, x, y, y)
