"""Unit and property tests for dyadic range decomposition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decompose import (
    covering_prefix,
    decompose,
    decompose_recursive,
    prefix_range,
)


class TestPrefixRange:
    def test_paper_examples(self):
        # Figure 1: prefix 001 covers [2,3]; 01 covers [4,7]; 1 covers [8,15].
        assert prefix_range(0b001, 3, 4) == (2, 3)
        assert prefix_range(0b01, 2, 4) == (4, 7)
        assert prefix_range(0b1, 1, 4) == (8, 15)

    def test_full_length_prefix_is_point(self):
        assert prefix_range(13, 4, 4) == (13, 13)

    def test_empty_prefix_is_domain(self):
        assert prefix_range(0, 0, 4) == (0, 15)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            prefix_range(0, 5, 4)


class TestCoveringPrefix:
    def test_point(self):
        assert covering_prefix(5, 5, 4) == (5, 4)

    def test_half_domain(self):
        assert covering_prefix(8, 15, 4) == (1, 1)

    def test_whole_domain(self):
        assert covering_prefix(0, 15, 4) == (0, 0)

    def test_contains_range(self):
        p, l = covering_prefix(5, 6, 4)
        lo, hi = prefix_range(p, l, 4)
        assert lo <= 5 and 6 <= hi


class TestDecompose:
    def test_paper_example(self):
        # Section III-B: [0, 4] over 4-bit keys -> prefixes 00 and 0100.
        assert decompose(0, 4, 4) == [(0b00, 2), (0b0100, 4)]

    def test_paper_example_query(self):
        # Section I: [2, 15] -> 001 ([2,3]), 01 ([4,7]), 1 ([8,15]).
        assert decompose(2, 15, 4) == [(0b001, 3), (0b01, 2), (0b1, 1)]

    def test_whole_domain(self):
        assert decompose(0, 15, 4) == [(0, 0)]

    def test_point(self):
        assert decompose(9, 9, 4) == [(9, 4)]

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            decompose(5, 4, 4)
        with pytest.raises(ValueError):
            decompose(0, 16, 4)

    def test_64bit_domain(self):
        top = (1 << 64) - 1
        pieces = decompose(1, top, 64)
        assert len(pieces) <= 2 * 64
        assert pieces[0] == (1, 64)

    @staticmethod
    def _expand(pieces, key_bits):
        covered = []
        for p, l in pieces:
            lo, hi = prefix_range(p, l, key_bits)
            covered.append((lo, hi))
        return covered

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_exact_disjoint_cover(self, a, b):
        lo, hi = min(a, b), max(a, b)
        spans = self._expand(decompose(lo, hi, 8), 8)
        # Left-to-right, contiguous, exactly covering [lo, hi].
        assert spans[0][0] == lo
        assert spans[-1][1] == hi
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert b0 == a1 + 1

    @given(st.integers(0, 1023), st.integers(0, 1023))
    def test_matches_recursive(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert decompose(lo, hi, 10) == decompose_recursive(lo, hi, 10)

    @given(st.integers(0, 255), st.integers(1, 64))
    def test_size_r_needs_at_most_2logr_pieces(self, lo, size):
        hi = min(lo + size - 1, 255)
        pieces = decompose(lo, hi, 8)
        r = hi - lo + 1
        bound = 2 * max(1, r.bit_length())
        assert len(pieces) <= bound
