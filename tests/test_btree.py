"""Tests for the B+tree substrate (Use Case 2)."""

import numpy as np
import pytest

from repro.core.rencoder import REncoder
from repro.storage.btree import BPlusTree
from repro.storage.env import StorageEnv


def _factory(keys):
    return REncoder(keys, bits_per_key=18)


class TestStructure:
    def test_insert_get(self):
        bt = BPlusTree(fanout=4)
        for k in (5, 1, 9, 3, 7):
            bt.insert(k, k * 10)
        for k in (5, 1, 9, 3, 7):
            assert bt.get(k) == (True, k * 10)
        assert bt.get(2) == (False, None)

    def test_overwrite(self):
        bt = BPlusTree(fanout=4)
        bt.insert(1, "a")
        bt.insert(1, "b")
        assert bt.get(1) == (True, "b")
        assert len(bt) == 1

    def test_splits_keep_order(self):
        bt = BPlusTree(fanout=4)
        rng = np.random.default_rng(0)
        keys = rng.permutation(500)
        for k in keys:
            bt.insert(int(k), int(k))
        leaf_keys = [k for leaf in bt.leaves() for k in leaf.keys]
        assert leaf_keys == sorted(leaf_keys) == list(range(500))

    def test_leaf_chain_complete(self):
        bt = BPlusTree(fanout=8)
        for k in range(300):
            bt.insert(k, k)
        assert sum(len(leaf.keys) for leaf in bt.leaves()) == 300

    def test_range_query(self):
        bt = BPlusTree(fanout=8)
        for k in range(0, 1000, 7):
            bt.insert(k, k)
        got = bt.range_query(100, 200)
        expected = [(k, k) for k in range(0, 1000, 7) if 100 <= k <= 200]
        assert got == expected

    def test_range_query_invalid(self):
        bt = BPlusTree()
        with pytest.raises(ValueError):
            bt.range_query(5, 4)

    def test_min_fanout(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=2)


class TestFilters:
    def test_filters_skip_empty_leaf_reads(self):
        env = StorageEnv()
        bt = BPlusTree(fanout=16, filter_factory=_factory, env=env)
        for k in range(0, 100_000, 1000):
            bt.insert(k, k)
        bt.rebuild_filters()
        env.reset()
        n_queries = 0
        for lo in range(100, 99_000, 2000):
            assert bt.range_query(lo, lo + 5) == []
            n_queries += 1
        # Small per-leaf filters keep a nonzero FPR, but the overwhelming
        # majority of empty-range leaf reads must be pruned.
        assert env.stats.reads < n_queries / 4

    def test_incremental_filter_update(self):
        bt = BPlusTree(fanout=16, filter_factory=_factory)
        for k in range(0, 3200, 100):
            bt.insert(k, k)
        bt.rebuild_filters()
        bt.insert(55, "new")  # in-place insert must update the leaf filter
        assert bt.get(55) == (True, "new")

    def test_unfiltered_reads_still_correct(self):
        env = StorageEnv()
        bt = BPlusTree(fanout=16, env=env)
        for k in range(100):
            bt.insert(k, k)
        assert bt.get(50) == (True, 50)
        assert env.stats.reads > 0

    def test_filter_bits_accounted(self):
        bt = BPlusTree(fanout=16, filter_factory=_factory)
        for k in range(0, 2000, 10):
            bt.insert(k, k)
        bt.rebuild_filters()
        assert bt.filter_bits() > 0


class TestModelConformance:
    def test_randomized_against_dict(self):
        rng = np.random.default_rng(9)
        bt = BPlusTree(fanout=6)
        model = {}
        for step in range(2000):
            key = int(rng.integers(0, 300))
            if rng.random() < 0.7:
                bt.insert(key, step)
                model[key] = step
            else:
                assert bt.get(key) == (
                    (key in model), model.get(key)
                )
        lo, hi = 50, 250
        assert bt.range_query(lo, hi) == sorted(
            (k, v) for k, v in model.items() if lo <= k <= hi
        )
