"""Unit, integration and property tests for the core REncoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rencoder import REncoder
from repro.core.segment_tree import PrefixSegmentTree
from repro.workloads.queries import is_empty_range, uniform_range_queries
from tests.conftest import TOP64, assert_no_false_negatives


class TestConstruction:
    def test_stored_levels_include_mandatory(self, uniform_keys):
        enc = REncoder(uniform_keys, bits_per_key=18, rmax=64)
        # The bottom log2(64)+1 = 7 levels must always be stored.
        for level in range(58, 65):
            assert level in enc.stored_levels

    def test_rmax_controls_mandatory_depth(self, uniform_keys):
        enc = REncoder(uniform_keys, bits_per_key=18, rmax=16)
        assert min(enc.stored_levels) <= 60
        for level in range(60, 65):
            assert level in enc.stored_levels

    def test_more_memory_more_levels(self, uniform_keys):
        lean = REncoder(uniform_keys, bits_per_key=10, k=2)
        rich = REncoder(uniform_keys, bits_per_key=40, k=2)
        assert len(rich.stored_levels) >= len(lean.stored_levels)

    def test_p1_near_target_with_budget(self, uniform_keys):
        enc = REncoder(uniform_keys, bits_per_key=30, k=2)
        assert 0.35 <= enc.final_p1 <= 0.65

    def test_auto_k_scales_with_bpk(self, uniform_keys):
        low = REncoder(uniform_keys, bits_per_key=10)
        high = REncoder(uniform_keys, bits_per_key=40)
        assert low.rbf.k <= high.rbf.k

    def test_explicit_k_respected(self, uniform_keys):
        enc = REncoder(uniform_keys, bits_per_key=18, k=3)
        assert enc.rbf.k == 3

    def test_size_accounting(self, uniform_keys):
        enc = REncoder(uniform_keys, bits_per_key=16)
        bpk = enc.size_in_bits() / len(uniform_keys)
        assert 15.0 <= bpk <= 17.0

    def test_invalid_args(self, uniform_keys):
        with pytest.raises(ValueError):
            REncoder(uniform_keys, rmax=0)
        with pytest.raises(ValueError):
            REncoder(uniform_keys, levels_per_round=0)
        with pytest.raises(ValueError):
            REncoder(uniform_keys, target_p1=0.0)
        with pytest.raises(ValueError):
            REncoder(uniform_keys, k=0)
        with pytest.raises(ValueError):
            REncoder([1 << 40], key_bits=32)

    def test_empty_key_set(self):
        enc = REncoder([], total_bits=4096)
        assert not enc.query_range(0, TOP64)
        assert not enc.query_point(12345)

    def test_single_key(self):
        enc = REncoder([42], total_bits=4096)
        assert enc.query_point(42)
        assert enc.query_range(0, 100)


class TestNoFalseNegatives:
    def test_points_and_ranges(self, uniform_keys):
        enc = REncoder(uniform_keys, bits_per_key=14)
        assert_no_false_negatives(enc, uniform_keys[:300])

    def test_wide_ranges_containing_keys(self, uniform_keys):
        enc = REncoder(uniform_keys, bits_per_key=14)
        for key in uniform_keys[::97]:
            k = int(key)
            assert enc.query_range(max(0, k - 1000), min(TOP64, k + 1000))

    def test_tiny_memory_still_no_fn(self, uniform_keys):
        # Grossly undersized filter: everything may be positive, but never
        # a false negative.
        enc = REncoder(uniform_keys, total_bits=1024)
        assert_no_false_negatives(enc, uniform_keys[:100])

    @given(
        st.sets(st.integers(0, 255), min_size=1, max_size=40),
        st.integers(0, 255),
        st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_8bit_domain(self, keys, lo, size):
        enc = REncoder(keys, total_bits=2048, key_bits=8, rmax=8,
                       group_bits=4, k=2)
        hi = min(255, lo + size - 1)
        expected = any(lo <= k <= hi for k in keys)
        got = enc.query_range(lo, hi)
        if expected:
            assert got, "false negative"

    @given(st.sets(st.integers(0, (1 << 16) - 1), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_16bit_all_points(self, keys):
        enc = REncoder(keys, total_bits=8192, key_bits=16, rmax=16, k=2)
        for k in keys:
            assert enc.query_point(k)


class TestAccuracy:
    def test_fpr_reasonable_at_18bpk(self, uniform_keys, empty_queries):
        enc = REncoder(uniform_keys, bits_per_key=18)
        fpr = sum(enc.query_range(*q) for q in empty_queries) / len(empty_queries)
        assert fpr < 0.25

    def test_fpr_decreases_with_memory(self, uniform_keys):
        queries = uniform_range_queries(uniform_keys, 600, seed=99)
        fprs = []
        for bpk in (8, 16, 32):
            enc = REncoder(uniform_keys, bits_per_key=bpk, seed=1)
            fprs.append(sum(enc.query_range(*q) for q in queries) / len(queries))
        assert fprs[2] <= fprs[1] <= fprs[0] + 0.05

    def test_agrees_with_oracle_negatives(self, small_keys):
        # Any range the filter rejects must truly be empty.
        enc = REncoder(small_keys, total_bits=4096, key_bits=8, rmax=8,
                       group_bits=4)
        oracle = PrefixSegmentTree(small_keys, key_bits=8)
        for lo in range(256):
            for hi in (lo, min(255, lo + 3)):
                if not enc.query_range(lo, hi):
                    assert not oracle.query_range(lo, hi)


class TestIncrementalInsert:
    def test_insert_then_query(self, uniform_keys):
        enc = REncoder(uniform_keys[:500], bits_per_key=20)
        new_keys = [int(k) for k in uniform_keys[500:520]]
        for k in new_keys:
            enc.insert(k)
        for k in new_keys:
            assert enc.query_point(k)
            assert enc.query_range(max(0, k - 2), min(TOP64, k + 2))

    def test_insert_out_of_domain(self):
        enc = REncoder([1, 2, 3], total_bits=1024, key_bits=8, group_bits=4)
        with pytest.raises(ValueError):
            enc.insert(256)


class TestConfigurations:
    @pytest.mark.parametrize("group_bits", [4, 6, 8])
    def test_group_sizes(self, uniform_keys, group_bits):
        enc = REncoder(uniform_keys[:400], bits_per_key=18,
                       group_bits=group_bits)
        assert_no_false_negatives(enc, uniform_keys[:100])

    @pytest.mark.parametrize("key_bits", [16, 32, 48])
    def test_key_widths(self, key_bits):
        rng = np.random.default_rng(5)
        keys = np.unique(
            rng.integers(0, 1 << key_bits, 300, dtype=np.uint64)
        )
        enc = REncoder(keys, bits_per_key=18, key_bits=key_bits,
                       rmax=min(64, 1 << (key_bits // 2)))
        for k in keys[:100]:
            assert enc.query_point(int(k))

    def test_levels_per_round(self, uniform_keys):
        enc = REncoder(uniform_keys, bits_per_key=24, levels_per_round=3)
        assert_no_false_negatives(enc, uniform_keys[:50])


class TestProbeAccounting:
    def test_probe_count_tracks_fetches(self, uniform_keys):
        enc = REncoder(uniform_keys, bits_per_key=18)
        enc.reset_counters()
        assert enc.probe_count == 0
        enc.query_range(123, 456)
        assert enc.probe_count >= 1

    def test_locality_few_probes_per_query(self, uniform_keys, empty_queries):
        # The headline claim: one range query needs very few BT fetches.
        enc = REncoder(uniform_keys, bits_per_key=18)
        enc.reset_counters()
        for q in empty_queries[:200]:
            enc.query_range(*q)
        assert enc.probe_count / 200 < 6
