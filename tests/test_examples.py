"""Smoke tests: every shipped example runs to completion.

Examples are the public face of the library; a refactor that breaks one
should fail the suite, not a user.  Each is executed as a subprocess (its
own interpreter, like a user would run it) and its expected headline
output is checked.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": "false positive rate",
    "lsm_range_queries.py": "wasted",
    "btree_leaf_filters.py": "leaf reads",
    "rtree_spatial.py": "Z-intervals",
    "float_keys.py": "FPR on",
    "adaptive_levels.py": "Figure 9 in miniature",
    "filter_shootout.py": "correlated column",
    "persistence.py": "no false negatives",
    "quadtree_native.py": "indifferent to arity",
}


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_SNIPPETS), (
        "add new examples to EXPECTED_SNIPPETS so they stay smoke-tested"
    )


@pytest.mark.parametrize("name", sorted(EXPECTED_SNIPPETS))
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_SNIPPETS[name] in result.stdout
