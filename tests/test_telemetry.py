"""Tests for the unified telemetry subsystem (DESIGN.md §9).

Covers the metrics registry (instruments, get-or-create semantics,
JSON + Prometheus exposition), the deterministic reservoir behind
latency percentiles, request tracing (span trees, the disabled fast
path, the cross-thread worker handoff), the ``Instrumented`` filter
gauges, the sampling profiler's phase accounting, the thin-view
``IoStats``/``ServiceStats`` migration, the extended ``health()``
surface, and the ``metrics-dump`` / ``trace-query`` CLI commands.
"""

from __future__ import annotations

import json
import re
import threading
import time

import pytest

from repro.core.rencoder import REncoder
from repro.service import FilterService, SimulatedClock
from repro.service.health import LatencyRecorder, ServiceStats
from repro.storage.env import IoStats, StorageEnv
from repro.storage.lsm import LSMTree
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    Instrumented,
    MetricsRegistry,
    PhaseProfiler,
    Reservoir,
    Span,
    Tracer,
    child_span,
    current_span,
    format_tree,
    get_tracer,
    percentile,
)

MS = 1_000_000


@pytest.fixture(autouse=True)
def _tracer_off():
    """Every test starts and ends with the process tracer disabled."""
    get_tracer().disable()
    yield
    get_tracer().disable()


def _factory(keys):
    return REncoder(keys, bits_per_key=14)


def _tree(n=600):
    env = StorageEnv(clock=SimulatedClock())
    lsm = LSMTree(_factory, memtable_capacity=64, env=env)
    for k in range(0, 2 * n, 2):  # even keys present, odd absent
        lsm.put(k, k)
    lsm.flush()
    return lsm


# ----------------------------------------------------------------------
# percentile / reservoir
# ----------------------------------------------------------------------
class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)

    def test_single_sample_every_q(self):
        for q in (0, 1, 50, 99, 100):
            assert percentile([7.0], q) == 7.0

    def test_nearest_rank_semantics(self):
        samples = [10, 20, 30, 40, 50]
        assert percentile(samples, 0) == 10  # rank clamps to 1
        assert percentile(samples, 20) == 10
        assert percentile(samples, 50) == 30
        assert percentile(samples, 100) == 50

    def test_duplicates_and_order_independence(self):
        assert percentile([5, 5, 5, 5], 99) == 5
        assert percentile([3, 1, 2], 50) == percentile([1, 2, 3], 50)


class TestReservoir:
    def test_below_cap_keeps_everything(self):
        res = Reservoir(cap=100, seed=0)
        values = [float(v) for v in range(50)]
        for v in values:
            res.add(v)
        assert sorted(res.samples()) == values
        for q in (0, 25, 50, 99, 100):
            assert res.percentile(q) == percentile(values, q)

    def test_deterministic_across_runs(self):
        a, b = Reservoir(cap=16, seed=7), Reservoir(cap=16, seed=7)
        for v in range(1000):
            a.add(float(v))
            b.add(float(v))
        assert a.samples() == b.samples()

    def test_exact_stats_survive_eviction(self):
        res = Reservoir(cap=8, seed=0)
        for v in range(1, 101):
            res.add(float(v))
        assert len(res.samples()) == 8
        assert res.count == 100
        assert res.total == sum(range(1, 101))
        assert res.max_value == 100.0
        assert res.min_value == 1.0

    def test_clear(self):
        res = Reservoir(cap=4, seed=0)
        res.add(3.0)
        res.clear()
        assert res.count == 0
        assert res.samples() == []
        assert res.max_value == 0.0

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            Reservoir(cap=0)


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_monotone(self):
        c = Counter("c_total", "", {})
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        c.reset()
        assert c.value == 0

    def test_gauge_set_inc_and_callback(self):
        g = Gauge("g", "", {})
        g.set(2.0)
        g.inc(-0.5)
        assert g.value == 1.5
        g.set_fn(lambda: 42.0)
        assert g.value == 42.0
        g.set(1.0)  # explicit set clears the callback
        assert g.value == 1.0

    def test_gauge_dead_callback_reads_zero(self):
        g = Gauge("g", "", {})
        g.set_fn(lambda: 1 / 0)
        assert g.value == 0.0

    def test_histogram_buckets_cumulative_and_inf(self):
        h = Histogram("h", "", {}, bounds=(10.0, 100.0, 1000.0))
        for v in (5, 50, 500, 5000):
            h.observe(v)
        buckets = h.cumulative_buckets()
        assert [c for _, c in buckets] == [1, 2, 3, 4]
        assert buckets[-1][0] == float("inf")
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)  # cumulative => monotone
        assert buckets[-1][1] == h.count == 4
        assert h.total == 5555

    def test_histogram_percentile_and_reset(self):
        h = Histogram("h", "", {}, bounds=(10.0, 100.0))
        for v in range(1, 11):
            h.observe(float(v))
        assert h.percentile(50) == 5.0
        h.reset()
        assert h.count == 0
        assert h.percentile(99) == 0.0

    def test_histogram_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", "", {}, bounds=())
        with pytest.raises(ValueError):
            Histogram("h", "", {}, bounds=(10.0, 10.0))


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"component": "a"})
        b = reg.counter("x_total", labels={"component": "a"})
        c = reg.counter("x_total", labels={"component": "b"})
        assert a is b
        assert a is not c

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_invalid_names_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("1bad")
        with pytest.raises(ValueError):
            reg.counter("ok", labels={"bad-label": "v"})

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels={"component": "t"}).inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h_ns").observe(2_000)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c_total"][0]["value"] == 3
        hist = snap["h_ns"][0]
        assert hist["count"] == 1
        assert hist["buckets"][-1]["le"] == "+Inf"
        assert hist["buckets"][-1]["count"] == 1

    def test_prometheus_exposition_parses(self):
        reg = MetricsRegistry()
        reg.counter("c_total", help="a counter", labels={"k": "v"}).inc(2)
        reg.gauge("g").set(0.5)
        reg.histogram("h_ns", labels={"k": "v"}).observe(5_000)
        text = reg.to_prometheus()
        assert text.endswith("\n")
        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
            r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
            r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
            r" [^ ]+$"
        )
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][\w:]*( .*)?$", line)
            else:
                assert sample_re.match(line), line

    def test_prometheus_histogram_shape(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ns", bounds=(10.0, 100.0))
        for v in (5, 50, 500):
            h.observe(v)
        text = reg.to_prometheus()
        cums = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_ns_bucket")
        ]
        assert cums == [1, 2, 3]  # cumulative and monotone
        assert 'le="+Inf"' in text
        assert "lat_ns_count 3" in text
        assert "lat_ns_sum 555" in text

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", labels={"p": 'a"b\\c\nd'}).inc()
        text = reg.to_prometheus()
        assert r'p="a\"b\\c\nd"' in text


# ----------------------------------------------------------------------
# latency recorder (satellite 1)
# ----------------------------------------------------------------------
class TestLatencyRecorder:
    def test_below_cap_matches_exact_percentiles(self):
        rec = LatencyRecorder(cap=1000, seed=0)
        samples = [(i * 37) % 1000 for i in range(500)]
        for s in samples:
            rec.record(s)
        for q in (50, 90, 99, 99.9):
            assert rec.percentile_ns(q) == percentile(samples, q)

    def test_capped_stays_bounded_with_exact_count_and_max(self):
        rec = LatencyRecorder(cap=64, seed=3)
        for i in range(10_000):
            rec.record(i)
        assert len(rec) == 10_000
        assert rec.summary_ms()["max_ms"] == round(9999 / 1e6, 3)

    def test_capped_percentiles_stay_representative(self):
        # Uniform 0..1e6: the sampled p50 must land near the true p50.
        rec = LatencyRecorder(cap=2048, seed=0)
        for i in range(100_000):
            rec.record((i * 7919) % 1_000_000)
        assert abs(rec.percentile_ns(50) - 500_000) < 100_000

    def test_mirrors_into_histogram(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_ns")
        rec = LatencyRecorder(histogram=hist)
        rec.record(2_000)
        assert hist.count == 1

    def test_empty_summary(self):
        rec = LatencyRecorder()
        assert rec.summary_ms() == {
            "p50_ms": 0.0, "p99_ms": 0.0, "p999_ms": 0.0, "max_ms": 0.0,
        }


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_disabled_fast_path(self):
        assert current_span() is None
        with child_span("anything") as sp:
            assert sp is None
        assert current_span() is None

    def test_span_tree_and_metrics_rollup(self):
        tracer = Tracer().enable()
        with tracer.span("root") as root:
            root.add("io", 1)
            with tracer.span("child", table=3) as child:
                child.add("io", 2)
                with tracer.span("grandchild") as gc:
                    gc.add("io", 4)
        assert [c.name for c in root.children] == ["child"]
        assert root.total("io") == 7
        assert root.find("grandchild") is not None
        assert root.find("nope") is None
        assert child.attrs["table"] == 3
        assert root.end_wall_ns is not None

    def test_to_dict_json_safe_and_format_tree(self):
        tracer = Tracer().enable()
        with tracer.span("root") as root:
            with tracer.span("leaf") as leaf:
                leaf.add("fetches", 2)
                leaf.set(verdict="positive")
        blob = json.loads(json.dumps(root.to_dict()))
        assert blob["children"][0]["metrics"]["fetches"] == 2
        text = format_tree(root)
        assert "root" in text and "leaf" in text
        assert "verdict=positive" in text and "fetches=2" in text

    def test_sim_clock_stamps(self):
        clock = SimulatedClock()
        tracer = Tracer().enable(clock=clock)
        with tracer.span("op") as sp:
            clock.advance(5 * MS)
        assert sp.sim_ns == 5 * MS

    def test_finish_idempotent(self):
        tracer = Tracer().enable()
        sp = tracer.start_span("x")
        tracer.finish(sp)
        end = sp.end_wall_ns
        time.sleep(0.001)
        tracer.finish(sp)
        assert sp.end_wall_ns == end

    def test_attach_adopts_span_across_threads(self):
        tracer = Tracer().enable()
        root = tracer.start_span("root")

        def worker():
            with tracer.attach(root):
                with tracer.span("inner"):
                    pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        tracer.finish(root)
        assert [c.name for c in root.children] == ["inner"]

    def test_process_tracer_child_span_nests(self):
        tracer = get_tracer().enable()
        try:
            with tracer.span("outer") as outer:
                with child_span("nested") as sp:
                    assert sp is not None
                    assert current_span() is sp
            assert [c.name for c in outer.children] == ["nested"]
        finally:
            tracer.disable()


# ----------------------------------------------------------------------
# end-to-end service trace
# ----------------------------------------------------------------------
class TestServiceTrace:
    def test_no_trace_when_disabled(self):
        with FilterService(_tree(), workers=1) as svc:
            resp = svc.query_range(0, 4)
        assert resp.trace is None

    def test_trace_shows_full_request_anatomy(self):
        lsm = _tree()
        tracer = get_tracer().enable(clock=lsm.env.clock)
        try:
            with FilterService(lsm, workers=1) as svc:
                resp = svc.query_range(10, 14)
        finally:
            tracer.disable()
        trace = resp.trace
        assert trace is not None
        assert trace.name == "service.range"
        assert trace.end_wall_ns is not None
        assert trace.attrs["reason"] == "ok"
        assert trace.attrs["degraded"] is False
        assert "breaker" in trace.attrs
        # Queue wait is a closed child even though the request never
        # blocked a worker-side span while queued.
        wait = trace.find("queue.wait")
        assert wait is not None and wait.end_wall_ns is not None
        # The storage descent: lsm -> per-SSTable probe -> RBF fetches.
        assert trace.find("lsm.range_query") is not None
        probe = trace.find("sstable.probe")
        assert probe is not None
        assert probe.attrs["verdict"] in ("positive", "negative")
        assert trace.total("filter_probes") > 0
        assert trace.total("rbf_fetches") > 0
        assert trace.total("io_reads") > 0  # positive verdict was read
        # The rendered tree mentions every layer.
        text = format_tree(trace)
        for needle in ("service.range", "queue.wait", "sstable.probe"):
            assert needle in text

    def test_batch_trace(self):
        lsm = _tree()
        tracer = get_tracer().enable(clock=lsm.env.clock)
        try:
            with FilterService(lsm, workers=1) as svc:
                resp = svc.query_range_batch([(0, 4), (11, 11)])
        finally:
            tracer.disable()
        assert resp.trace is not None
        assert resp.trace.name == "service.range_batch"
        assert resp.trace.find("lsm.range_query_many") is not None


# ----------------------------------------------------------------------
# thin views: IoStats / ServiceStats over the registry
# ----------------------------------------------------------------------
class TestIoStatsView:
    def test_counters_live_in_a_registry(self):
        stats = IoStats()
        stats.bump(reads=3, cache_hits=1)
        assert stats.reads == 3
        snap = stats.registry.snapshot()
        assert snap["io_reads"][0]["value"] == 3
        assert snap["io_reads"][0]["labels"] == {"component": "storage"}

    def test_bind_migrates_totals(self):
        stats = IoStats()
        stats.bump(reads=5)
        shared = MetricsRegistry()
        stats.bind(shared)
        assert stats.reads == 5
        assert shared.counter(
            "io_reads", labels={"component": "storage"}
        ).value == 5
        stats.bump(reads=1)
        assert shared.counter(
            "io_reads", labels={"component": "storage"}
        ).value == 6

    def test_value_equality_and_unknown_counter(self):
        a, b = IoStats(), IoStats()
        assert a == b
        a.bump(reads=1)
        assert a != b
        with pytest.raises(AttributeError):
            a.bump(nonsense=1)


class TestServiceStatsView:
    def test_counters_and_latency_in_shared_registry(self):
        reg = MetricsRegistry()
        stats = ServiceStats(registry=reg)
        stats.bump(submitted=2, completed=2, ok=2)
        stats.wall.record(3 * MS)
        snap = reg.snapshot()
        assert snap["service_completed"][0]["value"] == 2
        assert snap["service_latency_wall_ns"][0]["count"] == 1


# ----------------------------------------------------------------------
# health surface (satellite 2)
# ----------------------------------------------------------------------
class TestHealth:
    def test_health_has_telemetry_fields(self):
        reg = MetricsRegistry()
        with FilterService(_tree(), workers=1, registry=reg) as svc:
            svc.query_range(0, 4)
            r = svc.query_range(0, 1198, deadline_ns=1)
            assert r.degraded
            health = svc.health()
        assert health["uptime_ns"] > 0
        reasons = health["degraded_by_reason"]
        assert set(reasons) == {"deadline", "breaker-open", "fault", "shed"}
        assert reasons["deadline"] >= 1
        transitions = health["breaker"]["transitions"]
        assert set(transitions) == {"opened", "half_opened", "closed"}
        metrics = health["metrics"]
        assert metrics["service_completed"][0]["value"] == 2
        assert "io_reads" in metrics  # storage stats re-homed via bind()
        json.dumps(health)  # the whole endpoint must stay JSON-safe

    def test_uptime_zero_while_stopped(self):
        svc = FilterService(_tree(), workers=1)
        assert svc.uptime_ns() == 0
        svc.start()
        svc.query_range(0, 4)
        assert svc.uptime_ns() > 0
        svc.stop()
        assert svc.uptime_ns() == 0  # documented: 0 while not running


# ----------------------------------------------------------------------
# Instrumented filter gauges
# ----------------------------------------------------------------------
class TestInstrumented:
    def test_rencoder_telemetry_keys(self):
        filt = REncoder(range(0, 2_000, 2), bits_per_key=14)
        tel = filt.telemetry()
        for key in (
            "size_in_bits", "n_keys", "final_p1", "stored_level_count",
            "deepest_level", "shallowest_level", "probe_count",
        ):
            assert key in tel, key
        assert tel["n_keys"] == 1_000
        assert 0.0 < tel["final_p1"] < 1.0
        assert tel["deepest_level"] >= tel["shallowest_level"]

    def test_register_metrics_samples_live(self):
        filt = REncoder(range(0, 2_000, 2), bits_per_key=14)
        reg = MetricsRegistry()
        gauges = filt.register_metrics(reg, table="7")
        assert gauges
        before = reg.snapshot()["rencoder_probe_count"][0]
        assert before["value"] == 0
        assert before["labels"] == {"component": "filter", "table": "7"}
        filt.query_range(10, 14)
        after = reg.snapshot()["rencoder_probe_count"][0]
        assert after["value"] > 0  # sampled from the live filter

    def test_non_numeric_and_failing_attributes_skipped(self):
        class Weird(Instrumented):
            _TELEMETRY = ("ok", "text", "boom", "flag")
            ok = 3

            text = "nope"
            flag = True

            @property
            def boom(self):
                raise RuntimeError

        assert Weird().telemetry() == {"ok": 3}


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_disabled_by_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        prof = PhaseProfiler()
        with prof.phase("build"):
            pass
        assert not prof.has_data()

    def test_phase_accounting(self):
        prof = PhaseProfiler(enabled=True, interval_s=0.001)
        try:
            with prof.phase("build"):
                time.sleep(0.02)
            with prof.phase("query"):
                time.sleep(0.01)
            report = prof.report()
        finally:
            prof.stop()
        assert set(report["phases"]) == {"build", "query"}
        assert report["phases"]["build"]["seconds"] >= 0.02
        shares = [p["share"] for p in report["phases"].values()]
        assert abs(sum(shares) - 1.0) < 0.01
        assert prof.has_data()
        prof.reset()
        assert not prof.has_data()

    def test_nested_phase_attributes_to_innermost(self):
        prof = PhaseProfiler(enabled=True, interval_s=0.001)
        try:
            with prof.phase("outer"):
                with prof.phase("inner"):
                    time.sleep(0.01)
            report = prof.report()
        finally:
            prof.stop()
        assert report["phases"]["inner"]["seconds"] >= 0.01
        # Outer time includes inner (exact wall accounting, not samples).
        assert (
            report["phases"]["outer"]["seconds"]
            >= report["phases"]["inner"]["seconds"]
        )


# ----------------------------------------------------------------------
# serialize timings land on the global registry
# ----------------------------------------------------------------------
class TestSerializeTimings:
    def test_dumps_loads_observed(self):
        from repro.core import serialize
        from repro.telemetry.registry import set_global_registry

        reg = MetricsRegistry()
        old = set_global_registry(reg)
        try:
            filt = REncoder(range(0, 1_000, 2), bits_per_key=14)
            blob = serialize.dumps(filt)
            serialize.loads(blob)
        finally:
            set_global_registry(old)
        snap = reg.snapshot()
        assert snap["serialize_dumps_ns"][0]["count"] == 1
        assert snap["serialize_loads_ns"][0]["count"] == 1
        assert snap["serialize_dumps_ns"][0]["labels"] == {
            "component": "serialize"
        }


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_metrics_dump_json(self, capsys):
        from repro.cli import main

        assert main([
            "metrics-dump", "--n-keys", "2000", "--queries", "10",
        ]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["service_completed"][0]["value"] > 0
        assert snap["io_reads"][0]["labels"] == {"component": "storage"}
        assert any(name.startswith("rencoder_") for name in snap)

    def test_metrics_dump_prometheus(self, capsys):
        from repro.cli import main

        assert main([
            "metrics-dump", "--n-keys", "2000", "--queries", "10",
            "--format", "prom",
        ]) == 0
        text = capsys.readouterr().out
        assert "# TYPE service_completed counter" in text
        assert 'service_latency_wall_ns_bucket{component="service",le="+Inf"}' in text

    def test_trace_query_prints_span_tree(self, capsys):
        from repro.cli import main

        assert main(["trace-query", "--n-keys", "2000"]) == 0
        out = capsys.readouterr().out
        assert "service.range" in out
        assert "queue.wait" in out
        assert "lsm.range_query" in out
        summary = json.loads(out.strip().splitlines()[-1])
        assert "rbf_fetches" in summary and "io_reads" in summary
        # The CLI must leave the process tracer off afterwards.
        assert not get_tracer().enabled
