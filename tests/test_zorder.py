"""Tests for Z-order interleaving and rectangle decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.zorder import deinterleave, interleave, rect_to_zranges


class TestInterleave:
    def test_paper_definition(self):
        # "interleave the binary representations of x and y":
        # x=0b11, y=0b00 -> z = 0b0101.
        assert interleave(0b11, 0b00) == 0b0101
        assert interleave(0b00, 0b11) == 0b1010

    def test_roundtrip_corners(self):
        top = (1 << 32) - 1
        for x, y in [(0, 0), (top, 0), (0, top), (top, top), (123, 456)]:
            assert deinterleave(interleave(x, y)) == (x, y)

    def test_out_of_domain(self):
        with pytest.raises(ValueError):
            interleave(1 << 32, 0)
        with pytest.raises(ValueError):
            deinterleave(-1)

    def test_locality_within_quadrant(self):
        # All points of the top-left 2^31 quadrant share the z high bits.
        z1 = interleave(0, 0)
        z2 = interleave((1 << 31) - 1, (1 << 31) - 1)
        z3 = interleave(1 << 31, 0)
        assert z1 < z2 < z3

    @given(st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 32) - 1))
    @settings(max_examples=100)
    def test_hypothesis_roundtrip(self, x, y):
        assert deinterleave(interleave(x, y)) == (x, y)


class TestRectDecomposition:
    def test_full_domain_single_range(self):
        ranges = rect_to_zranges(0, 255, 0, 255, coord_bits=8)
        assert ranges == [(0, (1 << 16) - 1)]

    def test_single_cell(self):
        z = interleave(5, 9, 8)
        assert rect_to_zranges(5, 5, 9, 9, coord_bits=8) == [(z, z)]

    def test_cover_is_exact_when_budget_allows(self):
        ranges = rect_to_zranges(3, 6, 2, 5, coord_bits=4, max_ranges=64)
        covered = set()
        for lo, hi in ranges:
            covered.update(range(lo, hi + 1))
        expected = {
            interleave(x, y, 4) for x in range(3, 7) for y in range(2, 6)
        }
        assert expected <= covered

    def test_budget_cap_gives_superset(self):
        tight = rect_to_zranges(3, 6, 2, 5, coord_bits=8, max_ranges=4)
        exact = rect_to_zranges(3, 6, 2, 5, coord_bits=8, max_ranges=4096)
        cover_tight = set()
        for lo, hi in tight:
            cover_tight.update(range(lo, hi + 1))
        for lo, hi in exact:
            assert all(z in cover_tight for z in range(lo, hi + 1))

    def test_ranges_sorted_and_disjoint(self):
        ranges = rect_to_zranges(10, 200, 5, 100, coord_bits=8)
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 < b0

    def test_invalid_rect(self):
        with pytest.raises(ValueError):
            rect_to_zranges(5, 4, 0, 10, coord_bits=8)
        with pytest.raises(ValueError):
            rect_to_zranges(0, 300, 0, 10, coord_bits=8)

    @given(
        st.integers(0, 63), st.integers(0, 63),
        st.integers(0, 63), st.integers(0, 63),
    )
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_cover_complete(self, x0, x1, y0, y1):
        x_lo, x_hi = min(x0, x1), max(x0, x1)
        y_lo, y_hi = min(y0, y1), max(y0, y1)
        ranges = rect_to_zranges(x_lo, x_hi, y_lo, y_hi, coord_bits=6,
                                 max_ranges=16)
        for x in range(x_lo, x_hi + 1, max(1, (x_hi - x_lo) // 5)):
            for y in range(y_lo, y_hi + 1, max(1, (y_hi - y_lo) // 5)):
                z = interleave(x, y, 6)
                assert any(lo <= z <= hi for lo, hi in ranges)
