"""Unit tests for the Range Bloom Filter."""

import numpy as np
import pytest

from repro.core.bitmap_tree import BitmapTreeCodec
from repro.core.rbf import RangeBloomFilter


def _bt(codec, suffix, nbits):
    return codec.encode_suffix(suffix, nbits)


class TestBasics:
    def test_fetch_of_inserted_bt_contains_it(self):
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 16, k=3, group_bits=8)
        bt = _bt(codec, 0b10110011, 8)
        rbf.insert_bt(12345, bt)
        fetched = rbf.fetch_bt(12345)
        assert ((fetched & bt) == bt).all()

    def test_unrelated_key_mostly_empty(self):
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 16, k=2, group_bits=8)
        rbf.insert_bt(1, _bt(codec, 0xAB, 8))
        fetched = rbf.fetch_bt(999999)
        # A sparse filter: the AND of k windows for a fresh key should be
        # (nearly) all zero.
        assert int(np.bitwise_count(fetched).sum()) <= 2

    def test_or_semantics_accumulate(self):
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 16, k=2, group_bits=8)
        a, b = _bt(codec, 0x12, 8), _bt(codec, 0xEF, 8)
        rbf.insert_bt(7, a)
        rbf.insert_bt(7, b)
        fetched = rbf.fetch_bt(7)
        combined = a | b
        assert ((fetched & combined) == combined).all()

    def test_p1_monotone_under_inserts(self):
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 14, k=2, group_bits=8)
        prev = rbf.p1
        assert prev == 0.0
        for key in range(50):
            rbf.insert_bt(key, _bt(codec, key % 256, 8))
            assert rbf.p1 >= prev
            prev = rbf.p1

    def test_counters(self):
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 14, k=2, group_bits=8)
        rbf.insert_bt(1, _bt(codec, 3, 8))
        rbf.fetch_bt(1)
        rbf.fetch_bt(2)
        assert rbf.insert_count == 1
        assert rbf.fetch_count == 2 * rbf.k  # one probe per window read
        rbf.reset_counters()
        assert rbf.fetch_count == 0

    def test_copy_is_independent(self):
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 14, k=2, group_bits=8)
        rbf.insert_bt(1, _bt(codec, 3, 8))
        clone = rbf.copy()
        assert clone.ones() == rbf.ones()
        clone.insert_bt(2, _bt(codec, 9, 8))
        assert clone.ones() >= rbf.ones()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RangeBloomFilter(0)
        with pytest.raises(ValueError):
            RangeBloomFilter(1024, group_bits=11)


class TestUnalignedPlacement:
    def test_positions_are_bit_granular(self):
        rbf = RangeBloomFilter(64 * 100, k=1, group_bits=8)
        # 512-bit windows over 6400 bits: a window may start at ANY bit —
        # coarser placement would pin shallow-node bits to fixed in-word
        # offsets and saturate them.
        assert rbf.num_positions == 6400 - 512 + 1

    def test_small_bt_bit_granular(self):
        codec = BitmapTreeCodec(4)  # 32-bit BT placed at any bit offset
        rbf = RangeBloomFilter(64 * 10, k=2, group_bits=4)
        assert rbf.num_positions == 640 - 32 + 1
        bt = _bt(codec, 0b0100, 4)
        rbf.insert_bt(5, bt)
        fetched = rbf.fetch_bt(5)
        assert ((fetched & bt) == bt).all()

    def test_small_bt_word_straddle(self):
        # Force a position whose 32-bit window crosses a word boundary.
        codec = BitmapTreeCodec(4)
        for seed in range(40):
            rbf = RangeBloomFilter(64 * 4, k=1, group_bits=4, seed=seed)
            pos = rbf._family.positions(99)[0]
            if pos % 64 > 32:
                bt = _bt(codec, 0b1011, 4)
                rbf.insert_bt(99, bt)
                fetched = rbf.fetch_bt(99)
                assert ((fetched & bt) == bt).all()
                break
        else:  # pragma: no cover - seed search failed
            raise AssertionError("no straddling position found")

    def test_large_bt_word_straddle(self):
        # 512-bit BT at an unaligned bit offset round-trips exactly.
        codec = BitmapTreeCodec(8)
        for seed in range(40):
            rbf = RangeBloomFilter(64 * 40, k=1, group_bits=8, seed=seed)
            pos = rbf._family.positions(7)[0]
            if pos % 64:
                bt = _bt(codec, 0xC5, 8)
                rbf.insert_bt(7, bt)
                fetched = rbf.fetch_bt(7)
                assert (fetched == bt).all()  # only write: exact match
                break
        else:  # pragma: no cover - seed search failed
            raise AssertionError("no straddling position found")

    def test_shallow_bits_not_confined(self):
        # Depth-1 node bits (bit index 1 of each BT) must spread across
        # word offsets — the regression that motivated bit granularity.
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 14, k=1, group_bits=8)
        bt = np.zeros(codec.words, dtype=np.uint64)
        codec.set_node(bt, 2)  # depth-1 node
        offsets = set()
        for key in range(200):
            pos = rbf._family.positions(key)[0]
            offsets.add((pos + 1) % 64)  # global offset of the node bit
        assert len(offsets) > 16


class TestBulkInsert:
    def test_bulk_matches_scalar(self):
        codec = BitmapTreeCodec(8)
        scalar = RangeBloomFilter(1 << 14, k=3, group_bits=8, seed=5)
        bulk = RangeBloomFilter(1 << 14, k=3, group_bits=8, seed=5)
        keys = np.arange(100, dtype=np.uint64) * 977
        nodes = (np.arange(100) % 511 + 1).astype(np.uint64)
        for key, node in zip(keys, nodes):
            bt = np.zeros(codec.words, dtype=np.uint64)
            codec.set_node(bt, int(node))
            scalar.insert_bt(int(key), bt)
        bulk.bulk_insert_nodes(keys, nodes)
        assert (scalar._array == bulk._array).all()

    def test_bulk_small_bt_matches_scalar(self):
        codec = BitmapTreeCodec(4)
        scalar = RangeBloomFilter(1 << 12, k=2, group_bits=4, seed=9)
        bulk = RangeBloomFilter(1 << 12, k=2, group_bits=4, seed=9)
        keys = np.arange(64, dtype=np.uint64) * 31
        nodes = (np.arange(64) % 31 + 1).astype(np.uint64)
        for key, node in zip(keys, nodes):
            bt = np.zeros(codec.words, dtype=np.uint64)
            codec.set_node(bt, int(node))
            scalar.insert_bt(int(key), bt)
        bulk.bulk_insert_nodes(keys, nodes)
        assert (scalar._array == bulk._array).all()

    def test_empty_bulk_is_noop(self):
        rbf = RangeBloomFilter(1 << 12, k=2)
        rbf.bulk_insert_nodes(np.zeros(0, dtype=np.uint64),
                              np.zeros(0, dtype=np.uint64))
        assert rbf.ones() == 0

    def test_length_mismatch_rejected(self):
        rbf = RangeBloomFilter(1 << 12, k=2)
        with pytest.raises(ValueError):
            rbf.bulk_insert_nodes(
                np.zeros(2, dtype=np.uint64), np.ones(3, dtype=np.uint64)
            )


class TestBatchFetch:
    def test_fetch_bt_many_matches_scalar(self):
        codec = BitmapTreeCodec(8)
        for gb, bb, k in [(8, None, 2), (8, None, 4), (4, 32, 2), (8, 512, 1)]:
            rbf = RangeBloomFilter(1 << 15, k=k, group_bits=gb, block_bits=bb)
            rng = np.random.default_rng(gb * 100 + k)
            for key in rng.integers(0, 1 << 32, 64, dtype=np.uint64):
                bt = np.zeros(rbf.words_per_block, dtype=np.uint64)
                bt[0] = np.uint64(int(key) & rbf._block_mask) | np.uint64(1)
                rbf.insert_bt(int(key), bt)
            probes = rng.integers(0, 1 << 32, 200, dtype=np.uint64)
            batch = rbf.fetch_bt_many(probes)
            for row, key in zip(batch, probes):
                assert (row == rbf.fetch_bt(int(key))).all()

    def test_fetch_bt_many_counts_like_scalar(self):
        rbf = RangeBloomFilter(1 << 14, k=3)
        rbf.fetch_bt_many(np.arange(10, dtype=np.uint64))
        assert rbf.fetch_count == 10 * 3
        assert rbf.fetch_bt_many(np.zeros(0, dtype=np.uint64)).shape == (0, 8)

    def test_copy_preserves_block_bits(self):
        # Regression: copy() used to drop a custom block_bits, silently
        # rebuilding the clone with the group_bits-derived default.
        rbf = RangeBloomFilter(1 << 14, k=2, group_bits=4, block_bits=256)
        clone = rbf.copy()
        assert clone.block_bits == rbf.block_bits == 256
        assert clone.words_per_block == rbf.words_per_block
        assert clone.num_positions == rbf.num_positions
        rng = np.random.default_rng(0)
        for key in rng.integers(0, 1 << 20, 32, dtype=np.uint64):
            assert (clone.fetch_bt(int(key)) == rbf.fetch_bt(int(key))).all()

    def test_fetched_bt_is_not_a_view(self):
        # Mutating a fetched BT must never alter filter state, even for
        # the word-aligned fast path where the window starts as a view.
        codec = BitmapTreeCodec(8)
        hit_aligned = False
        for key in range(3000):
            rbf = RangeBloomFilter(1 << 13, k=1, group_bits=8, seed=7)
            pos = rbf._family.positions(key)[0]
            before = rbf._array.copy()
            fetched = rbf.fetch_bt(key)
            fetched |= np.uint64(0xFFFF_FFFF_FFFF_FFFF)
            assert (rbf._array == before).all()
            if pos % 64 == 0:
                hit_aligned = True
                break
        assert hit_aligned, "no word-aligned position found in 3000 keys"

    def test_fetch_bt_many_rows_are_fresh(self):
        rbf = RangeBloomFilter(1 << 13, k=2, group_bits=8)
        before = rbf._array.copy()
        rows = rbf.fetch_bt_many(np.arange(50, dtype=np.uint64))
        rows |= np.uint64(1)
        assert (rbf._array == before).all()


class TestGenerationAndCounters:
    """Satellites of the serving PR: generation tracking + thread-safe
    counters (a reused FetchCache validates against ``generation``; the
    service's concurrent workers must never lose counter increments)."""

    def test_insert_bumps_generation(self):
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 16, k=2, group_bits=8)
        assert rbf.generation == 0
        rbf.insert_bt(7, _bt(codec, 0x12, 8))
        assert rbf.generation == 1
        rbf.insert_bt(7, _bt(codec, 0x34, 8))
        assert rbf.generation == 2

    def test_bulk_insert_bumps_generation_once(self):
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 16, k=2, group_bits=8)
        bt = _bt(codec, 0b1011, 4)
        nodes = np.nonzero(bt)[0].astype(np.int64)
        keys = np.array([11, 22, 33], dtype=np.uint64)
        hash_keys = np.repeat(keys, len(nodes))
        all_nodes = np.tile(nodes, len(keys))
        rbf.bulk_insert_nodes(hash_keys, all_nodes)
        assert rbf.generation == 1  # one structural change, one bump
        assert rbf.insert_count == len(hash_keys)

    def test_reset_counters_preserves_generation(self):
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 16, k=2, group_bits=8)
        rbf.insert_bt(7, _bt(codec, 0x12, 8))
        rbf.fetch_bt(7)
        rbf.reset_counters()
        assert rbf.fetch_count == 0 and rbf.insert_count == 0
        assert rbf.generation == 1  # counters reset; structure age kept

    def test_copy_preserves_generation(self):
        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 16, k=2, group_bits=8)
        rbf.insert_bt(7, _bt(codec, 0x12, 8))
        clone = rbf.copy()
        assert clone.generation == rbf.generation == 1
        clone.insert_bt(9, _bt(codec, 0x56, 8))
        assert clone.generation == 2 and rbf.generation == 1

    def test_counters_exact_under_contention(self):
        """Concurrent fetches/inserts never lose counter increments."""
        import threading

        codec = BitmapTreeCodec(8)
        rbf = RangeBloomFilter(1 << 18, k=3, group_bits=8)
        bt = _bt(codec, 0xA5, 8)
        rbf.insert_bt(0, bt)
        per_thread, n_threads = 500, 6

        def fetcher(seed):
            for i in range(per_thread):
                rbf.fetch_bt(seed * per_thread + i)

        def inserter(seed):
            for i in range(per_thread):
                rbf.insert_bt(seed * per_thread + i, bt)

        threads = [
            threading.Thread(target=fetcher, args=(s,)) for s in range(3)
        ] + [
            threading.Thread(target=inserter, args=(s,)) for s in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rbf.fetch_count == 3 * per_thread * rbf.k
        assert rbf.insert_count == 1 + 3 * per_thread
        assert rbf.generation == 1 + 3 * per_thread
