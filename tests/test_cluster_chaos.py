"""Cluster chaos acceptance: zero false negatives under topology faults.

The PR's acceptance bar, verbatim: with replica kills, network
partitions, slow shards *and* a live resharding all layered over the
storage-level fault injector, the router must serve >= 10k range
queries with **zero false negatives** while every shard keeps at least
one reachable replica (the chaos driver's standing invariant).

Truth is the inserted key set; a range's expected verdict comes from
bisecting the sorted keys.  Positives must always answer positive —
through real answers, failover, hedges, degraded merges, dual-ownership
reads, hinted-handoff replays, whatever the moment requires.  Negatives
may answer positive (filters trade in false positives; degradation adds
more); the suite records the rate but only the one-sided direction can
fail the build.

``REPRO_CHAOS_SEED`` pins the whole scenario — cluster build, fault
injector streams, chaos schedule, workload — so a CI failure replays
from one number.
"""

from __future__ import annotations

import os
import random
from bisect import bisect_left

import pytest

from repro.cluster import ClusterChaos, FilterCluster
from repro.core.rencoder import REncoder

try:  # pragma: no cover - plugin presence is environment-specific
    import pytest_timeout  # noqa: F401

    pytestmark = [pytest.mark.timeout(600)]
except ImportError:  # plugin not installed locally; CI installs it
    pytestmark = []

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", 20230713))
MS = 1_000_000
TOP64 = (1 << 64) - 1

#: The acceptance floor: total range queries issued across the run.
MIN_QUERIES = 10_000
BATCH = 25

#: Storage-level fault weather every replica lives under (on top of the
#: cluster-level crash/partition/slow schedule).
FAULT_PROFILE = dict(
    transient_read_p=0.01,
    torn_write_p=0.01,
    bit_flip_p=0.01,
    slow_read_p=0.02,
    slow_read_ns=10 * MS,
)


def _factory(keys):
    return REncoder(keys, bits_per_key=14)


def _truth_positive(sorted_keys, lo, hi):
    i = bisect_left(sorted_keys, lo)
    return i < len(sorted_keys) and sorted_keys[i] <= hi


def _build_cluster(seed):
    cluster = FilterCluster(
        n_shards=3,
        replicas_per_shard=2,
        filter_factory=_factory,
        seed=seed,
        segment_bits=5,
        fault_profile=FAULT_PROFILE,
        memtable_capacity=512,
        workers=2,
    )
    cluster.start()
    rng = random.Random(seed)
    keys = sorted({rng.randrange(TOP64) for _ in range(6_000)})
    cluster.load(keys)
    cluster.flush()
    return cluster, keys, rng


class TestClusterChaosAcceptance:
    def test_no_false_negatives_under_chaos_with_live_resharding(self):
        cluster, keys, rng = _build_cluster(CHAOS_SEED)
        chaos = ClusterChaos(cluster, seed=CHAOS_SEED)
        n_batches = MIN_QUERIES // BATCH  # 400 batches = 10k queries
        reshard_at = n_batches // 2
        false_negatives = []
        neg_queries = 0
        false_positives = 0
        degraded_batches = 0
        queries = 0
        try:
            for batch_no in range(n_batches):
                if batch_no % 5 == 0:
                    chaos.step()
                    # The driver's invariant, asserted every time it
                    # acts: no shard may lose its last live replica.
                    for sid, reps in cluster.replicas.items():
                        assert any(r.reachable() for r in reps), (
                            f"shard {sid} lost all replicas "
                            f"(step {batch_no}): {chaos.events[-3:]}"
                        )
                if batch_no % 7 == 0:
                    cluster.probe_all()  # drives down -> recovering
                if batch_no == reshard_at:
                    info = cluster.add_shard()
                    assert info["segments"], "resharding moved nothing"
                ranges = []
                for _ in range(BATCH):
                    if rng.random() < 0.5:
                        k = rng.choice(keys)  # guaranteed-positive probe
                        ranges.append((k, k))
                    else:
                        lo = rng.randrange(TOP64 - (1 << 40))
                        ranges.append((lo, lo + rng.randrange(1 << 40)))
                resp = cluster.query_range_many(ranges)
                queries += len(ranges)
                if resp.degraded:
                    degraded_batches += 1
                for (lo, hi), got in zip(ranges, resp.positives):
                    expected = _truth_positive(keys, lo, hi)
                    if expected and not got:
                        false_negatives.append((batch_no, lo, hi))
                    elif not expected:
                        neg_queries += 1
                        if got:
                            false_positives += 1
        finally:
            chaos.heal_all()
            cluster.stop()
        assert queries >= MIN_QUERIES
        assert not false_negatives, (
            f"{len(false_negatives)} false negatives under chaos "
            f"(seed {CHAOS_SEED}): {false_negatives[:5]}"
        )
        # The run must actually have exercised the machinery it claims
        # to: faults fired, the cluster grew, traffic kept flowing.
        summary = chaos.summary()
        assert summary["actions"].get("crash", 0) >= 1
        assert summary["actions"].get("partition", 0) >= 1
        assert len(cluster.replicas) == 4  # the live-added shard serves
        counters = cluster.health()["counters"]
        assert counters["cluster_requests"] >= n_batches
        # One-sided degradation is expected under this weather, but the
        # cluster must not have collapsed into answering blind.
        if neg_queries:
            assert false_positives / neg_queries < 0.9

    def test_chaos_schedule_is_deterministic(self):
        events = []
        for _ in range(2):
            cluster = FilterCluster(
                n_shards=2,
                replicas_per_shard=2,
                filter_factory=None,
                seed=CHAOS_SEED,
                memtable_capacity=128,
                workers=1,
            )
            cluster.start()
            cluster.load(range(0, 500, 5))
            chaos = ClusterChaos(cluster, seed=CHAOS_SEED)
            chaos.run(40)
            chaos.heal_all()
            cluster.stop()
            events.append(
                [
                    {k: v for k, v in ev.items() if k != "clock_ns"}
                    for ev in chaos.events
                ]
            )
        assert events[0] == events[1]

    def test_recovery_converges_after_chaos_ends(self):
        cluster, keys, rng = _build_cluster(CHAOS_SEED + 1)
        chaos = ClusterChaos(cluster, seed=CHAOS_SEED + 1)
        try:
            chaos.run(30)
            chaos.heal_all()
            # Clear the fault weather too: convergence, not luck.
            for reps in cluster.replicas.values():
                for rep in reps:
                    rep.injector.transient_read_p = 0.0
                    rep.injector.slow_read_p = 0.0
            for _ in range(6):
                cluster.clock.advance(300 * MS)
                cluster.probe_all()
            states = {
                name: snap["health"]["state"]
                for name, snap in cluster.health()["replicas"].items()
            }
            assert set(states.values()) == {"healthy"}, states
            sample = [(k, k) for k in rng.sample(keys, 50)]
            resp = cluster.query_range_many(sample)
            assert all(resp.positives)
            assert not resp.degraded
        finally:
            cluster.stop()
