"""Tests for filter union (REncoder and Bloom)."""

import numpy as np
import pytest

from repro.core.rencoder import REncoder
from repro.core.variants import REncoderSS
from repro.filters.bloom import BloomFilter


@pytest.fixture()
def two_key_sets():
    rng = np.random.default_rng(70)
    a = np.unique(rng.integers(0, 1 << 60, 800, dtype=np.uint64))
    b = np.unique(rng.integers(0, 1 << 60, 800, dtype=np.uint64))
    return a, b


class TestREncoderUnion:
    def test_no_false_negatives_after_union(self, two_key_sets):
        a, b = two_key_sets
        total = 16 * 1600
        fa = REncoder(a, total, seed=1)
        fb = REncoder(b, total, seed=1)
        merged = fa.union(fb)
        for k in np.concatenate([a[:200], b[:200]]):
            assert merged.query_point(int(k))
            assert merged.query_range(max(0, int(k) - 2), int(k) + 2)

    def test_union_intersects_stored_levels(self, two_key_sets):
        a, b = two_key_sets
        total = 16 * 1600
        fa = REncoder(a, total, seed=1)
        fb = REncoder(b, total, seed=1)
        merged = fa.union(fb)
        expected = sorted(set(fa.stored_levels) & set(fb.stored_levels))
        assert merged.stored_levels == expected

    def test_union_counts_keys(self, two_key_sets):
        a, b = two_key_sets
        total = 16 * 1600
        merged = REncoder(a, total, seed=1).union(REncoder(b, total, seed=1))
        assert merged.n_keys == len(a) + len(b)

    def test_union_accuracy_close_to_rebuild(self, two_key_sets):
        a, b = two_key_sets
        both = np.unique(np.concatenate([a, b]))
        total = 18 * len(both)
        merged = REncoder(a, total, seed=2).union(REncoder(b, total, seed=2))
        rebuilt = REncoder(both, total, seed=2)
        rng = np.random.default_rng(71)
        fp_m = fp_r = tried = 0
        for _ in range(800):
            lo = int(rng.integers(0, 1 << 60, dtype=np.uint64))
            hi = lo + 31
            i = np.searchsorted(both, np.uint64(lo))
            if i < len(both) and int(both[i]) <= hi:
                continue
            tried += 1
            fp_m += merged.query_range(lo, hi)
            fp_r += rebuilt.query_range(lo, hi)
        assert fp_m / tried <= fp_r / tried + 0.15

    def test_incompatible_geometry_rejected(self, two_key_sets):
        a, b = two_key_sets
        fa = REncoder(a, 16 * 1600, seed=1)
        with pytest.raises(ValueError):
            fa.union(REncoder(b, 16 * 1600, seed=2))  # different seed
        with pytest.raises(ValueError):
            fa.union(REncoder(b, 32 * 1600, seed=1))  # different size

    def test_cross_variant_rejected(self, two_key_sets):
        a, b = two_key_sets
        fa = REncoder(a, 16 * 1600, seed=1)
        fb = REncoderSS(b, 16 * 1600, seed=1)
        with pytest.raises(TypeError):
            fa.union(fb)

    def test_ss_union(self, two_key_sets):
        a, b = two_key_sets
        fa = REncoderSS(a, 16 * 1600, seed=1)
        fb = REncoderSS(b, 16 * 1600, seed=1)
        try:
            merged = fa.union(fb)
        except ValueError as exc:
            # SS level plans are data-dependent; disjoint stored levels
            # are a legitimate refusal, never a silent wrong answer.
            assert "stored levels" in str(exc)
            return
        for k in np.concatenate([a[:100], b[:100]]):
            assert merged.query_point(int(k))

    def test_disjoint_levels_rejected(self, two_key_sets):
        a, b = two_key_sets
        # Force disjoint stored-level sets: deep-only vs shallow-only.
        fa = REncoder(a, 16 * 1600, seed=1, rmax=64)
        fb = REncoder(b, 16 * 1600, seed=1, rmax=64)
        fb._stored[:] = False
        fb._stored[10] = True
        fb._finalise_levels()
        with pytest.raises(ValueError, match="stored levels"):
            fa.union(fb)


class TestBloomUnion:
    def test_union_contains_both(self, two_key_sets):
        a, b = two_key_sets
        fa = BloomFilter(a, 4096 * 8, seed=1, k=4)
        fb = BloomFilter(b, 4096 * 8, seed=1, k=4)
        merged = fa.union(fb)
        for k in np.concatenate([a[:200], b[:200]]):
            assert merged.query_point(int(k))

    def test_union_equals_joint_build(self, two_key_sets):
        a, b = two_key_sets
        fa = BloomFilter(a, 4096 * 8, seed=1, k=4)
        fb = BloomFilter(b, 4096 * 8, seed=1, k=4)
        both = BloomFilter(
            np.unique(np.concatenate([a, b])), 4096 * 8, seed=1, k=4
        )
        merged = fa.union(fb)
        assert (merged._array == both._array).all()

    def test_incompatible_rejected(self, two_key_sets):
        a, b = two_key_sets
        fa = BloomFilter(a, 4096 * 8, seed=1, k=4)
        with pytest.raises(ValueError):
            fa.union(BloomFilter(b, 4096 * 8, seed=2, k=4))
