"""Tests for the tiering compaction policy."""

import numpy as np
import pytest

from repro.core.rencoder import REncoder
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree


def _tree(policy, factory=None, env=None):
    return LSMTree(
        factory,
        memtable_capacity=16,
        base_capacity=2,
        ratio=3,
        policy=policy,
        env=env,
    )


class TestTiering:
    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            LSMTree(policy="lazy")

    def test_round_trip(self):
        lsm = _tree("tiering")
        for k in range(500):
            lsm.put(k, k * 3)
        lsm.flush()
        for k in range(0, 500, 17):
            assert lsm.get(k) == (True, k * 3)
        assert len(lsm) == 500

    def test_newest_version_wins(self):
        lsm = _tree("tiering")
        for k in range(100):
            lsm.put(k, "old")
        lsm.flush()
        lsm.put(42, "new")
        lsm.flush()
        assert lsm.get(42) == (True, "new")

    def test_deletes(self):
        lsm = _tree("tiering")
        for k in range(100):
            lsm.put(k, k)
        for k in range(0, 100, 2):
            lsm.delete(k)
        lsm.flush()
        assert len(lsm) == 50
        assert lsm.get(10) == (False, None)

    def test_tiers_hold_multiple_runs(self):
        lsm = _tree("tiering")
        for k in range(400):
            lsm.put(k, k)
        lsm.flush()
        # Tiering's signature: some level beyond 0 holds > 1 run.
        assert any(len(level) > 1 for level in lsm.levels[1:]) or (
            len(lsm.levels) > 2
        )

    def test_more_runs_than_leveling(self):
        counts = {}
        for policy in ("leveling", "tiering"):
            lsm = _tree(policy)
            for k in range(600):
                lsm.put(k * 7, k)
            lsm.flush()
            counts[policy] = lsm.table_count()
        assert counts["tiering"] >= counts["leveling"]

    def test_lower_write_amplification_than_leveling(self):
        written = {}
        for policy in ("leveling", "tiering"):
            env = StorageEnv()
            lsm = _tree(policy, env=env)
            for k in range(800):
                lsm.put(k * 11, k)
            lsm.flush()
            written[policy] = env.stats.entries_written
        # Tiering's point: each entry is rewritten fewer times.
        assert written["tiering"] < written["leveling"]

    def test_filters_matter_more_under_tiering(self):
        wasted = {}
        for policy in ("leveling", "tiering"):
            for filtered in (False, True):
                env = StorageEnv()
                factory = (
                    (lambda ks: REncoder(ks, bits_per_key=18))
                    if filtered else None
                )
                lsm = _tree(policy, factory, env)
                rng = np.random.default_rng(5)
                keys = np.unique(
                    rng.integers(0, 1 << 48, 600, dtype=np.uint64)
                )
                for k in keys:
                    lsm.put(int(k), 0)
                lsm.flush()
                env.reset()
                probe_rng = np.random.default_rng(6)
                for _ in range(150):
                    lo = int(probe_rng.integers(1 << 50, 1 << 60))
                    lsm.range_query(lo, lo + 31)
                wasted[policy, filtered] = env.stats.wasted_reads
        # Filters eliminate nearly all wasted reads under both policies.
        assert wasted["tiering", True] <= wasted["tiering", False] // 2

    def test_randomized_against_dict(self):
        rng = np.random.default_rng(8)
        lsm = _tree("tiering")
        model = {}
        for step in range(2500):
            op = rng.integers(0, 10)
            key = int(rng.integers(0, 400))
            if op < 6:
                lsm.put(key, step)
                model[key] = step
            elif op < 8:
                lsm.delete(key)
                model.pop(key, None)
            else:
                assert lsm.get(key) == (
                    (key in model), model.get(key)
                )
        assert lsm.range_query(0, 400) == sorted(model.items())
