"""Chaos stress: the service's one-sided guarantee under concurrent fire.

The scenario the serving layer exists for, all at once:

* several submitter threads pour scalar point, scalar range and batch
  range queries for *known-present* keys into a small drop-oldest queue
  with tight deadlines;
* a writer thread keeps inserting (flushes and compactions swap the
  tree's structure under live readers);
* a maintenance thread loops crash recovery with deferred rebuilds
  (``recover`` drops filters mid-traffic, ``rebuild_degraded`` swaps the
  replacements in);
* a seeded :class:`~repro.storage.faults.FaultInjector` fails reads
  transiently and injects slow reads big enough to blow any deadline.

Through all of it, **every answer for a present key must be positive** —
served or degraded, scalar or batch.  Shedding, deadline expiry and
breaker denials are all allowed (and asserted to actually happen, so the
chaos is known to bite); a single ``False`` for a present key fails the
suite.

``REPRO_STRESS_SEED`` pins the fault sequence and workload so CI
failures reproduce; the per-test timeout applies where ``pytest-timeout``
is installed (CI — the plugin is optional locally).
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.core.rencoder import REncoder
from repro.service import FilterService
from repro.storage.env import SimulatedClock, StorageEnv
from repro.storage.faults import FaultInjector
from repro.storage.lsm import LSMTree

try:  # pragma: no cover - environment-dependent
    import pytest_timeout  # noqa: F401

    pytestmark = pytest.mark.timeout(120)
except ImportError:  # plugin not installed locally; CI installs it
    pytestmark = []

STRESS_SEED = int(os.environ.get("REPRO_STRESS_SEED", 20230713))
MS = 1_000_000

#: Present keys are even numbers below this; the writer inserts above it,
#: so the probed truth never changes while the tree churns.
PRESENT_LIMIT = 6_000
WRITER_BASE = 1_000_000


def _build(injector=None):
    env = StorageEnv(clock=SimulatedClock(), injector=injector)
    lsm = LSMTree(
        lambda ks: REncoder(ks, bits_per_key=12),
        memtable_capacity=256,
        policy="tiering",
        env=env,
        persist_filters=True,
    )
    for k in range(0, PRESENT_LIMIT, 2):
        lsm.put(k, k & 0xFF)
    lsm.flush()
    return lsm


def test_zero_false_negatives_under_chaos():
    injector = FaultInjector(
        STRESS_SEED,
        transient_read_p=0.05,
        slow_read_p=0.2,
        slow_read_ns=100 * MS,  # one slow read out-budgets any deadline
    )
    lsm = _build(injector)
    present = list(range(0, PRESENT_LIMIT, 2))
    stop = threading.Event()
    background_errors: list[BaseException] = []

    def writer():
        k = WRITER_BASE
        try:
            while not stop.is_set():
                for _ in range(64):
                    lsm.put(k, k & 0xFF)
                    k += 2
        except BaseException as exc:  # pragma: no cover - failure path
            background_errors.append(exc)

    def maintainer():
        try:
            while not stop.is_set():
                lsm.recover(rebuild="deferred")
                lsm.rebuild_degraded()
        except BaseException as exc:  # pragma: no cover - failure path
            background_errors.append(exc)

    threads = [
        threading.Thread(target=writer, name="chaos-writer"),
        threading.Thread(target=maintainer, name="chaos-maintainer"),
    ]
    futures = []
    futures_lock = threading.Lock()

    svc = FilterService(
        lsm,
        workers=4,
        queue_depth=8,
        shed_policy="drop-oldest",
        default_deadline_ns=20 * MS,
    )

    def submitter(seed):
        import random

        rng = random.Random(seed)
        local = []
        try:
            for i in range(120):
                k = rng.choice(present)
                if i % 3 == 0:
                    local.append(("point", k, svc.submit_point(k)))
                elif i % 3 == 1:
                    local.append(("range", k, svc.submit_range(k, k + 1)))
                else:
                    ks = [rng.choice(present) for _ in range(4)]
                    local.append(
                        (
                            "batch",
                            ks,
                            svc.submit_range_batch([(x, x + 1) for x in ks]),
                        )
                    )
        except BaseException as exc:  # pragma: no cover - failure path
            background_errors.append(exc)
        with futures_lock:
            futures.extend(local)

    with svc:
        for t in threads:
            t.start()
        submitters = [
            threading.Thread(target=submitter, args=(STRESS_SEED + i,))
            for i in range(3)
        ]
        for t in submitters:
            t.start()
        for t in submitters:
            t.join()
        # Wait for every answer while the chaos is still running.
        for _, _, future in futures:
            future.result(timeout=60)
        stop.set()
        for t in threads:
            t.join(timeout=60)
    assert not background_errors, background_errors
    assert all(not t.is_alive() for t in threads)

    # The headline: zero false negatives, scalar and batch alike.
    for kind, _key, future in futures:
        response = future.result()
        if kind == "batch":
            assert all(response.positive), (
                f"false negative in batch (reason={response.reason})"
            )
        else:
            assert response.positive is True, (
                f"false negative on {kind} (reason={response.reason})"
            )

    # Accounting closes: every settled answer is counted exactly once.
    stats = svc.stats
    assert stats.completed == len(futures)
    assert stats.completed == stats.ok + stats.degraded + stats.shed
    # The chaos must actually have bitten — otherwise this test proves
    # nothing about degraded paths.
    assert stats.degraded + stats.shed > 0, "chaos never degraded anything"
    assert lsm.env.stats.slow_reads > 0, "no slow reads were injected"
    assert not lsm.active_pins(), "a reader left its epoch pinned"


def test_batch_scalar_parity_after_chaos():
    """Once the storm passes, served answers match ground truth exactly."""
    injector = FaultInjector(STRESS_SEED + 7, transient_read_p=0.3)
    lsm = _build(injector)
    # Chaos phase: recovery under heavy transient faults leaves a mix of
    # loaded/degraded filters; rebuild everything back to health.
    lsm.recover(rebuild="deferred")
    injector.transient_read_p = 0.0
    lsm.rebuild_degraded()

    probes = [(k, k + 1) for k in range(0, 200, 2)]
    probes += [(k, k) for k in range(1, 200, 2)]  # absent singletons
    truth = [bool(lsm.range_query(lo, hi)) for lo, hi in probes]
    with FilterService(
        lsm, workers=3, queue_depth=0, default_deadline_ns=None
    ) as svc:
        batch = svc.query_range_batch(probes)
        scalars = [svc.query_range(lo, hi) for lo, hi in probes]
    assert not batch.degraded and batch.positive == truth
    assert [r.positive for r in scalars] == truth
