"""Cross-filter conformance harness.

One parametrised property per registered filter: one-sidedness (never a
false negative) over random small-domain key sets and ranges, checked by
hypothesis.  This is the repo-wide safety net — any new filter added to
the registry is automatically covered.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.registry import FILTER_NAMES, build_filter
from repro.filters.shbf import ShiftingBloomFilter

DOMAIN_BITS = 16
TOP = (1 << DOMAIN_BITS) - 1

#: ARF trains on queries; Bloom scans ranges — both still conform.
CONFORMANCE_FILTERS = list(FILTER_NAMES)


@pytest.mark.parametrize("name", CONFORMANCE_FILTERS)
@given(
    keys=st.sets(st.integers(0, TOP), min_size=1, max_size=40),
    lo=st.integers(0, TOP),
    size=st.integers(1, 64),
    seed=st.integers(0, 3),
)
@settings(max_examples=25, deadline=None)
def test_one_sidedness(name, keys, lo, size, seed):
    """A filter may err positive, never negative."""
    arr = np.array(sorted(keys), dtype=np.uint64)
    filt = build_filter(
        name, arr, 16.0, key_bits=DOMAIN_BITS, seed=seed,
        sample_queries=[(1, 2)],
    )
    hi = min(TOP, lo + size - 1)
    if any(lo <= k <= hi for k in keys):
        assert filt.query_range(lo, hi), f"{name}: false negative"
    for k in list(keys)[:5]:
        assert filt.query_point(k), f"{name}: false negative point {k}"


@pytest.mark.parametrize("name", CONFORMANCE_FILTERS)
def test_size_accounting_positive(name, uniform_keys):
    filt = build_filter(name, uniform_keys[:500], 16.0,
                        sample_queries=[(1, 2)])
    assert filt.size_in_bits() > 0
    assert filt.bits_per_key(500) > 0


@pytest.mark.parametrize("name", CONFORMANCE_FILTERS)
def test_counters_reset(name, uniform_keys):
    filt = build_filter(name, uniform_keys[:500], 16.0,
                        sample_queries=[(1, 2)])
    filt.query_range(10, 20)
    filt.reset_counters()
    assert filt.probe_count == 0


def test_shbf_conforms_too():
    # ShBF is not in the figure registry but obeys the same contract.
    keys = {5, 9, 1000, 40000}
    filt = ShiftingBloomFilter(keys, total_bits=4096, key_bits=DOMAIN_BITS)
    for k in keys:
        assert filt.query_point(k)
        assert filt.query_range(max(0, k - 2), min(TOP, k + 2))


@pytest.mark.parametrize("name", ["REncoder", "REncoderSS", "Rosetta"])
def test_query_many_matches_single(name, uniform_keys):
    filt = build_filter(name, uniform_keys[:500], 16.0)
    ranges = [(10, 20), (1 << 40, (1 << 40) + 31)]
    assert filt.query_many(ranges) == [
        filt.query_range(lo, hi) for lo, hi in ranges
    ]


def test_predicted_fpr_is_bound(uniform_keys, empty_queries):
    from repro.core.rencoder import REncoder

    enc = REncoder(uniform_keys, bits_per_key=18)
    measured = sum(enc.query_range(*q) for q in empty_queries) / len(
        empty_queries
    )
    predicted = enc.predicted_fpr(range_size=32)
    assert 0.0 <= predicted <= 1.0
    assert measured <= predicted + 0.05, (measured, predicted)
    with pytest.raises(ValueError):
        enc.predicted_fpr(0)
