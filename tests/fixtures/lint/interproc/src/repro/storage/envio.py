"""Minimal ``StorageEnv`` stand-in: one charging read + deadline scope."""

from contextlib import contextmanager


class StorageEnv:
    """Fixture env: ``read`` charges the (pretend) simulated clock."""

    def __init__(self) -> None:
        self.reads = 0

    def read(self, useful: bool = True) -> None:
        """Charge one simulated second-level read."""
        self.reads += 1

    @contextmanager
    def deadline_scope(self, deadline_ns):
        """Deadline context (no-op stand-in)."""
        yield self
