"""Cross-module negative laundering: the interproc-one-sided fixture.

``query_range`` falls back to ``ProbeFilter.might_contain`` inside an
``except`` handler.  The returned value is a *call result*, not a
negative literal, so the file-local rule cannot see the problem — only
the interprocedural taint pass, which knows the callee may answer
negative, can.
"""

from repro.filters.probe import ProbeFilter


class ChainFilter:
    """Caches answers; degrades to the probe on a cache miss."""

    def __init__(self, probe: ProbeFilter) -> None:
        self.probe = probe
        self._table = {}

    def query_range(self, lo: int, hi: int) -> bool:
        """Answer from cache, falling back to the probe on a miss."""
        try:
            return self._cached(lo, hi)
        except KeyError:
            return self.probe.might_contain(lo, hi)

    def _cached(self, lo: int, hi: int) -> bool:
        """Cache lookup; raises ``KeyError`` on a miss."""
        return self._table[(lo, hi)]
