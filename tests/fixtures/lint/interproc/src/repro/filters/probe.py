"""Leaf filter: the may-return-negative taint source, plus dead code.

``ProbeFilter.might_contain`` returns ``False`` on a normal path — the
file-local one-sided rule stays silent, but the interprocedural taint
fixpoint must mark it may-return-negative so the laundering return in
``chain.py`` is caught across the module boundary.
"""


class ProbeFilter:
    """Scans an in-memory key set (the taint source)."""

    def __init__(self) -> None:
        self.keys = set()

    def might_contain(self, lo: int, hi: int) -> bool:
        """True iff any key falls inside ``[lo, hi]``."""
        for key in self.keys:
            if lo <= key <= hi:
                return True
        return False


def _stale_scan(keys):
    """Unreachable from anything: the dead-code fixture."""
    return sorted(keys)
