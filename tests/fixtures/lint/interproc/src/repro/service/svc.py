"""Deadline-propagation fixture: two submit chains into blocking I/O.

``submit`` reaches ``StorageEnv.read`` two hops down with no
``deadline_scope`` anywhere on the chain — the interproc-deadline
finding.  ``submit_scoped`` runs the same shape of chain entirely under
a deadline scope, so its leaf must *not* be flagged (the protecting
edge breaks reachability).
"""

from repro.storage.envio import StorageEnv


class MiniService:
    """One bare submit chain (finding), one deadline-scoped (clean)."""

    def __init__(self, env: StorageEnv) -> None:
        self.env = env

    def submit(self, key: int) -> bool:
        """Entry point: plans, then fetches — no deadline anywhere."""
        return self._plan(key)

    def _plan(self, key: int) -> bool:
        """Hop one."""
        return self._fetch(key)

    def _fetch(self, key: int) -> bool:
        """Hop two: the blocking read (expected interproc-deadline)."""
        self.env.read(True)
        return True

    def submit_scoped(self, key: int) -> bool:
        """Entry point whose whole chain runs under a deadline."""
        with self.env.deadline_scope(None):
            return self._covered(key)

    def _covered(self, key: int) -> bool:
        """Reachable only through a protecting edge: no finding."""
        self.env.read(True)
        return True
