"""Wires the fixture objects together so reachable code stays reachable.

Without these call edges every fixture entry point would itself be
flagged dead — the dead-code pass must report *exactly* the one
deliberately orphaned function (``probe._stale_scan``).
"""

from repro.cluster.alpha import Alpha
from repro.cluster.beta import Beta
from repro.cluster.gamma import Gate, Meter
from repro.filters.chain import ChainFilter
from repro.filters.probe import ProbeFilter
from repro.service.svc import MiniService
from repro.storage.envio import StorageEnv

__all__ = ["exercise"]


def exercise() -> None:
    """Call every fixture entry point once."""
    beta = Beta()
    alpha = Alpha(beta)
    alpha.sweep()
    beta.flush(alpha)
    meter = Meter()
    Gate().admit(meter)
    env = StorageEnv()
    svc = MiniService(env)
    svc.submit(1)
    svc.submit_scoped(2)
    chain = ChainFilter(ProbeFilter())
    chain.query_range(1, 2)
