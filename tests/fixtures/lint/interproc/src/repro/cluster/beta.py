"""B-side of a static AB/BA lock-order cycle (with ``alpha.py``).

The textual import cycle with ``alpha`` is deliberate and harmless: the
fixture is only ever parsed by the call-graph builder, never imported.
"""

import threading

from repro.cluster.alpha import Alpha


class Beta:
    """Holds its own lock while calling back into an :class:`Alpha`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._drained = 0

    def drain(self) -> None:
        """Acquire B alone (the inner half of ``Alpha.sweep``)."""
        with self._lock:
            self._drained += 1

    def flush(self, peer: Alpha) -> None:
        """Acquire B, then A through the callback: edge B → A."""
        with self._lock:
            self._drained += 1
            peer.poke()
