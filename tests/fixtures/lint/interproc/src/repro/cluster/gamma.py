"""Half a lock cycle: the static graph alone is acyclic here.

``Gate.admit`` contributes the static edge gate-lock → meter-lock.  The
committed ``sanitizer_report.json`` contributes the reverse edge — an
ordering only ever seen at runtime — so the cycle exists *only in the
union* of the two graphs.
"""

import threading


class Meter:
    """Inner lock: acquired while the gate lock is held."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def tick(self) -> None:
        """Acquire M alone."""
        with self._lock:
            self._count += 1


class Gate:
    """Outer lock: calls into :class:`Meter` while holding its own."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._open = 0

    def admit(self, meter: Meter) -> None:
        """Acquire G, then M: static edge G → M."""
        with self._lock:
            self._open += 1
            meter.tick()
