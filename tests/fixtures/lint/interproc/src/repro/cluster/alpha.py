"""A-side of a static AB/BA lock-order cycle (with ``beta.py``)."""

import threading

from repro.cluster.beta import Beta


class Alpha:
    """Holds its own lock while calling into :class:`Beta`."""

    def __init__(self, peer: Beta) -> None:
        self._lock = threading.Lock()
        self.peer = peer
        self._hits = 0

    def sweep(self) -> None:
        """Acquire A, then B through the peer call: edge A → B."""
        with self._lock:
            self._hits += 1
            self.peer.drain()

    def poke(self) -> None:
        """Acquire A alone (the callback ``Beta.flush`` uses)."""
        with self._lock:
            self._hits += 1
