"""Wall clock inside telemetry/ is allowlisted (no findings)."""

import time


def sample():
    return time.perf_counter_ns()
