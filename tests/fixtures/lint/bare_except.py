"""Positive and negative cases for bare-except."""


def bad_bare():
    try:
        return 1
    except:  # finding: bare
        return 2


def bad_swallow():
    try:
        return 1
    except Exception:  # finding: swallowed
        return 2


def good_reraise():
    try:
        return 1
    except Exception:
        raise


def good_typed():
    try:
        return 1
    except (ValueError, OSError):
        return 2


def good_pragma():
    try:
        return 1
    except Exception:  # lint: allow[bare-except]
        return 2
