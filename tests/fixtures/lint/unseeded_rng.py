"""Positive and negative cases for unseeded-rng."""

import random

import numpy as np
from numpy.random import default_rng


def bad_default_rng():
    return np.random.default_rng()  # finding: no seed


def bad_imported_ctor():
    return default_rng()  # finding: no seed


def bad_random_instance():
    return random.Random()  # finding: no seed


def bad_global_random():
    return random.randint(0, 10)  # finding: global RNG


def bad_legacy_numpy():
    return np.random.rand(3)  # finding: global numpy state


def good_seeded(seed):
    rng = np.random.default_rng(seed)
    other = default_rng(seed=seed + 1)
    local = random.Random(42)
    return rng, other, local


def good_injected(rng: np.random.Generator):
    return rng.integers(0, 10)
