"""Pragma-suppressed wall-clock sites (no findings expected)."""

import time


def uptime(start_ns):
    return time.perf_counter_ns() - start_ns  # lint: allow[wall-clock-in-simulated-path]


def stamp():
    # lint: allow[wall-clock-in-simulated-path]
    return time.time_ns()
