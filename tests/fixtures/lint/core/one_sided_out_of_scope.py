"""Same shape as filters/one_sided.py but outside the rule's scope."""


def decode(data):
    try:
        return bool(data)
    except ValueError:
        return False  # out of scope (not filters/service/storage): clean
