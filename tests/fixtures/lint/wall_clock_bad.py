"""Positive cases for wall-clock-in-simulated-path."""

import time
from time import perf_counter as pc


def latency_ns(clock):
    start = time.perf_counter_ns()  # finding: module attribute call
    clock.tick()
    return time.perf_counter_ns() - start  # finding


def elapsed():
    t0 = pc()  # finding: imported-name call
    return pc() - t0  # finding


def timestamp():
    return time.time()  # finding


def ok_sleep():
    time.sleep(0.01)  # not a wall-clock *read*; no finding
