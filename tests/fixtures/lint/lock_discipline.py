"""Positive and negative cases for lock-discipline."""

import threading
from dataclasses import dataclass, field


class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # writes in __init__ are fine
        self._cache = {}

    def bad_unprotected(self):
        self._count += 1  # finding: no lock held

    def bad_subscript(self, key):
        self._cache[key] = 1  # finding: no lock held

    def good_protected(self):
        with self._lock:
            self._count += 1
            self._cache["x"] = 1

    def good_local_and_public(self):
        count = 0  # locals are fine
        self.public = count  # public attrs are out of scope

    def _bump_locked(self):
        """Add one (lock held by the caller)."""
        self._count += 1  # exempt: docstring declares lock held

    def good_pragma(self):
        self._count = 0  # lint: allow[lock-discipline] — single-threaded reset


class CondGuarded:
    def __init__(self):
        self._cond = threading.Condition()
        self._items = []

    def bad(self):
        self._items = []  # finding

    def good(self):
        with self._cond:
            self._items = []


@dataclass
class DataGuarded:
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _total: int = 0

    def bad(self, n):
        self._total += n  # finding: dataclass lock field counts

    def good(self, n):
        with self._lock:
            self._total += n


class Unlocked:
    """No lock attribute: the rule does not apply at all."""

    def __init__(self):
        self._state = 0

    def mutate(self):
        self._state += 1  # clean: class owns no lock
