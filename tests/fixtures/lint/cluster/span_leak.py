"""span-leak fixtures: leaked vs properly-closed tracer spans.

Lines expected to be flagged carry a ``finding`` comment; everything
else is the idiomatic closed-on-all-paths shape the rule must accept.
"""

tracer = object()
attempt_spans = {}


def discarded_root():
    tracer.start_span("orphan")  # finding: result discarded


def local_never_finished():
    span = tracer.start_span("leaky")  # finding: falls off the end
    span.set(shard=1)


def attr_bound_handoff(req):
    req.span = tracer.start_span("handoff")  # finding: cross-function


def attach_outside_with(span):
    tracer.attach(span)  # finding: contextmanager never entered


def finished_explicitly():
    span = tracer.start_span("ok-finish")
    span.set(shard=1)
    tracer.finish(span)


def escapes_via_callback(fut):
    span = tracer.start_span("ok-callback")
    fut.add_done_callback(make_cb(span))


def make_cb(span):
    return lambda fut: tracer.finish(span)


def stored_for_later(fut):
    span = tracer.start_span("ok-stored")
    attempt_spans[fut] = span


def returned_to_caller():
    return tracer.start_span("ok-returned")


def with_span_idiom():
    with tracer.span("ok-with") as sp:
        sp.set(x=1)


def attach_as_context(span):
    with tracer.attach(span):
        pass


def get_tracer():
    return tracer


def get_tracer_receiver_counts():
    get_tracer().start_span("orphan-2")  # finding: result discarded


def federation_attach_is_out_of_scope(federation, registry):
    # Same method name, different receiver: not a Tracer.
    federation.attach("router", registry, {"scope": "router"})


def pragma_blessed():
    tracer.start_span("blessed")  # lint: allow[span-leak]
