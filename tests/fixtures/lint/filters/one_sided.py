"""Positive and negative cases for one-sided-error (in filters/ scope)."""


class DegradableFilter:
    degraded = False

    def query_bad_except(self, lo, hi):
        try:
            return self._probe(lo, hi)
        except OSError:
            return False  # finding: negative answer from except

    def query_bad_degraded(self, lo, hi):
        if self.degraded:
            return False  # finding: negative answer from degraded branch
        return self._probe(lo, hi)

    def query_bad_batch(self, ranges):
        try:
            return [self._probe(lo, hi) for lo, hi in ranges]
        except OSError:
            return [False] * len(ranges)  # finding: all-negative batch

    def query_good(self, lo, hi):
        try:
            return self._probe(lo, hi)
        except OSError:
            return True  # all-positive fallback: correct

    def empty_ok(self, lo, hi):
        if lo > hi:
            return False  # plain validation, not except/degraded: no finding
        return self._probe(lo, hi)

    def _probe(self, lo, hi):
        return True
