"""Positive and negative cases for mutable-default-arg."""


def bad_list(items=[]):  # finding
    return items


def bad_dict(mapping={}):  # finding
    return mapping


def bad_call(entries=list()):  # finding
    return entries


def bad_kwonly(*, seen=set()):  # finding
    return seen


def good_none(items=None):
    return items if items is not None else []


def good_immutable(name="x", count=0, pair=(1, 2)):
    return name, count, pair
