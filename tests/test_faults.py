"""Unit tests for the fault-injection layer: injector, env, manifest.

The chaos suite (``test_chaos.py``) drives the whole stack; these tests
pin down the primitives it is built on — deterministic fault sequences,
the retry/backoff policy's exact accounting, blob-store damage semantics,
and strict manifest decoding.
"""

import pytest

from repro.core.errors import (
    FilterCorruptionError,
    FilterError,
    TransientIOError,
    TruncatedError,
)
from repro.storage.env import StorageEnv
from repro.storage.faults import FaultInjector
from repro.storage.manifest import Manifest, ManifestRecord


class TestErrorHierarchy:
    def test_corruption_is_value_error(self):
        # Pre-existing callers catch ValueError from serialize.loads.
        assert issubclass(FilterCorruptionError, ValueError)
        assert issubclass(FilterCorruptionError, FilterError)

    def test_truncated_is_corruption(self):
        assert issubclass(TruncatedError, FilterCorruptionError)

    def test_transient_is_os_error(self):
        assert issubclass(TransientIOError, OSError)
        assert issubclass(TransientIOError, FilterError)


class TestFaultInjector:
    def test_deterministic_sequences(self):
        def fire_pattern(seed):
            inj = FaultInjector(seed, transient_read_p=0.3)
            out = []
            for _ in range(50):
                try:
                    inj.check_read()
                    out.append(False)
                except TransientIOError:
                    out.append(True)
            return out

        assert fire_pattern(5) == fire_pattern(5)
        assert fire_pattern(5) != fire_pattern(6)

    def test_armed_transient_fires_exactly_n_times(self):
        inj = FaultInjector()
        inj.arm_transient_reads(2)
        with pytest.raises(TransientIOError):
            inj.check_read()
        with pytest.raises(TransientIOError):
            inj.check_read()
        inj.check_read()  # disarmed

    def test_armed_transient_after_skips(self):
        inj = FaultInjector()
        inj.arm_transient_reads(1, after=3)
        for _ in range(3):
            inj.check_read()
        with pytest.raises(TransientIOError):
            inj.check_read()
        inj.check_read()

    def test_torn_write_is_strict_prefix(self):
        inj = FaultInjector(seed=1)
        inj.arm_torn_write()
        data = bytes(range(100))
        stored, fault = inj.mangle_write(data)
        assert fault == "torn"
        assert len(stored) < len(data)
        assert data.startswith(stored)

    def test_bit_flip_flips_exactly_one_bit(self):
        inj = FaultInjector(seed=2)
        inj.arm_bit_flip()
        data = bytes(100)
        stored, fault = inj.mangle_write(data)
        assert fault == "flip"
        assert len(stored) == len(data)
        diff = [a ^ b for a, b in zip(stored, data)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_clean_write_untouched(self):
        inj = FaultInjector(seed=3)
        data = b"hello world"
        assert inj.mangle_write(data) == (data, None)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(transient_read_p=1.5)
        with pytest.raises(ValueError):
            FaultInjector(bit_flip_p=-0.1)


class TestEnvReadFaults:
    def test_read_raises_and_counts(self):
        env = StorageEnv(injector=FaultInjector())
        env.injector.arm_transient_reads(1)
        with pytest.raises(TransientIOError):
            env.read(useful=True)
        assert env.stats.transient_faults == 1
        # The failed read was not counted as a read.
        assert env.stats.reads == 0

    def test_retry_recovers_and_charges_backoff(self):
        env = StorageEnv(injector=FaultInjector())
        env.injector.arm_transient_reads(2)
        env.read_with_retry(useful=True)
        assert env.stats.reads == 1
        assert env.stats.useful_reads == 1
        assert env.stats.transient_faults == 2
        assert env.stats.retries == 2
        # Equal-jittered backoff: each delay lands in [full/2, full]
        # of the deterministic base + 2*base schedule.
        full = env.backoff_base_ns * 3
        assert full // 2 <= env.stats.backoff_ns <= full
        assert env.simulated_io_seconds() == pytest.approx(
            (env.io_cost_ns + env.stats.backoff_ns) * 1e-9
        )

    def test_backoff_jitter_is_deterministic_per_seed(self):
        def run(seed):
            env = StorageEnv(injector=FaultInjector(seed))
            env.injector.arm_transient_reads(3)
            env.read_with_retry(useful=True)
            return env.stats.backoff_ns

        # Same seed → identical jittered schedule; different seeds
        # decorrelate (the anti-stampede point of the jitter).
        assert run(7) == run(7)
        assert len({run(s) for s in range(20)}) > 1

    def test_backoff_jitter_streams_are_independent(self):
        # Drawing jitter must not perturb the fault stream: two
        # injectors with the same seed decide faults identically even
        # when one of them also hands out jittered backoffs.
        a = FaultInjector(3, transient_read_p=0.5)
        b = FaultInjector(3, transient_read_p=0.5)
        outcomes_a = []
        for _ in range(64):
            b.jitter_backoff(1000)
            try:
                a.check_read()
                outcomes_a.append(False)
            except TransientIOError:
                outcomes_a.append(True)
        outcomes_b = []
        for _ in range(64):
            try:
                b.check_read()
                outcomes_b.append(False)
            except TransientIOError:
                outcomes_b.append(True)
        assert outcomes_a == outcomes_b

    def test_retry_budget_exhausts(self):
        env = StorageEnv(injector=FaultInjector(), max_read_retries=2)
        env.injector.arm_transient_reads(10)
        with pytest.raises(TransientIOError):
            env.read_with_retry(useful=True)
        assert env.stats.reads == 0
        assert env.stats.retries == 2
        assert env.stats.transient_faults == 3  # initial try + 2 retries

    def test_backoff_is_capped_exponential(self):
        env = StorageEnv(
            injector=FaultInjector(),
            max_read_retries=6,
            backoff_base_ns=100,
            backoff_cap_ns=400,
        )
        env.injector.arm_transient_reads(6)
        env.read_with_retry(useful=False)
        # 100, 200, 400, 400, 400, 400 — doubling then capped, each
        # equal-jittered into [full/2, full].
        assert 1900 // 2 <= env.stats.backoff_ns <= 1900

    def test_no_injector_is_faultless(self):
        env = StorageEnv()
        for _ in range(100):
            env.read_with_retry(useful=True)
        assert env.stats.reads == 100
        assert env.stats.transient_faults == 0
        assert env.stats.retries == 0


class TestBlobStore:
    def test_round_trip(self):
        env = StorageEnv()
        env.put_blob("a", b"payload")
        assert env.get_blob("a") == b"payload"
        assert env.stats.blob_writes == 1
        assert env.stats.blob_reads == 1

    def test_missing_blob_is_corruption(self):
        env = StorageEnv()
        with pytest.raises(FilterCorruptionError):
            env.get_blob("never-written")

    def test_torn_write_stores_prefix(self):
        env = StorageEnv(injector=FaultInjector(seed=4))
        env.injector.arm_torn_write()
        data = bytes(range(64))
        env.put_blob("t", data)
        assert env.stats.torn_writes == 1
        stored = env.get_blob("t")
        assert len(stored) < len(data) and data.startswith(stored)

    def test_bit_flip_stored_at_rest(self):
        env = StorageEnv(injector=FaultInjector(seed=5))
        env.injector.arm_bit_flip()
        data = bytes(64)
        env.put_blob("f", data)
        assert env.stats.bit_flips == 1
        # Damage is at rest: every read sees the same flipped byte.
        assert env.get_blob("f") == env.get_blob("f") != data

    def test_transient_blob_read_retried(self):
        env = StorageEnv(injector=FaultInjector())
        env.put_blob("r", b"x")
        env.injector.arm_transient_reads(1)
        assert env.get_blob_with_retry("r") == b"x"
        assert env.stats.retries == 1

    def test_blobs_survive_reset(self):
        env = StorageEnv()
        env.put_blob("keep", b"data")
        env.reset()
        assert env.get_blob("keep") == b"data"


class TestManifest:
    def _record(self, **overrides):
        fields = dict(
            table_id=1, blob_name="filter-1", n_entries=10, min_key=0,
            max_key=99, filter_class="REncoder", blob_len=256,
            crc32=0xDEADBEEF,
        )
        fields.update(overrides)
        return ManifestRecord(**fields)

    def test_json_round_trip(self):
        manifest = Manifest([self._record(), self._record(table_id=2)])
        restored = Manifest.from_json(manifest.to_json())
        assert restored.records == manifest.records
        assert restored.record_for(2).table_id == 2
        assert restored.record_for(99) is None

    def test_bad_json_is_typed(self):
        with pytest.raises(FilterCorruptionError):
            Manifest.from_json(b"\xff\xfe not json")
        with pytest.raises(FilterCorruptionError):
            Manifest.from_json('{"version": 7, "tables": []}')
        with pytest.raises(FilterCorruptionError):
            Manifest.from_json('{"version": 1, "tables": {}}')

    def test_bad_record_fields_are_typed(self):
        good = self._record().as_dict()
        for key, bad in (
            ("table_id", 0),
            ("table_id", "one"),
            ("crc32", -1),
            ("crc32", 1 << 32),
            ("blob_name", ""),
            ("filter_class", None),
            ("n_entries", True),
        ):
            raw = dict(good)
            raw[key] = bad
            with pytest.raises(FilterCorruptionError):
                ManifestRecord.from_dict(raw)
        with pytest.raises(FilterCorruptionError):
            ManifestRecord.from_dict(["not", "a", "dict"])
