"""Tests for the Rosetta baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.rosetta import Rosetta
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)
from tests.conftest import assert_no_false_negatives


class TestConstruction:
    def test_stores_bottom_levels(self, uniform_keys):
        r = Rosetta(uniform_keys, bits_per_key=16, rmax=64)
        assert r.levels == list(range(58, 65))

    def test_rmax_controls_levels(self, uniform_keys):
        r = Rosetta(uniform_keys, bits_per_key=16, rmax=16)
        assert r.levels == list(range(60, 65))

    def test_bottom_heavy_allocation(self, uniform_keys):
        r = Rosetta(uniform_keys, bits_per_key=16)
        sizes = [r.filters[lvl].size_in_bits() for lvl in r.levels]
        assert sizes[-1] == max(sizes)
        assert sizes[-1] > 2 * sizes[0]

    @pytest.mark.parametrize("allocation", ["equal", "proportional"])
    def test_other_allocations(self, uniform_keys, allocation):
        r = Rosetta(uniform_keys, bits_per_key=16, allocation=allocation)
        assert_no_false_negatives(r, uniform_keys[:50])

    def test_sampled_allocation(self, uniform_keys):
        sample = uniform_range_queries(uniform_keys, 100, seed=42)
        r = Rosetta(uniform_keys, bits_per_key=16, sample_queries=sample)
        assert_no_false_negatives(r, uniform_keys[:50])
        queries = uniform_range_queries(uniform_keys, 400, seed=43)
        plain = Rosetta(uniform_keys, bits_per_key=16)
        fpr_sampled = sum(r.query_range(*q) for q in queries) / len(queries)
        fpr_plain = sum(plain.query_range(*q) for q in queries) / len(queries)
        # Workload-driven allocation is at least competitive.
        assert fpr_sampled <= fpr_plain + 0.03

    def test_sampled_requires_samples(self, uniform_keys):
        with pytest.raises(ValueError):
            Rosetta(uniform_keys, allocation="sampled")

    def test_total_size_respects_budget(self, uniform_keys):
        r = Rosetta(uniform_keys, bits_per_key=16)
        assert r.size_in_bits() <= 16 * len(uniform_keys) * 1.1

    def test_invalid_args(self, uniform_keys):
        with pytest.raises(ValueError):
            Rosetta(uniform_keys, rmax=0)
        with pytest.raises(ValueError):
            Rosetta(uniform_keys, allocation="nope")
        with pytest.raises(ValueError):
            Rosetta(uniform_keys, bottom_ratio=0.0)


class TestQueries:
    def test_no_false_negatives(self, uniform_keys):
        r = Rosetta(uniform_keys, bits_per_key=14)
        assert_no_false_negatives(r, uniform_keys[:200])

    def test_point_query_uses_bottom_filter(self, uniform_keys):
        r = Rosetta(uniform_keys, bits_per_key=16)
        r.reset_counters()
        r.query_point(12345)
        # Only the bottom Bloom filter is probed (its k hashes).
        assert r.probe_count == r.filters[64].k

    def test_correlated_robustness(self, uniform_keys):
        # The paper's Figure 9: Rosetta is hardly affected by correlation.
        r = Rosetta(uniform_keys, bits_per_key=20)
        queries = correlated_range_queries(uniform_keys, 200, seed=5)
        fpr = sum(r.query_range(*q) for q in queries) / len(queries)
        assert fpr < 0.3

    def test_fpr_decreases_with_memory(self, uniform_keys):
        queries = uniform_range_queries(uniform_keys, 400, seed=6)
        fprs = []
        for bpk in (8, 16, 28):
            r = Rosetta(uniform_keys, bits_per_key=bpk, seed=2)
            fprs.append(sum(r.query_range(*q) for q in queries) / len(queries))
        assert fprs[2] <= fprs[0]

    def test_probes_exceed_rencoder(self, uniform_keys, empty_queries):
        # The paper's core throughput claim, in probe counts.
        from repro.core.rencoder import REncoder

        r = Rosetta(uniform_keys, bits_per_key=18)
        enc = REncoder(uniform_keys, bits_per_key=18)
        r.reset_counters()
        enc.reset_counters()
        for q in empty_queries[:200]:
            r.query_range(*q)
            enc.query_range(*q)
        assert r.probe_count > 3 * enc.probe_count

    def test_shallow_prefix_expansion(self, uniform_keys):
        # A range wider than rmax decomposes into prefixes above the
        # shallowest stored level; answers stay one-sided.
        r = Rosetta(uniform_keys, bits_per_key=16)
        k = int(uniform_keys[0])
        assert r.query_range(max(0, k - 10_000), min((1 << 64) - 1, k + 10_000))

    def test_empty_keys(self):
        r = Rosetta([], total_bits=4096)
        assert not r.query_range(0, 1000)

    @given(st.sets(st.integers(0, 255), min_size=1, max_size=30),
           st.integers(0, 255), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_no_false_negatives(self, keys, lo, size):
        r = Rosetta(keys, total_bits=8192, key_bits=8, rmax=8)
        hi = min(255, lo + size - 1)
        if any(lo <= k <= hi for k in keys):
            assert r.query_range(lo, hi)
