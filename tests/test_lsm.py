"""Unit and randomized model tests for the LSM-tree."""

import numpy as np
import pytest

from repro.core.rencoder import REncoder
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree


def _factory(keys):
    return REncoder(keys, bits_per_key=18)


def _small_tree(env=None):
    return LSMTree(
        _factory, memtable_capacity=16, base_capacity=2, ratio=2, env=env
    )


class TestBasics:
    def test_put_get(self):
        lsm = _small_tree()
        lsm.put(5, "a")
        assert lsm.get(5) == (True, "a")
        assert lsm.get(6) == (False, None)

    def test_get_after_flush(self):
        lsm = _small_tree()
        for k in range(100):
            lsm.put(k, k * 2)
        lsm.flush()
        for k in range(100):
            assert lsm.get(k) == (True, k * 2)

    def test_newest_version_wins(self):
        lsm = _small_tree()
        for k in range(40):
            lsm.put(k, "old")
        lsm.flush()
        lsm.put(7, "new")
        lsm.flush()
        assert lsm.get(7) == (True, "new")

    def test_delete_shadows_older_levels(self):
        lsm = _small_tree()
        for k in range(40):
            lsm.put(k, k)
        lsm.flush()
        lsm.delete(7)
        lsm.flush()
        assert lsm.get(7) == (False, None)
        assert 7 not in [k for k, _ in lsm.range_query(0, 39)]

    def test_range_query_merges_levels(self):
        lsm = _small_tree()
        for k in range(0, 100, 2):
            lsm.put(k, "even")
        lsm.flush()
        for k in range(1, 100, 2):
            lsm.put(k, "odd")
        lsm.flush()
        result = lsm.range_query(10, 20)
        assert [k for k, _ in result] == list(range(10, 21))

    def test_compaction_keeps_data(self):
        lsm = _small_tree()
        for k in range(500):
            lsm.put(k, k)
        lsm.flush()
        assert len(lsm) == 500
        # Deep levels exist after many flushes of a tiny memtable.
        assert len(lsm.levels) >= 2
        for k in range(0, 500, 37):
            assert lsm.get(k) == (True, k)

    def test_tombstones_dropped_at_bottom(self):
        lsm = _small_tree()
        for k in range(200):
            lsm.put(k, k)
        for k in range(0, 200, 2):
            lsm.delete(k)
        lsm.flush()
        # force full compaction by inserting more
        for k in range(200, 400):
            lsm.put(k, k)
        lsm.flush()
        assert len(lsm) == 300

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LSMTree(base_capacity=0)
        with pytest.raises(ValueError):
            LSMTree(ratio=1)
        lsm = _small_tree()
        with pytest.raises(ValueError):
            lsm.range_query(5, 4)


class TestFilterIntegration:
    def test_empty_ranges_cost_no_io(self):
        env = StorageEnv()
        lsm = LSMTree(_factory, memtable_capacity=64, env=env)
        rng = np.random.default_rng(0)
        for k in rng.integers(0, 1 << 40, 500, dtype=np.uint64):
            lsm.put(int(k), "v")
        lsm.flush()
        env.reset()
        for lo in range(1 << 41, (1 << 41) + 100_000, 3333):
            assert lsm.range_query(lo, lo + 20) == []
        assert env.stats.reads <= 2  # nearly all pruned by filters

    def test_filterless_tree_pays_io(self):
        env = StorageEnv()
        lsm = LSMTree(None, memtable_capacity=64, env=env)
        for k in range(0, 2000, 3):
            lsm.put(k, "v")
        lsm.flush()
        env.reset()
        for lo in range(1, 2000, 100):
            lsm.range_query(lo, lo + 1)
        assert env.stats.reads > 0

    def test_filter_bits_and_probes(self):
        lsm = _small_tree()
        for k in range(100):
            lsm.put(k * 1000, k)
        lsm.flush()
        assert lsm.filter_bits() > 0
        before = lsm.filter_probes()
        # Inside the fences but empty: the filter must be consulted.
        lsm.range_query(1500, 1600)
        assert lsm.filter_probes() > before


class TestModelConformance:
    def test_randomized_against_dict(self):
        rng = np.random.default_rng(7)
        lsm = _small_tree()
        model: dict[int, int] = {}
        for step in range(3000):
            op = rng.integers(0, 10)
            key = int(rng.integers(0, 500))
            if op < 6:
                lsm.put(key, step)
                model[key] = step
            elif op < 8:
                lsm.delete(key)
                model.pop(key, None)
            else:
                found, value = lsm.get(key)
                assert found == (key in model)
                if found:
                    assert value == model[key]
        # Final full-range check.
        expected = sorted(model.items())
        assert lsm.range_query(0, 500) == expected
