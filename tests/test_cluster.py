"""Unit tests for the sharded filter cluster tier.

Bottom-up over :mod:`repro.cluster`: the consistent-hash ring and the
segment map it places, the per-replica health state machine, the replica
lifecycle (crash / restart / partition), the router's failover, hedging
and retry-after handling, the facade's hinted-handoff write path, and
live resharding.  The cluster-wide invariant every class here serves:
no merged answer is ever a false negative, no matter which replicas are
dead.  (The full chaos scenario lives in ``test_cluster_chaos.py``.)
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

import pytest

from repro.cluster import (
    ClusterMap,
    ClusterRouter,
    FilterCluster,
    HashRing,
    Replica,
    ReplicaHealth,
    ReplicaUnreachableError,
)
from repro.core.rencoder import REncoder
from repro.service import ServiceOverloadError, ServiceResponse
from repro.storage.env import SimulatedClock

MS = 1_000_000


def _factory(keys):
    return REncoder(keys, bits_per_key=14)


def _cluster(n_shards=2, replicas=2, **kw):
    kw.setdefault("memtable_capacity", 128)
    kw.setdefault("workers", 2)
    return FilterCluster(
        n_shards, replicas, _factory, seed=11, segment_bits=5, **kw
    )


class TestHashRing:
    def test_placement_is_deterministic(self):
        a = HashRing([0, 1, 2], seed=5).placement(64)
        b = HashRing([0, 1, 2], seed=5).placement(64)
        assert a == b

    def test_seed_decorrelates(self):
        a = HashRing([0, 1, 2], seed=1).placement(64)
        b = HashRing([0, 1, 2], seed=2).placement(64)
        assert a != b

    def test_every_shard_owns_something(self):
        placement = HashRing([0, 1, 2, 3], seed=0).placement(64)
        owned = set(placement.values())
        assert owned == {0, 1, 2, 3}

    def test_add_shard_moves_bounded_slice(self):
        ring = HashRing([0, 1, 2], seed=3)
        before = ring.placement(64)
        ring.add_shard(3)
        after = ring.placement(64)
        moved = [seg for seg in before if before[seg] != after[seg]]
        # Consistent hashing: only segments claimed by the newcomer
        # move, and nothing reshuffles between survivors.
        assert all(after[seg] == 3 for seg in moved)
        assert 0 < len(moved) < 64

    def test_remove_shard_inverse_of_add(self):
        ring = HashRing([0, 1, 2], seed=3)
        before = ring.placement(64)
        ring.add_shard(3)
        ring.remove_shard(3)
        assert ring.placement(64) == before

    def test_add_is_idempotent(self):
        ring = HashRing([0, 1], seed=0)
        before = ring.placement(32)
        ring.add_shard(1)
        assert ring.placement(32) == before

    def test_cannot_remove_last_shard(self):
        ring = HashRing([0], seed=0)
        with pytest.raises(ValueError):
            ring.remove_shard(0)

    def test_needs_a_shard(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestClusterMap:
    def test_segment_roundtrip(self):
        m = ClusterMap([0, 1], segment_bits=5)
        for seg in range(m.n_segments):
            lo, hi = m.segment_range(seg)
            assert m.segment_of(lo) == seg
            assert m.segment_of(hi) == seg

    def test_split_range_covers_exactly(self):
        m = ClusterMap([0, 1], segment_bits=5)
        lo = 3 << 58
        hi = (5 << 59) + 12345
        pieces = m.split_range(lo, hi)
        assert pieces[0][1] == lo and pieces[-1][2] == hi
        for (_, _, prev_hi), (_, next_lo, _) in zip(pieces, pieces[1:]):
            assert next_lo == prev_hi + 1

    def test_migration_dual_ownership_then_commit(self):
        m = ClusterMap([0, 1], segment_bits=5, seed=2)
        seg = next(s for s, o in m.ring.placement(32).items() if o == 0)
        e0 = m.epoch
        m.begin_migration(seg, 1)
        assert m.owners(seg) == (0, 1)
        assert m.epoch == e0 + 1
        m.commit_migration(seg)
        assert m.owners(seg) == (1,)
        assert m.epoch == e0 + 2

    def test_abort_keeps_old_owner(self):
        m = ClusterMap([0, 1], segment_bits=5, seed=2)
        seg = next(s for s, o in m.ring.placement(32).items() if o == 0)
        m.begin_migration(seg, 1)
        m.abort_migration(seg)
        assert m.owners(seg) == (0,)

    def test_migration_misuse_raises(self):
        m = ClusterMap([0, 1], segment_bits=5, seed=2)
        seg = next(s for s, o in m.ring.placement(32).items() if o == 0)
        with pytest.raises(ValueError):
            m.begin_migration(seg, 9)  # unknown shard
        with pytest.raises(ValueError):
            m.begin_migration(seg, 0)  # already the owner
        m.begin_migration(seg, 1)
        with pytest.raises(RuntimeError):
            m.begin_migration(seg, 1)  # already migrating
        m.commit_migration(seg)
        with pytest.raises(RuntimeError):
            m.commit_migration(seg)  # nothing in flight

    def test_add_shard_reports_but_does_not_flip(self):
        m = ClusterMap([0, 1], segment_bits=5, seed=4)
        before = dict(m.snapshot()["owner"])
        segments = m.add_shard(2)
        assert segments  # the ring reassigns something
        # Ownership unchanged until each segment's migration commits.
        assert dict(m.snapshot()["owner"]) == before


class TestReplicaHealth:
    def _health(self, clock=None, **kw):
        kw.setdefault("suspect_after", 1)
        kw.setdefault("down_after", 2)
        kw.setdefault("down_retry_ns", 50 * MS)
        kw.setdefault("recover_after", 2)
        return ReplicaHealth(clock or SimulatedClock(), **kw)

    def test_demotion_path(self):
        h = self._health()
        assert h.state == "healthy"
        h.record_failure()
        assert h.state == "suspect"
        h.record_failure()
        h.record_failure()
        assert h.state == "down" and h.is_down()

    def test_suspect_recovers_on_one_success(self):
        h = self._health()
        h.record_failure()
        h.record_success()
        assert h.state == "healthy"

    def test_down_to_recovering_is_clock_driven(self):
        clock = SimulatedClock()
        h = self._health(clock)
        h.force_down()
        assert h.state == "down"
        clock.advance(50 * MS)
        assert h.state == "recovering"

    def test_recovering_promotes_after_successes(self):
        clock = SimulatedClock()
        h = self._health(clock)
        h.force_down()
        clock.advance(50 * MS)
        h.record_success()
        assert h.state == "recovering"
        h.record_success()
        assert h.state == "healthy"

    def test_recovering_failure_re_downs(self):
        clock = SimulatedClock()
        h = self._health(clock)
        h.force_down()
        clock.advance(50 * MS)
        assert h.state == "recovering"
        h.record_failure()
        assert h.state == "down"
        # The retry window restarts from the re-down.
        clock.advance(49 * MS)
        assert h.state == "down"
        clock.advance(1 * MS)
        assert h.state == "recovering"

    def test_transition_counters(self):
        h = self._health()
        h.record_failure()
        h.record_success()
        snap = h.snapshot()
        assert snap["transitions"]["suspect"] == 1
        assert snap["transitions"]["healthy"] == 1


class TestReplica:
    def _replica(self, **kw):
        kw.setdefault("memtable_capacity", 64)
        kw.setdefault("workers", 1)
        return Replica(0, 0, _factory, clock=SimulatedClock(), **kw)

    def test_crash_makes_submits_unreachable(self):
        rep = self._replica().start()
        rep.put(10, 1)
        rep.crash()
        assert rep.crashed and not rep.reachable()
        assert rep.health.is_down()
        with pytest.raises(ReplicaUnreachableError):
            rep.submit_range_batch([(0, 100)])
        with pytest.raises(ReplicaUnreachableError):
            rep.put(11, 1)
        rep.stop()  # no-op on a crashed replica

    def test_restart_recovers_and_replays_hints(self):
        rep = self._replica().start()
        for k in range(0, 200, 2):
            rep.put(k, k)
        rep.lsm.flush()
        rep.crash()
        rep.restart(replay=[(999, 1), (1001, 1)])
        assert rep.reachable() and rep.restarts == 1
        resp = rep.submit_range_batch([(999, 999), (1001, 1001)]).result()
        assert resp.positive == [True, True]

    def test_partition_blocks_then_heals(self):
        rep = self._replica().start()
        rep.set_partitioned(True)
        with pytest.raises(ReplicaUnreachableError):
            rep.submit_point(5)
        rep.set_partitioned(False)
        assert rep.submit_point(5).result().reason == "ok"
        rep.stop()

    def test_stopped_replica_is_unreachable(self):
        rep = self._replica().start()
        rep.stop()
        with pytest.raises(ReplicaUnreachableError):
            rep.submit_point(5)


class _StubReplica:
    """Router-facing replica double with scripted responses."""

    def __init__(self, name, clock, behaviour):
        self.name = name
        self.health = ReplicaHealth(clock)
        self.behaviour = behaviour  # callable(pairs) -> Future
        self.submits = 0

    def submit_range_batch(self, pairs, *, deadline_ns=None):
        self.submits += 1
        return self.behaviour(pairs)

    def submit_point(self, key, *, deadline_ns=None):
        self.submits += 1
        inner = self.behaviour([(key, key)])
        if not inner.done():
            return inner
        resp = inner.result()
        # Point responses carry a scalar verdict, like the real service.
        out = Future()
        out.set_result(
            ServiceResponse(
                positive=all(resp.positive)
                if isinstance(resp.positive, list)
                else resp.positive,
                degraded=resp.degraded,
                reason=resp.reason,
                retry_after_ns=resp.retry_after_ns,
            )
        )
        return out

    def snapshot(self):
        return {"name": self.name}


def _ok(pairs):
    f = Future()
    f.set_result(
        ServiceResponse(
            positive=[False] * len(pairs), degraded=False, reason="ok"
        )
    )
    return f


def _degraded(reason, retry_after_ns=0):
    def behave(pairs):
        f = Future()
        f.set_result(
            ServiceResponse(
                positive=[True] * len(pairs),
                degraded=True,
                reason=reason,
                retry_after_ns=retry_after_ns,
            )
        )
        return f

    return behave


def _unreachable(pairs):
    raise ReplicaUnreachableError("scripted")


def _never(pairs):
    return Future()  # never resolves: the hedge must win


class TestRouterExchange:
    def _router(self, behaviours, **kw):
        clock = SimulatedClock()
        cmap = ClusterMap([0], segment_bits=3, seed=1)
        reps = [
            _StubReplica(f"s0r{i}", clock, b)
            for i, b in enumerate(behaviours)
        ]
        kw.setdefault("hedge_warmup", 10**9)  # no hedging unless asked
        router = ClusterRouter(
            cmap, {0: reps}, clock=clock, **kw
        )
        return router, reps, clock

    def test_healthy_primary_answers(self):
        router, reps, _ = self._router([_ok, _ok])
        resp = router.query_range(0, 10)
        assert resp.positives == [False] and not resp.degraded
        assert reps[0].submits + reps[1].submits == 1

    def test_failover_on_unreachable(self):
        router, reps, _ = self._router([_unreachable, _ok])
        # Rotation may pick either first; force the bad one primary by
        # querying until it was tried at least once.
        resp = router.query_range(0, 10)
        assert not resp.degraded
        assert resp.shards[0].reason == "ok"
        failed = reps[0] if reps[0].submits else reps[1]
        assert router._counters["cluster_failovers"].value >= 0

    def test_all_unreachable_degrades_all_positive(self):
        router, reps, _ = self._router([_unreachable, _unreachable])
        resp = router.query_range_many([(0, 10), (20, 30)])
        assert resp.positives == [True, True]
        assert resp.degraded
        assert resp.shards[0].reason == "unreachable"
        assert router._counters["cluster_unreachable_shards"].value == 1

    def test_degraded_answer_triggers_failover_to_real_one(self):
        router, reps, _ = self._router([_degraded("fault"), _ok])
        # Pin rotation so the degraded replica is primary.
        router._rotation[0] = 0
        reps[0].health.record_success()  # both healthy; index order wins
        resp = router.query_range(0, 10)
        assert not resp.degraded
        assert resp.positives == [False]
        # Both replicas were consulted: degraded first, then the real
        # answer.
        assert reps[0].submits + reps[1].submits == 2

    def test_degraded_fallback_used_when_no_better(self):
        router, reps, _ = self._router(
            [_degraded("breaker-open", retry_after_ns=5 * MS)]
        )
        resp = router.query_range(0, 10)
        assert resp.degraded and resp.positives == [True]
        assert resp.shards[0].reason == "degraded"

    def test_retry_after_backoff_reorders_candidates(self):
        router, reps, clock = self._router(
            [_degraded("breaker-open", retry_after_ns=50 * MS), _ok]
        )
        router.query_range(0, 10)  # replica with breaker-open noted
        backed_off = next(
            r for r in reps if router._backoff_until.get(r.name, 0) > 0
        )
        ready = next(r for r in reps if r is not backed_off)
        # Until the window passes, the backed-off replica sorts last
        # even when rotation would favour it.
        for _ in range(4):
            assert router._candidates(0)[0] is ready
        clock.advance(60 * MS)
        # Window over (and health restored): rotation reaches it again.
        backed_off.health.record_success()
        names = {router._candidates(0)[0].name for _ in range(4)}
        assert backed_off.name in names

    def test_overload_submit_failure_fails_over(self):
        def overloaded(pairs):
            raise ServiceOverloadError("full", retry_after_ns=7 * MS)

        router, reps, _ = self._router([overloaded, _ok])
        resp = router.query_range(0, 10)
        assert not resp.degraded
        overloaded_rep = reps[0] if reps[0].submits else reps[1]
        assert router._backoff_until  # retry-after recorded

    def test_hedge_fires_and_wins(self):
        router, reps, _ = self._router(
            [_never, _ok],
            hedge_warmup=0,
            hedge_min_s=0.001,
            hedge_max_s=0.001,
        )
        router._rotation[0] = 0  # primary = reps[0] (never resolves)
        resp = router.query_range(0, 10)
        assert not resp.degraded
        assert resp.shards[0].hedged
        assert router._counters["cluster_hedges"].value == 1
        assert router._counters["cluster_hedge_wins"].value == 1

    def test_hedging_disabled_means_no_hedges(self):
        router, reps, _ = self._router(
            [_ok, _ok], hedging=False, hedge_warmup=0
        )
        for _ in range(4):
            router.query_range(0, 10)
        assert router._counters["cluster_hedges"].value == 0

    def test_point_query_routes_single_shard(self):
        router, reps, _ = self._router([_ok, _ok])
        resp = router.query_point(123)
        assert resp.positives == [False] and not resp.degraded

    def test_needs_replicas_for_every_shard(self):
        clock = SimulatedClock()
        cmap = ClusterMap([0, 1], segment_bits=3)
        with pytest.raises(ValueError):
            ClusterRouter(cmap, {0: [_StubReplica("s0r0", clock, _ok)]},
                          clock=clock)


class TestClusterFacade:
    def test_queries_match_truth_without_faults(self):
        with _cluster() as c:
            keys = list(range(0, 4000, 4))
            c.load(keys)
            c.flush()
            present = [(k, k) for k in keys[:80]]
            absent = [(k + 1, k + 2) for k in keys[:80]]
            r_present = c.query_range_many(present)
            r_absent = c.query_range_many(absent)
            assert all(r_present.positives)
            assert not r_present.degraded
            # No degradation anywhere: negatives must be exact too.
            assert not any(r_absent.positives)

    def test_failover_hides_a_crashed_replica(self):
        with _cluster() as c:
            keys = list(range(0, 2000, 2))
            c.load(keys)
            c.flush()
            for sid in c.replicas:
                c.crash_replica(sid, 0)
            r = c.query_range_many([(k, k) for k in keys[:60]])
            assert all(r.positives)
            assert not r.degraded  # the live replica answered for real

    def test_hinted_handoff_on_restart(self):
        with _cluster(n_shards=1, replicas=2) as c:
            c.crash_replica(0, 1)
            keys = list(range(1000, 1400, 4))
            c.load(keys)  # replica 1 only gets hints
            assert c.hint_backlog().get("s0r1", 0) == len(keys)
            c.restart_replica(0, 1)
            assert not c.hint_backlog()
            # The restarted replica alone must know every key.
            c.crash_replica(0, 0)
            r = c.query_range_many([(k, k) for k in keys])
            assert all(r.positives)
            assert not r.degraded

    def test_hinted_handoff_on_heal(self):
        with _cluster(n_shards=1, replicas=2) as c:
            c.partition_replica(0, 1)
            keys = list(range(2000, 2400, 4))
            c.load(keys)
            c.heal_replica(0, 1)
            c.crash_replica(0, 0)  # force reads onto the healed replica
            r = c.query_range_many([(k, k) for k in keys])
            assert all(r.positives)
            assert not r.degraded

    def test_migrate_segment_preserves_answers(self):
        with _cluster() as c:
            keys = list(range(0, 6000, 3))
            c.load(keys)
            c.flush()
            snap = c.map.snapshot()["owner"]
            seg = next(s for s, o in snap.items() if o == 0)
            lo, hi = c.map.segment_range(seg)
            in_seg = [k for k in keys if lo <= k <= hi]
            info = c.migrate_segment(seg, 1)
            assert info["dest"] == 1
            assert c.map.owners(seg) == (1,)
            if in_seg:
                r = c.query_range_many([(k, k) for k in in_seg])
                assert all(r.positives)

    def test_put_during_migration_reaches_both_owners(self):
        with _cluster() as c:
            snap = c.map.snapshot()["owner"]
            seg = next(s for s, o in snap.items() if o == 0)
            lo, _ = c.map.segment_range(seg)
            c.map.begin_migration(seg, 1)
            c.put(lo + 5, 1)
            for sid in (0, 1):
                for rep in c.replicas[sid]:
                    found, _ = rep.lsm.get(lo + 5)
                    assert found, f"{rep.name} missing dual write"
            c.map.abort_migration(seg)

    def test_add_shard_migrates_live(self):
        with _cluster() as c:
            keys = list(range(0, 8000, 5))
            c.load(keys)
            c.flush()
            info = c.add_shard()
            assert info["shard"] == 2
            assert info["segments"]
            owners = set(c.map.snapshot()["owner"].values())
            assert 2 in owners
            r = c.query_range_many([(k, k) for k in keys[:200]])
            assert all(r.positives)

    def test_probes_promote_restarted_replica(self):
        with _cluster(n_shards=1, replicas=2) as c:
            c.load(range(0, 500, 5))
            c.crash_replica(0, 0)
            c.restart_replica(0, 0)
            rep = c.replica(0, 0)
            assert rep.health.is_down()
            c.clock.advance(200 * MS)
            c.probe_all()
            c.probe_all()
            assert rep.health.state == "healthy"

    def test_health_snapshot_shape(self):
        with _cluster() as c:
            h = c.health()
            assert set(h) >= {
                "epoch", "map", "replicas", "counters", "hints",
            }
            assert len(h["replicas"]) == 4
