"""Tests for the Two-Stage (float/double) REncoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.two_stage import TwoStageREncoder, float_to_key, key_to_float


class TestFloatKeyCodec:
    def test_roundtrip(self):
        for v in (0.0, 1.0, 3.14, 1e-20, 6.02e23):
            assert key_to_float(float_to_key(v)) == pytest.approx(
                np.float32(v), rel=1e-6
            )

    def test_monotone(self):
        values = [0.0, 1e-10, 0.5, 1.0, 2.0, 1e10]
        keys = [float_to_key(v) for v in values]
        assert keys == sorted(keys)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            float_to_key(-1.0)

    def test_key_domain(self):
        with pytest.raises(ValueError):
            key_to_float(1 << 31)

    @given(st.floats(min_value=0.0, max_value=1e30, allow_nan=False))
    @settings(max_examples=100)
    def test_order_preserving(self, v):
        a = float_to_key(v)
        b = float_to_key(v * 2 + 1.0)
        assert a <= b


class TestTwoStageREncoder:
    @pytest.fixture(scope="class")
    def float_keys(self):
        rng = np.random.default_rng(17)
        return sorted(set(float(f) for f in rng.lognormal(0, 3, 800)))

    def test_no_false_negative_points(self, float_keys):
        enc = TwoStageREncoder(float_keys, bits_per_key=24)
        for v in float_keys[:200]:
            assert enc.query_float(float(np.float32(v)))

    def test_no_false_negative_ranges(self, float_keys):
        enc = TwoStageREncoder(float_keys, bits_per_key=24)
        for v in float_keys[:100]:
            v32 = float(np.float32(v))
            assert enc.query_float_range(v32 * 0.99, v32 * 1.01 + 1e-30)

    def test_two_stages_present(self, float_keys):
        enc = TwoStageREncoder(float_keys, bits_per_key=24, t_exp=0.2)
        levels = enc.stored_levels
        assert 8 in levels, "stage 1 starts at the exponent boundary"
        assert 9 in levels, "stage 2 starts just below it"

    def test_t_exp_limits_stage1(self, float_keys):
        tight = TwoStageREncoder(float_keys, bits_per_key=24, t_exp=0.05)
        loose = TwoStageREncoder(float_keys, bits_per_key=24, t_exp=0.45)
        shallow_t = sum(1 for l in tight.stored_levels if l <= 8)
        shallow_l = sum(1 for l in loose.stored_levels if l <= 8)
        assert shallow_t <= shallow_l

    def test_negative_keys_shifted(self):
        values = [-5.0, -1.0, 0.0, 2.5, 10.0]
        enc = TwoStageREncoder(values, total_bits=8192)
        assert enc.offset == 5.0
        for v in values:
            assert enc.query_float(v)

    def test_empty_range_mostly_rejected(self, float_keys):
        enc = TwoStageREncoder(float_keys, bits_per_key=24)
        top = max(float_keys)
        fp = sum(
            enc.query_float_range(top * (2 + i), top * (2 + i) + 0.1)
            for i in range(50)
        )
        assert fp < 50  # far-away empty ranges are not all positive

    def test_invalid_t_exp(self, float_keys):
        with pytest.raises(ValueError):
            TwoStageREncoder(float_keys, t_exp=0.6)
        with pytest.raises(ValueError):
            TwoStageREncoder(float_keys, t_exp=0.0)

    def test_invalid_exp_bits(self, float_keys):
        with pytest.raises(ValueError):
            TwoStageREncoder(float_keys, exp_bits=0)
        with pytest.raises(ValueError):
            TwoStageREncoder(float_keys, exp_bits=31)

    def test_invalid_float_range(self, float_keys):
        enc = TwoStageREncoder(float_keys[:10], total_bits=4096)
        with pytest.raises(ValueError):
            enc.query_float_range(2.0, 1.0)
