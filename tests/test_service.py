"""Unit tests for the concurrent filter service and its parts.

Covers the four pillars in isolation — deadlines, admission control, the
circuit breaker, health accounting — then the assembled
:class:`~repro.service.FilterService`, the CLI entry point, and the
hypothesis property behind everything: **a degraded response is always
all-positive**, so no protection mechanism can ever manufacture a false
negative.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.metrics import run_service_load
from repro.core.errors import DeadlineExceededError
from repro.core.rencoder import REncoder
from repro.service import (
    AdmissionQueue,
    CircuitBreaker,
    Deadline,
    FilterService,
    ServiceOverloadError,
    ServiceResponse,
    ServiceStats,
    SimulatedClock,
)
from repro.service.health import LatencyRecorder, percentile
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree

MS = 1_000_000


def _factory(keys):
    return REncoder(keys, bits_per_key=14)


def _tree(n=600, *, injector=None, clock=None):
    env = StorageEnv(
        clock=clock if clock is not None else SimulatedClock(),
        injector=injector,
    )
    lsm = LSMTree(_factory, memtable_capacity=64, env=env)
    for k in range(0, 2 * n, 2):  # even keys present, odd absent
        lsm.put(k, k)
    lsm.flush()
    return lsm


class TestDeadline:
    def test_after_and_remaining(self):
        clock = SimulatedClock()
        d = Deadline.after(clock, 10 * MS)
        assert d.remaining_ns(clock) == 10 * MS
        assert not d.expired(clock)
        clock.advance(10 * MS)
        assert not d.expired(clock)  # exactly at the deadline is on time
        clock.advance(1)
        assert d.expired(clock)
        assert d.remaining_ns(clock) == 0

    def test_validation(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            Deadline(-1)
        with pytest.raises(ValueError):
            Deadline.after(clock, 0)

    def test_enforced_mid_io(self):
        """The charge that crosses the deadline raises on that thread."""
        clock = SimulatedClock()
        env = StorageEnv(clock=clock)
        with env.deadline_scope(clock.now_ns() + env.io_cost_ns):
            env.read(True)  # lands exactly on the deadline: on time
            with pytest.raises(DeadlineExceededError):
                env.read(True)
        env.read(True)  # outside the scope: no budget, no error

    def test_scopes_nest(self):
        clock = SimulatedClock()
        env = StorageEnv(clock=clock)
        with env.deadline_scope(None):
            with env.deadline_scope(clock.now_ns() + 1):
                with pytest.raises(DeadlineExceededError):
                    env.read(True)
            env.read(True)  # outer scope restored (no budget)


class TestAdmissionQueue:
    def test_fifo(self):
        q = AdmissionQueue(4)
        for i in range(3):
            q.put(i)
        assert [q.get() for _ in range(3)] == [0, 1, 2]
        assert q.admitted == 3

    def test_reject_new(self):
        q = AdmissionQueue(2, "reject-new")
        q.put("a")
        q.put("b")
        with pytest.raises(ServiceOverloadError) as info:
            q.put("c", retry_after_ns=42)
        assert info.value.retry_after_ns == 42
        assert q.rejected == 1
        assert q.get() == "a"  # queued work untouched

    def test_drop_oldest_returns_evicted(self):
        q = AdmissionQueue(2, "drop-oldest")
        assert q.put("a") is None
        assert q.put("b") is None
        assert q.put("c") == "a"
        assert q.dropped == 1
        assert [q.get(), q.get()] == ["b", "c"]

    def test_unbounded_never_sheds(self):
        q = AdmissionQueue(0, "reject-new")
        for i in range(100):
            q.put(i)
        assert len(q) == 100 and q.rejected == 0

    def test_close_wakes_getter(self):
        q = AdmissionQueue(4)
        got = []
        t = threading.Thread(target=lambda: got.append(q.get()))
        t.start()
        q.close()
        t.join(timeout=5)
        assert not t.is_alive()
        assert got == [None]
        with pytest.raises(RuntimeError):
            q.put("late")

    def test_drain_and_timeout(self):
        q = AdmissionQueue(4)
        q.put("a")
        q.put("b")
        assert q.drain() == ["a", "b"]
        assert q.get(timeout=0.01) is None  # expired, not closed
        assert not q.closed

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(-1)
        with pytest.raises(ValueError):
            AdmissionQueue(1, "lifo")


class TestCircuitBreaker:
    def _breaker(self, clock=None, **kw):
        kw.setdefault("window", 8)
        kw.setdefault("min_samples", 4)
        kw.setdefault("failure_threshold", 0.5)
        kw.setdefault("open_ns", 10 * MS)
        kw.setdefault("half_open_probes", 2)
        return CircuitBreaker(clock or SimulatedClock(), **kw)

    def test_stays_closed_below_min_samples(self):
        b = self._breaker()
        for _ in range(3):
            b.record_failure()
        assert b.state == "closed" and b.allow()

    def test_trips_at_threshold(self):
        b = self._breaker()
        for _ in range(2):
            b.record_success()
        for _ in range(2):
            b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        assert b.trips == 1 and b.denials == 1

    def test_successes_dilute_failures(self):
        b = self._breaker()
        for _ in range(6):
            b.record_success()
        for _ in range(2):
            b.record_failure()
        assert b.state == "closed"  # 2/8 < 0.5

    def test_half_open_after_open_window(self):
        clock = SimulatedClock()
        b = self._breaker(clock)
        b.force_open()
        assert not b.allow()
        clock.advance(10 * MS)
        assert b.state == "half-open"
        # Exactly half_open_probes callers pass; the rest are denied.
        assert b.allow() and b.allow()
        assert not b.allow()

    def test_probe_success_closes(self):
        clock = SimulatedClock()
        b = self._breaker(clock)
        b.force_open()
        clock.advance(10 * MS)
        assert b.allow() and b.allow()
        b.record_success()
        b.record_success()
        assert b.state == "closed"
        # A fresh window after closing: one failure must not re-trip.
        b.record_failure()
        assert b.state == "closed"

    def test_probe_failure_reopens(self):
        clock = SimulatedClock()
        b = self._breaker(clock)
        b.force_open()
        clock.advance(10 * MS)
        assert b.allow()
        b.record_failure()
        assert b.state == "open" and b.trips == 2

    def test_snapshot(self):
        b = self._breaker()
        b.record_failure()
        snap = b.snapshot()
        assert snap["state"] == "closed"
        assert snap["window_failures"] == 1 and snap["window_samples"] == 1

    def test_retry_after_tracks_open_window(self):
        clock = SimulatedClock()
        b = self._breaker(clock)
        assert b.retry_after_ns() == 0  # closed: try immediately
        b.force_open()
        assert b.retry_after_ns() == 10 * MS
        clock.advance(4 * MS)
        assert b.retry_after_ns() == 6 * MS
        clock.advance(6 * MS)
        # Window elapsed: half-open, probe-limited rather than timed.
        assert b.retry_after_ns() == 0
        assert b.state == "half-open"

    def test_half_open_probe_quota_under_concurrent_callers(self):
        # N threads race allow() on a freshly half-open breaker; the
        # probe quota must admit exactly half_open_probes of them.
        clock = SimulatedClock()
        b = self._breaker(clock, half_open_probes=3)
        b.force_open()
        clock.advance(10 * MS)
        n = 16
        results = [None] * n
        barrier = threading.Barrier(n)

        def caller(i):
            barrier.wait()
            results[i] = b.allow()

        threads = [
            threading.Thread(target=caller, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(results) == 3
        assert b.denials == n - 3

    def test_half_open_concurrent_successes_close_exactly_once(self):
        # The admitted probes report success from separate threads; the
        # breaker must close exactly once (one transition counted) and
        # stay closed.
        clock = SimulatedClock()
        b = self._breaker(clock, half_open_probes=4)
        b.force_open()
        clock.advance(10 * MS)
        admitted = sum(b.allow() for _ in range(8))
        assert admitted == 4
        barrier = threading.Barrier(4)

        def report():
            barrier.wait()
            b.record_success()

        threads = [threading.Thread(target=report) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert b.state == "closed"
        assert b.closes == 1

    def test_half_open_concurrent_failure_wins_over_success(self):
        # One success and one failure race from the two admitted
        # probes.  Either interleaving ends open: failure-first trips
        # and the late success is a no-op on an open breaker;
        # success-first leaves the quota unfilled (1 < 2) and the
        # failure then trips.
        clock = SimulatedClock()
        b = self._breaker(clock, half_open_probes=2)
        b.force_open()
        clock.advance(10 * MS)
        assert b.allow() and b.allow()
        barrier = threading.Barrier(2)

        def ok():
            barrier.wait()
            b.record_success()

        def bad():
            barrier.wait()
            b.record_failure()

        threads = [threading.Thread(target=ok), threading.Thread(target=bad)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert b.state == "open"
        assert b.trips == 2

    def test_validation(self):
        clock = SimulatedClock()
        for kw in (
            dict(window=0),
            dict(failure_threshold=0.0),
            dict(failure_threshold=1.5),
            dict(min_samples=0),
            dict(min_samples=99, window=8),
            dict(open_ns=-1),
            dict(half_open_probes=0),
        ):
            with pytest.raises(ValueError):
                CircuitBreaker(clock, **kw)


class TestHealth:
    def test_percentile_nearest_rank(self):
        samples = list(range(1, 101))
        assert percentile(samples, 50) == 50
        assert percentile(samples, 99) == 99
        assert percentile(samples, 100) == 100
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile(samples, 101)

    def test_latency_recorder(self):
        rec = LatencyRecorder()
        for ns in (1 * MS, 2 * MS, 10 * MS):
            rec.record(ns)
        assert len(rec) == 3
        assert rec.summary_ms()["max_ms"] == 10.0

    def test_stats_bump_and_snapshot(self):
        stats = ServiceStats()
        stats.bump(submitted=2, completed=2, ok=1, degraded=1)
        snap = stats.snapshot()
        assert snap["ok"] == 1 and snap["degraded_rate"] == 0.5
        with pytest.raises(AttributeError):
            stats.bump(bogus=1)

    def test_counted_under_contention(self):
        """Concurrent bumps never lose increments (the lock earns it)."""
        stats = ServiceStats()
        n, threads = 2_000, 8

        def worker():
            for _ in range(n):
                stats.bump(submitted=1, completed=1, ok=1)

        ts = [threading.Thread(target=worker) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert stats.submitted == stats.completed == stats.ok == n * threads


class TestServiceResponse:
    def test_degraded_must_be_all_positive(self):
        with pytest.raises(ValueError):
            ServiceResponse(positive=False, degraded=True, reason="shed")
        with pytest.raises(ValueError):
            ServiceResponse(
                positive=[True, False], degraded=True, reason="deadline"
            )
        ServiceResponse(positive=[True, True], degraded=True, reason="shed")
        ServiceResponse(positive=False, degraded=False, reason="ok")


class TestFilterService:
    def test_answers_match_tree(self):
        lsm = _tree()
        with FilterService(lsm, workers=2) as svc:
            assert svc.query_range(10, 14).positive is True
            assert svc.query_range(11, 11).positive is False
            assert svc.query_point(100).positive is True
            assert svc.query_point(101).positive is False
            batch = svc.query_range_batch([(0, 4), (11, 11), (200, 204)])
            assert batch.positive == [True, False, True]
            assert batch.reason == "ok" and not batch.degraded
            assert batch.epoch >= 0

    def test_tight_deadline_degrades_all_positive(self):
        lsm = _tree()
        with FilterService(lsm, workers=2) as svc:
            # 1 ns of budget cannot cover a single simulated read.
            r = svc.query_range(0, 1198, deadline_ns=1)
            assert r.degraded and r.reason == "deadline"
            assert r.positive is True
            assert svc.stats.deadline_expired == 1

    def test_forced_open_breaker_denies_degraded(self):
        lsm = _tree()
        with FilterService(lsm, workers=2) as svc:
            svc.breaker.force_open()
            r = svc.query_range(11, 11)  # genuinely empty range
            assert r.degraded and r.reason == "breaker-open"
            assert r.positive is True  # degraded: all-positive, not empty
            assert svc.stats.breaker_denied == 1
            # The denial carries the breaker's real remaining window,
            # not a placeholder zero.
            assert 0 < r.retry_after_ns <= svc.breaker.open_ns

    def test_reject_new_raises_with_retry_after(self):
        lsm = _tree()
        svc = FilterService(
            lsm, workers=1, queue_depth=1, shed_policy="reject-new"
        )
        # Not started: workers never drain, so the queue stays full.
        svc._started = True
        svc.submit_range(0, 2)
        with pytest.raises(ServiceOverloadError) as info:
            for _ in range(3):
                svc.submit_range(0, 2)
        assert info.value.retry_after_ns > 0
        assert svc.stats.rejected >= 1
        svc._started = False
        for req in svc.queue.drain():
            svc._resolve_degraded(req, "shed")

    def test_drop_oldest_resolves_evicted_degraded(self):
        lsm = _tree()
        svc = FilterService(
            lsm, workers=1, queue_depth=1, shed_policy="drop-oldest"
        )
        svc._started = True  # no workers: eviction does the resolving
        first = svc.submit_range(0, 2)
        second = svc.submit_range(4, 6)
        r = first.result(timeout=5)
        assert r.degraded and r.reason == "shed" and r.positive is True
        assert svc.stats.shed == 1
        assert not second.done()
        svc._started = False
        for req in svc.queue.drain():
            svc._resolve_degraded(req, "shed")

    def test_stop_without_drain_settles_backlog(self):
        lsm = _tree()
        svc = FilterService(lsm, workers=1, queue_depth=0)
        svc._started = True  # queue fills with no workers to drain it
        futures = [svc.submit_range(k, k + 2) for k in range(0, 20, 2)]
        svc._threads = []  # nothing to join
        svc.stop(drain=False)
        for f in futures:
            r = f.result(timeout=5)
            assert r.degraded and r.reason == "shed" and r.positive is True
            # Shutdown shed responses advertise a drain-time estimate a
            # router can back off on.
            assert r.retry_after_ns > 0

    def test_submit_requires_started(self):
        svc = FilterService(_tree(60))
        with pytest.raises(RuntimeError):
            svc.submit_range(0, 2)

    def test_concurrent_submitters(self):
        lsm = _tree()
        present = list(range(0, 1200, 2))
        with FilterService(lsm, workers=4, queue_depth=0) as svc:
            futures = []
            lock = threading.Lock()

            def submitter(seed):
                rng = np.random.default_rng(seed)
                local = [
                    svc.submit_point(int(rng.choice(present)))
                    for _ in range(50)
                ]
                with lock:
                    futures.extend(local)

            ts = [threading.Thread(target=submitter, args=(s,)) for s in range(4)]
            for t in ts:
                t.start()
            for t in ts:
                t.join()
            for f in futures:
                assert f.result(timeout=10).positive is True
        assert svc.stats.completed == 200

    def test_health_snapshot(self):
        lsm = _tree(100)
        with FilterService(lsm, workers=2, queue_depth=8) as svc:
            svc.query_range(0, 4)
            health = svc.health()
        assert health["queue"]["maxsize"] == 8
        assert health["breaker"]["state"] == "closed"
        assert health["stats"]["completed"] == 1
        assert health["epoch"] == lsm.epoch
        assert health["clock_ns"] > 0  # reads charged the shared clock

    def test_validation(self):
        lsm = _tree(60)
        with pytest.raises(ValueError):
            FilterService(lsm, workers=0)
        with pytest.raises(ValueError):
            FilterService(lsm, shed_policy="lifo")
        with pytest.raises(ValueError):
            FilterService(lsm, default_deadline_ns=0)
        svc = FilterService(lsm)
        svc.start()
        with pytest.raises(ValueError):
            svc.submit_range(5, 4)
        svc.stop()

    def test_stop_idempotent_and_restartable_queue_closed(self):
        lsm = _tree(60)
        svc = FilterService(lsm, workers=1)
        svc.start()
        svc.stop()
        svc.stop()  # idempotent
        with pytest.raises(RuntimeError):
            svc.submit_range(0, 2)


class TestRunServiceLoad:
    def test_burst_counts_everything(self):
        lsm = _tree()
        ranges = [(k, k + 2) for k in range(0, 200, 2)]
        with FilterService(lsm, workers=2, queue_depth=0) as svc:
            run = run_service_load(svc, ranges, label="t")
        assert run.n_requests == 100
        assert run.completed == 100
        assert run.ok + run.shed + run.deadline_expired + run.breaker_denied \
            + run.faults == 100
        assert run.goodput_qps > 0
        assert run.as_row()["config"] == "t"

    def test_batched_submission(self):
        lsm = _tree()
        ranges = [(k, k + 2) for k in range(0, 200, 2)]
        with FilterService(lsm, workers=2, queue_depth=0) as svc:
            run = run_service_load(svc, ranges, batch_size=25, label="b")
        assert run.n_requests == 4 and run.completed == 4

    def test_validation(self):
        lsm = _tree(60)
        with FilterService(lsm, workers=1) as svc:
            with pytest.raises(ValueError):
                run_service_load(svc, [])
            with pytest.raises(ValueError):
                run_service_load(svc, [(0, 1)], batch_size=0)


class TestDegradedAlwaysPositiveProperty:
    """Hypothesis: no degraded response, however produced, is negative."""

    @given(
        budget_ns=st.integers(min_value=1, max_value=30 * MS),
        ranges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2_000),
                st.integers(min_value=0, max_value=64),
            ),
            min_size=1,
            max_size=8,
        ),
        force_open=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_degraded_is_all_positive(self, budget_ns, ranges, force_open):
        lsm = _tree(400)
        pairs = [(lo, lo + width) for lo, width in ranges]
        with FilterService(lsm, workers=2, queue_depth=0) as svc:
            if force_open:
                svc.breaker.force_open()
            scalar = svc.query_range(*pairs[0], deadline_ns=budget_ns)
            batch = svc.query_range_batch(pairs, deadline_ns=budget_ns)
        if scalar.degraded:
            assert scalar.positive is True
        if batch.degraded:
            assert batch.positive == [True] * len(pairs)
        if force_open:
            assert scalar.degraded and batch.degraded


def test_cli_serve_bench_smoke(capsys):
    from repro.cli import main

    rc = main([
        "serve-bench",
        "--duration", "0.1",
        "--rate", "300",
        "--concurrency", "2",
        "--n-keys", "2000",
        "--shed-policy", "drop-oldest",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "goodput_qps" in out and "drop-oldest" in out


class TestSpanLifecycle:
    """Regressions for span leaks the interprocedural analyzer surfaced.

    Both bugs had the same shape: ``_submit`` parks the root span on the
    request, and an exceptional path (overload rejection, worker crash)
    dropped the request without ever finishing the span — one leaked
    open span per shed request for the life of an overload storm.
    """

    def test_overload_rejection_finishes_root_span(self):
        from repro.telemetry.tracing import get_tracer

        lsm = _tree()
        svc = FilterService(
            lsm, workers=1, queue_depth=1, shed_policy="reject-new"
        )
        svc._started = True  # no workers: the queue stays full
        tracer = get_tracer().enable()
        try:
            # The submit-thread current span adopts every service root
            # span as a child, so the test can see rejected spans.
            with tracer.span("test.storm") as storm:
                svc.submit_range(0, 2)  # occupies the queue slot
                with pytest.raises(ServiceOverloadError):
                    for _ in range(3):
                        svc.submit_range(0, 2)
            rejected = [
                c for c in storm.children if c.attrs.get("rejected")
            ]
            assert rejected, "no rejected request reached the tracer"
            assert all(c.end_wall_ns is not None for c in rejected)
        finally:
            get_tracer().disable()
            svc._started = False
            for req in svc.queue.drain():
                svc._resolve_degraded(req, "shed")

    def test_worker_crash_finishes_root_span(self):
        from repro.telemetry.tracing import get_tracer

        lsm = _tree()
        tracer = get_tracer().enable()
        try:
            with tracer.span("test.crash") as outer:
                with FilterService(lsm, workers=1, queue_depth=4) as svc:
                    def _boom(req):
                        raise RuntimeError("injected worker crash")

                    svc._serve = _boom  # every request now crashes the worker
                    fut = svc.submit_range(0, 2)
                    with pytest.raises(RuntimeError, match="injected"):
                        fut.result(timeout=5)
                    del svc._serve  # restore for stop()'s drain
            crashed = [c for c in outer.children if c.name == "service.range"]
            assert crashed, "the crashed request's span never attached"
            assert all(c.end_wall_ns is not None for c in crashed)
        finally:
            get_tracer().disable()
