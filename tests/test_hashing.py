"""Unit tests for the hash families."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import (
    HashFamily,
    bobhash32,
    bobhash64,
    mix64,
    mix64_array,
    seeds_for,
)


class TestBobHash:
    def test_deterministic(self):
        assert bobhash32(b"hello", 7) == bobhash32(b"hello", 7)

    def test_seed_changes_output(self):
        assert bobhash32(b"hello", 1) != bobhash32(b"hello", 2)

    def test_data_changes_output(self):
        assert bobhash32(b"hello", 1) != bobhash32(b"hellp", 1)

    def test_32bit_range(self):
        for data in (b"", b"x", b"twelve bytes", b"a longer input spanning blocks"):
            assert 0 <= bobhash32(data, 99) < (1 << 32)

    def test_empty_input(self):
        # lookup3 on an empty string returns the mixed initval path.
        assert bobhash32(b"", 0) == bobhash32(b"", 0)
        assert bobhash32(b"", 0) != bobhash32(b"", 1)

    def test_multiblock_input(self):
        data = bytes(range(40))  # > 12 bytes: exercises the mix loop
        assert bobhash32(data, 3) != bobhash32(data[:-1] + b"\xff", 3)

    def test_bobhash64_combines_halves(self):
        h = bobhash64(123456789, 42)
        assert 0 <= h < (1 << 64)
        assert (h >> 32) != (h & 0xFFFFFFFF)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_bobhash64_any_key(self, key):
        assert 0 <= bobhash64(key, 5) < (1 << 64)


class TestMix64:
    def test_bijective_on_samples(self):
        # splitmix64's finalizer is a permutation: no collisions expected
        # on a large sample.
        xs = np.random.default_rng(0).integers(0, 1 << 64, 20_000, dtype=np.uint64)
        hashed = {mix64(int(x)) for x in xs[:2000]}
        assert len(hashed) == len(set(int(x) for x in xs[:2000]))

    def test_vectorised_matches_scalar(self):
        xs = np.random.default_rng(1).integers(0, 1 << 64, 1000, dtype=np.uint64)
        vec = mix64_array(xs)
        for i in range(0, 1000, 97):
            assert int(vec[i]) == mix64(int(xs[i]))

    def test_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        base = mix64(0x0123456789ABCDEF)
        flipped = mix64(0x0123456789ABCDEE)
        assert 16 <= bin(base ^ flipped).count("1") <= 48

    def test_seeds_for_deterministic_and_distinct(self):
        a = seeds_for(8, 42)
        assert a == seeds_for(8, 42)
        assert len(set(a)) == 8
        assert seeds_for(8, 43) != a


class TestHashFamily:
    def test_positions_in_range(self):
        fam = HashFamily(4, 1000, seed=3)
        for key in (0, 1, (1 << 64) - 1, 123456):
            positions = fam.positions(key)
            assert len(positions) == 4
            assert all(0 <= p < 1000 for p in positions)

    def test_position_matches_positions(self):
        fam = HashFamily(3, 777, seed=9)
        assert [fam.position(42, i) for i in range(3)] == fam.positions(42)

    def test_vectorised_matches_scalar(self):
        fam = HashFamily(3, 512, seed=5)
        keys = np.random.default_rng(2).integers(0, 1 << 64, 100, dtype=np.uint64)
        arr = fam.positions_array(keys)
        assert arr.shape == (3, 100)
        for j in range(0, 100, 13):
            assert list(arr[:, j]) == fam.positions(int(keys[j]))

    def test_uniformity(self):
        fam = HashFamily(1, 16, seed=8)
        keys = np.random.default_rng(3).integers(0, 1 << 64, 16000, dtype=np.uint64)
        counts = np.bincount(fam.positions_array(keys)[0].astype(int), minlength=16)
        assert counts.min() > 16000 / 16 * 0.8
        assert counts.max() < 16000 / 16 * 1.2

    def test_rebucket_preserves_seed(self):
        fam = HashFamily(2, 100, seed=4)
        re = fam.rebucket(200)
        assert re.k == 2 and re.buckets == 200 and re.seed == 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            HashFamily(0, 10)
        with pytest.raises(ValueError):
            HashFamily(2, 0)
