"""Tests for the prefix Bloom filter baseline."""

import pytest

from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.workloads.queries import correlated_range_queries
from tests.conftest import assert_no_false_negatives


class TestPrefixBloom:
    def test_no_false_negatives(self, uniform_keys):
        pbf = PrefixBloomFilter(uniform_keys, bits_per_key=14)
        assert_no_false_negatives(pbf, uniform_keys[:200])

    def test_range_spanning_two_granules(self):
        # prefix_len=8 over 16-bit keys: granule = 256 keys.
        pbf = PrefixBloomFilter(
            [300], total_bits=4096, key_bits=16, prefix_len=8
        )
        assert pbf.query_range(250, 310)  # spans granule 0 and 1

    def test_cannot_distinguish_within_granule(self):
        pbf = PrefixBloomFilter(
            [300], total_bits=4096, key_bits=16, prefix_len=8
        )
        # 310 shares the 8-bit prefix of 300: an unavoidable FP.
        assert pbf.query_point(310)

    def test_correlated_fpr_is_one(self, uniform_keys):
        pbf = PrefixBloomFilter(uniform_keys, bits_per_key=14, prefix_len=32)
        queries = correlated_range_queries(uniform_keys, 150, seed=3)
        fpr = sum(pbf.query_range(*q) for q in queries) / len(queries)
        assert fpr > 0.95

    def test_uniform_fpr_low(self, uniform_keys, empty_queries):
        pbf = PrefixBloomFilter(uniform_keys, bits_per_key=14, prefix_len=32)
        fpr = sum(pbf.query_range(*q) for q in empty_queries) / len(empty_queries)
        assert fpr < 0.1

    def test_wide_range_cap_conservative(self, uniform_keys):
        pbf = PrefixBloomFilter(
            uniform_keys, bits_per_key=14, prefix_len=32, max_prefix_probes=4
        )
        assert pbf.query_range(0, (1 << 64) - 1)

    def test_prefix_len_bounds(self, uniform_keys):
        with pytest.raises(ValueError):
            PrefixBloomFilter(uniform_keys, prefix_len=0)
        with pytest.raises(ValueError):
            PrefixBloomFilter(uniform_keys, prefix_len=65)

    def test_full_length_prefix_is_plain_bloom(self, uniform_keys):
        pbf = PrefixBloomFilter(uniform_keys, bits_per_key=14, prefix_len=64)
        for k in uniform_keys[:50]:
            assert pbf.query_point(int(k))
