"""Property test: crash recovery is answer-preserving (PR 8).

The durability contract, stated as an equivalence over arbitrary write
histories and crash points:

    (last checkpoint + WAL tail replay)  ≡  full rebuild from the data
                                         ≡  the pre-crash tree

for point lookups, range scans, and the filter-backed batch path, across
all four REncoder variants.  Hypothesis drives the write history, the
checkpoint position, and the probe ranges; two deterministic negatives
(torn WAL tail, checkpoint truncated at rest) pin the degraded-recovery
paths.
"""

from __future__ import annotations

import pytest

try:
    from hypothesis import given, settings, strategies as st
except ImportError:  # pragma: no cover - hypothesis ships in the image
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.core.variants import build_variant
from repro.durability import DurableLSM
from repro.storage.env import StorageEnv
from repro.storage.faults import FaultInjector

VARIANTS = ("REncoder", "REncoderSS", "REncoderSE", "REncoderPO")

KEY_SPACE = (1 << 48) - 1


def _make_factory(variant):
    def factory(keys):
        return build_variant(variant, keys, bits_per_key=12)

    return factory


def _answers(tree, keys, ranges):
    """Everything an application can observe: points, scans, batches."""
    points = [tree.get(k) for k in keys]
    scans = [tree.range_query(lo, hi) for lo, hi in ranges]
    batch = tree.range_query_many(ranges)
    return points, scans, batch


history = st.lists(
    st.integers(min_value=0, max_value=KEY_SPACE),
    min_size=1,
    max_size=120,
    unique=True,
)


@pytest.mark.parametrize("variant", VARIANTS)
@settings(max_examples=20, deadline=None)
@given(
    keys=history,
    checkpoint_frac=st.floats(min_value=0.0, max_value=1.0),
    deletions=st.integers(min_value=0, max_value=10),
    data=st.data(),
)
def test_recovery_equivalence(variant, keys, checkpoint_frac, deletions, data):
    factory = _make_factory(variant)
    env = StorageEnv()
    tree = DurableLSM(factory, name="t", env=env, memtable_capacity=16)

    cut = int(len(keys) * checkpoint_frac)
    for k in keys[:cut]:
        tree.put(k, k & 0xFFFF)
    tree.checkpoint()
    for k in keys[cut:]:
        tree.put(k, k & 0xFFFF)
    for k in keys[: min(deletions, len(keys))]:
        tree.delete(k)

    probe_keys = keys + [
        data.draw(st.integers(min_value=0, max_value=KEY_SPACE))
        for _ in range(5)
    ]
    ranges = [
        (k, min(k + data.draw(st.integers(0, 1 << 20)), KEY_SPACE))
        for k in probe_keys[:10]
    ]

    expected = _answers(tree, probe_keys, ranges)

    # Crash: drop the tree object, recover from the blobs alone.
    restored, report = DurableLSM.restore(
        factory, env=env, name="t", memtable_capacity=16
    )
    assert report["filters"]["degraded"] == 0
    assert _answers(restored, probe_keys, ranges) == expected

    # Full rebuild from the surviving pairs in a fresh environment.
    rebuilt = DurableLSM(
        factory, name="t", env=StorageEnv(), memtable_capacity=16
    )
    for k, v in restored.range_query(0, KEY_SPACE):
        rebuilt.put(k, v)
    assert _answers(rebuilt, probe_keys, ranges) == expected


@pytest.mark.parametrize("variant", VARIANTS)
def test_torn_wal_tail_never_loses_acked_writes(variant):
    factory = _make_factory(variant)
    env = StorageEnv(injector=FaultInjector(17))
    tree = DurableLSM(factory, name="t", env=env, memtable_capacity=16)
    for k in range(0, 400, 4):
        tree.put(k, 1)
    # A single tear is sealed + retried; the segment keeps a torn tail
    # at rest, which recovery must truncate — not reject.
    env.injector.arm_torn_append(1)
    tree.put(999_999, 1)  # acked after the internal retry
    restored, report = DurableLSM.restore(
        factory, env=env, name="t", memtable_capacity=16
    )
    assert report["wal_torn_segments"] >= 1
    for k in list(range(0, 400, 4)) + [999_999]:
        assert restored.get(k)[0], f"lost acknowledged key {k}"


@pytest.mark.parametrize("variant", VARIANTS)
def test_truncated_checkpoint_falls_back_without_data_loss(variant):
    factory = _make_factory(variant)
    env = StorageEnv()
    tree = DurableLSM(factory, name="t", env=env, memtable_capacity=16)
    for k in range(0, 300, 3):
        tree.put(k, 1)
    tree.checkpoint()
    for k in range(1, 300, 3):
        tree.put(k, 1)
    name = tree.checkpoints.write(
        {"tables": []}, b"", wal_lsn=0
    )  # placeholder we immediately damage
    env.put_blob(name, env.get_blob(tree.checkpoints.latest_name())[:-7])
    restored, report = DurableLSM.restore(
        factory, env=env, name="t", memtable_capacity=16
    )
    assert report["checkpoint_fallbacks"] >= 1
    for k in list(range(0, 300, 3)) + list(range(1, 300, 3)):
        assert restored.get(k)[0], f"lost acknowledged key {k}"
