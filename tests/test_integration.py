"""Cross-module integration tests: every filter inside the LSM-tree, the
paper's worked example end-to-end, and the three use cases together."""

import numpy as np
import pytest

from repro.bench.registry import build_filter
from repro.core.rencoder import REncoder
from repro.core.variants import REncoderSE, REncoderSS
from repro.filters.bloom import BloomFilter
from repro.filters.rosetta import Rosetta
from repro.filters.snarf import Snarf
from repro.filters.surf import SuRF
from repro.storage.btree import BPlusTree
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree
from repro.storage.rtree import RTree
from repro.workloads.datasets import generate_keys


class TestPaperWorkedExample:
    """The running example of Figures 1-2: 8-bit keys, B=4 mini-trees."""

    def test_insert_and_range_query_164(self):
        # Insert key 164 (10100100); query [160, 165] must be positive.
        enc = REncoder([164], total_bits=2048, key_bits=8, group_bits=4,
                       rmax=8, k=2)
        assert enc.query_range(160, 165)
        assert enc.query_point(164)

    def test_fig2_negative_subrange(self):
        # With only 164 stored, [160, 163] (prefix 101000x) is empty and
        # should usually be pruned via the same BT that proves 164.
        enc = REncoder([164], total_bits=4096, key_bits=8, group_bits=4,
                       rmax=8, k=2)
        assert not enc.query_range(160, 163)

    def test_fig2_locality_one_fetch(self):
        # The example's punchline: the whole [160,165] query is served by
        # (about) one RBF fetch because both sub-ranges share a mini-tree.
        enc = REncoder([164], total_bits=2048, key_bits=8, group_bits=4,
                       rmax=8, k=2)
        enc.reset_counters()
        enc.query_range(160, 165)
        # One BT fetch (= k window probes) serves both sub-ranges.
        assert enc.probe_count <= 2 * enc.rbf.k

    def test_fig1_prefix_recording(self):
        # Inserting 1101 records 1, 11, 110, 1101 (Figure 1): the ranges
        # [8,15], [12,15], [12,13], [13,13] must all report positive.
        enc = REncoder([0b1101], total_bits=2048, key_bits=4, group_bits=4,
                       rmax=16, k=2)
        for lo, hi in [(8, 15), (12, 15), (12, 13), (13, 13)]:
            assert enc.query_range(lo, hi)


FILTERS_IN_LSM = ["REncoder", "REncoderSS", "Rosetta", "SuRF", "SNARF",
                  "ProteusNS", "Bloom", "PrefixBloom"]


class TestEveryFilterInLsm:
    @pytest.mark.parametrize("name", FILTERS_IN_LSM)
    def test_lsm_round_trip(self, name):
        env = StorageEnv()
        lsm = LSMTree(
            lambda ks, n=name: build_filter(n, ks, 18.0),
            memtable_capacity=128,
            env=env,
        )
        rng = np.random.default_rng(hash(name) % (1 << 32))
        keys = np.unique(rng.integers(0, 1 << 52, 700, dtype=np.uint64))
        for k in keys:
            lsm.put(int(k), int(k) + 1)
        lsm.flush()
        for k in keys[:80]:
            assert lsm.get(int(k)) == (True, int(k) + 1)
        lo, hi = int(keys[10]), int(keys[20])
        got = lsm.range_query(lo, hi)
        expected = [(int(k), int(k) + 1) for k in keys if lo <= int(k) <= hi]
        assert got == expected


class TestUseCases:
    def test_use_case_1_lsm_empty_range_io_savings(self):
        keys = generate_keys(2000, "uniform", seed=60)
        results = {}
        for name, factory in [
            ("rencoder", lambda ks: REncoder(ks, bits_per_key=18)),
            ("none", None),
        ]:
            env = StorageEnv()
            lsm = LSMTree(factory, memtable_capacity=512, env=env)
            for k in keys:
                lsm.put(int(k), 0)
            lsm.flush()
            env.reset()
            rng = np.random.default_rng(61)
            for _ in range(100):
                lo = int(rng.integers(0, 1 << 64, dtype=np.uint64))
                hi = min(lo + 31, (1 << 64) - 1)
                i = np.searchsorted(keys, np.uint64(lo))
                if i < len(keys) and int(keys[i]) <= hi:
                    continue
                lsm.range_query(lo, hi)
            results[name] = env.stats.reads
        assert results["rencoder"] < results["none"] / 2

    def test_use_case_2_btree(self):
        keys = generate_keys(1500, "uniform", seed=62)
        env = StorageEnv()
        bt = BPlusTree(
            fanout=32,
            filter_factory=lambda ks: REncoder(ks, bits_per_key=20),
            env=env,
        )
        for k in keys:
            bt.insert(int(k), "v")
        bt.rebuild_filters()
        env.reset()
        rng = np.random.default_rng(63)
        empty = 0
        for _ in range(100):
            lo = int(rng.integers(0, 1 << 64, dtype=np.uint64))
            hi = min(lo + 31, (1 << 64) - 1)
            i = np.searchsorted(keys, np.uint64(lo))
            if i < len(keys) and int(keys[i]) <= hi:
                continue
            empty += 1
            assert bt.range_query(lo, hi) == []
        assert env.stats.reads < empty / 4

    def test_use_case_3_rtree_spatial(self):
        rng = np.random.default_rng(64)
        pts = [(int(x), int(y)) for x, y in rng.integers(0, 1 << 12, (600, 2))]
        env = StorageEnv()
        rt = RTree(
            pts,
            coord_bits=12,
            leaf_capacity=32,
            filter_factory=lambda ks: REncoder(ks, bits_per_key=20,
                                               key_bits=24),
            env=env,
        )
        # Spatial point lookups of stored points always succeed.
        for x, y in pts[:40]:
            assert ((x, y), None) in rt.query_rect(x, x, y, y)


class TestCrossFilterAgreement:
    def test_negatives_always_true_negatives(self):
        """Any filter saying 'empty' must agree with ground truth."""
        keys = generate_keys(800, "uniform", seed=65)
        filters = [
            REncoder(keys, bits_per_key=14),
            REncoderSS(keys, bits_per_key=14),
            REncoderSE(keys, bits_per_key=14, sample_queries=[(1, 5)]),
            Rosetta(keys, bits_per_key=14),
            SuRF(keys),
            Snarf(keys, bits_per_key=14),
            BloomFilter(keys, bits_per_key=14),
        ]
        rng = np.random.default_rng(66)
        for _ in range(150):
            lo = int(rng.integers(0, 1 << 64, dtype=np.uint64))
            hi = min(lo + int(rng.integers(1, 64)), (1 << 64) - 1)
            i = np.searchsorted(keys, np.uint64(lo))
            truly_empty = not (i < len(keys) and int(keys[i]) <= hi)
            for filt in filters:
                if not filt.query_range(lo, hi):
                    assert truly_empty, type(filt).__name__
