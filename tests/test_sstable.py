"""Tests for the SSTable."""

import numpy as np
import pytest

from repro.core.rencoder import REncoder
from repro.storage.env import StorageEnv
from repro.storage.memtable import TOMBSTONE
from repro.storage.sstable import SSTable


def _factory(keys):
    return REncoder(keys, bits_per_key=18)


class TestSSTable:
    def test_point_read(self):
        env = StorageEnv()
        table = SSTable([(1, "a"), (5, "b")], _factory, env)
        assert table.query_point(5) == (True, "b")
        assert table.query_point(3) == (False, None)

    def test_range_read(self):
        table = SSTable([(i, i * 2) for i in range(0, 100, 10)], _factory)
        got = table.query_range(15, 55)
        assert got == [(20, 40), (30, 60), (40, 80), (50, 100)]

    def test_fence_keys_skip_io(self):
        env = StorageEnv()
        table = SSTable([(100, "x"), (200, "y")], _factory, env)
        env.reset()
        assert table.query_point(50) == (False, None)
        assert table.query_range(300, 400) == []
        assert env.stats.reads == 0

    def test_filter_skips_io_on_empty_range(self):
        env = StorageEnv()
        table = SSTable([(100, "x"), (200_000, "y")], _factory, env)
        env.reset()
        # Between the fences but empty: the filter should usually skip it.
        wasted = 0
        for lo in range(1000, 50_000, 1000):
            table.query_range(lo, lo + 10)
            wasted = env.stats.wasted_reads
        assert wasted < 10

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            SSTable([(5, "a"), (1, "b")])

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            SSTable([(5, "a"), (5, "b")])

    def test_io_accounting(self):
        env = StorageEnv()
        table = SSTable([(10, "a"), (12, "b")], None, env)
        env.reset()
        table.query_point(10)
        table.query_point(11)  # inside the fences: unfiltered tables read
        assert env.stats.reads == 2
        assert env.stats.useful_reads == 1
        assert env.stats.wasted_reads == 1

    def test_live_fraction(self):
        table = SSTable([(1, "a"), (2, TOMBSTONE)], None)
        assert table.live_fraction() == 0.5

    def test_scan(self):
        items = [(1, "a"), (2, "b")]
        table = SSTable(items, None)
        assert list(table.scan()) == items

    def test_write_counted(self):
        env = StorageEnv()
        SSTable([(1, "a")], None, env)
        assert env.stats.writes == 1


class TestFilterStateMachineEdges:
    """Concurrency edges of the filter-slot state machine: the slot is
    swapped atomically (live -> persisted -> loaded|degraded -> rebuilt),
    so queries racing a transition must never throw, never see a torn
    filter, and never answer a false negative — on the scalar *and*
    batch paths."""

    def _persisted_table(self, n=400):
        from repro.storage.faults import FaultInjector

        env = StorageEnv(injector=FaultInjector(11))
        items = [(k, k & 0xFF) for k in range(0, 2 * n, 2)]
        table = SSTable(items, _factory, env, persist=True)
        return table, env

    def _degrade(self, table):
        """Damage the persisted blob, then deferred-reload into degraded."""
        table.env.injector.arm_bit_flip()
        table.persist_filter()
        state = table.reload_filter(rebuild="deferred")
        assert state == "degraded" and table.filter is None
        return table

    def test_query_mid_rebuild(self):
        """Queries racing rebuild_filter see either no filter or the
        finished rebuild — never an exception or a false negative."""
        import threading

        table, _env = self._persisted_table()
        self._degrade(table)
        present = list(range(0, 800, 2))
        stop = threading.Event()
        errors = []

        def rebuilder():
            # Entered degraded; each lap: rebuild, damage, degrade again.
            try:
                while not stop.is_set():
                    table.rebuild_filter()
                    table.env.injector.arm_bit_flip()
                    table.persist_filter()
                    table.reload_filter(rebuild="deferred")
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        t = threading.Thread(target=rebuilder)
        t.start()
        try:
            for _ in range(40):
                for k in present[:25]:
                    assert table.query_point(k) == (True, k & 0xFF)
                    assert (k, k & 0xFF) in table.query_range(k, k + 1)
        finally:
            stop.set()
            t.join(timeout=30)
        assert not errors, errors
        assert not t.is_alive()

    def test_batch_parity_during_degraded_to_rebuilt(self):
        """A batch racing the degraded->rebuilt swap returns exactly what
        the scalar loop would (answers depend on the data, not on which
        filter state the batch happened to start under)."""
        import threading

        table, _env = self._persisted_table()
        self._degrade(table)
        ranges = [(k, k + 3) for k in range(0, 160, 4)]
        expected = [table.query_range(lo, hi) for lo, hi in ranges]
        results = []
        barrier = threading.Barrier(2)

        def batcher():
            barrier.wait()
            for _ in range(20):
                results.append(table.query_range_many(ranges))

        def rebuilder():
            barrier.wait()
            for _ in range(10):
                table.rebuild_filter()
                table.env.injector.arm_bit_flip()
                table.persist_filter()
                table.reload_filter(rebuild="deferred")

        ts = [threading.Thread(target=batcher),
              threading.Thread(target=rebuilder)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(timeout=60)
        assert all(not t.is_alive() for t in ts)
        for batch in results:
            assert batch == expected
        # Post-race: the slot is in a coherent terminal state.
        assert table.filter_state in ("rebuilt", "degraded")

    def test_generation_advances_across_transitions(self):
        table, _env = self._persisted_table(80)
        g0 = table.filter_generation
        self._degrade(table)
        g1 = table.filter_generation
        assert g1 > g0  # persist + degrade both advanced it
        table.rebuild_filter()
        assert table.filter_generation > g1
        assert table.filter_state == "rebuilt"
        assert table.filter is not None


class TestIoStatsThreadSafety:
    def test_bump_exact_under_contention(self):
        """Concurrent env.read calls never lose IoStats increments."""
        import threading

        env = StorageEnv()
        per_thread, n_threads = 400, 8

        def reader(useful):
            for _ in range(per_thread):
                env.read(useful)

        ts = [
            threading.Thread(target=reader, args=(i % 2 == 0,))
            for i in range(n_threads)
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert env.stats.reads == per_thread * n_threads
        assert env.stats.useful_reads == per_thread * n_threads // 2
        assert env.stats.wasted_reads == per_thread * n_threads // 2

    def test_bump_rejects_unknown_counter(self):
        env = StorageEnv()
        with pytest.raises(AttributeError):
            env.stats.bump(nonsense=1)
