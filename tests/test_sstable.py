"""Tests for the SSTable."""

import numpy as np
import pytest

from repro.core.rencoder import REncoder
from repro.storage.env import StorageEnv
from repro.storage.memtable import TOMBSTONE
from repro.storage.sstable import SSTable


def _factory(keys):
    return REncoder(keys, bits_per_key=18)


class TestSSTable:
    def test_point_read(self):
        env = StorageEnv()
        table = SSTable([(1, "a"), (5, "b")], _factory, env)
        assert table.query_point(5) == (True, "b")
        assert table.query_point(3) == (False, None)

    def test_range_read(self):
        table = SSTable([(i, i * 2) for i in range(0, 100, 10)], _factory)
        got = table.query_range(15, 55)
        assert got == [(20, 40), (30, 60), (40, 80), (50, 100)]

    def test_fence_keys_skip_io(self):
        env = StorageEnv()
        table = SSTable([(100, "x"), (200, "y")], _factory, env)
        env.reset()
        assert table.query_point(50) == (False, None)
        assert table.query_range(300, 400) == []
        assert env.stats.reads == 0

    def test_filter_skips_io_on_empty_range(self):
        env = StorageEnv()
        table = SSTable([(100, "x"), (200_000, "y")], _factory, env)
        env.reset()
        # Between the fences but empty: the filter should usually skip it.
        wasted = 0
        for lo in range(1000, 50_000, 1000):
            table.query_range(lo, lo + 10)
            wasted = env.stats.wasted_reads
        assert wasted < 10

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            SSTable([(5, "a"), (1, "b")])

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            SSTable([(5, "a"), (5, "b")])

    def test_io_accounting(self):
        env = StorageEnv()
        table = SSTable([(10, "a"), (12, "b")], None, env)
        env.reset()
        table.query_point(10)
        table.query_point(11)  # inside the fences: unfiltered tables read
        assert env.stats.reads == 2
        assert env.stats.useful_reads == 1
        assert env.stats.wasted_reads == 1

    def test_live_fraction(self):
        table = SSTable([(1, "a"), (2, TOMBSTONE)], None)
        assert table.live_fraction() == 0.5

    def test_scan(self):
        items = [(1, "a"), (2, "b")]
        table = SSTable(items, None)
        assert list(table.scan()) == items

    def test_write_counted(self):
        env = StorageEnv()
        SSTable([(1, "a")], None, env)
        assert env.stats.writes == 1
