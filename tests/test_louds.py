"""Tests for the LOUDS-Sparse trie (SuRF's FST substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trie.louds import LoudsSparseTrie


def _make(keys, key_bytes=2):
    arr = np.unique(np.array(sorted(keys), dtype=np.uint64))
    return LoudsSparseTrie(arr, key_bytes=key_bytes), arr


class TestConstruction:
    def test_stats(self):
        trie, _ = _make([0x0101, 0x0102, 0x0201])
        assert trie.stats.n_keys == 3
        assert trie.stats.n_leaves == 3
        # Root has labels 0x01, 0x02; node 0x01 splits at depth 1.
        assert trie.stats.n_edges == 4
        assert trie.stats.n_internal == 1

    def test_prunes_at_distinguishing_byte(self):
        # Keys differing in the first byte prune immediately: 2 edges.
        trie, _ = _make([0x0100, 0xFF00])
        assert trie.stats.n_edges == 2
        assert trie.stats.max_depth == 1

    def test_deep_shared_prefix(self):
        trie, _ = _make([0xABCD, 0xABCE])
        assert trie.stats.max_depth == 2
        assert trie.stats.n_edges == 3  # AB, then CD / CE

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            LoudsSparseTrie(np.array([5, 3], dtype=np.uint64), key_bytes=2)

    def test_empty(self):
        trie = LoudsSparseTrie(np.zeros(0, dtype=np.uint64), key_bytes=2)
        assert trie.lookup_prefix(b"\x00\x01") == -1
        assert trie.lower_bound_leaf(b"\x00\x01") == (-1, False)


class TestLookup:
    def test_lookup_finds_prefix_slot(self):
        trie, arr = _make([0x0101, 0x0102, 0x0201])
        slot = trie.lookup_prefix((0x0101).to_bytes(2, "big"))
        assert slot >= 0
        assert int(arr[trie.leaf_key_idx[slot]]) == 0x0101

    def test_lookup_rejects_unseen_branch(self):
        trie, _ = _make([0x0101, 0x0102, 0x0201])
        assert trie.lookup_prefix((0x0301).to_bytes(2, "big")) == -1

    def test_lookup_is_prefix_based(self):
        # 0xFF00 prunes at depth 1: any 0xFFxx lookup hits the same slot.
        trie, _ = _make([0x0100, 0xFF00])
        a = trie.lookup_prefix(b"\xff\x00")
        b = trie.lookup_prefix(b"\xff\x77")
        assert a == b >= 0


class TestLowerBound:
    def test_exact_successor(self):
        trie, arr = _make([0x0100, 0x0500, 0x0900])
        slot, ambiguous = trie.lower_bound_leaf(b"\x03\x00")
        assert not ambiguous
        assert int(arr[trie.leaf_key_idx[slot]]) == 0x0500

    def test_past_the_end(self):
        trie, _ = _make([0x0100, 0x0500])
        slot, _ = trie.lower_bound_leaf(b"\xff\xff")
        assert slot == -1

    def test_ambiguous_when_prefix_matches(self):
        trie, arr = _make([0x0100, 0xFF00])
        # 0xFF12's first byte matches the pruned leaf 0xFF: ambiguous.
        slot, ambiguous = trie.lower_bound_leaf(b"\xff\x12")
        assert ambiguous
        assert int(arr[trie.leaf_key_idx[slot]]) == 0xFF00

    def test_reject_advances(self):
        trie, arr = _make([0x0100, 0xFF00])
        slot, ambiguous = trie.lower_bound_leaf(
            b"\x01\x50", reject=lambda s: True
        )
        # The ambiguous 0x01-leaf is rejected; next is the 0xFF leaf.
        assert not ambiguous
        assert int(arr[trie.leaf_key_idx[slot]]) == 0xFF00

    def test_backtracking(self):
        # Descend into the 0x01 subtree, fail below, climb to 0x02.
        trie, arr = _make([0x0101, 0x0102, 0x0201])
        slot, ambiguous = trie.lower_bound_leaf(b"\x01\x50")
        assert not ambiguous
        assert int(arr[trie.leaf_key_idx[slot]]) == 0x0201

    @given(st.sets(st.integers(0, (1 << 16) - 1), min_size=1, max_size=60),
           st.integers(0, (1 << 16) - 1))
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_successor_sound(self, keys, probe):
        trie, arr = _make(keys)
        slot, ambiguous = trie.lower_bound_leaf(int(probe).to_bytes(2, "big"))
        successors = [k for k in keys if k >= probe]
        if slot < 0:
            # Claiming nothing at/after the probe: with full-width keys and
            # pruned prefixes this can only be correct.
            assert not successors
        elif not ambiguous and successors:
            # The candidate's minimal extension must not overshoot the true
            # successor (one-sidedness of SuRF range queries).
            assert trie.leaf_prefix_value(slot) <= min(successors)


class TestGeometry:
    def test_leaf_prefix_value_zero_extends(self):
        trie, _ = _make([0x0100, 0xFF00])
        slots = {trie.leaf_prefix_value(s) for s in trie.iter_leaves()}
        assert slots == {0x0100, 0xFF00}

    def test_size_in_bits_reasonable(self):
        trie, arr = _make(list(range(0, 4096, 7)))
        bpk = trie.size_in_bits() / len(arr)
        assert 5 < bpk < 40
