"""Tests for the SuRF baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.surf import SuRF
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)
from tests.conftest import assert_no_false_negatives


class TestModes:
    def test_mode_bit_defaults(self, uniform_keys):
        assert SuRF(uniform_keys, mode="base").hash_bits == 0
        assert SuRF(uniform_keys, mode="hash").hash_bits == 8
        assert SuRF(uniform_keys, mode="real").real_bits == 8
        mixed = SuRF(uniform_keys, mode="mixed")
        assert mixed.hash_bits == 4 and mixed.real_bits == 4

    def test_invalid_mode(self, uniform_keys):
        with pytest.raises(ValueError):
            SuRF(uniform_keys, mode="turbo")

    def test_byte_aligned_keys_only(self, uniform_keys):
        with pytest.raises(ValueError):
            SuRF(uniform_keys, key_bits=60)

    def test_size_grows_with_suffixes(self, uniform_keys):
        base = SuRF(uniform_keys, mode="base").size_in_bits()
        mixed = SuRF(uniform_keys, mode="mixed").size_in_bits()
        assert mixed == base + 8 * len(uniform_keys)


class TestNoFalseNegatives:
    @pytest.mark.parametrize("mode", ["base", "hash", "real", "mixed"])
    def test_all_modes(self, uniform_keys, mode):
        surf = SuRF(uniform_keys, mode=mode)
        assert_no_false_negatives(surf, uniform_keys[:200])

    @given(st.sets(st.integers(0, (1 << 16) - 1), min_size=1, max_size=50),
           st.integers(0, (1 << 16) - 1), st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_16bit(self, keys, lo, size):
        surf = SuRF(keys, key_bits=16)
        hi = min((1 << 16) - 1, lo + size - 1)
        if any(lo <= k <= hi for k in keys):
            assert surf.query_range(lo, hi)


class TestAccuracy:
    def test_uniform_point_fpr_low(self, uniform_keys):
        surf = SuRF(uniform_keys, mode="mixed")
        rng = np.random.default_rng(2)
        key_set = set(int(k) for k in uniform_keys)
        probes = [int(p) for p in rng.integers(0, 1 << 64, 2000, dtype=np.uint64)
                  if int(p) not in key_set]
        fpr = sum(surf.query_point(p) for p in probes) / len(probes)
        assert fpr < 0.1

    def test_hash_suffix_sharpens_points(self, uniform_keys):
        base = SuRF(uniform_keys, mode="base")
        hashed = SuRF(uniform_keys, mode="hash")
        rng = np.random.default_rng(3)
        key_set = set(int(k) for k in uniform_keys)
        probes = [int(p) for p in rng.integers(0, 1 << 64, 2000, dtype=np.uint64)
                  if int(p) not in key_set]
        fpr_base = sum(base.query_point(p) for p in probes) / len(probes)
        fpr_hash = sum(hashed.query_point(p) for p in probes) / len(probes)
        assert fpr_hash <= fpr_base

    def test_real_suffix_sharpens_ranges(self, uniform_keys):
        queries = uniform_range_queries(uniform_keys, 600, seed=4)
        base = SuRF(uniform_keys, mode="base")
        real = SuRF(uniform_keys, mode="real")
        fpr_base = sum(base.query_range(*q) for q in queries) / len(queries)
        fpr_real = sum(real.query_range(*q) for q in queries) / len(queries)
        assert fpr_real <= fpr_base

    def test_correlated_collapse(self, uniform_keys):
        # The paper's headline SuRF weakness (Figure 9): FPR -> 1.
        surf = SuRF(uniform_keys, mode="mixed")
        queries = correlated_range_queries(uniform_keys, 200, seed=5)
        fpr = sum(surf.query_range(*q) for q in queries) / len(queries)
        assert fpr > 0.9

    def test_no_memory_knob(self, uniform_keys):
        # SuRF's size is data-determined (flat line across BPK figures).
        surf = SuRF(uniform_keys)
        bpk = surf.size_in_bits() / len(uniform_keys)
        assert 8 < bpk < 40


class TestEdgeCases:
    def test_single_key(self):
        surf = SuRF([42], key_bits=16)
        assert surf.query_point(42)
        assert surf.query_range(0, 100)
        assert not surf.query_range(50_000, 60_000)

    def test_adjacent_keys(self):
        surf = SuRF([100, 101], key_bits=16, mode="real")
        assert surf.query_point(100)
        assert surf.query_point(101)

    def test_range_below_all_keys(self, uniform_keys):
        surf = SuRF(uniform_keys)
        lo_key = int(uniform_keys[0])
        if lo_key > 100:
            assert not surf.query_range(0, 50)
