"""Tests for the ARF extension baseline."""

import numpy as np
import pytest

from repro.filters.arf import AdaptiveRangeFilter
from repro.workloads.queries import uniform_range_queries
from tests.conftest import assert_no_false_negatives


class TestArf:
    def test_no_false_negatives(self, uniform_keys):
        arf = AdaptiveRangeFilter(uniform_keys, bits_per_key=16)
        assert_no_false_negatives(arf, uniform_keys[:200])

    def test_training_reduces_fpr(self, uniform_keys):
        train = uniform_range_queries(uniform_keys, 400, seed=1)
        test = uniform_range_queries(uniform_keys, 400, seed=2)
        untrained = AdaptiveRangeFilter(uniform_keys, bits_per_key=16)
        trained = AdaptiveRangeFilter(
            uniform_keys, bits_per_key=16, training_queries=train
        )
        fpr_u = sum(untrained.query_range(*q) for q in test) / len(test)
        fpr_t = sum(trained.query_range(*q) for q in test) / len(test)
        assert fpr_t <= fpr_u + 0.02

    def test_training_query_is_answered_negative(self, uniform_keys):
        train = uniform_range_queries(uniform_keys, 100, seed=3)
        arf = AdaptiveRangeFilter(
            uniform_keys, bits_per_key=16, training_queries=train
        )
        negatives = sum(not arf.query_range(*q) for q in train)
        # Trained (empty) queries should mostly be learned as negative.
        assert negatives > len(train) * 0.6

    def test_budget_respected(self, uniform_keys):
        arf = AdaptiveRangeFilter(uniform_keys, bits_per_key=8)
        assert arf.size_in_bits() <= 8 * len(uniform_keys) * 1.1

    def test_nonempty_training_query_ignored(self, uniform_keys):
        k = int(uniform_keys[0])
        arf = AdaptiveRangeFilter(
            uniform_keys, bits_per_key=16, training_queries=[(k, k)]
        )
        assert arf.query_point(k)

    def test_occupied_counts(self):
        arf = AdaptiveRangeFilter([10, 20], total_bits=512, key_bits=8)
        assert arf.query_range(0, 255)
        assert arf.query_point(10)

    def test_probe_count(self, uniform_keys):
        arf = AdaptiveRangeFilter(uniform_keys, bits_per_key=8)
        arf.reset_counters()
        arf.query_range(0, 100)
        assert arf.probe_count >= 1
