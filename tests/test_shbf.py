"""Tests for the Shifting Bloom Filter extra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.bloom import BloomFilter
from repro.filters.shbf import ShiftingBloomFilter


class TestShbf:
    def test_no_false_negatives(self, uniform_keys):
        shbf = ShiftingBloomFilter(uniform_keys, bits_per_key=14)
        for k in uniform_keys:
            assert shbf.query_point(int(k))

    def test_fpr_comparable_to_bloom(self, uniform_keys):
        shbf = ShiftingBloomFilter(uniform_keys, bits_per_key=14, seed=1)
        bloom = BloomFilter(uniform_keys, bits_per_key=14, seed=1)
        rng = np.random.default_rng(2)
        key_set = set(int(k) for k in uniform_keys)
        probes = [int(p) for p in rng.integers(0, 1 << 64, 4000,
                                               dtype=np.uint64)
                  if int(p) not in key_set]
        fpr_s = sum(shbf.query_point(p) for p in probes) / len(probes)
        fpr_b = sum(bloom.query_point(p) for p in probes) / len(probes)
        # Same evidence bits, paired layout: within a small factor.
        assert fpr_s <= max(3 * fpr_b, fpr_b + 0.02)

    def test_half_the_probes_of_bloom(self, uniform_keys):
        shbf = ShiftingBloomFilter(uniform_keys, bits_per_key=14, k=8)
        bloom = BloomFilter(uniform_keys, bits_per_key=14, k=8)
        shbf.reset_counters()
        bloom.reset_counters()
        shbf.query_point(123)
        bloom.query_point(123)
        assert shbf.probe_count * 2 <= bloom.probe_count + 1

    def test_offset_in_bounds(self, uniform_keys):
        shbf = ShiftingBloomFilter(uniform_keys[:50], total_bits=4096)
        for key in (0, 1, 1 << 63):
            assert 1 <= shbf._offset(key) <= 63

    def test_incremental_insert(self):
        shbf = ShiftingBloomFilter([], total_bits=4096)
        shbf.insert(42)
        assert shbf.query_point(42)

    def test_range_scan_fallback(self):
        shbf = ShiftingBloomFilter([100], total_bits=4096, key_bits=16)
        assert shbf.query_range(95, 105)
        shbf_capped = ShiftingBloomFilter(
            [100], total_bits=4096, key_bits=32, max_range_probes=4
        )
        assert shbf_capped.query_range(0, 1 << 20)  # conservative

    @given(st.sets(st.integers(0, (1 << 32) - 1), min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_hypothesis_no_false_negatives(self, keys):
        shbf = ShiftingBloomFilter(keys, total_bits=8192, key_bits=32)
        for k in keys:
            assert shbf.query_point(k)
