"""Cluster observability acceptance: traces, federation, SLOs, drift.

The PR's acceptance bar, spelled out per class:

* :class:`TestTraceAnatomy` — a deterministically hedged, failed-over
  query yields ONE stitched tree: the submit-time failover hop, the
  primary, and the losing hedge branch (settled after the exchange
  returned) all under the router's root, with replica-side subtrees
  carrying the router's trace id.  Degraded merges are annotated.
* :class:`TestFederation` — the federated namespace carries per-shard
  labels and the merged histogram count provably equals the sum of
  replica-local counts; a crashed-then-restarted replica re-homes into
  the same source (registry survives the service incarnation) without
  double-counting.
* :class:`TestSloBurnRate` — burn-rate alerts fire during a fault
  window, never in the fault-free control, and resolve after recovery;
  a single observed false negative burns its budget instantly.
  ``REPRO_SLO_REPORT`` dumps the transition log as a CI artifact.
* :class:`TestWorkloadDrift` — switching a uniform workload to a
  correlated one pushes the per-shard PSI score over the alert
  threshold (gauge + alert counter visible through the federation).
* :class:`TestChaosTraceCoverage` — a seeded chaos run keeps (tail
  sampling only, head rate 0) traces spanning router -> replica ->
  WAL -> filter probe, and two runs under the same seed keep the same
  trace ids.

``REPRO_CHAOS_SEED`` pins every scenario, so CI failures replay from
one number.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

import pytest

from repro.cluster import FilterCluster
from repro.core.rencoder import REncoder
from repro.telemetry.context import TraceStore, fmt_trace_id
from repro.telemetry.drift import DEFAULT_DRIFT_THRESHOLD
from repro.telemetry.tracing import get_tracer

try:  # pragma: no cover - plugin presence is environment-specific
    import pytest_timeout  # noqa: F401

    pytestmark = [pytest.mark.timeout(600)]
except ImportError:  # plugin not installed locally; CI installs it
    pytestmark = []

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", 20230713))
MS = 1_000_000
SEC = 1_000_000_000


def _factory(keys):
    return REncoder(keys, bits_per_key=14)


@pytest.fixture(autouse=True)
def _tracer_cleanup():
    yield
    get_tracer().disable()


def _cluster(seed, *, shards=2, reps=2, store=None, **kw):
    kw.setdefault("segment_bits", 5)
    kw.setdefault("memtable_capacity", 512)
    kw.setdefault("workers", 2)
    cluster = FilterCluster(
        n_shards=shards,
        replicas_per_shard=reps,
        filter_factory=_factory,
        seed=seed,
        trace_store=store,
        **kw,
    )
    return cluster.start()


def _load_keys(cluster, rng, n):
    keys = sorted({rng.getrandbits(64) for _ in range(n)})
    cluster.load(keys)
    cluster.flush()
    return keys


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


# ----------------------------------------------------------------------
# distributed trace anatomy
# ----------------------------------------------------------------------
class TestTraceAnatomy:
    def test_failover_and_losing_hedge_stitch_into_one_tree(self):
        """Partition the first candidate (failover hop), stall the two
        survivors on the wall clock until the hedge delay passes (the
        hedge timer is wall time, so simulated slow-reads cannot trip
        it), then release both: one wins, the other settles later as
        the losing hedge branch — all in one recorded tree."""
        store = TraceStore(cap=64, seed=CHAOS_SEED, sample_rate=0.0)
        cluster = _cluster(
            CHAOS_SEED,
            shards=1,
            reps=3,
            store=store,
            router_kwargs={"hedge_max_s": 0.02},
        )
        try:
            rng = random.Random(CHAOS_SEED)
            keys = _load_keys(cluster, rng, 512)
            get_tracer().enable(cluster.clock)
            # Replica 0 leads the shard's first rotation; partitioning
            # it (health untouched) guarantees a submit-time failover.
            cluster.partition_replica(0, 0)
            release = threading.Event()
            patched = []
            for rid in (1, 2):
                lsm = cluster.replica(0, rid).lsm
                orig = lsm.range_query_many

                def stalled(*args, _orig=orig, **kwargs):
                    release.wait(timeout=60.0)
                    return _orig(*args, **kwargs)

                patched.append((lsm, orig))
                lsm.range_query_many = stalled
            lo = keys[0]
            out = {}
            worker = threading.Thread(
                target=lambda: out.setdefault(
                    "resp", cluster.query_range(lo, lo + 64)
                )
            )
            worker.start()
            try:
                hedges = cluster.router._counters["cluster_hedges"]
                deadline = time.time() + 60.0
                while hedges.value == 0 and time.time() < deadline:
                    time.sleep(0.001)
                assert hedges.value >= 1, "hedge never fired"
            finally:
                release.set()
                worker.join(timeout=60.0)
                for lsm, orig in patched:
                    lsm.range_query_many = orig

            resp = out["resp"]
            assert resp.positives == [True]
            outcome = resp.shards[0]
            assert outcome.hedged
            assert outcome.reason == "ok"

            records = [
                r for r in store.records() if r["kind"] == "range_batch"
            ]
            assert len(records) == 1
            rec = records[0]
            # Kept by the tail decision, not the (zero-rate) head draw.
            assert rec["interesting"] and not rec["sampled"]
            root = rec["root"]
            assert root.name == "cluster.query"
            attempts = [
                s for s in _walk(root) if s.name == "router.attempt"
            ]
            assert len(attempts) == 3  # failover + primary + hedge

            fail = [s for s in attempts if s.attrs.get("failover")]
            assert len(fail) == 1
            assert fail[0].attrs["error"] == "unreachable"
            assert fail[0].attrs["replica"] == "s0r0"

            winners = [s for s in attempts if s.attrs.get("winner")]
            assert len(winners) == 1
            winner = winners[0]
            losers = [
                s for s in attempts if s is not fail[0] and s is not winner
            ]
            assert len(losers) == 1
            loser = losers[0]
            # The losing branch settles via done-callback after the
            # exchange already returned; wait for the stitch.
            deadline = time.time() + 60.0
            while loser.end_wall_ns is None and time.time() < deadline:
                time.sleep(0.001)
            assert loser.end_wall_ns is not None

            # Exactly one of the two live branches is the hedge.
            assert {winner.attrs["hedge"], loser.attrs["hedge"]} == {
                True,
                False,
            }
            # Both carry the replica's own subtree, stamped with this
            # trace's id — the tree really is cross-replica.
            tid = fmt_trace_id(rec["trace_id"])
            branch_replicas = set()
            for branch in (winner, loser):
                sub = branch.find("service.range_batch")
                assert sub is not None
                assert sub.attrs["trace_id"] == tid
                branch_replicas.add(branch.attrs["replica"])
            assert branch_replicas == {"s0r1", "s0r2"}
            assert "router.attempt" in store.format(rec["trace_id"])
        finally:
            cluster.stop()

    def test_unreachable_shard_is_annotated_degraded(self):
        store = TraceStore(cap=16, seed=CHAOS_SEED, sample_rate=0.0)
        cluster = _cluster(CHAOS_SEED, shards=1, reps=2, store=store)
        try:
            rng = random.Random(CHAOS_SEED)
            keys = _load_keys(cluster, rng, 128)
            get_tracer().enable(cluster.clock)
            cluster.partition_replica(0, 0)
            cluster.partition_replica(0, 1)
            resp = cluster.query_range(keys[0], keys[0] + 8)
            assert resp.degraded
            assert resp.positives == [True]  # one-sided fabrication
            rec = store.records()[-1]
            assert rec["interesting"]
            root = rec["root"]
            assert root.attrs["degraded"] is True
            exchange = root.find("router.exchange")
            assert exchange is not None
            assert exchange.attrs["reason"] == "unreachable"
            assert exchange.attrs["degraded"] is True
            attempts = [
                s for s in _walk(root) if s.name == "router.attempt"
            ]
            assert len(attempts) == 2
            for span in attempts:
                assert span.attrs["failover"]
                assert span.attrs["error"] == "unreachable"
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
# metrics federation
# ----------------------------------------------------------------------
class TestFederation:
    def test_merged_counts_equal_replica_sums_with_shard_labels(self):
        cluster = _cluster(CHAOS_SEED + 1, shards=2, reps=2)
        try:
            rng = random.Random(CHAOS_SEED + 1)
            keys = _load_keys(cluster, rng, 1024)
            for _ in range(40):
                sample = rng.sample(keys, 8)
                cluster.query_range_many([(k, k + 64) for k in sample])
            fed = cluster.federation
            all_reps = [
                rep for reps in cluster.replicas.values() for rep in reps
            ]

            merged = fed.merged_histogram(
                "service_latency_sim_ns", match={"scope": "replica"}
            )
            assert merged["count"] > 0
            assert merged["sources"] == len(all_reps)
            per_replica = [
                fed.merged_histogram(
                    "service_latency_sim_ns", match={"replica": rep.name}
                )
                for rep in all_reps
            ]
            assert merged["count"] == sum(p["count"] for p in per_replica)
            per_shard = [
                fed.merged_histogram(
                    "service_latency_sim_ns", match={"shard": str(sid)}
                )
                for sid in cluster.replicas
            ]
            assert merged["count"] == sum(p["count"] for p in per_shard)
            # The bucket series really is the element-wise sum: the
            # final cumulative bucket equals the merged count.
            assert merged["buckets"][-1][1] == merged["count"]

            completed = fed.counter_total(
                "service_completed", match={"scope": "replica"}
            )
            assert completed == sum(
                fed.counter_total(
                    "service_completed", match={"replica": rep.name}
                )
                for rep in all_reps
            )

            prom = fed.to_prometheus()
            assert 'shard="0"' in prom and 'shard="1"' in prom
            assert 'scope="router"' in prom
            assert "cluster_requests" in prom
            assert "service_latency_sim_ns_bucket" in prom
        finally:
            cluster.stop()

    def test_replica_registry_survives_crash_restart_rehoming(self):
        """The regression this PR guards: a replica's registry belongs
        to the Replica, not the FilterService incarnation, so counts
        continue across crash()/restart() and the federation never
        gains a duplicate source."""
        cluster = _cluster(CHAOS_SEED + 2, shards=1, reps=2)
        try:
            rng = random.Random(CHAOS_SEED + 2)
            keys = _load_keys(cluster, rng, 256)
            fed = cluster.federation
            rep = cluster.replica(0, 0)
            match = {"replica": rep.name}
            for k in keys[:20]:
                rep.submit_range_batch([(k, k + 2)]).result()
            before = fed.counter_total("service_completed", match=match)
            assert before >= 20

            cluster.crash_replica(0, 0)
            # Down, not gone: the source stays attached, re-labeled.
            assert (
                fed.counter_total("service_completed", match=match)
                == before
            )
            prom = fed.to_prometheus()
            assert f'replica="{rep.name}"' in prom
            assert 'state="down"' in prom

            cluster.restart_replica(0, 0)
            for k in keys[20:40]:
                rep.submit_range_batch([(k, k + 2)]).result()
            after = fed.counter_total("service_completed", match=match)
            assert after >= before + 20  # continued, never reset

            assert fed.source_names().count(rep.name) == 1
            total = fed.counter_total(
                "service_completed", match={"scope": "replica"}
            )
            assert total == sum(
                fed.counter_total(
                    "service_completed", match={"replica": r.name}
                )
                for reps in cluster.replicas.values()
                for r in reps
            )
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
# SLO burn-rate alerting
# ----------------------------------------------------------------------
class TestSloBurnRate:
    def _traffic(self, cluster, rng, keys, n):
        for _ in range(n):
            sample = rng.sample(keys, 4)
            resp = cluster.query_range_many([(k, k + 32) for k in sample])
            # Every sampled key is stored, so the expected verdict is
            # positive; a False here would be a contract break.
            cluster.record_truth(True, bool(resp.positives[0]))

    def test_quiet_in_control_fires_under_fault_then_resolves(self):
        cluster = _cluster(CHAOS_SEED + 3, shards=2, reps=2)
        slo = cluster.enable_slo()
        try:
            rng = random.Random(CHAOS_SEED + 3)
            keys = _load_keys(cluster, rng, 1024)

            # Fault-free control: nothing may fire, ever.
            self._traffic(cluster, rng, keys, 80)
            assert slo.ever_fired() == set()
            assert slo.active_alerts() == []

            # Fault window: shard 0 loses every replica, so routed
            # queries that touch it merge degraded and burn the
            # availability budget at ~100x.
            cluster.crash_replica(0, 0)
            cluster.crash_replica(0, 1)
            self._traffic(cluster, rng, keys, 120)
            fired = slo.ever_fired()
            assert ("availability", "page") in fired
            assert ("availability", "ticket") in fired
            assert ("zero-false-negative", "page") not in fired
            assert ("p99-latency", "page") not in fired
            assert (
                cluster.federation.counter_total(
                    "slo_alert_active",
                    match={"slo": "availability", "severity": "page"},
                )
                == 1.0
            )
            assert any(
                a["slo"] == "availability"
                for a in cluster.health()["slo_active"]
            )

            # Recovery: restart the shard, age the burn out of the
            # windows, and confirm the alerts resolve.
            cluster.restart_replica(0, 0)
            cluster.restart_replica(0, 1)
            cluster.probe_all()
            cluster.clock.advance(6 * SEC)
            self._traffic(cluster, rng, keys, 30)
            assert slo.active_alerts() == []

            report = slo.report()
            seen = {
                (t["slo"], t["severity"], t["to"])
                for t in report["transitions"]
            }
            assert ("availability", "page", "firing") in seen
            assert ("availability", "page", "resolved") in seen
            out = os.environ.get("REPRO_SLO_REPORT")
            if out:
                with open(out, "w") as fh:
                    json.dump(
                        {"seed": CHAOS_SEED, **report},
                        fh,
                        indent=2,
                        sort_keys=True,
                    )
        finally:
            cluster.stop()

    def test_false_negative_burns_instantly(self):
        cluster = _cluster(CHAOS_SEED + 4, shards=1, reps=1)
        slo = cluster.enable_slo()
        try:
            assert slo.ever_fired() == set()
            cluster.record_truth(expected_positive=True, got_positive=False)
            fired = slo.ever_fired()
            assert ("zero-false-negative", "page") in fired
            assert ("zero-false-negative", "ticket") in fired
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
# workload drift detection
# ----------------------------------------------------------------------
class TestWorkloadDrift:
    def test_uniform_to_correlated_switch_crosses_threshold(self):
        window = 60 * SEC  # far beyond any phase's simulated duration
        cluster = _cluster(
            CHAOS_SEED + 5,
            shards=1,
            reps=1,
            router_kwargs={"drift_window_ns": window},
        )
        try:
            rng = random.Random(CHAOS_SEED + 5)
            _load_keys(cluster, rng, 256)

            def run(lo_fn, width, n):
                for _ in range(n):
                    lo = lo_fn()
                    cluster.query_range(lo, lo + width)

            # Window 1: uniform narrow ranges across the whole space.
            run(lambda: rng.getrandbits(64), 64, 80)
            cluster.clock.advance(window + MS)
            run(lambda: rng.getrandbits(64), 64, 1)  # closes window 1
            assert cluster.router.drift_scores()[0] == 0.0  # no base yet

            # Window 2: wide scans pinned to one locality bucket —
            # width AND locality shift together.
            base = 0xF << 60
            run(lambda: base | rng.getrandbits(32), 1 << 12, 80)
            cluster.clock.advance(window + MS)
            run(lambda: base | rng.getrandbits(32), 1 << 12, 1)

            score = cluster.router.drift_scores()[0]
            assert score > DEFAULT_DRIFT_THRESHOLD
            snap = cluster.router.drift_snapshot()[0]
            assert snap["alerting"]
            assert snap["alerts"] >= 1
            assert snap["dimensions"]["locality"] > 0
            assert cluster.health()["drift"][0] == score
            fed = cluster.federation
            assert (
                fed.counter_total(
                    "workload_drift_alerts", match={"shard": "0"}
                )
                >= 1
            )
            assert fed.counter_total(
                "workload_drift", match={"shard": "0"}
            ) == pytest.approx(score)
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
# seeded chaos: cross-component trace coverage + determinism
# ----------------------------------------------------------------------
class TestChaosTraceCoverage:
    #: The span union a kept chaos run must cover: router scatter,
    #: replica service execution, WAL appends from hint replay, and the
    #: filter-backed SSTable probe.
    REQUIRED = {
        "cluster.query",
        "router.scatter",
        "router.exchange",
        "router.attempt",
        "service.range_batch",
        "lsm.range_query_many",
        "sstable.probe",
        "cluster.hint_replay",
        "wal.append",
    }

    def _scenario(self, seed):
        """Deterministic chaos: crash+partition a whole shard, write
        through it (hints), query through it (degraded traces), then
        recover (traced hint replays) and repair."""
        store = TraceStore(cap=256, seed=seed, sample_rate=0.0)
        cluster = _cluster(
            seed,
            shards=2,
            reps=2,
            store=store,
            durability=True,
            workers=1,
            hedging=False,
        )
        try:
            rng = random.Random(seed)
            keys = _load_keys(cluster, rng, 600)
            get_tracer().enable(cluster.clock)
            # Probe keys spread across the keyspace so both shards are
            # touched (the smallest sorted keys share one segment).
            probe = [(k, k + 64) for k in keys[:: len(keys) // 16][:16]]
            for _ in range(10):
                cluster.query_range_many(probe)
            cluster.crash_replica(0, 0)
            cluster.partition_replica(0, 1)
            for k in keys[:40]:
                cluster.put(k ^ 0x5EED, 1)
            for _ in range(10):
                cluster.query_range_many(probe)
            cluster.restart_replica(0, 0)
            cluster.heal_replica(0, 1)
            cluster.probe_all()
            cluster.anti_entropy()
            for _ in range(5):
                cluster.query_range_many(probe)
            return store
        finally:
            get_tracer().disable()
            cluster.stop()

    def test_cross_component_spans_and_tail_sampling(self):
        store = self._scenario(CHAOS_SEED)
        records = store.records()
        assert records
        # Head rate is 0.0: everything kept was kept by tail sampling.
        assert all(r["interesting"] for r in records)
        assert all(not r["sampled"] for r in records)
        stats = store.stats()
        assert stats["kept_sampled"] == 0
        assert stats["dropped"] > 0  # boring healthy traffic dropped
        kinds = {r["kind"] for r in records}
        assert "range_batch" in kinds
        assert "hint_replay" in kinds

        names = set()
        for rec in records:
            names.update(s.name for s in _walk(rec["root"]))
        missing = self.REQUIRED - names
        assert not missing, f"missing spans: {sorted(missing)}"

        # Replica-side roots carry the router's trace id — the kept
        # tree is genuinely cross-replica, reassemblable by ids alone.
        stitched = 0
        for rec in records:
            if rec["kind"] != "range_batch":
                continue
            tid = fmt_trace_id(rec["trace_id"])
            for span in _walk(rec["root"]):
                if span.name == "service.range_batch":
                    assert span.attrs["trace_id"] == tid
                    stitched += 1
        assert stitched > 0
        # Hint-replay traces carry their WAL appends.
        replay = next(r for r in records if r["kind"] == "hint_replay")
        assert replay["root"].find("wal.append") is not None

    def test_trace_ids_and_sampling_are_deterministic_under_seed(self):
        first = self._scenario(CHAOS_SEED)
        second = self._scenario(CHAOS_SEED)
        assert first.trace_ids() == second.trace_ids()
        sa, sb = first.stats(), second.stats()
        for key in ("started", "recorded", "kept", "dropped"):
            assert sa[key] == sb[key], key
