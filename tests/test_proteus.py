"""Tests for Proteus / ProteusNS and the CPFPR design selection."""

import numpy as np
import pytest

from repro.filters.proteus import Proteus, ProteusNS, cpfpr_choose_design
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)
from tests.conftest import assert_no_false_negatives


class TestProteusNS:
    def test_default_design(self, uniform_keys):
        ns = ProteusNS(uniform_keys, bits_per_key=16)
        assert ns.trie_depth == 0
        assert ns.prefix_len == 32

    def test_no_false_negatives(self, uniform_keys):
        ns = ProteusNS(uniform_keys, bits_per_key=14)
        assert_no_false_negatives(ns, uniform_keys[:200])

    def test_uniform_fpr_low(self, uniform_keys, empty_queries):
        ns = ProteusNS(uniform_keys, bits_per_key=16)
        fpr = sum(ns.query_range(*q) for q in empty_queries) / len(empty_queries)
        assert fpr < 0.1

    def test_correlated_collapse(self, uniform_keys):
        ns = ProteusNS(uniform_keys, bits_per_key=16)
        queries = correlated_range_queries(uniform_keys, 150, seed=3)
        fpr = sum(ns.query_range(*q) for q in queries) / len(queries)
        assert fpr > 0.9


class TestCpfpr:
    def test_correlated_sample_picks_deep_design(self, uniform_keys):
        corr = correlated_range_queries(uniform_keys, 100, seed=4)
        depth, prefix_len = cpfpr_choose_design(
            uniform_keys, 16 * len(uniform_keys), corr
        )
        # Correlated queries need prefixes deep enough to split key from
        # query — far deeper than the NS default of 32.
        assert prefix_len > 32

    def test_no_sample_keeps_any_valid_design(self, uniform_keys):
        depth, prefix_len = cpfpr_choose_design(
            uniform_keys, 16 * len(uniform_keys), []
        )
        assert 0 <= depth <= 8
        assert 8 <= prefix_len <= 64

    def test_design_fits_budget(self, uniform_keys):
        corr = correlated_range_queries(uniform_keys, 80, seed=5)
        p = Proteus(uniform_keys, bits_per_key=16, sample_queries=corr)
        assert p.size_in_bits() <= 16 * len(uniform_keys) * 1.2


class TestProteus:
    def test_correlated_sampling_stays_accurate(self, uniform_keys):
        sample = correlated_range_queries(uniform_keys, 150, seed=6)
        queries = correlated_range_queries(uniform_keys, 300, seed=7)
        p = Proteus(uniform_keys, bits_per_key=18, sample_queries=sample)
        ns = ProteusNS(uniform_keys, bits_per_key=18)
        fpr_p = sum(p.query_range(*q) for q in queries) / len(queries)
        fpr_ns = sum(ns.query_range(*q) for q in queries) / len(queries)
        assert fpr_p < 0.5 < fpr_ns

    def test_no_false_negatives_with_trie(self, uniform_keys):
        p = Proteus(uniform_keys, bits_per_key=18, design=(2, 32))
        assert_no_false_negatives(p, uniform_keys[:200])

    def test_trie_rejects_unseen_regions(self, uniform_keys):
        p = Proteus(uniform_keys, bits_per_key=18, design=(8, 64))
        # With a full-depth trie the structure is exact on ranges whose
        # truncation equals the keys.
        for q in uniform_range_queries(uniform_keys, 100, seed=8):
            assert not p.query_range(*q)

    def test_explicit_design_validated(self, uniform_keys):
        with pytest.raises(ValueError):
            Proteus(uniform_keys, design=(9, 32))
        with pytest.raises(ValueError):
            Proteus(uniform_keys, design=(0, 0))

    def test_wide_range_conservative(self, uniform_keys):
        p = ProteusNS(uniform_keys, bits_per_key=16, max_prefix_probes=2)
        assert p.query_range(0, (1 << 64) - 1)

    def test_probe_count(self, uniform_keys):
        p = Proteus(uniform_keys, bits_per_key=16, design=(2, 32))
        p.reset_counters()
        p.query_range(1, 50)
        assert p.probe_count >= 1
