"""Tests for the bench harness: registry, metrics, tables, and tiny runs
of every experiment driver."""

import numpy as np
import pytest

from repro.bench.experiments import (
    ExperimentConfig,
    fig3_build_time,
    fig3_workload_time,
    fig4_overall_time,
    fig5_fpr_range,
    fig7_point_queries,
    fig8_point_optimised,
    table1_summary,
    table4_independence,
)
from repro.bench.metrics import measure_fpr, run_filter, run_point_filter
from repro.bench.registry import FILTER_NAMES, build_filter
from repro.bench.tables import format_series, format_table
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import uniform_range_queries

TINY = ExperimentConfig(n_keys=600, n_queries=80, bpks=(12, 20))


@pytest.fixture(scope="module")
def keys():
    return generate_keys(600, "uniform", seed=50)


@pytest.fixture(scope="module")
def queries(keys):
    return uniform_range_queries(keys, 100, seed=51)


class TestRegistry:
    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_build_every_filter(self, keys, queries, name):
        filt = build_filter(name, keys, 16.0, sample_queries=queries[:20])
        assert filt.size_in_bits() > 0
        # One-sidedness holds for each registered filter.
        for k in keys[:30]:
            assert filt.query_range(int(k), int(k))

    def test_unknown_filter(self, keys):
        with pytest.raises(ValueError):
            build_filter("Magic", keys, 16.0)


class TestMetrics:
    def test_measure_fpr(self, keys, queries):
        filt = build_filter("REncoder", keys, 18.0)
        fpr = measure_fpr(filt, queries)
        assert 0.0 <= fpr <= 1.0

    def test_run_filter_fields(self, keys, queries):
        filt = build_filter("REncoder", keys, 18.0)
        run = run_filter(filt, queries, io_cost_ns=1_000_000)
        assert run.n_queries == len(queries)
        assert run.positives == round(run.fpr * run.n_queries)
        assert run.filter_kqps > 0
        assert run.overall_kqps <= run.filter_kqps
        assert run.bits_per_key == pytest.approx(18.0, abs=1.5)
        assert run.as_row()["filter"] == "REncoder"

    def test_run_point_filter(self, keys):
        filt = build_filter("REncoder", keys, 18.0)
        run = run_point_filter(filt, [(1, 1), (2, 2)])
        assert run.n_queries == 2

    def test_empty_queries_rejected(self, keys):
        filt = build_filter("REncoder", keys, 18.0)
        with pytest.raises(ValueError):
            run_filter(filt, [])


class TestTables:
    def test_format_table(self):
        text = format_table(
            [{"a": 1, "b": 0.123456}, {"a": 20, "b": 1e-5}], title="T"
        )
        assert "T" in text and "a" in text and "1e-05" in text.replace(
            "1.0e-05", "1e-05"
        )

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_format_series(self):
        text = format_series("bpk", [10, 20], {"f": [0.1, 0.2]})
        assert "bpk" in text and "f" in text

    def test_format_series_short_series(self):
        text = format_series("x", [1, 2], {"s": [0.5]})
        assert "nan" in text


class TestExperimentDrivers:
    def test_fig3_build(self):
        rows, text = fig3_build_time(TINY, n_keys_list=[300, 600])
        assert len(rows) == 2
        assert "Figure 3(a)" in text
        assert all(r["rencoder_ms"] > 0 for r in rows)

    def test_fig3_workload(self):
        rows, text = fig3_workload_time(TINY)
        assert len(rows) == len(TINY.bpks)
        # The headline claim — REncoder beats the Bloom baseline on range
        # workloads.  At this tiny test scale the lowest-BPK point is
        # noise-dominated, so assert at the top of the sweep (the full
        # benches check the whole curve).
        assert rows[-1]["speedup"] > 1

    def test_fig4_overall(self):
        rows, text = fig4_overall_time(TINY)
        assert {"bpk", "Bloom_s", "REncoder_s", "REncoderSS_s",
                "REncoderSE_s"} <= set(rows[0].keys())

    def test_fig5(self):
        results, text = fig5_fpr_range(TINY)
        assert set(results.keys()) >= {"REncoder", "Rosetta", "SuRF"}
        for runs in results.values():
            assert len(runs) == len(TINY.bpks)

    def test_fig7(self):
        results, text = fig7_point_queries(TINY)
        assert "Figure 7" in text

    def test_fig8(self):
        results, text = fig8_point_optimised(TINY)
        assert set(results.keys()) == {"Rosetta", "REncoder", "REncoderPO"}

    def test_table1(self):
        rows, text = table1_summary(TINY)
        cases = {r["use_case"] for r in rows}
        assert cases == {"A", "B", "C"}

    def test_table4(self):
        rows, text = table4_independence(TINY)
        patterns = {r["pattern"] for r in rows}
        assert {"(none)", "00", "01", "10", "11"} <= patterns
        for row in rows:
            assert row["p0"] + row["p1"] == pytest.approx(1.0)
