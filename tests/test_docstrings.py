"""Documentation gate: every public item in the library has a docstring.

The deliverable includes "doc comments on every public item"; this test
makes that a property of the codebase rather than a hope.  Public =
importable from a ``repro`` module and not underscore-prefixed.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_MODULES = {"repro.__main__"}


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in IGNORED_MODULES:
            continue
        yield importlib.import_module(info.name)


def test_all_modules_documented():
    undocumented = [
        mod.__name__ for mod in _public_modules() if not inspect.getdoc(mod)
    ]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_all_public_classes_and_functions_documented():
    missing = []
    for mod in _public_modules():
        for name, obj in vars(mod).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != mod.__name__:
                continue  # re-export; documented at its home
            if not inspect.getdoc(obj):
                missing.append(f"{mod.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_documented():
    missing = []
    for mod in _public_modules():
        for cls_name, cls in vars(mod).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != mod.__name__:
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_"):
                    continue
                func = meth.__func__ if isinstance(
                    meth, (classmethod, staticmethod)
                ) else meth
                if not inspect.isfunction(func):
                    continue
                if not inspect.getdoc(func):
                    missing.append(f"{mod.__name__}.{cls_name}.{meth_name}")
    assert not missing, f"undocumented public methods: {missing}"
