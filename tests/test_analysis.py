"""Tests for the Section IV analysis: Lemma 1, Theorems 2/5/6, Table II's
space solver and Table IV's independence measurement."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    a_limit,
    a_sequence,
    fpr_bound,
    fpr_bound_with_distance,
    required_levels,
    required_memory_bits,
    space_for_fpr,
)
from repro.analysis.independence import bits_of, independence_table
from repro.core.rencoder import REncoder
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import uniform_range_queries


class TestLemma1:
    def test_starts_at_one(self):
        assert a_sequence(0.3, 5)[0] == 1.0

    def test_recurrence(self):
        p = 0.4
        seq = a_sequence(p, 10)
        for a, nxt in zip(seq, seq[1:]):
            assert nxt == pytest.approx(2 * p * a - p * p * a * a)

    def test_case1_decay_below_half(self):
        # p < 1/2: a_n -> 0 exponentially.
        seq = a_sequence(0.3, 60)
        assert seq[-1] < 1e-9
        assert seq[-1] < seq[-2] < seq[-3]

    def test_case2_harmonic_at_half(self):
        # p = 1/2: a_n = Theta(1/n).
        seq = a_sequence(0.5, 200)
        assert 0.5 / 200 < seq[-1] < 20 / 200

    def test_case3_fixed_point_above_half(self):
        p = 0.7
        seq = a_sequence(p, 500)
        limit = a_limit(p)
        assert seq[-1] == pytest.approx(limit, abs=1e-6)
        # The fixed point solves a = 2pa - p^2 a^2.
        assert limit == pytest.approx(2 * p * limit - p * p * limit * limit)

    def test_limit_zero_below_half(self):
        assert a_limit(0.4) == 0.0

    @given(st.floats(min_value=0.01, max_value=0.99), st.integers(1, 100))
    @settings(max_examples=100)
    def test_probability_range(self, p, n):
        seq = a_sequence(p, n)
        assert all(0.0 <= a <= 1.0 for a in seq)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            a_sequence(0.0, 5)
        with pytest.raises(ValueError):
            a_sequence(0.5, 0)


class TestTheorem2:
    def test_bound_shrinks_with_levels(self):
        bounds = [fpr_bound(0.5, ls, 6, 2) for ls in range(6, 20)]
        assert all(b1 >= b2 for b1, b2 in zip(bounds, bounds[1:]))

    def test_bound_in_unit_interval(self):
        for p1 in (0.2, 0.5, 0.8):
            for k in (1, 2, 4):
                assert 0.0 <= fpr_bound(p1, 10, 6, k) <= 1.0

    def test_corollary3_more_levels_help(self):
        # Doubling stored levels at fixed k beats doubling k at fixed levels
        # when P1 is held at 0.5 (the paper's Corollary 3/4 comparison).
        more_levels = fpr_bound(0.5, 20, 6, 2)
        more_hashes = fpr_bound(0.5, 10, 6, 4)
        assert more_levels < more_hashes

    def test_invalid(self):
        with pytest.raises(ValueError):
            fpr_bound(0.5, 5, 6, 2)  # Ls < Lq
        with pytest.raises(ValueError):
            fpr_bound(0.5, 10, 6, 0)

    def test_empirical_fpr_within_bound_regime(self):
        # The measured FPR of a built REncoder should not exceed the
        # theoretical bound evaluated at its own (P1, Ls, Lq, k) by more
        # than noise.
        keys = generate_keys(1500, "uniform", seed=21)
        enc = REncoder(keys, bits_per_key=22, k=2, seed=21)
        queries = uniform_range_queries(keys, 800, min_size=32, max_size=32,
                                        seed=22)
        fpr = sum(enc.query_range(*q) for q in queries) / len(queries)
        ls = len(enc.stored_levels)
        bound = fpr_bound(max(enc.final_p1, 0.01), ls, 6, enc.rbf.k)
        assert fpr <= bound * 3 + 0.02


class TestTheorem6:
    def test_distance_zero_falls_back(self):
        assert fpr_bound_with_distance(0.5, 10, 6, 2, 0) == fpr_bound(
            0.5, 10, 6, 2
        )

    def test_small_distance_bound(self):
        # d <= Lq: bound is a_d^k.
        p = 0.5
        b = fpr_bound_with_distance(p, 10, 6, 2, 3)
        assert b == pytest.approx(a_sequence(p, 3)[-1] ** 2)

    def test_large_distance_replaces_ls(self):
        p = 0.5
        b = fpr_bound_with_distance(p, 20, 6, 2, 9)
        expected = (p ** (9 - 6) * a_sequence(p, 6)[-1]) ** 2
        assert b == pytest.approx(expected)

    def test_closer_ranges_have_larger_bound(self):
        bounds = [
            fpr_bound_with_distance(0.5, 20, 6, 2, d) for d in range(1, 12)
        ]
        assert all(b1 >= b2 for b1, b2 in zip(bounds, bounds[1:]))


class TestTheorem5:
    def test_required_levels_grow_with_accuracy(self):
        l1 = required_levels(0.5, 6, 2, 0.1)
        l2 = required_levels(0.5, 6, 2, 0.001)
        assert l2 > l1 >= 6

    def test_memory_linear_in_keys(self):
        m1 = required_memory_bits(1000, 0.5, 6, 2, 0.01)
        m2 = required_memory_bits(2000, 0.5, 6, 2, 0.01)
        assert m2 == pytest.approx(2 * m1)

    def test_memory_log_in_inverse_eps(self):
        # O(N log 1/eps): total space grows linearly in log(1/eps).  The
        # per-step increments are quantised (whole stored levels), so check
        # the slope over a wide range instead of step-to-step deltas.
        span_small = space_for_fpr(0.01) - space_for_fpr(0.5)
        span_large = space_for_fpr(0.0001) - space_for_fpr(0.01)
        # Equal decades of epsilon cost approximately equal space.
        assert span_large == pytest.approx(span_small, abs=8.0)
        assert span_small > 0

    def test_table2_shape(self):
        # Table II: tighter FPR targets need monotonically more space.
        bpks = [space_for_fpr(e) for e in (0.5, 0.25, 0.10, 0.05, 0.01)]
        assert all(a <= b for a, b in zip(bpks, bpks[1:]))
        assert 2.0 < bpks[0] < 40.0

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            required_levels(0.5, 6, 2, 1.5)


class TestIndependence:
    def test_bits_of_roundtrip(self):
        words = np.array([0b1011, 1 << 63], dtype=np.uint64)
        bits = bits_of(words)
        assert bits[:4].tolist() == [1, 1, 0, 1]
        assert bits[127] == 1
        assert bits.sum() == 4

    def test_uniform_random_bits_independent(self):
        rng = np.random.default_rng(5)
        words = rng.integers(0, 1 << 64, 4000, dtype=np.uint64)
        table = independence_table(words, context=2)
        p1 = table[""][1]
        assert p1 == pytest.approx(0.5, abs=0.01)
        for pattern in ("00", "01", "10", "11"):
            assert table[pattern][1] == pytest.approx(p1, abs=0.02)

    def test_built_rbf_near_independent(self):
        # Table IV: conditional probabilities in a built RBF stay within a
        # few points of the unconditional P1.
        keys = generate_keys(3000, "uniform", seed=31)
        enc = REncoder(keys, bits_per_key=18, seed=31)
        table = independence_table(enc.rbf._array[:-1], context=2)
        p1 = table[""][1]
        for pattern in ("00", "01", "10", "11"):
            assert abs(table[pattern][1] - p1) < 0.12

    def test_context_zero(self):
        words = np.array([0xF0F0F0F0F0F0F0F0], dtype=np.uint64)
        table = independence_table(words, context=0)
        assert table[""][1] == pytest.approx(0.5)

    def test_invalid_context(self):
        with pytest.raises(ValueError):
            independence_table(np.zeros(4, dtype=np.uint64), context=9)
