"""Legacy setup shim.

The environment has no network and no ``wheel`` package, so PEP 660
editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
classic ``setup.py develop`` path.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
