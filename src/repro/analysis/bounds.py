"""Error bounds and space analysis (Section IV of the paper).

Contents, mapped to the paper:

* :func:`a_sequence` — Lemma 1: ``a_1 = 1``,
  ``a_{n+1} = 2 p a_n − p² a_n²``, the probability that a doubting
  traversal finds a root-to-leaf path of ones in a mini-tree of height
  ``n`` when each bit is 1 independently with probability ``p``.
* :func:`a_limit` — Lemma 1's three regimes: exponential decay for
  ``p < 1/2``, ``Θ(1/n)`` for ``p = 1/2``, and the fixed point
  ``(2p − 1)/p²``… the paper states ``(2p−1)/p``; solving
  ``a = 2pa − p²a²`` for ``a ≠ 0`` gives ``a = (2p−1)/p²``, and the tests
  verify the iteration converges to this value (for p in (1/2, 1] it lies
  in [0, 1]).
* :func:`fpr_bound` — Theorem 2:
  ``P(false positive) ≤ (P1^{Ls−Lq} · a_{Lq})^k``.
* :func:`fpr_bound_with_distance` — Theorem 6: the refinement when the
  nearest stored key is at prefix-distance ``d`` from the queried range.
* :func:`required_levels` / :func:`required_memory_bits` — Theorem 5: the
  stored-level count and memory needed to push the bound below ``ε``,
  giving the ``O(N(k + log(1/ε)))`` asymptotic.
* :func:`space_for_fpr` — the solver used to regenerate Table II
  ("space cost of REncoder", bits per key for target FPRs).
"""

from __future__ import annotations

import math

__all__ = [
    "a_sequence",
    "a_limit",
    "fpr_bound",
    "fpr_bound_with_distance",
    "required_levels",
    "required_memory_bits",
    "space_for_fpr",
]


def _check_p(p: float) -> None:
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")


def a_sequence(p: float, n: int) -> list[float]:
    """``[a_1, …, a_n]`` from Lemma 1 for bit density ``p``.

    ``a_h`` is the probability that a mini-tree of height ``h`` whose bits
    are independently 1 with probability ``p`` contains a root-to-leaf path
    of ones (the root itself already being reached).
    """
    _check_p(p)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seq = [1.0]
    for _ in range(n - 1):
        a = seq[-1]
        seq.append(2 * p * a - p * p * a * a)
    return seq


def a_limit(p: float) -> float:
    """The limit of ``a_n`` (Lemma 1 case 3); 0 for ``p <= 1/2``."""
    _check_p(p)
    if p <= 0.5:
        return 0.0
    return (2 * p - 1) / (p * p)


def fpr_bound(p1: float, l_stored: int, l_query: int, k: int) -> float:
    """Theorem 2: upper bound on the false-positive probability.

    ``(P1^{Ls − Lq} · a_{Lq})^k`` — the query must first pass the
    ``Ls − Lq`` ancestor levels above the verification mini-tree (factor
    ``P1`` each) and then find a path through the height-``Lq`` mini-tree
    (factor ``a_{Lq}``); ``k`` independent hash functions raise the whole
    thing to the ``k``-th power.
    """
    _check_p(p1)
    if l_query < 1 or l_stored < l_query:
        raise ValueError(
            f"need 1 <= l_query <= l_stored, got Lq={l_query}, Ls={l_stored}"
        )
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    a = a_sequence(p1, l_query)[-1]
    return (p1 ** (l_stored - l_query) * a) ** k


def fpr_bound_with_distance(
    p1: float, l_stored: int, l_query: int, k: int, distance: int
) -> float:
    """Theorem 6: the bound refined by the range-to-key prefix distance.

    ``distance`` is ``d([a,b])`` — the minimum over range points ``x`` and
    keys ``y`` of the number of low bits that must be shifted away before
    ``x`` and ``y`` agree.  When ``d > 0``:

    * if ``Lq >= d``: bound is ``a_d^k`` (only the bottom ``d`` tree levels
      must be falsely set);
    * if ``Lq < d``: replace ``Ls`` with ``d`` in Theorem 2.
    """
    if distance <= 0:
        return fpr_bound(p1, l_stored, l_query, k)
    _check_p(p1)
    if l_query >= distance:
        a = a_sequence(p1, distance)[-1]
        return a**k
    a = a_sequence(p1, l_query)[-1]
    return (p1 ** (distance - l_query) * a) ** k


def required_levels(
    p1: float, l_query: int, k: int, epsilon: float
) -> int:
    """Theorem 5's inner inequality: smallest ``Ls`` with bound <= ε.

    ``Ls >= Lq − log(1/a_{Lq}) / log(1/P1) + log(1/ε) / (k·log(1/P1))``.
    """
    _check_p(p1)
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    a = a_sequence(p1, l_query)[-1]
    log_inv_p = math.log(1.0 / p1)
    ls = (
        l_query
        - math.log(1.0 / a) / log_inv_p
        + math.log(1.0 / epsilon) / (k * log_inv_p)
    )
    return max(l_query, math.ceil(ls))


def required_memory_bits(
    n_keys: int, p1: float, l_query: int, k: int, epsilon: float
) -> float:
    """Theorem 5: ``M ≈ k · Ls · N / P1`` bits for bound <= ε.

    Holding ``P1`` constant, each stored level costs about ``k·N`` set bits
    and the array must be ``1/P1`` times larger than its ones count.
    """
    if n_keys < 1:
        raise ValueError(f"n_keys must be positive, got {n_keys}")
    ls = required_levels(p1, l_query, k, epsilon)
    return k * ls * n_keys / p1


def space_for_fpr(
    epsilon: float,
    *,
    l_query: int = 6,
    k: int = 2,
    p1: float = 0.5,
    per_key: bool = True,
    n_keys: int = 1,
) -> float:
    """Bits (per key by default) REncoder needs for a target FPR.

    This is the solver behind Table II: with uniformly distributed 64-bit
    keys and queries of size up to 64 (``Lq = log2 64 = 6``), how many bits
    per key does each target FPR require?  ``per_key=False`` returns total
    bits for ``n_keys``.
    """
    bits = required_memory_bits(max(1, n_keys), p1, l_query, k, epsilon)
    return bits / max(1, n_keys) if per_key else bits
