"""Monte-Carlo validation of the Section IV analysis.

The paper's error bound rests on two reductions:

1. Lemma 1's recurrence ``a_{n+1} = 2 p a_n − p² a_n²`` equals the exact
   probability that a random binary tree of height ``n`` whose node bits
   are independently 1 with probability ``p`` contains a root-to-leaf
   all-ones path.
2. Theorem 2 composes that with the ``Ls − Lq`` ancestor levels above the
   verification mini-tree.

This module *simulates* both processes directly — random bit trees, and
random ancestor chains — so the closed forms can be checked against
sampled frequencies (the tests do exactly that), and exposes
:func:`simulated_fpr` for the notebook-style exploration of parameter
choices the paper's Corollaries make.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import a_sequence

__all__ = [
    "simulate_path_probability",
    "simulate_fpr",
    "compare_with_lemma1",
]


def simulate_path_probability(
    p: float, height: int, trials: int = 2000, seed: int = 0
) -> float:
    """Monte-Carlo estimate of ``a_height`` (Lemma 1).

    Samples complete binary trees of the given height with i.i.d.
    Bernoulli(p) node bits (the root is considered already reached,
    matching ``a_1 = 1``) and reports the fraction containing a root-to-
    leaf path of ones.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if height < 1:
        raise ValueError(f"height must be >= 1, got {height}")
    if height == 1:
        return 1.0
    rng = np.random.default_rng(seed)
    hits = 0
    n_leaves = 1 << (height - 1)
    for _ in range(trials):
        # reachable[i] = path of ones reaches node i of the current level.
        reachable = np.ones(1, dtype=bool)
        for level in range(1, height):
            bits = rng.random(1 << level) < p
            parents = np.repeat(reachable, 2)
            reachable = parents & bits
            if not reachable.any():
                break
        else:
            hits += 1
            continue
    return hits / trials


def simulate_fpr(
    p1: float,
    l_stored: int,
    l_query: int,
    k: int,
    trials: int = 2000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the Theorem 2 event.

    For each trial and each of the ``k`` hash functions independently:
    draw the ``Ls − Lq`` ancestor bits (each Bernoulli(P1)) and a random
    mini-tree of height ``Lq``; the hash function reports a false
    positive iff all ancestors are set and a path exists.  The overall
    event requires all ``k`` to report.
    """
    if l_query < 1 or l_stored < l_query:
        raise ValueError("need 1 <= l_query <= l_stored")
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(trials):
        all_report = True
        for _ in range(k):
            if l_stored > l_query:
                ancestors = rng.random(l_stored - l_query) < p1
                if not ancestors.all():
                    all_report = False
                    break
            reachable = np.ones(1, dtype=bool)
            found = True
            for level in range(1, l_query):
                bits = rng.random(1 << level) < p1
                reachable = np.repeat(reachable, 2) & bits
                if not reachable.any():
                    found = False
                    break
            if not found:
                all_report = False
                break
        hits += all_report
    return hits / trials


def compare_with_lemma1(
    p: float, heights=(2, 4, 6, 8), trials: int = 3000, seed: int = 0
) -> list[dict]:
    """Closed form vs simulation for a range of mini-tree heights."""
    rows = []
    for h in heights:
        rows.append(
            {
                "height": h,
                "a_closed_form": a_sequence(p, h)[-1],
                "a_simulated": simulate_path_probability(
                    p, h, trials=trials, seed=seed + h
                ),
            }
        )
    return rows
