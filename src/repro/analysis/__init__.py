"""Mathematical analysis from Section IV: the error-bound recurrence
(Lemma 1), the FPR bounds (Theorems 2 and 6), the space solver behind
Table II (Theorem 5), and the bit-independence test behind Table IV."""

from repro.analysis.bounds import (
    a_sequence,
    a_limit,
    fpr_bound,
    fpr_bound_with_distance,
    required_levels,
    required_memory_bits,
    space_for_fpr,
)
from repro.analysis.independence import independence_table
from repro.analysis.simulation import (
    compare_with_lemma1,
    simulate_fpr,
    simulate_path_probability,
)

__all__ = [
    "compare_with_lemma1",
    "simulate_fpr",
    "simulate_path_probability",
    "a_sequence",
    "a_limit",
    "fpr_bound",
    "fpr_bound_with_distance",
    "required_levels",
    "required_memory_bits",
    "space_for_fpr",
    "independence_table",
]
