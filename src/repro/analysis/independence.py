"""Bit-independence measurement (the paper's Table IV).

Assumption 4 of Section IV states that, when ``P1`` is not too small,
whether each bit of the Bloom filter is set can be treated as independent.
Table IV supports this empirically by comparing conditional bit
probabilities: the probability a bit is 1 given the values of its
neighbouring bits should match the unconditional ``P1``.

:func:`independence_table` reproduces that measurement on a built
:class:`~repro.core.rbf.RangeBloomFilter` (or any uint64 bit array): for
each conditioning pattern of the previous ``context`` bits it reports
``P(bit = 1 | pattern)``.  Independence predicts every column ≈ ``P1``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["independence_table", "bits_of"]


def bits_of(words: np.ndarray) -> np.ndarray:
    """Unpack a uint64 word array into a uint8 bit array (LSB first)."""
    as_bytes = words.astype("<u8").view(np.uint8)
    return np.unpackbits(as_bytes, bitorder="little")


def independence_table(
    array: np.ndarray, context: int = 2
) -> dict[str, dict[int, float]]:
    """Conditional bit probabilities given the previous ``context`` bits.

    Returns ``{pattern: {0: P(bit=0 | pattern), 1: P(bit=1 | pattern)}}``
    plus an unconditional ``""`` entry, mirroring the paper's Table IV
    (which conditions on patterns like ``10``, ``110`` of preceding bits).

    Parameters
    ----------
    array:
        uint64 words of a built filter (e.g. ``rbf._array``), or any
        0/1-valued uint8 array.
    context:
        How many preceding bits to condition on (1–4 are sensible).
    """
    if not 0 <= context <= 8:
        raise ValueError(f"context must be in [0, 8], got {context}")
    bits = array if array.dtype == np.uint8 else bits_of(array)
    if bits.size <= context:
        raise ValueError("array too small for the requested context")

    out: dict[str, dict[int, float]] = {}
    p1 = float(bits.mean())
    out[""] = {0: 1.0 - p1, 1: p1}
    if context == 0:
        return out

    # Value of the sliding window of `context` preceding bits at each site.
    window = np.zeros(bits.size - context, dtype=np.int32)
    for offset in range(context):
        # bit `offset` positions before the target, MSB = farthest back.
        window = (window << 1) | bits[offset : offset + window.size]
    target = bits[context:]
    for pattern in range(1 << context):
        mask = window == pattern
        count = int(mask.sum())
        label = format(pattern, f"0{context}b")
        if count == 0:
            out[label] = {0: float("nan"), 1: float("nan")}
            continue
        p = float(target[mask].mean())
        out[label] = {0: 1.0 - p, 1: p}
    return out
