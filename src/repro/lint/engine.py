"""AST lint engine: pluggable rules, pragmas, and a findings baseline.

The engine parses every ``.py`` file under the given paths once and
hands each :class:`FileContext` (source, AST, pragma table) to every
:class:`Rule` whose :meth:`Rule.applies_to` accepts the file.  Rules
yield :class:`Finding`\\ s; the engine then drops findings suppressed by
an inline pragma and splits the rest into *new* vs *baselined*.

Pragmas
-------
A finding on line *N* is suppressed when line *N* (or line *N-1*, for
statements too long to annotate inline) carries::

    # lint: allow[rule-name]
    # lint: allow[rule-a, rule-b]
    # lint: allow[*]

Baseline
--------
``Baseline`` is a checked-in JSON file of grandfathered findings.  A
baseline entry matches on ``(rule, path, message)`` — deliberately *not*
on line number, so unrelated edits above a grandfathered site don't
resurrect it — and each entry absorbs at most as many findings as its
recorded count.  ``python -m repro lint --update-baseline`` rewrites the
file from the current findings; the review norm is that the baseline
only ever shrinks.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["Finding", "FileContext", "Rule", "Baseline", "LintEngine", "load_source"]

#: ``# lint: allow[rule-a, rule-b]`` — anywhere on the line.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]*)\]")

#: Severity levels, in increasing order of interest.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file/line/column."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    severity: str = "error"

    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift, messages don't."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        """Render as ``path:line:col: severity: [rule] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}: [{self.rule}] {self.message}"
        )

    def as_dict(self) -> dict:
        """JSON-ready mapping of every field (``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }


class FileContext:
    """Everything a rule needs about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._pragmas = self._scan_pragmas()

    def _scan_pragmas(self) -> dict[int, frozenset[str]]:
        pragmas: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            if "lint:" not in line:
                continue
            m = _PRAGMA_RE.search(line)
            if m is not None:
                names = frozenset(
                    n.strip() for n in m.group(1).split(",") if n.strip()
                )
                pragmas[lineno] = names
        return pragmas

    def suppressed(self, line: int, rule: str) -> bool:
        """Is ``rule`` pragma-allowed on ``line`` (or the line above)?"""
        for candidate in (line, line - 1):
            names = self._pragmas.get(candidate)
            if names is not None and (rule in names or "*" in names):
                return True
        return False

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=rule.name,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=rule.severity,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` (kebab-case, the pragma key), optionally
    narrow :meth:`applies_to` (path scoping — ``path`` is repo-relative
    with posix separators), and implement :meth:`check`.
    """

    name: str = "abstract-rule"
    severity: str = "error"

    def applies_to(self, path: str) -> bool:
        """Whether the rule runs on ``path`` (repo-relative, posix)."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        """Yield findings for one parsed file."""
        raise NotImplementedError

    @staticmethod
    def path_has_segment(path: str, *segments: str) -> bool:
        """True when any of ``segments`` appears as ``/seg/`` in the
        ``/``-anchored path (so ``filters`` matches ``src/repro/filters/x.py``
        and ``tests/fixtures/lint/filters/x.py`` but not ``myfilters/``)."""
        anchored = "/" + path.replace("\\", "/")
        return any(f"/{seg}/" in anchored for seg in segments)


@dataclass
class Baseline:
    """Grandfathered findings, matched by fingerprint with counts."""

    counts: Counter = field(default_factory=Counter)
    path: "Path | None" = None

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        data = json.loads(path.read_text())
        counts: Counter = Counter()
        for entry in data.get("findings", []):
            key = (entry["rule"], entry["path"], entry["message"])
            counts[key] += int(entry.get("count", 1))
        return cls(counts=counts, path=path)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], path: "str | Path | None" = None
    ) -> "Baseline":
        """Build a baseline absorbing every finding in ``findings``."""
        counts: Counter = Counter()
        for f in findings:
            counts[f.fingerprint()] += 1
        return cls(counts=counts, path=Path(path) if path else None)

    def save(self, path: "str | Path | None" = None) -> Path:
        """Write sorted fingerprint counts as JSON; returns the path."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no baseline path given")
        entries = [
            {"rule": rule, "path": fpath, "message": message, "count": count}
            for (rule, fpath, message), count in sorted(self.counts.items())
        ]
        target.write_text(
            json.dumps({"version": 1, "findings": entries}, indent=2)
            + "\n"
        )
        return target

    def split(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, baselined).  Each baseline entry absorbs
        at most its recorded count of matching findings."""
        budget = Counter(self.counts)
        new: list[Finding] = []
        old: list[Finding] = []
        for f in findings:
            key = f.fingerprint()
            if budget[key] > 0:
                budget[key] -= 1
                old.append(f)
            else:
                new.append(f)
        return new, old

    def stale(
        self, findings: Iterable[Finding]
    ) -> list[tuple[tuple[str, str, str], int]]:
        """Baseline entries the current findings no longer (fully) match.

        The ratchet: a grandfathered finding that disappeared must take
        its baseline entry with it, so the baseline only ever shrinks.
        Returns ``(fingerprint, unmatched_count)`` pairs, sorted.
        """
        matched = Counter(f.fingerprint() for f in findings)
        out: list[tuple[tuple[str, str, str], int]] = []
        for key in sorted(self.counts):
            extra = self.counts[key] - matched.get(key, 0)
            if extra > 0:
                out.append((key, extra))
        return out


def load_source(path: "str | Path", rel: "str | None" = None) -> FileContext:
    """Parse one file into a :class:`FileContext`.

    ``rel`` overrides the path recorded on findings (used to present
    repo-relative posix paths regardless of how the file was reached).
    """
    p = Path(path)
    source = p.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(p))
    return FileContext(rel if rel is not None else p.as_posix(), source, tree)


class LintEngine:
    """Run a rule set over a file tree and reconcile with the baseline."""

    def __init__(
        self,
        rules: "Iterable[Rule]",
        root: "str | Path" = ".",
        baseline: "Baseline | None" = None,
    ) -> None:
        self.rules = list(rules)
        self.root = Path(root)
        self.baseline = baseline if baseline is not None else Baseline()
        #: Findings suppressed by pragma on the last :meth:`run`.
        self.suppressed: list[Finding] = []
        #: Files that failed to parse on the last :meth:`run`.
        self.errors: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # file discovery
    # ------------------------------------------------------------------
    _SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

    def iter_files(self, paths: "Iterable[str | Path] | None" = None) -> Iterator[Path]:
        """Yield ``*.py`` files under ``paths`` (default: the root),
        skipping cache/VCS directories, deduplicated."""
        targets = [Path(p) for p in paths] if paths else [self.root]
        seen: set[Path] = set()
        for target in targets:
            if not target.is_absolute():
                target = self.root / target
            if target.is_file() and target.suffix == ".py":
                candidates: Iterable[Path] = [target]
            else:
                candidates = sorted(target.rglob("*.py"))
            for f in candidates:
                if self._SKIP_DIRS.intersection(f.parts):
                    continue
                f = f.resolve()
                if f not in seen:
                    seen.add(f)
                    yield f

    def _relpath(self, path: Path) -> str:
        try:
            return path.relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(
        self, paths: "Iterable[str | Path] | None" = None
    ) -> list[Finding]:
        """Lint the tree; returns all unsuppressed findings, sorted.

        Pragma-suppressed findings land in :attr:`suppressed`, parse
        failures in :attr:`errors` (a broken file is reported, not
        fatal).  Baseline reconciliation is the caller's move — see
        :meth:`Baseline.split`.
        """
        findings: list[Finding] = []
        self.suppressed = []
        self.errors = []
        for file in self.iter_files(paths):
            rel = self._relpath(file)
            applicable = [r for r in self.rules if r.applies_to(rel)]
            if not applicable:
                continue
            try:
                ctx = load_source(file, rel=rel)
            except (SyntaxError, UnicodeDecodeError) as exc:
                self.errors.append((rel, str(exc)))
                continue
            for rule in applicable:
                for f in rule.check(ctx):
                    if ctx.suppressed(f.line, f.rule):
                        self.suppressed.append(f)
                    else:
                        findings.append(f)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings
