"""Project-specific lint rules (see DESIGN.md §10 for the catalog).

Every rule here encodes an invariant the reproduction's correctness
rests on but that no test can economically observe:

* ``wall-clock-in-simulated-path`` — latency math must use the
  simulated clock; wall clock is reserved for telemetry, the CLI and
  the bench harness.
* ``unseeded-rng`` — every RNG is explicitly seeded (or injected), so
  chaos/stress runs replay from their seed alone.
* ``one-sided-error`` — degraded/except paths in ``filters/``,
  ``service/`` and ``storage/`` must never answer negative (the paper's
  no-false-negative guarantee, PAPER.md §III).
* ``lock-discipline`` — classes that own a lock mutate their shared
  ``self._*`` state only while holding it.
* ``span-leak`` — every ``Tracer.start_span``/``attach`` in ``cluster/``
  and ``service/`` is closed on all paths; an unfinished span never
  reaches the trace store, so the leak shows up as a silently truncated
  trace, not an error.
* ``bare-except`` / ``mutable-default-arg`` — general hygiene.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.engine import FileContext, Finding, Rule

__all__ = [
    "WallClockRule",
    "UnseededRngRule",
    "OneSidedErrorRule",
    "LockDisciplineRule",
    "SpanLeakRule",
    "BareExceptRule",
    "MutableDefaultArgRule",
    "DEFAULT_RULES",
    "make_default_rules",
]


def _walk_with_parents(tree: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that first stamps a ``_lint_parent`` on every node."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]
        yield node


def _ancestors(node: ast.AST) -> Iterator[ast.AST]:
    cur = getattr(node, "_lint_parent", None)
    while cur is not None:
        yield cur
        cur = getattr(cur, "_lint_parent", None)


def _dotted(node: ast.AST) -> "str | None":
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class WallClockRule(Rule):
    """``time.time()``/``monotonic``/``perf_counter*`` outside telemetry.

    Latency and deadline math must run on the shared
    :class:`~repro.storage.env.SimulatedClock`; wall-clock reads are
    reserved for the measurement surface (``telemetry/``, ``cli.py``,
    ``benchmarks/`` and the ``bench/`` harness).  Intentional sites
    elsewhere carry ``# lint: allow[wall-clock-in-simulated-path]``.
    """

    name = "wall-clock-in-simulated-path"

    #: ``time`` module attributes that read the wall clock.
    WALL_ATTRS = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
        }
    )

    def __init__(self, allow: "tuple[str, ...] | None" = None) -> None:
        #: Path fragments where wall clock is legitimate.  Segments match
        #: as directories; entries with a dot match as file suffixes.
        self.allow = allow if allow is not None else (
            "telemetry",
            "benchmarks",
            "bench",
            "examples",
            "cli.py",
            # The kernels' bench harness hook is measurement code; the
            # kernels themselves stay on the simulated clock discipline.
            "kernels/bench.py",
        )

    def applies_to(self, path: str) -> bool:
        """Skip allowlisted dirs (segment match) and files (suffix)."""
        for entry in self.allow:
            if "." in entry:
                if path.endswith(entry):
                    return False
            elif self.path_has_segment(path, entry):
                return False
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag wall-clock reads (``time.time``/``monotonic*``/
        ``perf_counter*``) outside the allowlist."""
        # Names bound by ``from time import perf_counter`` etc.
        direct: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self.WALL_ATTRS:
                        direct.add(alias.asname or alias.name)
        for node in _walk_with_parents(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            called: "str | None" = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in self.WALL_ATTRS
            ):
                called = f"time.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in direct:
                called = f"time.{func.id}"
            if called is not None:
                yield ctx.finding(
                    self,
                    node,
                    f"{called}() reads the wall clock in a simulated "
                    f"path; use the StorageEnv SimulatedClock (wall "
                    f"clock is for telemetry/bench only)",
                )


class UnseededRngRule(Rule):
    """RNG construction or use without an explicit seed.

    Chaos, stress and bench runs must replay from their seed alone, so
    ``default_rng()`` / ``random.Random()`` need an explicit seed (or an
    injected generator) and the process-global ``random.*`` /
    ``np.random.*`` state is off limits everywhere.
    """

    name = "unseeded-rng"

    #: Module-level functions of ``random`` that touch the global RNG.
    GLOBAL_RANDOM = frozenset(
        {
            "random", "randint", "randrange", "randbytes", "uniform",
            "choice", "choices", "sample", "shuffle", "gauss", "normalvariate",
            "expovariate", "betavariate", "gammavariate", "lognormvariate",
            "paretovariate", "weibullvariate", "vonmisesvariate", "triangular",
            "getrandbits", "seed",
        }
    )

    #: Legacy ``np.random`` global-state functions.
    GLOBAL_NUMPY = frozenset(
        {
            "rand", "randn", "randint", "random", "random_sample", "ranf",
            "choice", "shuffle", "permutation", "uniform", "normal", "seed",
            "sample", "bytes", "standard_normal", "exponential", "zipf",
        }
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag seedless RNG construction and module-global draws."""
        # Track aliases: ``from numpy.random import default_rng`` and
        # ``from random import Random`` bind bare names.
        rng_ctors: set[str] = set()
        random_ctors: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in ("numpy.random", "np.random"):
                    for alias in node.names:
                        if alias.name == "default_rng":
                            rng_ctors.add(alias.asname or alias.name)
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name in ("Random", "SystemRandom"):
                            random_ctors.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            unseeded = not node.args and not any(
                kw.arg in ("seed", "x") for kw in node.keywords
            )
            if (
                dotted in ("np.random.default_rng", "numpy.random.default_rng")
                or dotted in rng_ctors
            ):
                if unseeded:
                    yield ctx.finding(
                        self,
                        node,
                        "default_rng() without an explicit seed; pass a "
                        "seed (or inject a Generator) so runs replay "
                        "deterministically",
                    )
            elif dotted in ("random.Random",) or dotted in random_ctors:
                if unseeded:
                    yield ctx.finding(
                        self,
                        node,
                        "random.Random() without an explicit seed; pass a "
                        "seed so runs replay deterministically",
                    )
            elif dotted.startswith("random.") and (
                dotted.removeprefix("random.") in self.GLOBAL_RANDOM
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{dotted}() uses the process-global RNG; use an "
                    f"explicitly seeded random.Random / injected generator",
                )
            elif (
                dotted.startswith(("np.random.", "numpy.random."))
                and dotted.rsplit(".", 1)[1] in self.GLOBAL_NUMPY
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{dotted}() uses numpy's global RNG state; use "
                    f"np.random.default_rng(seed)",
                )


class OneSidedErrorRule(Rule):
    """Negative answers reachable from except/degraded paths.

    The paper's guarantee is one-sided error: a filter may answer a
    false positive, never a false negative.  Any ``return False`` (or
    all-negative batch) inside an ``except`` handler or a
    degraded-branch ``if`` within ``filters/``, ``service/``,
    ``storage/``, ``cluster/`` or ``durability/`` silently converts an
    outage into a wrong answer.
    """

    name = "one-sided-error"

    SCOPES = ("filters", "service", "storage", "cluster", "durability")

    def applies_to(self, path: str) -> bool:
        """Only guarantee-bearing trees (see ``SCOPES``)."""
        return self.path_has_segment(path, *self.SCOPES)

    @staticmethod
    def _is_negative(value: "ast.expr | None") -> bool:
        """``False``, ``[False, ...]``, or ``[False] * n``."""
        if value is None:
            return False
        if isinstance(value, ast.Constant) and value.value is False:
            return True
        if isinstance(value, ast.List) and value.elts:
            return all(
                isinstance(e, ast.Constant) and e.value is False
                for e in value.elts
            )
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult):
            for side in (value.left, value.right):
                if OneSidedErrorRule._is_negative(side):
                    return True
        return False

    @staticmethod
    def _mentions_degraded(test: ast.expr) -> bool:
        for node in ast.walk(test):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is not None and "degraded" in name.lower():
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag negative returns reachable from except/degraded paths."""
        for node in _walk_with_parents(ctx.tree):
            if not isinstance(node, ast.Return):
                continue
            if not self._is_negative(node.value):
                continue
            for anc in _ancestors(node):
                if isinstance(anc, ast.ExceptHandler):
                    origin = "an except handler"
                elif isinstance(anc, ast.If) and self._mentions_degraded(
                    anc.test
                ):
                    origin = "a degraded branch"
                elif isinstance(
                    anc, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    break  # stop at the enclosing function
                else:
                    continue
                yield ctx.finding(
                    self,
                    node,
                    f"returns a negative answer from {origin}; degraded "
                    f"paths must answer all-positive (one-sided error, "
                    f"PAPER.md §III)",
                )
                break


class LockDisciplineRule(Rule):
    """Unprotected writes to shared state of lock-owning classes.

    A class that creates a ``threading.Lock``/``RLock``/``Condition``
    attribute is declaring its ``self._*`` state shared.  Writes to that
    state outside ``__init__``/``__post_init__`` must happen inside a
    ``with self.<lock>`` block (any of the class's locks counts — lock
    *assignment* is this rule's job, lock *choice* is the sanitizer's).

    Helper methods that run with the lock already held declare it in
    their docstring — any method whose docstring contains ``lock held``
    is exempt (the project convention, e.g. ``CircuitBreaker._trip``);
    one-off sites carry a ``# lint: allow[lock-discipline]`` pragma.
    """

    name = "lock-discipline"

    _LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                             "BoundedSemaphore"})
    _INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

    def _lock_attrs(self, cls: ast.ClassDef) -> set[str]:
        """Attribute names holding a threading lock in ``cls``."""
        locks: set[str] = set()
        for node in ast.walk(cls):
            # self._lock = threading.Lock()
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                dotted = _dotted(node.value.func)
                if dotted and dotted.split(".")[-1] in self._LOCK_CTORS:
                    for tgt in node.targets:
                        if (
                            isinstance(tgt, ast.Attribute)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id == "self"
                        ):
                            locks.add(tgt.attr)
            # dataclass: _lock: threading.Lock = field(default_factory=threading.Lock)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                ann = _dotted(node.annotation) or (
                    node.annotation.value
                    if isinstance(node.annotation, ast.Constant)
                    else ""
                )
                if any(c in str(ann) for c in self._LOCK_CTORS):
                    locks.add(node.target.id)
        return locks

    @staticmethod
    def _self_attr_target(node: ast.AST) -> "str | None":
        """``_x`` for a store to ``self._x`` / ``self._x[...]``, else None."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr.startswith("_")
        ):
            return node.attr
        return None

    @staticmethod
    def _with_holds_lock(anc: ast.With, lock_attrs: set[str]) -> bool:
        for item in anc.items:
            expr = item.context_expr
            # with self._lock:  /  with self._cond:  /  with self._lock.something()
            if isinstance(expr, ast.Call):
                expr = expr.func
            while isinstance(expr, ast.Attribute):
                if (
                    isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in lock_attrs
                ):
                    return True
                expr = expr.value
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag ``self._x`` writes outside ``with self._lock`` in
        lock-owning classes (helpers documented "lock held" exempt)."""
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            lock_attrs = self._lock_attrs(cls)
            if not lock_attrs:
                continue
            for meth in cls.body:
                if not isinstance(
                    meth, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if meth.name in self._INIT_METHODS:
                    continue
                doc = ast.get_docstring(meth)
                if doc is not None and "lock held" in doc.lower():
                    continue  # declared called-with-lock-held helper
                yield from self._check_method(ctx, cls, meth, lock_attrs)

    def _check_method(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        meth: ast.FunctionDef,
        lock_attrs: set[str],
    ) -> Iterable[Finding]:
        for node in _walk_with_parents(meth):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                attr = self._self_attr_target(tgt)
                if attr is None or attr in lock_attrs:
                    continue
                protected = any(
                    isinstance(anc, ast.With)
                    and self._with_holds_lock(anc, lock_attrs)
                    for anc in _ancestors(node)
                )
                if not protected:
                    yield ctx.finding(
                        self,
                        node,
                        f"{cls.name}.{meth.name} writes shared attribute "
                        f"self.{attr} outside a 'with self.<lock>' block "
                        f"({cls.name} owns "
                        f"{', '.join(sorted(lock_attrs))})",
                    )


class SpanLeakRule(Rule):
    """``Tracer.start_span``/``attach`` results that are never closed.

    ``start_span`` hands back a span the caller now *owns*: it must be
    finished on every path — ``tracer.finish(span)``, handed to a
    callback or container whose consumer finishes it, or returned so
    the caller takes over.  A span that simply falls off the end of a
    function is never stamped and never reaches the trace store, so the
    leak surfaces as a silently truncated trace rather than an error.
    ``Tracer.attach`` is a context manager; calling it outside a
    ``with`` block builds the generator and never attaches (or pops),
    so child spans land under the wrong parent.

    Scoped to ``cluster/`` and ``service/`` — the trees where spans
    cross threads and replicas and the ``with tracer.span(...)`` idiom
    is not always available.  Cross-function lifecycles this local
    analysis cannot prove (a span parked on a request object, finished
    by whoever drains the queue) are flagged and carried in the
    baseline, or pragma'd where the hand-off is the design.
    """

    name = "span-leak"

    SCOPES = ("cluster", "service")

    def applies_to(self, path: str) -> bool:
        """Only the span-handoff-heavy trees (see ``SCOPES``)."""
        return self.path_has_segment(path, *self.SCOPES)

    @staticmethod
    def _is_tracer(recv: ast.expr) -> bool:
        """Receiver looks like a Tracer — ``tracer``, ``self._tracer``
        or ``get_tracer()`` — so e.g. ``FederatedRegistry.attach`` and
        other same-named methods stay out of scope."""
        if isinstance(recv, ast.Call):
            dotted = _dotted(recv.func)
            return (
                dotted is not None
                and dotted.split(".")[-1] == "get_tracer"
            )
        dotted = _dotted(recv)
        return (
            dotted is not None
            and "tracer" in dotted.split(".")[-1].lower()
        )

    @staticmethod
    def _escapes(scope: ast.AST, binder: ast.AST, name: str) -> bool:
        """Does local ``name`` leave ``scope`` after ``binder`` binds it?

        Escape means ownership moved somewhere this analysis cannot
        follow — passed as a call argument (``tracer.finish(span)``,
        a done-callback factory), stored to an attribute/subscript,
        returned or yielded.  ``span.set(...)`` method calls are *not*
        escapes: the span is the receiver there, not an argument.
        """
        for node in ast.walk(scope):
            if node is binder:
                continue
            values: list[ast.expr] = []
            if isinstance(node, ast.Call):
                values = list(node.args) + [
                    kw.value for kw in node.keywords
                ]
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    values = [node.value]
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if node.value is not None:
                    values = [node.value]
            for value in values:
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag leaked ``start_span`` results and non-``with`` ``attach``."""
        for node in _walk_with_parents(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if not self._is_tracer(func.value):
                continue
            if func.attr == "attach":
                yield from self._check_attach(ctx, node)
            elif func.attr == "start_span":
                yield from self._check_start_span(ctx, node)

    def _check_attach(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterable[Finding]:
        parent = getattr(node, "_lint_parent", None)
        if isinstance(parent, ast.withitem):
            return
        yield ctx.finding(
            self,
            node,
            "Tracer.attach() outside a 'with' block never attaches (or "
            "detaches) the span; use 'with tracer.attach(span):'",
        )

    def _check_start_span(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterable[Finding]:
        parent = getattr(node, "_lint_parent", None)
        if isinstance(parent, ast.Expr):
            yield ctx.finding(
                self,
                node,
                "start_span() result discarded — the span can never be "
                "finished; use 'with tracer.span(...)' or bind and "
                "finish it on every path",
            )
            return
        if not isinstance(parent, ast.Assign) or len(parent.targets) != 1:
            # Returned / passed straight to another call: ownership
            # moves with the value; the consumer is accountable.
            return
        target = parent.targets[0]
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            where = _dotted(target) or "a container"
            yield ctx.finding(
                self,
                node,
                f"start_span() result parked on {where}; the finish is "
                f"a cross-function lifecycle this rule cannot prove — "
                f"close it on every path, or carry the site in the "
                f"baseline/pragma if the hand-off is the design",
            )
            return
        if not isinstance(target, ast.Name):
            return
        scope: ast.AST = next(
            (
                a
                for a in _ancestors(parent)
                if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
            ),
            ctx.tree,
        )
        if self._escapes(scope, parent, target.id):
            return
        owner = getattr(scope, "name", "<module>")
        yield ctx.finding(
            self,
            node,
            f"span '{target.id}' from start_span() is never finished, "
            f"stored or returned on any path in {owner}; every path "
            f"must reach tracer.finish() or hand the span off",
        )


class BareExceptRule(Rule):
    """``except:`` — and overbroad ``except Exception`` that swallows.

    A bare except (or a swallowed ``Exception``/``BaseException``)
    converts unknown failures into silent behaviour changes — in this
    codebase typically a silent FPR regression rather than a crash.
    Narrow to the typed errors in ``core/errors.py``; genuinely
    intentional broad catches (e.g. user-supplied telemetry callbacks)
    carry a ``# lint: allow[bare-except]`` pragma.
    """

    name = "bare-except"

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag bare ``except:`` and non-reraising broad handlers."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare 'except:' — catch the typed errors from "
                    "core/errors.py instead",
                )
                continue
            names = []
            types = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for t in types:
                dotted = _dotted(t)
                if dotted is not None:
                    names.append(dotted.split(".")[-1])
            if (
                any(n in ("Exception", "BaseException") for n in names)
                and not self._reraises(node)
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"'except {' | '.join(names)}' swallows unknown "
                    f"failures — narrow to the typed errors from "
                    f"core/errors.py or re-raise",
                )


class MutableDefaultArgRule(Rule):
    """Mutable default argument values (shared across calls)."""

    name = "mutable-default-arg"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict",
                                "deque", "Counter", "OrderedDict"})

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted and dotted.split(".")[-1] in self._MUTABLE_CALLS:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag mutable literal / constructor-call default arguments."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"mutable default argument in {node.name}(); "
                        f"use None and construct inside the function",
                    )


def make_default_rules() -> list[Rule]:
    """A fresh instance of every project rule."""
    return [
        WallClockRule(),
        UnseededRngRule(),
        OneSidedErrorRule(),
        LockDisciplineRule(),
        SpanLeakRule(),
        BareExceptRule(),
        MutableDefaultArgRule(),
    ]


#: Shared default rule set (rules are stateless; reuse is safe).
DEFAULT_RULES: list[Rule] = make_default_rules()
