"""Interprocedural contract analyses over the project call graph.

Three whole-program passes, plus a dead-code pass, run on top of the
:class:`~repro.lint.callgraph.CallGraph` (DESIGN.md §15):

1. **One-sided-error taint** (``interproc-one-sided``) — a fixpoint
   classifies every function by *may-return-negative* (returns ``False``
   / ``[False] * n`` on some path, or returns the result of a tainted
   callee).  A violation is a ``return <call>()`` inside an ``except``
   handler or degraded branch, in a guarantee-bearing scope, reachable
   from a query entry point, whose callee is tainted: the degraded path
   launders a possibly-negative answer across a call boundary.  (The
   file-local rule already catches literal ``return False`` there.)

2. **Deadline propagation** (``interproc-deadline``) — every blocking
   ``StorageEnv`` I/O call (the clock-charging reads: ``read``,
   ``read_with_retry``, ``get_blob``, ``get_blob_with_retry``) reachable
   from a ``FilterService`` submit-rooted path must sit under a
   ``deadline_scope`` somewhere on every call chain, or take the
   simulated clock itself.  Call edges lexically inside ``with
   ...deadline_scope(...)`` are *protecting*; the pass flags charging
   I/O in functions reachable without crossing one.

3. **Static lock-order graph** (``interproc-lock-order``) — ``with
   self._lock`` nesting, propagated along call edges (a call made while
   holding L contributes L → every lock the callee may transitively
   acquire), keyed by lock *creation site* ``path:line`` — the same node
   identity the runtime :class:`~repro.lint.sanitizer.LockOrderWatcher`
   reports — then unioned with ``SANITIZER_REPORT.json``.  Any cycle in
   the union fails the run: a deadlock on a schedule the runtime
   sanitizer may never have executed.

4. **Dead code** (``dead-code``) — functions in ``src/repro/`` with no
   call-graph edge *and* no name mention anywhere in the project
   (sources, tests, benchmarks, examples, scripts, identifier-shaped
   string constants).  Dunders, ``__all__`` exports and dynamically
   dispatched ``prefix_*`` methods are exempt; everything else —
   including public methods nothing references — is a candidate.

Findings carry the same fingerprints as file-local rules and flow
through the existing baseline; ``# lint: allow[rule]`` pragmas apply.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .callgraph import CallGraph, CallSite, FuncNode
from .engine import Finding, Rule

__all__ = [
    "InterprocAnalyzer",
    "RULE_DEADLINE",
    "RULE_DEAD_CODE",
    "RULE_LOCK_ORDER",
    "RULE_ONE_SIDED",
    "load_runtime_report",
]

RULE_ONE_SIDED = "interproc-one-sided"
RULE_DEADLINE = "interproc-deadline"
RULE_LOCK_ORDER = "interproc-lock-order"
RULE_DEAD_CODE = "dead-code"

#: Guarantee-bearing path segments (mirrors the file-local rule).
SCOPES = ("filters", "service", "storage", "cluster", "durability")

#: ``StorageEnv`` methods that charge the simulated clock (block).
IO_METHODS = frozenset(
    {"read", "read_with_retry", "get_blob", "get_blob_with_retry"}
)

#: Query-entry name shapes: the public answer-bearing surface.
_QUERY_PREFIXES = ("query", "submit")
_QUERY_NAMES = frozenset(
    {"get", "range_query", "range_query_many", "might_contain"}
)

#: Service internals that serve submitted requests (the admission queue
#: breaks the static call chain between ``submit`` and the worker).
_SERVICE_INTERNAL_ROOTS = frozenset({"_worker_loop"})


def load_runtime_report(path: "str | Path") -> "dict | None":
    """Load a ``SANITIZER_REPORT.json`` if present and well-formed."""
    p = Path(path)
    if not p.exists():
        return None
    try:
        data = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def _in_scope(path: str) -> bool:
    return Rule.path_has_segment(path, *SCOPES)


class InterprocAnalyzer:
    """Run the whole-program passes; yields :class:`Finding` objects."""

    def __init__(
        self,
        graph: CallGraph,
        runtime_report: "dict | None" = None,
    ) -> None:
        self.graph = graph
        self.runtime_report = runtime_report

    # ------------------------------------------------------------------
    # roots
    # ------------------------------------------------------------------
    def query_roots(self) -> list[str]:
        """Answer-bearing entry points in guarantee scopes."""
        roots = []
        for fn in self.graph.functions.values():
            if not _in_scope(fn.path):
                continue
            if (
                fn.name.startswith(_QUERY_PREFIXES)
                or fn.name in _QUERY_NAMES
                or fn.name in _SERVICE_INTERNAL_ROOTS
            ):
                roots.append(fn.qname)
        return sorted(roots)

    def submit_roots(self) -> list[str]:
        """``FilterService.submit``-rooted surface: submit/query methods
        of ``*Service`` classes plus the worker loop that serves them."""
        roots = []
        for fn in self.graph.functions.values():
            if not Rule.path_has_segment(fn.path, "service"):
                continue
            cls = self.graph.classes.get(fn.cls) if fn.cls else None
            if cls is None or "Service" not in cls.name:
                continue
            if (
                fn.name.startswith(_QUERY_PREFIXES)
                or fn.name in _SERVICE_INTERNAL_ROOTS
            ):
                roots.append(fn.qname)
        return sorted(roots)

    # ------------------------------------------------------------------
    # pass 1: one-sided-error taint
    # ------------------------------------------------------------------
    def may_return_negative(self) -> set[str]:
        """Fixpoint: functions that can return a negative answer."""
        tainted = {
            fn.qname
            for fn in self.graph.functions.values()
            if any(r.negative_const for r in fn.returns)
        }
        changed = True
        while changed:
            changed = False
            for fn in self.graph.functions.values():
                if fn.qname in tainted:
                    continue
                for r in fn.returns:
                    if any(c in tainted for c in r.call_callees):
                        tainted.add(fn.qname)
                        changed = True
                        break
        return tainted

    def one_sided(self) -> list[Finding]:
        """Pass 1: interprocedural one-sided-error taint.

        Flags functions on query-reachable paths that *launder* a
        possibly-negative callee result through an except/degraded
        handler — the cross-module generalisation of the file-local
        ``negative-return-in-except`` rule."""
        tainted = self.may_return_negative()
        reachable = self.graph.reachable(self.query_roots())
        findings: list[Finding] = []
        for fn in self.graph.functions.values():
            if not _in_scope(fn.path) or fn.qname not in reachable:
                continue
            for r in fn.returns:
                if not (r.in_except or r.in_degraded):
                    continue
                if r.negative_const:
                    continue  # the file-local rule owns literal returns
                laundering = sorted(c for c in r.call_callees if c in tainted)
                if not laundering:
                    continue
                culprit = laundering[0]
                where = "except handler" if r.in_except else "degraded branch"
                findings.append(
                    Finding(
                        rule=RULE_ONE_SIDED,
                        path=fn.path,
                        line=r.line,
                        col=1,
                        message=(
                            f"{fn.name}() returns {r.call_dotted}() from an "
                            f"{where}; {culprit} may answer negative — "
                            "degraded paths must resolve all-positive "
                            "(one-sided error)"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------------
    # pass 2: deadline propagation
    # ------------------------------------------------------------------
    @staticmethod
    def _io_method(call: CallSite) -> "str | None":
        """The blocking ``StorageEnv`` method a call site invokes, if any."""
        for callee in call.callees:
            parts = callee.split(".")
            if parts[-1] in IO_METHODS and "StorageEnv" in parts:
                return parts[-1]
        if call.dotted is not None:
            parts = call.dotted.split(".")
            # Unresolved receiver: trust the repo idiom that ``env`` /
            # ``self.env`` / ``...lsm.env`` names a StorageEnv.
            if parts[-1] in IO_METHODS and "env" in parts[:-1]:
                return parts[-1]
        return None

    def unprotected_reachable(self, roots: Iterable[str]) -> set[str]:
        """Functions reachable from ``roots`` without ever crossing a
        call edge that sits inside a ``with ...deadline_scope(...)``."""
        seen: set[str] = set()
        queue = [r for r in roots if r in self.graph.functions]
        while queue:
            q = queue.pop()
            if q in seen:
                continue
            seen.add(q)
            for call in self.graph.functions[q].calls:
                if call.protected:
                    continue
                queue.extend(c for c in call.callees if c not in seen)
        return seen

    def deadline(self) -> list[Finding]:
        """Pass 2: deadline/clock propagation.

        Every blocking :class:`StorageEnv` I/O reachable from a
        ``FilterService`` submit root must sit under a ``deadline_scope``
        somewhere on the call chain, or take the simulated clock."""
        exposed = self.unprotected_reachable(self.submit_roots())
        findings: list[Finding] = []
        for qname in sorted(exposed):
            fn = self.graph.functions[qname]
            if fn.clock_params:
                continue  # takes the simulated clock: enforces its own deadline
            for call in fn.calls:
                if call.protected:
                    continue
                io = self._io_method(call)
                if io is None:
                    continue
                findings.append(
                    Finding(
                        rule=RULE_DEADLINE,
                        path=fn.path,
                        line=call.line,
                        col=1,
                        message=(
                            f"blocking StorageEnv.{io}() in {fn.name}() is "
                            "reachable from FilterService.submit with no "
                            "deadline_scope on the call chain; wrap the "
                            "chain in env.deadline_scope(...) or pass the "
                            "simulated clock"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------------
    # pass 3: lock-order graph
    # ------------------------------------------------------------------
    def may_acquire(self) -> dict[str, set[str]]:
        """Fixpoint: lock creation sites each function may acquire,
        directly or through any callee."""
        acq: dict[str, set[str]] = {
            fn.qname: {a.lock for a in fn.acquires}
            for fn in self.graph.functions.values()
        }
        changed = True
        while changed:
            changed = False
            for fn in self.graph.functions.values():
                mine = acq[fn.qname]
                before = len(mine)
                for call in fn.calls:
                    for callee in call.callees:
                        mine |= acq.get(callee, set())
                if len(mine) != before:
                    changed = True
        return acq

    def static_lock_edges(self) -> dict[tuple[str, str], int]:
        """``held → acquired`` edges from lexical nesting plus calls made
        while holding a lock.  Self-edges are dropped: re-acquiring the
        same creation site is assumed reentrant (the repo uses RLocks
        for every self-nested lock; the runtime watcher agrees)."""
        acq = self.may_acquire()
        edges: dict[tuple[str, str], int] = {}
        for fn in self.graph.functions.values():
            for a in fn.acquires:
                for held in a.locks_held:
                    if held != a.lock:
                        key = (held, a.lock)
                        edges[key] = edges.get(key, 0) + 1
            for call in fn.calls:
                if not call.locks_held:
                    continue
                inner: set[str] = set()
                for callee in call.callees:
                    inner |= acq.get(callee, set())
                for held in call.locks_held:
                    for lock in inner:
                        if held != lock:
                            key = (held, lock)
                            edges[key] = edges.get(key, 0) + 1
        return edges

    def _static_sites(self) -> dict[str, list[str]]:
        """path → static lock creation sites in that file."""
        by_path: dict[str, list[str]] = {}
        for cls in self.graph.classes.values():
            for site in cls.lock_attrs.values():
                path = site.rsplit(":", 1)[0]
                if site not in by_path.setdefault(path, []):
                    by_path[path].append(site)
        return by_path

    def _runtime_sites(self) -> dict[str, list[str]]:
        """path → distinct runtime creation sites seen in the report."""
        by_path: dict[str, list[str]] = {}
        if not self.runtime_report:
            return by_path
        for entry in self.runtime_report.get("edges", []):
            for site in (str(entry.get("held", "")), str(entry.get("acquired", ""))):
                if not site:
                    continue
                path = site.rsplit(":", 1)[0]
                if site not in by_path.setdefault(path, []):
                    by_path[path].append(site)
        return by_path

    def _map_runtime_site(self, site: str) -> str:
        """Map a runtime creation site onto the static node space.

        Exact ``path:line`` match wins; otherwise, when the file has
        exactly one static creation site AND the report names exactly
        one runtime site in that file, line drift (the committed report
        predating an edit) is forgiven and the runtime node is remapped
        onto the static one.  Requiring uniqueness on *both* sides
        matters: a file with two runtime locks but one static site would
        otherwise collapse two distinct locks into one node, hiding any
        ordering between them.  Anything else stays a foreign node — it
        can extend the graph but never aliases a static lock.
        """
        by_path = self._static_sites()
        path, _, _line = site.rpartition(":")
        sites = by_path.get(path, [])
        if site in sites:
            return site
        if len(sites) == 1 and len(self._runtime_sites().get(path, [])) == 1:
            return sites[0]
        return site

    def runtime_lock_edges(self) -> dict[tuple[str, str], int]:
        """Lock-order edges observed by the runtime sanitizer, with
        creation sites mapped onto the static node space."""
        edges: dict[tuple[str, str], int] = {}
        if not self.runtime_report:
            return edges
        for entry in self.runtime_report.get("edges", []):
            held = self._map_runtime_site(str(entry.get("held", "")))
            acquired = self._map_runtime_site(str(entry.get("acquired", "")))
            if not held or not acquired or held == acquired:
                continue
            key = (held, acquired)
            edges[key] = edges.get(key, 0) + int(entry.get("count", 1))
        return edges

    @staticmethod
    def _cycles(edges: Iterable[tuple[str, str]]) -> list[list[str]]:
        """Strongly connected components with more than one node
        (iterative Tarjan; deterministic, sorted output)."""
        succ: dict[str, list[str]] = {}
        nodes: set[str] = set()
        for held, acquired in edges:
            succ.setdefault(held, []).append(acquired)
            nodes.update((held, acquired))
        for targets in succ.values():
            targets.sort()
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        sccs: list[list[str]] = []
        for start in sorted(nodes):
            if start in index:
                continue
            work: list[tuple[str, int]] = [(start, 0)]
            while work:
                node, child = work[-1]
                if child == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                targets = succ.get(node, [])
                while child < len(targets):
                    nxt = targets[child]
                    child += 1
                    if nxt not in index:
                        work[-1] = (node, child)
                        work.append((nxt, 0))
                        recurse = True
                        break
                    if nxt in on_stack:
                        lowlink[node] = min(lowlink[node], index[nxt])
                if recurse:
                    continue
                work[-1] = (node, child)
                if lowlink[node] == index[node]:
                    comp: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1:
                        sccs.append(sorted(comp))
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return sorted(sccs)

    def lock_order(self) -> list[Finding]:
        """Pass 3: cycles in the *union* of the static lock-order graph
        and the runtime sanitizer graph — each view catches orderings
        the other cannot (dynamic dispatch vs. untested interleavings)."""
        static = self.static_lock_edges()
        runtime = self.runtime_lock_edges()
        union = set(static) | set(runtime)
        findings: list[Finding] = []
        for cycle in self._cycles(union):
            first = cycle[0]
            path, _, line = first.rpartition(":")
            findings.append(
                Finding(
                    rule=RULE_LOCK_ORDER,
                    path=path or first,
                    line=int(line) if line.isdigit() else 1,
                    col=1,
                    message=(
                        "lock-order cycle in the static ∪ runtime graph "
                        f"(potential deadlock): {' -> '.join(cycle)} -> "
                        f"{cycle[0]}"
                    ),
                )
            )
        return findings

    def lock_graph_dict(self) -> dict:
        """JSON-ready union lock graph (the ``--graph`` artifact)."""
        static = self.static_lock_edges()
        runtime = self.runtime_lock_edges()
        union: dict[tuple[str, str], str] = {}
        for key in static:
            union[key] = "static"
        for key in runtime:
            union[key] = "both" if key in union else "runtime"
        nodes = sorted({n for key in union for n in key})
        return {
            "version": 1,
            "nodes": nodes,
            "edges": [
                {
                    "held": held,
                    "acquired": acquired,
                    "provenance": provenance,
                    "static_count": static.get((held, acquired), 0),
                    "runtime_count": runtime.get((held, acquired), 0),
                }
                for (held, acquired), provenance in sorted(union.items())
            ],
            "cycles": self._cycles(union),
        }

    # ------------------------------------------------------------------
    # pass 4: dead code
    # ------------------------------------------------------------------
    def dead_code(self) -> list[Finding]:
        """Pass 4: functions in ``src/repro`` with no caller edge, no
        textual mention anywhere (tests, benches, docs strings-as-names,
        ``__all__``), and no dynamic-dispatch prefix match."""
        callers = self.graph.callers_of()
        findings: list[Finding] = []
        for qname in sorted(self.graph.functions):
            fn = self.graph.functions[qname]
            if not fn.path.startswith("src/repro"):
                continue
            if fn.is_dunder:
                continue
            mod = self.graph.modules.get(fn.module)
            if mod is not None and fn.name in mod.exported:
                continue
            if qname in callers:
                continue
            if fn.name in self.graph.mentions:
                continue
            if any(
                fn.name.startswith(prefix)
                for prefix in self.graph.dynamic_prefixes
            ):
                continue  # dynamic getattr(self, f"prefix_{...}") dispatch
            findings.append(
                Finding(
                    rule=RULE_DEAD_CODE,
                    path=fn.path,
                    line=fn.line,
                    col=1,
                    message=(
                        f"{qname} is unreachable from any entry point "
                        "(CLI, tests, benches, public API) — delete it or "
                        "baseline with justification"
                    ),
                    severity="warning",
                )
            )
        return findings

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> list[Finding]:
        """All four passes, pragma-filtered, sorted like the engine."""
        findings = (
            self.one_sided()
            + self.deadline()
            + self.lock_order()
            + self.dead_code()
        )
        kept = [
            f
            for f in findings
            if not self.graph.suppressed(f.path, f.line, f.rule)
        ]
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return kept
