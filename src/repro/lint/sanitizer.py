"""Runtime concurrency sanitizer: lock-order and long-hold watching.

:class:`LockOrderWatcher` wraps ``threading.Lock`` / ``threading.RLock``
(and, through them, the locks inside ``threading.Condition``) in a
recording proxy.  While installed it maintains:

* the **lock-order graph** — a directed edge *A → B* whenever a thread
  that holds the lock created at site *A* attempts the lock created at
  site *B*.  A cycle in this graph is a potential deadlock even if the
  schedule that would actually deadlock never ran — exactly the class of
  bug the stress suites cannot reliably reproduce.
* **hold statistics** per site — count, total and max wall-clock hold
  time, from which :meth:`long_holds` reports outliers.

Locks are identified by their *creation site* (``file:line``), so every
``AdmissionQueue`` instance maps to one node and the graph stays small
and readable.  Edges are recorded at *acquire-attempt* time, before
blocking, so a schedule that truly deadlocks still leaves its cycle in
the report.

Two usage modes:

* ``watcher.install()`` (or ``with watcher:``) monkeypatches the
  ``threading`` constructors so every lock created while installed is
  watched — this is what ``REPRO_SANITIZE=1`` turns on for the chaos
  and stress suites (see ``tests/conftest.py``).
* ``watcher.wrap(raw_lock(), name="A")`` watches one explicit lock —
  used by targeted tests (e.g. the AB/BA order test) without touching
  global state.

The proxy forwards the private ``_release_save`` / ``_acquire_restore``
/ ``_is_owned`` trio when the inner lock has it, so
``threading.Condition`` wait/notify works unchanged on watched locks
(and hold bookkeeping stays correct across ``Condition.wait``, which
releases the lock while blocked).

The watcher measures real hold durations, so it reads the wall clock by
design — it is diagnostics, not simulated-latency math.
"""

from __future__ import annotations

import _thread
import json
import os
import threading
import time
from typing import Any

__all__ = ["LockOrderWatcher", "raw_lock", "raw_rlock", "DEFAULT_REPORT_PATH"]

#: Where :meth:`LockOrderWatcher.dump` writes without an explicit path
#: (overridable via ``REPRO_SANITIZE_REPORT``).
DEFAULT_REPORT_PATH = "SANITIZER_REPORT.json"

#: Holds longer than this (wall ns) are reported as outliers.
DEFAULT_LONG_HOLD_NS = 100_000_000

# The unwrapped primitives, captured at import so they stay available
# while the ``threading`` names are patched.
_RAW_LOCK = _thread.allocate_lock
_RAW_RLOCK = _thread.RLock


def raw_lock() -> Any:
    """An unwatched ``Lock``, even while a watcher is installed."""
    return _RAW_LOCK()


def raw_rlock() -> Any:
    """An unwatched ``RLock``, even while a watcher is installed."""
    return _RAW_RLOCK()


class _WatchedLock:
    """Recording proxy around one lock (see module docs)."""

    __slots__ = (
        "_inner",
        "_site",
        "_watcher",
        "_release_save",
        "_acquire_restore",
        "_is_owned",
    )

    def __init__(self, inner: Any, site: str, watcher: "LockOrderWatcher") -> None:
        self._inner = inner
        self._site = site
        self._watcher = watcher
        # Condition() duck-types on these three; bind them only when the
        # inner lock has them (RLock) so hasattr() stays truthful and
        # plain Locks keep Condition's release()/acquire() fallback.
        if hasattr(inner, "_release_save"):
            self._release_save = self._do_release_save
            self._acquire_restore = self._do_acquire_restore
            self._is_owned = inner._is_owned

    # -- the recorded operations --------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        watcher, site = self._watcher, self._site
        reentrant = watcher._held_count(self) > 0
        if not reentrant:
            watcher._on_attempt(site)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            watcher._on_acquired(self)
        return ok

    def release(self) -> None:
        self._watcher._on_released(self)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- Condition support (RLock inner only; bound in __init__) ------
    def _do_release_save(self) -> Any:
        # Condition.wait releases the lock however many times it was
        # taken; drop our whole hold record for it.
        self._watcher._on_released(self, full=True)
        return self._inner._release_save()

    def _do_acquire_restore(self, state: Any) -> None:
        self._inner._acquire_restore(state)
        self._watcher._on_acquired(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_WatchedLock({self._site}, {self._inner!r})"


class _ThreadState(threading.local):
    """Per-thread stack of held watched locks."""

    def __init__(self) -> None:
        # Each entry: [lock_id, site, t0_ns, recursion_count]
        self.stack: list[list] = []


class LockOrderWatcher:
    """Record the lock-acquisition graph; detect cycles and long holds."""

    def __init__(
        self,
        *,
        long_hold_ns: int = DEFAULT_LONG_HOLD_NS,
    ) -> None:
        self.long_hold_ns = long_hold_ns
        self.acquisitions = 0
        self._edges: dict[tuple[str, str], int] = {}
        self._holds: dict[str, dict[str, int]] = {}
        self._sites: set[str] = set()
        self._meta = _RAW_LOCK()  # never watched, never in the graph
        self._tls = _ThreadState()
        self._installed = False
        self._saved: "tuple[Any, Any] | None" = None

    # ------------------------------------------------------------------
    # wrapping
    # ------------------------------------------------------------------
    def wrap(self, lock: Any, name: "str | None" = None) -> _WatchedLock:
        """Watch one explicit lock; ``name`` overrides the site label."""
        site = name if name is not None else self._creation_site()
        with self._meta:
            self._sites.add(site)
        return _WatchedLock(lock, site, self)

    def install(self) -> "LockOrderWatcher":
        """Patch ``threading.Lock``/``RLock`` so new locks are watched.

        Locks created *before* installation stay unwatched; the chaos
        and stress fixtures therefore install the watcher before
        building the service stack.  Idempotent.
        """
        if self._installed:
            return self
        self._saved = (threading.Lock, threading.RLock)
        watcher = self

        def make_lock() -> Any:
            return watcher.wrap(_RAW_LOCK())

        def make_rlock() -> Any:
            return watcher.wrap(_RAW_RLOCK())

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the original constructors (idempotent)."""
        if not self._installed:
            return
        assert self._saved is not None
        threading.Lock, threading.RLock = self._saved  # type: ignore[misc]
        self._saved = None
        self._installed = False

    def __enter__(self) -> "LockOrderWatcher":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    @staticmethod
    def _creation_site() -> str:
        """``file:line`` of the frame that created the lock, skipping
        this module and the ``threading`` internals."""
        import sys

        skip = (__file__, threading.__file__)
        frame = sys._getframe(1)
        while frame is not None and frame.f_code.co_filename in skip:
            frame = frame.f_back
        if frame is None:  # pragma: no cover - interpreter internals
            return "<unknown>"
        filename = frame.f_code.co_filename
        cwd = os.getcwd() + os.sep
        if filename.startswith(cwd):
            filename = filename[len(cwd):]
        return f"{filename.replace(os.sep, '/')}:{frame.f_lineno}"

    # ------------------------------------------------------------------
    # recording (called from the proxies)
    # ------------------------------------------------------------------
    def _held_count(self, lock: _WatchedLock) -> int:
        lid = id(lock)
        for entry in self._tls.stack:
            if entry[0] == lid:
                return entry[3]
        return 0

    def _on_attempt(self, site: str) -> None:
        """First (non-reentrant) acquire attempt: record order edges."""
        stack = self._tls.stack
        if not stack:
            return
        with self._meta:
            for entry in stack:
                held_site = entry[1]
                if held_site != site:
                    key = (held_site, site)
                    self._edges[key] = self._edges.get(key, 0) + 1

    def _on_acquired(self, lock: _WatchedLock) -> None:
        lid = id(lock)
        stack = self._tls.stack
        for entry in stack:
            if entry[0] == lid:
                entry[3] += 1  # reentrant re-acquire
                return
        stack.append([lid, lock._site, time.monotonic_ns(), 1])  # lint: allow[wall-clock-in-simulated-path]
        with self._meta:
            self.acquisitions += 1
            self._sites.add(lock._site)

    def _on_released(self, lock: _WatchedLock, full: bool = False) -> None:
        lid = id(lock)
        stack = self._tls.stack
        for i in range(len(stack) - 1, -1, -1):
            entry = stack[i]
            if entry[0] != lid:
                continue
            entry[3] -= 1 if not full else entry[3]
            if entry[3] > 0:
                return
            del stack[i]
            held_ns = time.monotonic_ns() - entry[2]  # lint: allow[wall-clock-in-simulated-path]
            with self._meta:
                h = self._holds.setdefault(
                    entry[1], {"count": 0, "total_ns": 0, "max_ns": 0}
                )
                h["count"] += 1
                h["total_ns"] += held_ns
                if held_ns > h["max_ns"]:
                    h["max_ns"] = held_ns
            return
        # Release of a lock acquired before the watcher saw it (or
        # handed across threads) — nothing to unwind.

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def edges(self) -> dict[tuple[str, str], int]:
        """The lock-order graph as ``(held, acquired) -> count``."""
        with self._meta:
            return dict(self._edges)

    def cycles(self) -> list[list[str]]:
        """Potential deadlocks: strongly connected components of the
        order graph with more than one node (plus self-loops).  Each
        cycle is a sorted list of creation sites."""
        adj: dict[str, set[str]] = {}
        with self._meta:
            for (a, b) in self._edges:
                adj.setdefault(a, set()).add(b)
                adj.setdefault(b, set())
        # Tarjan's SCC, iteratively.
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list[str]] = []

        for root in adj:
            if root in index:
                continue
            work: list[tuple[str, "iter | None"]] = [(root, None)]
            while work:
                node, it = work.pop()
                if it is None:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                    it = iter(adj[node])
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        work.append((node, it))
                        work.append((nxt, None))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1 or node in adj.get(node, ()):  # cycle
                        sccs.append(sorted(comp))
                if work and low[node] < low[work[-1][0]]:
                    low[work[-1][0]] = low[node]
        return sorted(sccs)

    def long_holds(self) -> list[dict]:
        """Sites whose longest hold exceeded the threshold, worst first."""
        with self._meta:
            rows = [
                {"site": site, **stats}
                for site, stats in self._holds.items()
                if stats["max_ns"] > self.long_hold_ns
            ]
        rows.sort(key=lambda r: -r["max_ns"])
        return rows

    def report(self) -> dict:
        """The full sanitizer report (what :meth:`dump` writes)."""
        with self._meta:
            edges = [
                {"held": a, "acquired": b, "count": n}
                for (a, b), n in sorted(self._edges.items())
            ]
            holds = {
                site: dict(stats) for site, stats in sorted(self._holds.items())
            }
            sites = sorted(self._sites)
            acquisitions = self.acquisitions
        return {
            "version": 1,
            "acquisitions": acquisitions,
            "locks_watched": len(sites),
            "sites": sites,
            "edges": edges,
            "cycles": self.cycles(),
            "long_hold_threshold_ns": self.long_hold_ns,
            "long_holds": self.long_holds(),
            "holds": holds,
        }

    def dump(self, path: "str | None" = None) -> str:
        """Write the report artifact as JSON; returns the path."""
        if path is None:
            path = os.environ.get("REPRO_SANITIZE_REPORT", DEFAULT_REPORT_PATH)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.report(), fh, indent=2, sort_keys=False)
            fh.write("\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LockOrderWatcher(sites={len(self._sites)}, "
            f"edges={len(self._edges)}, installed={self._installed})"
        )
