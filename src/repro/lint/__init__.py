"""Project lint engine, whole-program analyzer and concurrency sanitizer.

Three guardrails for invariants the test suite cannot see:

* :mod:`repro.lint.engine` + :mod:`repro.lint.rules` — an AST-based
  lint engine with project-specific rules (wall-clock usage in
  simulated paths, unseeded RNGs, negative answers on degraded paths,
  lock discipline, leaked tracer spans, bare excepts, mutable default
  args), a checked-in
  baseline for grandfathered findings and ``# lint: allow[rule]``
  pragmas for intentional exceptions.  Run via ``python -m repro lint``
  or ``make lint``.
* :mod:`repro.lint.callgraph` + :mod:`repro.lint.interproc` — a
  project-wide call graph and the interprocedural passes on top of it:
  one-sided-error taint, deadline propagation, the static lock-order
  graph unioned with the runtime sanitizer report, and a dead-code
  pass.  Run via ``python -m repro lint --interproc`` (gate) and
  ``--graph`` (JSON artifacts); DESIGN.md §15 documents the lattices
  and soundness caveats.
* :mod:`repro.lint.sanitizer` — a runtime lock-order watcher that wraps
  ``threading.Lock``/``RLock`` under ``REPRO_SANITIZE=1``, records the
  per-thread lock-acquisition graph, and reports potential deadlocks
  (cycles) and long-hold outliers.  Wired into the chaos and stress
  suites; ``make sanitize-stress`` runs them sanitized.

DESIGN.md §10 documents the file-local engine and the sanitizer.
"""

from repro.lint.callgraph import CallGraph, build_call_graph
from repro.lint.engine import (
    Baseline,
    Finding,
    LintEngine,
    Rule,
    load_source,
)
from repro.lint.interproc import InterprocAnalyzer, load_runtime_report
from repro.lint.rules import DEFAULT_RULES, make_default_rules
from repro.lint.sanitizer import LockOrderWatcher, raw_lock, raw_rlock

__all__ = [
    "Baseline",
    "CallGraph",
    "DEFAULT_RULES",
    "Finding",
    "InterprocAnalyzer",
    "LintEngine",
    "LockOrderWatcher",
    "Rule",
    "build_call_graph",
    "load_runtime_report",
    "load_source",
    "make_default_rules",
    "raw_lock",
    "raw_rlock",
]
