"""Project-wide call-graph construction for the interprocedural passes.

The file-local rules in :mod:`repro.lint.rules` see one AST at a time;
the whole-program analyses in :mod:`repro.lint.interproc` need to follow
an answer across function and module boundaries.  This module builds
that substrate:

* **Module map** — every ``*.py`` under the analysis roots is parsed
  once and given a dotted module name (``src/repro/storage/env.py`` →
  ``repro.storage.env``), so imports resolve by name.
* **Symbol resolution** — ``import``/``from .. import`` aliases, module
  functions and classes become a per-module symbol table; dotted
  references resolve through it.
* **Class hierarchy** — base classes resolve to known classes, giving an
  MRO approximation (the class, then its bases breadth-first) plus a
  subclass map for virtual-dispatch over-approximation: ``self.m()``
  resolves to the static target *and* every subclass override.
* **Type inference** — deliberately shallow, tuned to this codebase's
  idiom: constructor calls (``x = Foo()``), annotated parameters
  (``lsm: LSMTree``), annotated/assigned instance attributes (incl.
  dataclass fields with string annotations like ``"SimulatedClock |
  None"``), chained attribute access (``self.lsm.env.stats``).
* **Call/return sites with context** — every call and return records
  whether it sits inside an ``except`` handler, a degraded branch, a
  ``with ...deadline_scope(...)`` block, and which locks are lexically
  held (resolved to *creation sites*, ``path:line`` — the same node
  identity the runtime :class:`~repro.lint.sanitizer.LockOrderWatcher`
  reports, so the static and runtime lock graphs union directly).

Soundness caveats (what the graph over/under-approximates) are
documented in DESIGN.md §15.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Same pragma grammar as :class:`repro.lint.engine.FileContext`.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]*)\]")

__all__ = [
    "AcquireSite",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FuncNode",
    "ModuleInfo",
    "ReturnSite",
    "build_call_graph",
]

#: Directories never parsed (mirrors :class:`~repro.lint.engine.LintEngine`).
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

#: ``threading`` constructors that create a lock-like object.
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Annotation leaves that never name a project class.
_TYPE_NOISE = frozenset(
    {
        "None", "Optional", "Union", "Any", "int", "float", "str", "bool",
        "bytes", "list", "dict", "set", "tuple", "frozenset", "object",
        "List", "Dict", "Set", "Tuple", "Iterable", "Iterator", "Callable",
        "Sequence", "Mapping",
    }
)

#: Attribute-chain depth bound for receiver-type inference.
_MAX_CHAIN = 6


def _dotted(node: ast.AST) -> "str | None":
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mentions_degraded(test: ast.expr) -> bool:
    """Same degraded-branch heuristic the file-local rule uses."""
    for node in ast.walk(test):
        name: "str | None" = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and "degraded" in name.lower():
            return True
    return False


def _is_negative(value: "ast.expr | None") -> bool:
    """``False``, ``[False, ...]``, or ``[False] * n`` (a negative answer)."""
    if value is None:
        return False
    if isinstance(value, ast.Constant) and value.value is False:
        return True
    if isinstance(value, ast.List) and value.elts:
        return all(
            isinstance(e, ast.Constant) and e.value is False
            for e in value.elts
        )
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult):
        return _is_negative(value.left) or _is_negative(value.right)
    return False


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body, with its context."""

    callees: tuple[str, ...]  # resolved target qnames (may be several)
    dotted: "str | None"  # textual ``a.b.c`` of the callee expression
    line: int
    in_except: bool
    in_degraded: bool
    protected: bool  # lexically inside ``with ...deadline_scope(...)``
    locks_held: tuple[str, ...]  # lock creation sites held at the call


@dataclass(frozen=True)
class ReturnSite:
    """One ``return`` statement, with its context and value shape."""

    line: int
    negative_const: bool  # returns False / [False]*n literally
    call_callees: tuple[str, ...]  # resolved targets when value is a call
    call_dotted: "str | None"
    in_except: bool
    in_degraded: bool


@dataclass(frozen=True)
class AcquireSite:
    """One lexical ``with self.<lock>`` acquisition."""

    lock: str  # creation-site id ``path:line``
    line: int
    locks_held: tuple[str, ...]  # locks already held at the attempt


@dataclass
class FuncNode:
    """One function or method in the graph."""

    qname: str  # ``module.Class.method`` / ``module.func``
    module: str
    cls: "str | None"  # owning class qname, if a method
    name: str
    path: str  # repo-relative posix
    line: int
    calls: list[CallSite] = field(default_factory=list)
    returns: list[ReturnSite] = field(default_factory=list)
    acquires: list[AcquireSite] = field(default_factory=list)
    #: Parameter names annotated with the simulated clock type.
    clock_params: tuple[str, ...] = ()
    #: Textual ``-> X`` return annotation (resolved lazily to a class).
    return_ann: "str | None" = None

    @property
    def is_dunder(self) -> bool:
        return self.name.startswith("__") and self.name.endswith("__")


@dataclass
class ClassInfo:
    """One class: bases, methods, attribute types, lock creation sites."""

    qname: str
    name: str
    module: str
    path: str
    line: int
    base_dotted: list[str] = field(default_factory=list)
    bases: list[str] = field(default_factory=list)  # resolved qnames
    methods: dict[str, FuncNode] = field(default_factory=dict)
    #: attr name → annotation/ctor expression (resolved lazily to qnames).
    attr_exprs: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attr name → lock creation site ``path:line``.
    lock_attrs: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module: tree, symbols, pragma table."""

    name: str
    path: str  # repo-relative posix
    tree: ast.Module
    lines: list[str]
    is_package: bool = False  # an ``__init__.py``
    #: local name → ("module"|"class"|"func"|"obj", qualified name)
    symbols: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, FuncNode] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    exported: set[str] = field(default_factory=set)  # ``__all__`` strings


class CallGraph:
    """The whole-program graph (see module docstring).

    Build with :func:`build_call_graph`.  The public surface the
    analyses consume: :attr:`functions` (qname → :class:`FuncNode`),
    :attr:`classes`, :meth:`callers_of` / forward edges via
    ``FuncNode.calls``, :meth:`reachable`, :attr:`mentions` (every
    identifier mentioned anywhere, for the dead-code pass) and
    :meth:`to_dict` for the JSON artifact.
    """

    def __init__(self, root: Path) -> None:
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FuncNode] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.subclasses: dict[str, set[str]] = {}
        #: Identifier-ish strings mentioned anywhere in the parsed trees
        #: (Name ids, Attribute attrs, identifier string constants) —
        #: the liveness evidence for the dead-code pass.
        self.mentions: set[str] = set()
        #: Leading literal fragments of f-strings (``f"_act_{kind}"`` →
        #: ``"_act_"``): dynamic-dispatch evidence — any function whose
        #: name starts with one of these counts as mentioned.
        self.dynamic_prefixes: set[str] = set()
        self._callers: "dict[str, set[str]] | None" = None

    # ------------------------------------------------------------------
    # discovery & parsing
    # ------------------------------------------------------------------
    def _module_name(self, rel: str) -> str:
        parts = Path(rel).with_suffix("").parts
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) if parts else rel

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def _iter_files(self, paths: Iterable[Path]) -> Iterator[Path]:
        seen: set[Path] = set()
        for target in paths:
            if not target.is_absolute():
                target = self.root / target
            candidates: Iterable[Path]
            if target.is_file() and target.suffix == ".py":
                candidates = [target]
            elif target.is_dir():
                candidates = sorted(target.rglob("*.py"))
            else:
                continue
            for f in candidates:
                if _SKIP_DIRS.intersection(f.parts):
                    continue
                f = f.resolve()
                if f not in seen:
                    seen.add(f)
                    yield f

    def parse(
        self,
        paths: Iterable[Path],
        ref_paths: "Iterable[Path] | None" = None,
    ) -> None:
        """Parse analysis modules (``paths``) and, optionally, extra
        reference-only trees (``ref_paths`` — tests, benches, scripts)
        that feed :attr:`mentions` but contribute no graph nodes."""
        for f in self._iter_files(paths):
            rel = self._relpath(f)
            try:
                source = f.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(f))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue
            name = self._module_name(rel)
            self.modules[name] = ModuleInfo(
                name=name,
                path=rel,
                tree=tree,
                lines=source.splitlines(),
                is_package=f.name == "__init__.py",
            )
            self._collect_mentions(tree)
        for f in self._iter_files(ref_paths or ()):
            try:
                tree = ast.parse(f.read_text(encoding="utf-8"), filename=str(f))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue
            self._collect_mentions(tree)

    def _collect_mentions(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                self.mentions.add(node.id)
            elif isinstance(node, ast.Attribute):
                self.mentions.add(node.attr)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                # ``from m import f`` references ``f`` without a Name node.
                for alias in node.names:
                    self.mentions.update(alias.name.split("."))
                    if alias.asname:
                        self.mentions.add(alias.asname)
            elif isinstance(node, ast.JoinedStr):
                if (
                    node.values
                    and isinstance(node.values[0], ast.Constant)
                    and isinstance(node.values[0].value, str)
                ):
                    head = node.values[0].value
                    if head and (head[0].isalpha() or head[0] == "_"):
                        self.dynamic_prefixes.add(head)
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value.isidentifier()
            ):
                self.mentions.add(node.value)

    # ------------------------------------------------------------------
    # pass 1: declarations
    # ------------------------------------------------------------------
    def declare(self) -> None:
        """Collect imports, functions, classes and attribute shapes."""
        for mod in self.modules.values():
            self._declare_module(mod)
        self._resolve_symbols()
        self._resolve_hierarchy()
        self._resolve_attr_types()

    def _declare_module(self, mod: ModuleInfo) -> None:
        for node in mod.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._declare_import(mod, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FuncNode(
                    qname=f"{mod.name}.{node.name}",
                    module=mod.name,
                    cls=None,
                    name=node.name,
                    path=mod.path,
                    line=node.lineno,
                    return_ann=(
                        self._annotation_text(node.returns)
                        if node.returns is not None
                        else None
                    ),
                )
                mod.functions[node.name] = fn
                self.functions[fn.qname] = fn
            elif isinstance(node, ast.ClassDef):
                self._declare_class(mod, node)
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and tgt.id == "__all__":
                        for el in ast.walk(node.value):
                            if isinstance(el, ast.Constant) and isinstance(
                                el.value, str
                            ):
                                mod.exported.add(el.value)

    def _declare_import(
        self, mod: ModuleInfo, node: "ast.Import | ast.ImportFrom"
    ) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mod.symbols[bound] = ("obj", target)
        else:
            if node.level:
                # ``from .x import y``: level 1 is the containing package
                # (the module itself for an ``__init__.py``), each extra
                # level climbs one package higher.
                pkg = mod.name.split(".")
                if not mod.is_package:
                    pkg = pkg[:-1]
                drop = node.level - 1
                if drop:
                    pkg = pkg[:-drop] if drop < len(pkg) else []
                base = ".".join(pkg + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                mod.symbols[bound] = ("obj", target)

    def _declare_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            qname=f"{mod.name}.{node.name}",
            name=node.name,
            module=mod.name,
            path=mod.path,
            line=node.lineno,
            base_dotted=[d for b in node.bases if (d := _dotted(b))],
        )
        mod.classes[node.name] = cls
        self.classes[cls.qname] = cls
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FuncNode(
                    qname=f"{cls.qname}.{item.name}",
                    module=mod.name,
                    cls=cls.qname,
                    name=item.name,
                    path=mod.path,
                    line=item.lineno,
                    return_ann=(
                        self._annotation_text(item.returns)
                        if item.returns is not None
                        else None
                    ),
                )
                cls.methods[item.name] = fn
                self.functions[fn.qname] = fn
                self._scan_self_assigns(mod, cls, item)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                # Dataclass-style field: ``clock: "SimulatedClock | None"``.
                ann = self._annotation_text(item.annotation)
                if ann:
                    cls.attr_exprs.setdefault(item.target.id, ann)
                if item.value is not None:
                    self._maybe_lock_field(cls, item.target.id, item.value)

    def _maybe_lock_field(
        self, cls: ClassInfo, attr: str, value: ast.expr
    ) -> None:
        """``field(default_factory=threading.Lock)`` creation sites."""
        for node in ast.walk(value):
            dotted = _dotted(node) if isinstance(
                node, (ast.Name, ast.Attribute)
            ) else None
            if dotted and dotted.split(".")[-1] in _LOCK_CTORS:
                cls.lock_attrs.setdefault(
                    attr, f"{cls.path}:{getattr(value, 'lineno', cls.line)}"
                )
                return

    def _scan_self_assigns(
        self, mod: ModuleInfo, cls: ClassInfo, meth: ast.FunctionDef
    ) -> None:
        """Harvest ``self.x = ...`` attribute shapes from a method body."""
        params = self._param_annotations(meth)
        for node in ast.walk(meth):
            target: "ast.expr | None" = None
            value: "ast.expr | None" = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    ann = self._annotation_text(node.annotation)
                    if ann:
                        cls.attr_exprs.setdefault(target.attr, ann)
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            if isinstance(value, ast.Call):
                dotted = _dotted(value.func)
                if dotted is not None:
                    if dotted.split(".")[-1] in _LOCK_CTORS:
                        cls.lock_attrs.setdefault(
                            attr, f"{cls.path}:{value.lineno}"
                        )
                    else:
                        cls.attr_exprs.setdefault(attr, dotted)
            elif isinstance(value, ast.Name) and value.id in params:
                cls.attr_exprs.setdefault(attr, params[value.id])

    @staticmethod
    def _param_annotations(fn: ast.FunctionDef) -> dict[str, str]:
        """Parameter name → annotation text for one function."""
        out: dict[str, str] = {}
        args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs
        )
        for a in args:
            if a.annotation is None:
                continue
            text = CallGraph._annotation_text(a.annotation)
            if text:
                out[a.arg] = text
        return out

    @staticmethod
    def _annotation_text(ann: ast.expr) -> "str | None":
        """A resolvable text form of an annotation expression."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            return ann.value
        d = _dotted(ann)
        if d is not None:
            return d
        try:
            return ast.unparse(ann)
        except (ValueError, RecursionError):  # pragma: no cover
            return None

    # ------------------------------------------------------------------
    # symbol / hierarchy / type resolution
    # ------------------------------------------------------------------
    def _find_module(self, dotted: str) -> "ModuleInfo | None":
        """Exact, then unique-suffix, module-name match."""
        mod = self.modules.get(dotted)
        if mod is not None:
            return mod
        tail = "." + dotted
        hits = [m for n, m in self.modules.items() if n.endswith(tail)]
        return hits[0] if len(hits) == 1 else None

    def resolve_symbol(
        self, mod: ModuleInfo, dotted: str
    ) -> "tuple[str, str] | None":
        """Resolve ``dotted`` in ``mod`` to ("class"|"func"|"module", qname).

        Walks the head through the module's symbol table (import
        aliases, local defs), then the tail through module/class
        members.  Returns None for names the graph cannot see.
        """
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        kind: str
        qual: str
        if head in mod.classes:
            kind, qual = "class", mod.classes[head].qname
        elif head in mod.functions:
            kind, qual = "func", mod.functions[head].qname
        elif head in mod.symbols:
            kind, qual = mod.symbols[head]
        else:
            target = self._find_module(head)
            if target is None:
                return None
            kind, qual = "module", target.name
        for _ in range(_MAX_CHAIN):
            if kind == "obj":
                # Unresolved qualified name: is it a module / class / func?
                target = self._find_module(qual)
                if target is not None:
                    kind, qual = "module", target.name
                    continue
                owner, _, leaf = qual.rpartition(".")
                owner_mod = self._find_module(owner) if owner else None
                if owner_mod is not None:
                    if leaf in owner_mod.classes:
                        kind, qual = "class", owner_mod.classes[leaf].qname
                        continue
                    if leaf in owner_mod.functions:
                        kind, qual = "func", owner_mod.functions[leaf].qname
                        continue
                    kind = "external"
                break
            if not rest:
                break
            leaf = rest.pop(0)
            if kind == "module":
                owner_mod = self.modules.get(qual)
                if owner_mod is None:
                    return None
                if leaf in owner_mod.classes:
                    kind, qual = "class", owner_mod.classes[leaf].qname
                elif leaf in owner_mod.functions:
                    kind, qual = "func", owner_mod.functions[leaf].qname
                elif leaf in owner_mod.symbols:
                    kind, qual = owner_mod.symbols[leaf]
                else:
                    return None
            elif kind == "class":
                meth = self.resolve_method(qual, leaf)
                if meth is None:
                    return None
                kind, qual = "func", meth.qname
            else:
                return None
        if kind in ("class", "func", "module"):
            return (kind, qual)
        return None

    def _resolve_symbols(self) -> None:
        """Second pass over import aliases: pin down modules/classes."""
        for mod in self.modules.values():
            for bound, (kind, qual) in list(mod.symbols.items()):
                if kind != "obj":
                    continue
                resolved = self.resolve_symbol(mod, bound)
                if resolved is not None:
                    mod.symbols[bound] = resolved

    def _resolve_hierarchy(self) -> None:
        for cls in self.classes.values():
            mod = self.modules[cls.module]
            for dotted in cls.base_dotted:
                resolved = self.resolve_symbol(mod, dotted)
                if resolved is not None and resolved[0] == "class":
                    cls.bases.append(resolved[1])
                    self.subclasses.setdefault(resolved[1], set()).add(
                        cls.qname
                    )

    def mro(self, cls_qname: str) -> list[ClassInfo]:
        """The class then its known bases, breadth-first, deduplicated."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        queue = [cls_qname]
        while queue:
            q = queue.pop(0)
            if q in seen:
                continue
            seen.add(q)
            cls = self.classes.get(q)
            if cls is None:
                continue
            out.append(cls)
            queue.extend(cls.bases)
        return out

    def resolve_method(self, cls_qname: str, name: str) -> "FuncNode | None":
        """Resolve ``name`` on ``cls_qname`` by walking its (approximate)
        MRO, returning the first defining class's method node."""
        for cls in self.mro(cls_qname):
            if name in cls.methods:
                return cls.methods[name]
        return None

    def resolve_lock_attr(self, cls_qname: str, attr: str) -> "str | None":
        """Creation site of ``self.<attr>`` searched through the MRO."""
        for cls in self.mro(cls_qname):
            if attr in cls.lock_attrs:
                return cls.lock_attrs[attr]
        return None

    def resolve_attr_type(self, cls_qname: str, attr: str) -> "str | None":
        """Class qname of ``self.<attr>``, searched through the MRO."""
        for cls in self.mro(cls_qname):
            if attr in cls.attr_types:
                return cls.attr_types[attr]
        return None

    def _all_subclasses(self, cls_qname: str) -> set[str]:
        out: set[str] = set()
        queue = list(self.subclasses.get(cls_qname, ()))
        while queue:
            q = queue.pop()
            if q in out:
                continue
            out.add(q)
            queue.extend(self.subclasses.get(q, ()))
        return out

    def dispatch_targets(self, cls_qname: str, name: str) -> list[FuncNode]:
        """Static target plus every subclass override (virtual dispatch)."""
        targets: list[FuncNode] = []
        static = self.resolve_method(cls_qname, name)
        if static is not None:
            targets.append(static)
        for sub in sorted(self._all_subclasses(cls_qname)):
            sub_cls = self.classes.get(sub)
            if sub_cls is not None and name in sub_cls.methods:
                targets.append(sub_cls.methods[name])
        return targets

    def _type_from_text(self, mod: ModuleInfo, text: str) -> "str | None":
        """First project class named by an annotation/ctor text."""
        try:
            expr = ast.parse(text.strip(), mode="eval").body
        except SyntaxError:
            return None
        candidates: list[str] = []
        for node in ast.walk(expr):
            d = _dotted(node) if isinstance(
                node, (ast.Name, ast.Attribute)
            ) else None
            if d is not None and d.split(".")[-1] not in _TYPE_NOISE:
                candidates.append(d)
        for cand in candidates:
            resolved = self.resolve_symbol(mod, cand)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
        return None

    def _resolve_attr_types(self) -> None:
        self._return_types: dict[str, "str | None"] = {}
        for cls in self.classes.values():
            mod = self.modules[cls.module]
            for attr, text in cls.attr_exprs.items():
                qname = self._type_from_text(mod, text)
                if qname is not None:
                    cls.attr_types[attr] = qname

    def return_type(self, func_qname: str) -> "str | None":
        """Class qname a function's ``-> X`` annotation names (cached)."""
        cache = getattr(self, "_return_types", None)
        if cache is None:
            cache = self._return_types = {}
        if func_qname not in cache:
            fn = self.functions.get(func_qname)
            resolved = None
            if fn is not None and fn.return_ann:
                resolved = self._type_from_text(
                    self.modules[fn.module], fn.return_ann
                )
            cache[func_qname] = resolved
        return cache[func_qname]

    # ------------------------------------------------------------------
    # pass 2: bodies (calls, returns, locks, deadline scopes)
    # ------------------------------------------------------------------
    def analyze_bodies(self) -> None:
        """Second pass: walk every function body, recording call sites
        (with lexical context), return sites, and lock acquisitions.
        Requires all modules to be declared first so calls resolve."""
        for mod in self.modules.values():
            for node in mod.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._analyze_function(
                        mod, None, mod.functions[node.name], node
                    )
                elif isinstance(node, ast.ClassDef):
                    cls = mod.classes[node.name]
                    for item in node.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            self._analyze_function(
                                mod, cls, cls.methods[item.name], item
                            )
        self._callers = None  # invalidate the reverse-edge cache

    def _analyze_function(
        self,
        mod: ModuleInfo,
        cls: "ClassInfo | None",
        fn: FuncNode,
        node: ast.FunctionDef,
    ) -> None:
        params = self._param_annotations(node)
        local_types: dict[str, str] = {}
        clock_params: list[str] = []
        for pname, text in params.items():
            qname = self._type_from_text(mod, text)
            if qname is not None:
                local_types[pname] = qname
                if qname.rsplit(".", 1)[-1] == "SimulatedClock":
                    clock_params.append(pname)
        fn.clock_params = tuple(clock_params)
        ctx = _BodyContext(self, mod, cls, fn, local_types)
        ctx.walk_block(node.body)

    # ------------------------------------------------------------------
    # queries over the finished graph
    # ------------------------------------------------------------------
    def callers_of(self) -> dict[str, set[str]]:
        """Reverse edges: callee qname → caller qnames (cached)."""
        if self._callers is None:
            rev: dict[str, set[str]] = {}
            for fn in self.functions.values():
                for call in fn.calls:
                    for callee in call.callees:
                        rev.setdefault(callee, set()).add(fn.qname)
            self._callers = rev
        return self._callers

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure over call edges from ``roots``."""
        seen: set[str] = set()
        queue = [r for r in roots if r in self.functions]
        while queue:
            q = queue.pop()
            if q in seen:
                continue
            seen.add(q)
            for call in self.functions[q].calls:
                queue.extend(c for c in call.callees if c not in seen)
        return seen

    def module_for_path(self, path: str) -> "ModuleInfo | None":
        """The parsed module whose source file is ``path``, if any."""
        for mod in self.modules.values():
            if mod.path == path:
                return mod
        return None

    def suppressed(self, path: str, line: int, rule: str) -> bool:
        """Honour ``# lint: allow[rule]`` pragmas for graph findings
        (same grammar and line/line-1 placement as the file engine)."""
        mod = self.module_for_path(path)
        if mod is None:
            return False
        for candidate in (line, line - 1):
            if not 1 <= candidate <= len(mod.lines):
                continue
            m = _PRAGMA_RE.search(mod.lines[candidate - 1])
            if m is not None:
                names = {n.strip() for n in m.group(1).split(",")}
                if rule in names or "*" in names:
                    return True
        return False

    def to_dict(self) -> dict:
        """JSON-ready call-graph dump (the ``--graph`` artifact)."""
        nodes = [
            {
                "qname": fn.qname,
                "path": fn.path,
                "line": fn.line,
                "class": fn.cls,
            }
            for fn in sorted(self.functions.values(), key=lambda f: f.qname)
        ]
        edges = []
        for fn in sorted(self.functions.values(), key=lambda f: f.qname):
            for call in fn.calls:
                for callee in call.callees:
                    edges.append(
                        {
                            "caller": fn.qname,
                            "callee": callee,
                            "line": call.line,
                            "protected": call.protected,
                            "in_except": call.in_except,
                            "in_degraded": call.in_degraded,
                        }
                    )
        return {
            "version": 1,
            "modules": sorted(self.modules),
            "functions": len(nodes),
            "edges": len(edges),
            "nodes": nodes,
            "call_edges": edges,
        }


class _BodyContext:
    """Statement walker carrying except/degraded/deadline/lock context."""

    def __init__(
        self,
        graph: CallGraph,
        mod: ModuleInfo,
        cls: "ClassInfo | None",
        fn: FuncNode,
        local_types: dict[str, str],
    ) -> None:
        self.graph = graph
        self.mod = mod
        self.cls = cls
        self.fn = fn
        self.local_types = local_types
        self.in_except = False
        self.in_degraded = False
        self.protected = False
        self.locks: tuple[str, ...] = ()

    # -- type inference -------------------------------------------------
    def infer_type(self, expr: ast.expr, depth: int = 0) -> "str | None":
        """Class qname of ``expr``'s value, or None."""
        if depth > _MAX_CHAIN:
            return None
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return self.cls.qname
            return self.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self.infer_type(expr.value, depth + 1)
            if owner is not None:
                return self.graph.resolve_attr_type(owner, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            # Container/iterator builtins are type-transparent for the
            # element-conflated lattice (see DESIGN.md §15).
            if (
                isinstance(expr.func, ast.Name)
                and expr.func.id in ("reversed", "sorted", "list", "tuple", "iter")
                and expr.args
            ):
                return self.infer_type(expr.args[0], depth + 1)
            d = _dotted(expr.func)
            if d is not None:
                resolved = self.graph.resolve_symbol(self.mod, d)
                if resolved is not None:
                    if resolved[0] == "class":
                        return resolved[1]
                    if resolved[0] == "func":
                        return self.graph.return_type(resolved[1])
            # ``self.m()`` / ``x.m()``: type via the method's annotation.
            if isinstance(expr.func, ast.Attribute):
                recv = self.infer_type(expr.func.value, depth + 1)
                if recv is not None:
                    meth = self.graph.resolve_method(recv, expr.func.attr)
                    if meth is not None:
                        return self.graph.return_type(meth.qname)
            return None
        if isinstance(expr, ast.IfExp):
            return self.infer_type(expr.body, depth + 1) or self.infer_type(
                expr.orelse, depth + 1
            )
        return None

    # -- call resolution ------------------------------------------------
    def resolve_call(self, call: ast.Call) -> tuple[tuple[str, ...], "str | None"]:
        """Resolved callee qnames + the textual dotted form."""
        func = call.func
        dotted = _dotted(func)
        targets: list[FuncNode] = []
        if isinstance(func, ast.Name):
            resolved = self.graph.resolve_symbol(self.mod, func.id)
            if resolved is not None:
                kind, qual = resolved
                if kind == "func" and qual in self.graph.functions:
                    targets.append(self.graph.functions[qual])
                elif kind == "class":
                    init = self.graph.resolve_method(qual, "__init__")
                    if init is not None:
                        targets.append(init)
        elif isinstance(func, ast.Attribute):
            recv_type = self.infer_type(func.value)
            if recv_type is not None:
                targets.extend(
                    self.graph.dispatch_targets(recv_type, func.attr)
                )
            elif dotted is not None:
                resolved = self.graph.resolve_symbol(self.mod, dotted)
                if resolved is not None:
                    kind, qual = resolved
                    if kind == "func" and qual in self.graph.functions:
                        targets.append(self.graph.functions[qual])
                    elif kind == "class":
                        init = self.graph.resolve_method(qual, "__init__")
                        if init is not None:
                            targets.append(init)
        qnames = tuple(sorted({t.qname for t in targets}))
        return qnames, dotted

    # -- the walk --------------------------------------------------------
    def walk_block(self, stmts: "list[ast.stmt]") -> None:
        for stmt in stmts:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested defs run later, in an unknown context: attribute
            # their calls to this function but drop the lexical context
            # (conservative for taint and locks; see DESIGN.md §15).
            saved = (self.in_except, self.in_degraded, self.protected, self.locks)
            self.in_except = self.in_degraded = self.protected = False
            self.locks = ()
            body = stmt.body if isinstance(stmt.body, list) else [stmt.body]
            for sub in body:
                if isinstance(sub, ast.stmt):
                    self.walk_stmt(sub)
                else:
                    self.scan_expr(sub)
            (self.in_except, self.in_degraded, self.protected, self.locks) = saved
            return
        if isinstance(stmt, ast.Return):
            self.record_return(stmt)
            if stmt.value is not None:
                self.scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.Assign):
            self.scan_expr(stmt.value)
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                inferred = self.infer_type(stmt.value)
                if inferred is not None:
                    self.local_types[stmt.targets[0].id] = inferred
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.scan_expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                text = CallGraph._annotation_text(stmt.annotation)
                if text:
                    qname = self.graph._type_from_text(self.mod, text)
                    if qname is not None:
                        self.local_types[stmt.target.id] = qname
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.scan_expr(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                # Element-conflated: ``tuple[SSTable, ...]`` attr types
                # resolve to SSTable, so the loop variable gets the
                # element class.
                elem = self.infer_type(stmt.iter)
                if elem is not None:
                    self.local_types[stmt.target.id] = elem
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            self.walk_with(stmt)
            return
        if isinstance(stmt, ast.Try):
            self.walk_block(stmt.body)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self.scan_expr(handler.type)
                saved = self.in_except
                self.in_except = True
                self.walk_block(handler.body)
                self.in_except = saved
            self.walk_block(stmt.orelse)
            self.walk_block(stmt.finalbody)
            return
        if isinstance(stmt, ast.If):
            self.scan_expr(stmt.test)
            degraded = _mentions_degraded(stmt.test)
            saved = self.in_degraded
            self.in_degraded = saved or degraded
            self.walk_block(stmt.body)
            self.in_degraded = saved
            self.walk_block(stmt.orelse)
            return
        # Generic recursion: scan expressions, walk nested blocks.
        for fname, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.stmt):
                        self.walk_stmt(item)
                    elif isinstance(item, ast.expr):
                        self.scan_expr(item)
            elif isinstance(value, ast.expr):
                self.scan_expr(value)

    def walk_with(self, stmt: ast.With) -> None:
        saved_protected = self.protected
        saved_locks = self.locks
        for item in stmt.items:
            expr = item.context_expr
            self.scan_expr(expr)
            # ``with <recv>.deadline_scope(...):`` — deadline protection.
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "deadline_scope"
            ):
                self.protected = True
                continue
            # ``with self.<lock>:`` — a lexical acquisition.
            lock_id = self._lock_site(expr)
            if lock_id is not None:
                self.fn.acquires.append(
                    AcquireSite(
                        lock=lock_id,
                        line=expr.lineno,
                        locks_held=self.locks,
                    )
                )
                if lock_id not in self.locks:
                    self.locks = self.locks + (lock_id,)
        self.walk_block(stmt.body)
        self.protected = saved_protected
        self.locks = saved_locks

    def _lock_site(self, expr: ast.expr) -> "str | None":
        """Creation site for a ``with self._lock``-shaped context expr."""
        if isinstance(expr, ast.Call):
            expr = expr.func
        while isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self.cls is not None
            ):
                site = self.graph.resolve_lock_attr(self.cls.qname, expr.attr)
                if site is not None:
                    return site
            expr = expr.value
        return None

    def scan_expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                callees, dotted = self.resolve_call(node)
                self.fn.calls.append(
                    CallSite(
                        callees=callees,
                        dotted=dotted,
                        line=node.lineno,
                        in_except=self.in_except,
                        in_degraded=self.in_degraded,
                        protected=self.protected,
                        locks_held=self.locks,
                    )
                )
            elif isinstance(node, (ast.Lambda,)):
                pass  # body scanned by the generic walk below

    def record_return(self, stmt: ast.Return) -> None:
        call_callees: tuple[str, ...] = ()
        call_dotted: "str | None" = None
        if isinstance(stmt.value, ast.Call):
            call_callees, call_dotted = self.resolve_call(stmt.value)
        self.fn.returns.append(
            ReturnSite(
                line=stmt.lineno,
                negative_const=_is_negative(stmt.value),
                call_callees=call_callees,
                call_dotted=call_dotted,
                in_except=self.in_except,
                in_degraded=self.in_degraded,
            )
        )


def build_call_graph(
    root: "str | Path",
    paths: "Iterable[str | Path] | None" = None,
    ref_paths: "Iterable[str | Path] | None" = None,
) -> CallGraph:
    """Parse + declare + analyze: the one-call constructor.

    ``paths`` (default ``src/repro``) become graph nodes; ``ref_paths``
    (tests, benchmarks, examples, scripts — whatever exists by default)
    only contribute liveness mentions for the dead-code pass.
    """
    root = Path(root)
    graph = CallGraph(root)
    if paths is None:
        paths = [p for p in ("src/repro",) if (root / p).exists()]
    if ref_paths is None:
        ref_paths = [
            p
            for p in ("tests", "benchmarks", "examples", "scripts")
            if (root / p).exists()
        ]
    graph.parse(
        [Path(p) for p in paths], [Path(p) for p in ref_paths]
    )
    graph.declare()
    graph.analyze_bodies()
    return graph
