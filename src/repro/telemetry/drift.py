"""Workload drift detection: PSI between trailing windows.

The future Proteus-style auto-tuner (ROADMAP) needs a sensory input:
*has the query distribution moved since the filters were designed?*
This module answers with a Population-Stability-Index-style score per
shard, computed from three cheap sketches of the routed query stream:

* **range width** — log2-spaced histogram of ``hi - lo`` (the quantity
  REncoder's stored-levels tradeoff is tuned to);
* **key locality** — histogram over the top address bits of ``lo``
  (correlated workloads concentrate here, uniform ones spread);
* **point/range mix** — the two-bucket fraction that separates PO-
  from SE-favoring workloads (paper Fig. 9).

Observations accumulate into the *current* window; when a window
closes (``window_ns`` of simulated time, or an explicit ``rotate()``),
it is compared against the previous completed window:

    PSI = sum_i (p_i - q_i) * ln(p_i / q_i)

with Laplace smoothing so empty buckets stay finite.  The final score
is the max over the three dimensions — a shift in *any* of them is a
shift.  By the usual reading, < 0.1 is stable, 0.1–0.25 is moderate,
and > 0.25 (the default alert threshold) is a population shift.

A seeded reservoir of raw (lo, width) pairs rides along per window so
the tuner can re-derive finer statistics than the fixed buckets hold.
"""

from __future__ import annotations

import math
import threading
from typing import Callable

from .registry import Reservoir

__all__ = ["DriftDetector", "psi", "DEFAULT_DRIFT_THRESHOLD"]

#: PSI above this is "population shifted" — the alert threshold.
DEFAULT_DRIFT_THRESHOLD = 0.25

_WIDTH_BUCKETS = 17  # log2 width 0..63 folded into 16 + point bucket
_LOCALITY_BITS = 4  # 16 locality buckets over the top address bits


def psi(p_counts: "list[int]", q_counts: "list[int]", eps: float = 0.5) -> float:
    """Smoothed Population Stability Index between two count vectors."""
    if len(p_counts) != len(q_counts):
        raise ValueError("count vectors must have equal length")
    k = len(p_counts)
    p_total = sum(p_counts) + eps * k
    q_total = sum(q_counts) + eps * k
    score = 0.0
    for pc, qc in zip(p_counts, q_counts):
        p = (pc + eps) / p_total
        q = (qc + eps) / q_total
        score += (p - q) * math.log(p / q)
    return score


class _Window:
    __slots__ = ("start_ns", "width", "locality", "mix", "n", "reservoir")

    def __init__(self, start_ns: int, seed: int) -> None:
        self.start_ns = start_ns
        self.width = [0] * _WIDTH_BUCKETS
        self.locality = [0] * (1 << _LOCALITY_BITS)
        self.mix = [0, 0]  # [point, range]
        self.n = 0
        self.reservoir = Reservoir(cap=256, seed=seed)


class DriftDetector:
    """Per-shard query-shape sketcher with windowed PSI scoring."""

    def __init__(
        self,
        *,
        clock=None,
        window_ns: int = 2_000_000_000,
        key_bits: int = 64,
        min_samples: int = 64,
        threshold: float = DEFAULT_DRIFT_THRESHOLD,
        seed: int = 0,
        on_alert: "Callable[[float], None] | None" = None,
    ) -> None:
        self.clock = clock
        self.window_ns = window_ns
        self.key_bits = key_bits
        self.min_samples = min_samples
        self.threshold = threshold
        self.seed = seed
        self.on_alert = on_alert
        self._lock = threading.Lock()
        self._shift = max(0, key_bits - _LOCALITY_BITS)
        now = clock.now_ns() if clock is not None else 0
        self._cur = _Window(now, seed)
        self._prev: "_Window | None" = None
        self._score = 0.0
        self._dims: dict[str, float] = {}
        self.windows_closed = 0
        self.alert_count = 0
        self.alerting = False

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def observe(self, lo: int, hi: int) -> None:
        """Record one range query [lo, hi] into the current window."""
        width = hi - lo
        with self._lock:
            w = self._cur
            if width <= 0:
                w.width[0] += 1
                w.mix[0] += 1
            else:
                w.width[min(width.bit_length(), _WIDTH_BUCKETS - 1)] += 1
                w.mix[1] += 1
            w.locality[(lo >> self._shift) & ((1 << _LOCALITY_BITS) - 1)] += 1
            w.n += 1
            w.reservoir.add(float(width))
            if (
                self.clock is not None
                and self.clock.now_ns() - w.start_ns >= self.window_ns
            ):
                self._rotate_locked()

    def observe_point(self, key: int) -> None:
        """Record one point query."""
        self.observe(key, key)

    # ------------------------------------------------------------------
    # windowing
    # ------------------------------------------------------------------
    def _rotate_locked(self) -> None:
        """Close/score the current window (lock held)."""
        cur, prev = self._cur, self._prev
        now = self.clock.now_ns() if self.clock is not None else 0
        self._cur = _Window(now, self.seed + self.windows_closed + 1)
        self.windows_closed += 1
        if cur.n == 0:
            # An idle window carries no evidence either way; keep the
            # last populated window as the comparison base.
            return
        self._prev = cur
        if prev is None or prev.n < self.min_samples or cur.n < self.min_samples:
            return
        dims = {
            "width": psi(cur.width, prev.width),
            "locality": psi(cur.locality, prev.locality),
            "mix": psi(cur.mix, prev.mix),
        }
        self._dims = dims
        self._score = max(dims.values())
        if self._score >= self.threshold:
            self.alert_count += 1
            self.alerting = True
            if self.on_alert is not None:
                self.on_alert(self._score)
        else:
            self.alerting = False

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def score(self) -> float:
        """Latest PSI score (max over dimensions); 0 until two full
        windows have been observed."""
        with self._lock:
            return self._score

    def snapshot(self) -> dict:
        """JSON-safe dump for dashboards and the future tuner."""
        with self._lock:
            return {
                "score": self._score,
                "dimensions": dict(self._dims),
                "threshold": self.threshold,
                "alerting": self.alerting,
                "alerts": self.alert_count,
                "windows_closed": self.windows_closed,
                "current_n": self._cur.n,
                "previous_n": self._prev.n if self._prev else 0,
                "width_quantiles": {
                    "p50": self._cur.reservoir.percentile(50),
                    "p99": self._cur.reservoir.percentile(99),
                }
                if self._cur.n
                else {},
            }
