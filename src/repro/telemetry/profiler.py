"""Sampling profiler hook for the bench harness (``REPRO_PROFILE=1``).

Two layers, both cheap enough to leave compiled into every bench:

* **Phase accounting** — :meth:`PhaseProfiler.phase` context managers
  mark the coarse stages of a bench (build / scalar / batch / ...).
  Exact wall time per phase is always recorded once the profiler is
  enabled; phases nest, and time is attributed to the innermost phase.
* **Stack sampling** — while any phase is open, a daemon thread samples
  the phase-owning thread's Python stack every ``interval_s`` via
  ``sys._current_frames()`` and attributes the top frame to the current
  phase.  Sampling is statistical (it never touches the measured code),
  so the per-phase breakdown shows *where the time went* without
  instrumenting hot loops.

The bench JSON writer (:func:`benchmarks.common.write_bench_json`)
embeds :meth:`report` into every ``BENCH_*.json`` whenever the profiler
saw at least one phase — so ``REPRO_PROFILE=1 make bench-smoke`` yields
machine-readable per-phase breakdowns with no bench-side changes.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager

__all__ = ["PhaseProfiler", "get_profiler", "profile_phase"]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE", "") == "1"


class PhaseProfiler:
    """Per-phase wall-time accounting plus optional stack sampling."""

    def __init__(
        self,
        enabled: "bool | None" = None,
        *,
        interval_s: float = 0.005,
        max_functions: int = 20,
    ) -> None:
        #: None defers to REPRO_PROFILE at each ``phase()`` entry, so a
        #: bench importing the module before the env var is set still
        #: honours it.
        self._enabled = enabled
        self.interval_s = interval_s
        self.max_functions = max_functions
        self._lock = threading.Lock()
        #: phase -> accumulated wall seconds (exact, from the CM).
        self._phase_seconds: dict[str, float] = {}
        #: phase -> {function: samples} (statistical, from the sampler).
        self._phase_samples: dict[str, dict[str, int]] = {}
        #: (phase stack, target thread id) while a phase is open.
        self._stack: list[str] = []
        self._target_tid: "int | None" = None
        self._sampler: "threading.Thread | None" = None
        self._stop = threading.Event()

    @property
    def enabled(self) -> bool:
        return self._enabled if self._enabled is not None else _env_enabled()

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Mark one bench stage; nested phases shadow their parent."""
        if not self.enabled:
            yield
            return
        with self._lock:
            self._stack.append(name)
            self._target_tid = threading.get_ident()
            self._ensure_sampler()
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._stack.pop()
                self._phase_seconds[name] = (
                    self._phase_seconds.get(name, 0.0) + elapsed
                )
                if not self._stack:
                    self._target_tid = None

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _ensure_sampler(self) -> None:
        """Start the sampling thread once (lock held)."""
        if self._sampler is not None and self._sampler.is_alive():
            return
        self._stop.clear()
        self._sampler = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._sampler.start()

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            with self._lock:
                if not self._stack or self._target_tid is None:
                    continue
                phase = self._stack[-1]
                tid = self._target_tid
            frame = sys._current_frames().get(tid)
            if frame is None:
                continue
            code = frame.f_code
            where = f"{code.co_name} ({os.path.basename(code.co_filename)})"
            with self._lock:
                bucket = self._phase_samples.setdefault(phase, {})
                bucket[where] = bucket.get(where, 0) + 1

    def stop(self) -> None:
        """Stop the sampling thread (reports remain readable)."""
        self._stop.set()
        with self._lock:
            sampler = self._sampler
        # Join outside the lock: the sample loop takes it per tick.
        if sampler is not None and sampler.is_alive():
            sampler.join(timeout=1.0)
        with self._lock:
            if self._sampler is sampler:
                self._sampler = None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Per-phase breakdown for embedding in bench JSON."""
        with self._lock:
            total = sum(self._phase_seconds.values())
            phases = {}
            for name, seconds in sorted(
                self._phase_seconds.items(), key=lambda kv: -kv[1]
            ):
                samples = self._phase_samples.get(name, {})
                top = dict(
                    sorted(samples.items(), key=lambda kv: -kv[1])[
                        : self.max_functions
                    ]
                )
                phases[name] = {
                    "seconds": round(seconds, 4),
                    "share": round(seconds / total, 3) if total else 0.0,
                    "samples": top,
                }
            return {
                "interval_s": self.interval_s,
                "total_seconds": round(total, 4),
                "phases": phases,
            }

    def has_data(self) -> bool:
        """True once at least one phase has closed."""
        with self._lock:
            return bool(self._phase_seconds)

    def reset(self) -> None:
        """Drop all accumulated phase times and samples."""
        with self._lock:
            self._phase_seconds.clear()
            self._phase_samples.clear()


#: Process-wide profiler the benches and the JSON writer share.
_PROFILER = PhaseProfiler()


def get_profiler() -> PhaseProfiler:
    """The process-wide shared profiler."""
    return _PROFILER


def profile_phase(name: str):
    """``with profile_phase("build"): ...`` on the shared profiler."""
    return _PROFILER.phase(name)
