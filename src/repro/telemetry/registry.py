"""Typed metrics instruments and the process-wide registry.

The registry is the substrate every stats object in the repository backs
onto (:class:`~repro.storage.env.IoStats`,
:class:`~repro.service.health.ServiceStats` are thin views over it):
one place that knows every counter, gauge and histogram, labelled by
component, and can render them all as JSON or Prometheus text.

Three instrument types, all thread-safe:

* :class:`Counter` — monotonically increasing (``inc``); resettable only
  because the bench harness isolates measurement phases.
* :class:`Gauge` — a point-in-time value, either set explicitly
  (``set``) or computed on read from a callback (``set_fn``) so live
  structures (queue depth, load factor ``P1``) are sampled exactly when
  a snapshot is taken, with zero steady-state cost.
* :class:`Histogram` — fixed log-spaced buckets (latency-shaped by
  default: 1 µs to ~4.4 min in ×4 steps) plus a deterministic seeded
  reservoir (:class:`Reservoir`) that answers nearest-rank percentiles
  without unbounded memory.

Exposition formats:

* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict (embedded in the
  service's ``health()`` and the ``metrics-dump`` CLI);
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  (``# HELP``/``# TYPE``, escaped label values, cumulative ``_bucket``
  series ending in ``+Inf``, ``_sum``/``_count``).
"""

from __future__ import annotations

import bisect
import math
import random
import re
import threading
from typing import Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Reservoir",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "global_registry",
    "set_global_registry",
    "percentile",
]

#: Log-spaced (×4) latency buckets in nanoseconds: 1 µs … ~4.4 minutes.
#: Fixed bounds keep histograms mergeable across runs and components.
DEFAULT_LATENCY_BUCKETS_NS: tuple[float, ...] = tuple(
    1_000.0 * 4.0**i for i in range(14)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def percentile(samples: "list[float]", q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of unsorted samples."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class Reservoir:
    """Deterministic bounded sample keeper (Vitter's Algorithm R).

    Holds at most ``cap`` samples; once full, the ``n``-th observation
    replaces a uniformly random slot with probability ``cap / n``, so
    the retained set is a uniform sample of everything observed.  The
    RNG is seeded, so two runs observing the same sequence keep the
    same reservoir — a failure involving percentiles reproduces.
    The true ``count``/``total``/``max_value``/``min_value`` are tracked
    exactly (only the sample *set* is approximate).
    """

    __slots__ = ("cap", "_samples", "_count", "_total", "_max", "_min", "_rng")

    def __init__(self, cap: int = 4096, seed: int = 0) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = cap
        self._samples: list[float] = []
        self._count = 0
        self._total = 0.0
        self._max = float("-inf")
        self._min = float("inf")
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Observe one value (kept or reservoir-replaced)."""
        self._count += 1
        self._total += value
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value
        if len(self._samples) < self.cap:
            self._samples.append(value)
        else:
            j = self._rng.randrange(self._count)
            if j < self.cap:
                self._samples[j] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def max_value(self) -> float:
        return self._max if self._count else 0.0

    @property
    def min_value(self) -> float:
        return self._min if self._count else 0.0

    def samples(self) -> list[float]:
        """Copy of the retained samples (unordered)."""
        return list(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        return percentile(self._samples, q)

    def clear(self) -> None:
        """Drop all samples and exact statistics."""
        self._samples.clear()
        self._count = 0
        self._total = 0.0
        self._max = float("-inf")
        self._min = float("inf")


class _Instrument:
    """Shared identity: name, help text, sorted label pairs."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        self.name = name
        self.help = help
        self.labels = dict(sorted(labels.items()))
        self._lock = threading.Lock()

    def label_suffix(self) -> str:
        """``{k="v",...}`` with Prometheus escaping (or ``""``)."""
        if not self.labels:
            return ""
        pairs = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in self.labels.items()
        )
        return "{" + pairs + "}"


def _escape_label(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


class Counter(_Instrument):
    """Monotonic counter (``inc`` by non-negative deltas)."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        super().__init__(name, help, labels)
        self._value = 0

    def inc(self, delta: "int | float" = 1) -> None:
        """Add a non-negative delta."""
        if delta < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({delta})")
        with self._lock:
            self._value += delta

    @property
    def value(self) -> "int | float":
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero the counter (bench phase isolation; not Prometheus-pure)."""
        with self._lock:
            self._value = 0


class Gauge(_Instrument):
    """Point-in-time value, explicit (``set``) or computed (``set_fn``)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        super().__init__(name, help, labels)
        self._value: float = 0.0
        self._fn: "Callable[[], float] | None" = None

    def set(self, value: float) -> None:
        """Set the value explicitly (clears any callback)."""
        with self._lock:
            self._fn = None
            self._value = value

    def inc(self, delta: float = 1.0) -> None:
        """Adjust the explicit value by ``delta`` (may be negative)."""
        with self._lock:
            self._value += delta

    def set_fn(self, fn: "Callable[[], float]") -> None:
        """Compute the value on read — sampled at snapshot time."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:  # lint: allow[bare-except] — arbitrary user callback
            # A dead callback (e.g. a retired structure) reads as 0
            # rather than breaking every snapshot.
            return 0.0


class Histogram(_Instrument):
    """Fixed-bucket histogram with reservoir-backed percentiles.

    ``bounds`` are the inclusive upper bucket bounds (ascending); an
    implicit ``+Inf`` bucket tops them off.  ``observe`` is O(log
    buckets) plus one reservoir step.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: dict[str, str],
        bounds: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS_NS,
        reservoir_cap: int = 4096,
        seed: int = 0,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            bounds[i] >= bounds[i + 1] for i in range(len(bounds) - 1)
        ):
            raise ValueError("bounds must be non-empty and increasing")
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +Inf last
        self._reservoir = Reservoir(reservoir_cap, seed)

    def observe(self, value: float) -> None:
        """Record one observation into its bucket and the reservoir."""
        i = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[i] += 1
            self._reservoir.add(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._reservoir.count

    @property
    def total(self) -> float:
        with self._lock:
            return self._reservoir.total

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir samples."""
        with self._lock:
            return self._reservoir.percentile(q)

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts, ``+Inf`` last — the raw
        series federation sums across replicas."""
        with self._lock:
            return list(self._bucket_counts)

    def reservoir_view(self) -> tuple[list[float], int]:
        """(retained samples, true count) — the stratification unit for
        federated percentiles: each sample stands for ``count/len``
        observations."""
        with self._lock:
            return self._reservoir.samples(), self._reservoir.count

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with ``+Inf``."""
        out: list[tuple[float, int]] = []
        with self._lock:
            running = 0
            for bound, n in zip(self.bounds, self._bucket_counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), running + self._bucket_counts[-1]))
        return out

    def reset(self) -> None:
        """Zero buckets and reservoir (bench phase isolation)."""
        with self._lock:
            self._bucket_counts = [0] * (len(self.bounds) + 1)
            self._reservoir.clear()


class MetricsRegistry:
    """Thread-safe instrument factory and exposition point.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same (name, labels) returns the same instrument, so layers
    can be wired independently and still share counters.  Re-using a
    name with a different instrument type is an error — one name, one
    type, many label sets (the Prometheus data model).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: name -> (kind, help, {label tuple -> instrument})
        self._families: dict[
            str, tuple[str, str, dict[tuple, _Instrument]]
        ] = {}

    # ------------------------------------------------------------------
    # instrument factories
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: "dict[str, str] | None" = None
    ) -> Counter:
        """Get or create the :class:`Counter` with this name + labels."""
        return self._get(Counter, name, help, labels or {})

    def gauge(
        self, name: str, help: str = "", labels: "dict[str, str] | None" = None
    ) -> Gauge:
        """Get or create the :class:`Gauge` with this name + labels."""
        return self._get(Gauge, name, help, labels or {})

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: "dict[str, str] | None" = None,
        **kwargs,
    ) -> Histogram:
        """Get or create the :class:`Histogram` with this name + labels."""
        return self._get(Histogram, name, help, labels or {}, **kwargs)

    def _get(self, cls, name: str, help: str, labels: dict, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        label_key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (cls.kind, help, {})
                self._families[name] = family
            kind, _, instruments = family
            if kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {kind}, "
                    f"requested {cls.kind}"
                )
            inst = instruments.get(label_key)
            if inst is None:
                inst = cls(name, help, dict(labels), **kwargs)
                instruments[label_key] = inst
            return inst  # type: ignore[return-value]

    def instruments(self) -> list[_Instrument]:
        """Every registered instrument, name-then-label ordered."""
        with self._lock:
            out: list[_Instrument] = []
            for name in sorted(self._families):
                _, _, instruments = self._families[name]
                for key in sorted(instruments):
                    out.append(instruments[key])
            return out

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe dump: name -> list of {labels, value | histogram}."""
        out: dict[str, list[dict]] = {}
        for inst in self.instruments():
            entry: dict = {"labels": inst.labels}
            if isinstance(inst, Histogram):
                entry["count"] = inst.count
                entry["sum"] = inst.total
                entry["p50"] = inst.percentile(50)
                entry["p99"] = inst.percentile(99)
                entry["p999"] = inst.percentile(99.9)
                entry["buckets"] = [
                    {"le": ("+Inf" if math.isinf(b) else b), "count": c}
                    for b, c in inst.cumulative_buckets()
                ]
            else:
                entry["value"] = inst.value
            out.setdefault(inst.name, []).append(entry)
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        seen: set[str] = set()
        for inst in self.instruments():
            if inst.name not in seen:
                seen.add(inst.name)
                help_text = inst.help or inst.name
                lines.append(f"# HELP {inst.name} {help_text}")
                lines.append(f"# TYPE {inst.name} {inst.kind}")
            suffix = inst.label_suffix()
            if isinstance(inst, Histogram):
                for bound, cum in inst.cumulative_buckets():
                    le = "+Inf" if math.isinf(bound) else _fmt_num(bound)
                    pairs = dict(inst.labels)
                    pairs["le"] = le
                    label_str = ",".join(
                        f'{k}="{_escape_label(str(v))}"'
                        for k, v in pairs.items()
                    )
                    lines.append(
                        f"{inst.name}_bucket{{{label_str}}} {cum}"
                    )
                lines.append(
                    f"{inst.name}_sum{suffix} {_fmt_num(inst.total)}"
                )
                lines.append(f"{inst.name}_count{suffix} {inst.count}")
            else:
                lines.append(f"{inst.name}{suffix} {_fmt_num(inst.value)}")
        return "\n".join(lines) + "\n"


def _fmt_num(value: "int | float") -> str:
    """Render a sample value: integers bare, floats repr-round-tripped."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    return str(as_int) if as_int == value else repr(value)


#: Process-wide default registry: layers that have no obvious owner to
#: receive one (serialize timings, module-level instrumentation) record
#: here; ``metrics-dump`` and tests can read or swap it.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the old one."""
    global _GLOBAL
    old, _GLOBAL = _GLOBAL, registry
    return old
