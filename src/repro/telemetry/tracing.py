"""Request tracing: spans on the wall and simulated clocks.

One trace shows everything a single range query paid for: queue wait,
breaker state, the per-SSTable filter probes, RBF block fetches, fetch
cache hits and fault-injected retries — the correlated view none of the
aggregate counters can give.

Design constraints, in order:

1. **Zero-ish cost when off.**  The tracer is a process-wide singleton
   that defaults to disabled; every instrumentation point starts with
   ``current_span()`` or ``child_span()``, whose disabled path is one
   global load and one attribute check.  The < 10 % overhead budget of
   ``BENCH_telemetry.json`` is measured against exactly this guard.
2. **Two clocks.**  A span records wall time (``perf_counter_ns``) and,
   when the tracer carries a :class:`~repro.storage.env.SimulatedClock`,
   simulated time — so a trace shows both what the host paid and what
   the modelled storage charged (the quantity deadlines act on).
3. **Thread handoff.**  The serving layer creates a root span at
   *submit* and a worker thread adopts it (:meth:`Tracer.attach`), so
   queue wait is part of the trace even though no span was "open" on
   the worker while the request sat in the admission queue.

Spans accumulate two kinds of data: ``attrs`` (set once, descriptive —
table id, epoch, verdicts) and ``metrics`` (numeric, accumulated via
:meth:`Span.add` — RBF fetches, I/O reads, retries).  Metrics roll up:
:meth:`Span.total` sums a metric over a span and all its descendants.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "current_span",
    "child_span",
    "format_tree",
]


class Span:
    """One timed operation in a trace tree."""

    __slots__ = (
        "name",
        "attrs",
        "metrics",
        "children",
        "start_wall_ns",
        "end_wall_ns",
        "start_sim_ns",
        "end_sim_ns",
    )

    def __init__(
        self, name: str, start_wall_ns: int, start_sim_ns: "int | None"
    ) -> None:
        self.name = name
        self.attrs: dict[str, object] = {}
        self.metrics: dict[str, float] = {}
        self.children: list[Span] = []
        self.start_wall_ns = start_wall_ns
        self.end_wall_ns: "int | None" = None
        self.start_sim_ns = start_sim_ns
        self.end_sim_ns: "int | None" = None

    # ------------------------------------------------------------------
    # annotation
    # ------------------------------------------------------------------
    def set(self, **attrs) -> "Span":
        """Attach descriptive attributes (last write wins)."""
        self.attrs.update(attrs)
        return self

    def add(self, metric: str, delta: float = 1) -> None:
        """Accumulate a numeric metric on this span."""
        self.metrics[metric] = self.metrics.get(metric, 0) + delta

    # ------------------------------------------------------------------
    # durations & rollups
    # ------------------------------------------------------------------
    @property
    def wall_ns(self) -> int:
        end = (
            self.end_wall_ns
            if self.end_wall_ns is not None
            else time.perf_counter_ns()
        )
        return end - self.start_wall_ns

    @property
    def sim_ns(self) -> "int | None":
        if self.start_sim_ns is None:
            return None
        end = self.end_sim_ns
        return None if end is None else end - self.start_sim_ns

    def total(self, metric: str) -> float:
        """Sum of ``metric`` over this span and all descendants."""
        n = self.metrics.get(metric, 0)
        for child in self.children:
            n += child.total(metric)
        return n

    def find(self, name: str) -> "Span | None":
        """First descendant (depth-first, self included) named ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def to_dict(self) -> dict:
        """JSON-safe rendering of the whole subtree."""
        return {
            "name": self.name,
            "wall_ns": self.wall_ns,
            "sim_ns": self.sim_ns,
            "attrs": dict(self.attrs),
            "metrics": dict(self.metrics),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, wall={self.wall_ns}ns, "
            f"children={len(self.children)})"
        )


class _NullContext:
    """Reusable no-op context manager — the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullContext()


class Tracer:
    """Per-thread span stacks over a shared enable flag.

    ``enabled`` is the single switch every instrumentation point
    checks.  ``clock`` (optional) is the simulated clock spans stamp
    alongside wall time — the service sets it when tracing starts.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.clock = None  # SimulatedClock | None (duck-typed: now_ns())
        self._local = threading.local()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self, clock=None) -> "Tracer":
        """Turn tracing on (optionally stamping a simulated clock)."""
        if clock is not None:
            self.clock = clock
        self.enabled = True
        return self

    def disable(self) -> None:
        """Turn tracing off and forget the simulated clock."""
        self.enabled = False
        self.clock = None

    # ------------------------------------------------------------------
    # span plumbing
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _now(self) -> tuple[int, "int | None"]:
        clock = self.clock
        return (
            time.perf_counter_ns(),
            clock.now_ns() if clock is not None else None,
        )

    def current(self) -> "Span | None":
        """This thread's innermost open span, or None."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def start_span(self, name: str, **attrs) -> Span:
        """Create a span *without* pushing it (root spans handed across
        threads; finish with :meth:`finish`)."""
        wall, sim = self._now()
        span = Span(name, wall, sim)
        if attrs:
            span.attrs.update(attrs)
        parent = self.current()
        if parent is not None:
            parent.children.append(span)
        return span

    def finish(self, span: Span) -> Span:
        """Stamp the span's end times (idempotent)."""
        if span.end_wall_ns is None:
            wall, sim = self._now()
            span.end_wall_ns = wall
            span.end_sim_ns = sim
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child span of the current one on this thread."""
        span = self.start_span(name, **attrs)
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            self.finish(span)

    @contextmanager
    def attach(self, span: Span):
        """Adopt an existing span as this thread's current span.

        The worker-pool handoff: the root span was created on the
        submitting thread; the worker attaches it so every child span
        opened while serving lands under it.  Does not finish the span.
        """
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()


#: The process-wide tracer every instrumentation point consults.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer singleton."""
    return _TRACER


def current_span() -> "Span | None":
    """The innermost open span on this thread, or None (fast when off)."""
    tracer = _TRACER
    if not tracer.enabled:
        return None
    return tracer.current()


def child_span(name: str):
    """Context manager for a child span; a shared no-op when disabled.

    The hot-path idiom::

        with child_span("sstable.probe") as sp:
            ...
            if sp is not None:
                sp.set(table=self.table_id)

    Attributes are set inside the ``if`` so the disabled path builds no
    kwargs dict at all.
    """
    tracer = _TRACER
    if not tracer.enabled:
        return _NULL
    return tracer.span(name)


def _fmt_ns(ns: "int | None") -> str:
    if ns is None:
        return "-"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f}µs"
    return f"{ns}ns"


def format_tree(span: Span, indent: int = 0) -> str:
    """Human-readable span tree (the ``trace-query`` CLI output)."""
    pad = "  " * indent
    parts = [f"{pad}{span.name}  wall={_fmt_ns(span.wall_ns)}"]
    if span.sim_ns is not None:
        parts.append(f"sim={_fmt_ns(span.sim_ns)}")
    if span.attrs:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        parts.append(f"[{attrs}]")
    if span.metrics:
        metrics = " ".join(
            f"{k}={int(v) if float(v).is_integer() else v}"
            for k, v in sorted(span.metrics.items())
        )
        parts.append(f"({metrics})")
    lines = ["  ".join(parts)]
    for child in span.children:
        lines.append(format_tree(child, indent + 1))
    return "\n".join(lines)
