"""Metrics federation: many registries, one labeled namespace.

Every replica owns a :class:`~repro.telemetry.registry.MetricsRegistry`
(stable across crash/restart — see ``cluster/replica.py``), and the
router/ring/repair counters live on the cluster registry.  A
:class:`FederatedRegistry` stitches them into one namespace by
*labeling*, not copying: each attached source carries a label provider
(``shard``, ``replica``, ``state``, ...) evaluated at snapshot time, so
a replica that flaps healthy→down→recovering re-labels itself without
any counter churn, and a replica restarted after a crash re-homes
automatically because its registry object never changed.

Two merge rules make the federation *correct* rather than just
concatenated:

* **Histogram buckets** share fixed bounds repo-wide
  (``DEFAULT_LATENCY_BUCKETS_NS``), so the federated bucket series is
  the element-wise sum — the merged count provably equals the sum of
  replica-local counts (asserted in tests).
* **Reservoir percentiles** are stratified: each source's retained
  samples are weighted by ``true_count / len(samples)`` before the
  nearest-rank walk, so a replica that served 10× the traffic moves the
  federated p99 10× as much, even though both reservoirs are capped at
  the same size.

:class:`ClusterTop` builds the ``repro cluster-top`` text dashboard on
top of the federation: per-shard qps (counter deltas over simulated
time), stratified p99, degraded-rate, WAL lag and quarantine backlog.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable

from .registry import (
    Histogram,
    MetricsRegistry,
    _escape_label,
    _fmt_num,
)

__all__ = [
    "FederatedRegistry",
    "ClusterTop",
    "merge_bucket_series",
    "stratified_percentile",
]


def stratified_percentile(
    parts: "Iterable[tuple[list[float], int]]", q: float
) -> float:
    """Nearest-rank percentile over stratified reservoir samples.

    ``parts`` is (samples, true_count) per source; each sample carries
    weight ``true_count / len(samples)``.  q is in [0, 100].
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    weighted: list[tuple[float, float]] = []
    total_w = 0.0
    for samples, count in parts:
        if not samples or count <= 0:
            continue
        w = count / len(samples)
        total_w += w * len(samples)
        weighted.extend((s, w) for s in samples)
    if not weighted:
        return 0.0
    weighted.sort(key=lambda sw: sw[0])
    target = q / 100.0 * total_w
    running = 0.0
    for value, w in weighted:
        running += w
        if running >= target:
            return value
    return weighted[-1][0]


def merge_bucket_series(
    series: "list[tuple[tuple[float, ...], list[int]]]",
) -> "tuple[tuple[float, ...], list[int]]":
    """Element-wise sum of per-bucket counts sharing identical bounds."""
    if not series:
        return (), []
    bounds0 = series[0][0]
    merged = [0] * (len(bounds0) + 1)
    for bounds, counts in series:
        if bounds != bounds0:
            raise ValueError(
                "histogram bounds differ across sources; refusing to merge"
            )
        for i, n in enumerate(counts):
            merged[i] += n
    return bounds0, merged


class _Source:
    __slots__ = ("name", "registry_fn", "labels_fn")

    def __init__(self, name, registry_fn, labels_fn) -> None:
        self.name = name
        self.registry_fn = registry_fn
        self.labels_fn = labels_fn


class FederatedRegistry:
    """Label-merging view over many live :class:`MetricsRegistry`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sources: dict[str, _Source] = {}

    # ------------------------------------------------------------------
    # source management
    # ------------------------------------------------------------------
    def attach(
        self,
        name: str,
        registry: "MetricsRegistry | Callable[[], MetricsRegistry | None]",
        labels: "dict[str, str] | Callable[[], dict[str, str]] | None" = None,
    ) -> None:
        """Attach (or replace) a source under ``name``.

        ``registry`` and ``labels`` may be callables, evaluated at every
        snapshot — the hook that keeps a restarted replica reachable and
        its ``state`` label current.
        """
        registry_fn = registry if callable(registry) else (lambda: registry)
        if labels is None:
            labels_fn = dict
        elif callable(labels):
            labels_fn = labels
        else:
            frozen = dict(labels)
            labels_fn = lambda: frozen  # noqa: E731
        with self._lock:
            self._sources[name] = _Source(name, registry_fn, labels_fn)

    def source_names(self) -> list[str]:
        """Names of the attached sources (each appears exactly once)."""
        with self._lock:
            return list(self._sources)

    def _resolve(self) -> list[tuple[dict[str, str], MetricsRegistry]]:
        with self._lock:
            sources = list(self._sources.values())
        out = []
        for src in sources:
            reg = src.registry_fn()
            if reg is None:
                continue
            out.append((dict(src.labels_fn()), reg))
        return out

    # ------------------------------------------------------------------
    # merged reads
    # ------------------------------------------------------------------
    def _iter_instruments(self, name_filter: "str | None" = None):
        for extra, reg in self._resolve():
            for inst in reg.instruments():
                if name_filter is not None and inst.name != name_filter:
                    continue
                labels = dict(inst.labels)
                labels.update(extra)
                yield labels, inst

    @staticmethod
    def _match(labels: dict, match: "dict | None") -> bool:
        if not match:
            return True
        return all(labels.get(k) == str(v) for k, v in match.items())

    def counter_total(self, name: str, match: "dict | None" = None) -> float:
        """Sum of a counter/gauge family across matching sources."""
        total = 0.0
        for labels, inst in self._iter_instruments(name):
            if isinstance(inst, Histogram):
                continue
            if self._match(labels, match):
                total += inst.value
        return total

    def merged_histogram(self, name: str, match: "dict | None" = None) -> dict:
        """Bucket-summed, reservoir-stratified merge of one family."""
        series: list[tuple[tuple[float, ...], list[int]]] = []
        parts: list[tuple[list[float], int]] = []
        count = 0
        total = 0.0
        for labels, inst in self._iter_instruments(name):
            if not isinstance(inst, Histogram):
                continue
            if not self._match(labels, match):
                continue
            series.append((inst.bounds, inst.bucket_counts()))
            parts.append(inst.reservoir_view())
            count += inst.count
            total += inst.total
        bounds, merged = merge_bucket_series(series)
        cumulative: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(bounds, merged):
            running += n
            cumulative.append((bound, running))
        if merged:
            cumulative.append((float("inf"), running + merged[-1]))
        return {
            "count": count,
            "sum": total,
            "buckets": cumulative,
            "p50": stratified_percentile(parts, 50),
            "p99": stratified_percentile(parts, 99),
            "sources": len(series),
        }

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe dump: name -> entries with federated labels."""
        out: dict[str, list[dict]] = {}
        for labels, inst in self._iter_instruments():
            entry: dict = {"labels": labels}
            if isinstance(inst, Histogram):
                entry["count"] = inst.count
                entry["sum"] = inst.total
                entry["p50"] = inst.percentile(50)
                entry["p99"] = inst.percentile(99)
            else:
                entry["value"] = inst.value
            out.setdefault(inst.name, []).append(entry)
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition with federated label sets."""
        lines: list[str] = []
        seen: set[str] = set()
        for labels, inst in self._iter_instruments():
            if inst.name not in seen:
                seen.add(inst.name)
                lines.append(f"# HELP {inst.name} {inst.help or inst.name}")
                lines.append(f"# TYPE {inst.name} {inst.kind}")
            suffix = _label_suffix(labels)
            if isinstance(inst, Histogram):
                for bound, cum in inst.cumulative_buckets():
                    le = "+Inf" if math.isinf(bound) else _fmt_num(bound)
                    pairs = dict(labels)
                    pairs["le"] = le
                    lines.append(
                        f"{inst.name}_bucket{_label_suffix(pairs)} {cum}"
                    )
                lines.append(f"{inst.name}_sum{suffix} {_fmt_num(inst.total)}")
                lines.append(f"{inst.name}_count{suffix} {inst.count}")
            else:
                lines.append(f"{inst.name}{suffix} {_fmt_num(inst.value)}")
        return "\n".join(lines) + "\n"


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    pairs = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + pairs + "}"


class ClusterTop:
    """Stateful per-shard text dashboard over a federated cluster.

    Rates (qps) are deltas between successive frames on the *simulated*
    clock — the clock traffic actually advances — so a frame taken after
    a burst reports the burst's rate, deterministically.
    """

    HEADER = (
        f"{'shard':>5}  {'repl':>4}  {'state':<22}  {'qps':>9}  "
        f"{'p99(ms)':>8}  {'degr%':>6}  {'wal-lag':>7}  {'quar':>4}"
    )

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self._prev_sim_ns: "int | None" = None
        self._prev_subqueries: dict[int, float] = {}

    def _shard_rows(self) -> list[dict]:
        cluster = self.cluster
        fed = cluster.federation
        now_ns = cluster.clock.now_ns()
        elapsed_s = (
            (now_ns - self._prev_sim_ns) / 1e9
            if self._prev_sim_ns is not None
            else 0.0
        )
        rows = []
        for sid in sorted(cluster.replicas):
            reps = cluster.replicas[sid]
            states = [rep.health.state for rep in reps]
            up = sum(1 for s in states if s == "healthy")
            sub = fed.counter_total(
                "cluster_shard_subqueries", {"shard": sid}
            )
            prev = self._prev_subqueries.get(sid, 0.0)
            qps = (sub - prev) / elapsed_s if elapsed_s > 0 else 0.0
            self._prev_subqueries[sid] = sub
            degraded = fed.counter_total(
                "cluster_shard_degraded", {"shard": sid}
            )
            degr_rate = degraded / sub if sub else 0.0
            merged = fed.merged_histogram(
                "service_latency_sim_ns", {"shard": str(sid)}
            )
            wal_lag = max(
                (
                    fed.counter_total(
                        "replica_wal_lag_records",
                        {"shard": str(sid), "replica": rep.name},
                    )
                    for rep in reps
                ),
                default=0.0,
            )
            quar = fed.counter_total(
                "replica_quarantine_ranges", {"shard": str(sid)}
            )
            rows.append(
                {
                    "shard": sid,
                    "replicas": len(reps),
                    "up": up,
                    "states": states,
                    "qps": qps,
                    "p99_ms": merged["p99"] / 1e6,
                    "degraded_rate": degr_rate,
                    "wal_lag": wal_lag,
                    "quarantine": quar,
                }
            )
        self._prev_sim_ns = now_ns
        return rows

    def frame(self) -> str:
        """One rendered dashboard frame."""
        cluster = self.cluster
        rows = self._shard_rows()
        sim_s = cluster.clock.now_ns() / 1e9
        head = [f"cluster-top  sim={sim_s:.3f}s  shards={len(rows)}"]
        store = getattr(cluster, "trace_store", None)
        if store is not None:
            st = store.stats()
            head.append(
                f"traces kept={st['kept']}"
                f" (interesting={st['kept_interesting']}"
                f" sampled={st['kept_sampled']})"
            )
        drift = getattr(cluster.router, "drift_scores", None)
        if drift is not None:
            scores = drift()
            if scores:
                worst = max(scores.values())
                head.append(f"drift max={worst:.3f}")
        lines = ["  ".join(head), self.HEADER]
        for r in rows:
            state = ",".join(sorted(set(r["states"]))) or "-"
            lines.append(
                f"{r['shard']:>5}  {r['up']}/{r['replicas']:<2}  "
                f"{state:<22}  {r['qps']:>9.1f}  {r['p99_ms']:>8.2f}  "
                f"{100 * r['degraded_rate']:>6.2f}  "
                f"{int(r['wal_lag']):>7}  {int(r['quarantine']):>4}"
            )
        return "\n".join(lines)
