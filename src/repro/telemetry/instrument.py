"""Filter-internal observability: the :class:`Instrumented` mixin.

The paper's adaptive level selection steers by internal state (load
factor ``P1`` targeting ~0.5, the chosen stored-level span) that was
previously visible only by poking private attributes.  ``Instrumented``
gives every filter and the RBF a uniform, *pull-based* surface:

* :meth:`Instrumented.telemetry` — a flat ``{name: number}`` dict of
  the structure's internal gauges, sampled at call time;
* :meth:`Instrumented.register_metrics` — registers one
  :class:`~repro.telemetry.registry.Gauge` per telemetry key on a
  registry, each backed by a callback, so a registry snapshot samples
  the live structure with zero steady-state bookkeeping.

Subclasses declare gauges by listing attribute/property names in
``_TELEMETRY`` and/or overriding :meth:`telemetry` (call ``super()`` and
extend).  Values must be numbers; non-numeric and failing attributes are
skipped rather than poisoning a snapshot.
"""

from __future__ import annotations

from repro.telemetry.registry import Gauge, MetricsRegistry

__all__ = ["Instrumented"]


class Instrumented:
    """Mixin: expose internal state as pull-based telemetry gauges."""

    #: Attribute / property names sampled by :meth:`telemetry`.
    _TELEMETRY: tuple[str, ...] = ()

    def telemetry(self) -> dict[str, float]:
        """Internal gauges as a flat dict, sampled now."""
        out: dict[str, float] = {}
        for name in self._TELEMETRY:
            try:
                value = getattr(self, name)
            except Exception:  # lint: allow[bare-except] — arbitrary user property
                continue
            if callable(value):
                try:
                    value = value()
                except Exception:  # lint: allow[bare-except] — arbitrary user callable
                    continue
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            out[name] = value
        return out

    def register_metrics(
        self,
        registry: MetricsRegistry,
        *,
        component: str = "filter",
        prefix: "str | None" = None,
        **extra_labels: str,
    ) -> list[Gauge]:
        """Register callback gauges for every telemetry key.

        Each gauge reads the live structure when the registry is
        snapshotted.  ``prefix`` defaults to the lowercased class name;
        extra labels distinguish instances (e.g. ``table="7"``).
        """
        prefix = prefix if prefix is not None else type(self).__name__.lower()
        labels = {"component": component, **extra_labels}
        gauges: list[Gauge] = []
        for name in self.telemetry():
            gauge = registry.gauge(
                f"{prefix}_{name}",
                help=f"{type(self).__name__}.{name} (live)",
                labels=labels,
            )
            # Bind the *name*, read through getattr at sample time, so
            # the gauge tracks the structure instead of a stale value.
            gauge.set_fn(lambda self=self, name=name: _sample(self, name))
            gauges.append(gauge)
        return gauges


def _sample(obj: Instrumented, name: str) -> float:
    value = getattr(obj, name)
    if callable(value):
        value = value()
    return float(value)
