"""Distributed trace propagation: contexts, span ids, tail-sampled store.

PR 4's tracer covers one process; the cluster tier routes a query
through a router thread, per-replica service workers, WAL writers and
repair jobs — so a trace must *propagate*.  The unit of propagation is
:class:`TraceContext`: an immutable (trace_id, parent span_id, deadline
budget, sampling decision) tuple the router mints once per routed
request and hands down every exchange — primaries, failover retries,
hedges, hinted-handoff replays and anti-entropy traffic alike.  The
callee stamps the ids onto its own root span, which the caller stitches
back into its attempt span when the reply (or the losing hedge, later)
settles, yielding one tree per trace id.

Completed trees land in a :class:`TraceStore` ring buffer with **tail
sampling**: the keep/drop decision is taken at the *end* of the trace,
so anything interesting — an error, a degraded merge, a deadline miss,
a hedge win, a failover — is always kept, while boring traces survive
only at the seeded head-sampling rate carried in the context.  Two runs
with the same seed keep the same boring traces.

Everything here is allocation-free when the tracer is disabled: the
router only mints contexts under ``tracer.enabled``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.hashing.mix64 import mix64

from .tracing import Span, format_tree

__all__ = [
    "TraceContext",
    "TraceStore",
    "get_trace_store",
    "install_trace_store",
    "fmt_trace_id",
]

#: Attribute values of ``reason`` that mark a span as healthy; anything
#: else (deadline, shed, breaker_open, crash, ...) makes its trace
#: interesting and therefore always tail-sampled.
_OK_REASONS = frozenset({None, "", "ok"})


def fmt_trace_id(trace_id: int) -> str:
    """Canonical 16-hex-digit rendering of a trace id."""
    return f"{trace_id & ((1 << 64) - 1):016x}"


def parse_trace_id(text: "str | int") -> int:
    """Accept either the canonical hex form or a bare integer."""
    if isinstance(text, int):
        return text
    return int(text, 16)


@dataclass(frozen=True)
class TraceContext:
    """Immutable propagation envelope for one hop of one trace.

    ``span_id`` is the *caller's* span id — the callee records it as
    ``parent_span_id`` so trees re-assemble from ids alone even though
    the in-process transport also stitches span objects structurally.
    ``deadline_ns`` is the absolute simulated-clock deadline the callee
    inherits (its remaining budget is ``deadline_ns - now``); ``sampled``
    is the seeded head-sampling decision tail-sampling falls back to.
    """

    trace_id: int
    span_id: int
    deadline_ns: "int | None"
    sampled: bool

    def child(
        self, span_id: int, deadline_ns: "int | None" = None
    ) -> "TraceContext":
        """The context to hand one hop down: new parent span id, and a
        (possibly tightened) deadline budget."""
        return TraceContext(
            self.trace_id,
            span_id,
            self.deadline_ns if deadline_ns is None else deadline_ns,
            self.sampled,
        )

    def budget_ns(self, now_ns: int) -> "int | None":
        """Remaining deadline budget at ``now_ns`` (simulated clock)."""
        if self.deadline_ns is None:
            return None
        return self.deadline_ns - now_ns

    def stamp(self, span: Span) -> Span:
        """Record the propagation ids on a callee-side span."""
        span.set(
            trace_id=fmt_trace_id(self.trace_id),
            parent_span_id=self.span_id,
        )
        return span


class TraceStore:
    """Seeded, tail-sampling ring buffer of completed trace trees.

    ``new_context`` mints root contexts (trace id + head-sampling draw)
    deterministically from the seed; ``record`` applies the tail
    decision: keep every trace whose tree (or recorded outcome) is
    interesting — error, degraded, deadline miss, hedge win, failover —
    and otherwise keep only head-sampled traces.  The ring holds the
    newest ``cap`` kept traces.
    """

    #: Odd increment for the trace-id stream (splitmix64 golden gamma).
    _GAMMA = 0x9E3779B97F4A7C15

    def __init__(
        self, cap: int = 256, seed: int = 0, sample_rate: float = 0.05
    ) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = cap
        self.seed = seed
        self.sample_rate = sample_rate
        self._lock = threading.Lock()
        self._next_trace = 0
        self._next_span = 0
        #: insertion-ordered trace_id -> record; oldest evicted first.
        self._ring: dict[int, dict] = {}
        self.traces_started = 0
        self.traces_recorded = 0
        self.kept_interesting = 0
        self.kept_sampled = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # context + id minting
    # ------------------------------------------------------------------
    def new_context(self, deadline_ns: "int | None" = None) -> TraceContext:
        """Mint a fresh root context (deterministic under the seed)."""
        with self._lock:
            self._next_trace += 1
            n = self._next_trace
            self.traces_started += 1
        trace_id = mix64((self.seed + n * self._GAMMA) & ((1 << 64) - 1))
        # Seeded head-sampling: derive the draw from the trace id itself
        # so the decision replays without a shared RNG stream.
        draw = mix64(trace_id ^ self._GAMMA) / float(1 << 64)
        return TraceContext(
            trace_id=trace_id,
            span_id=0,
            deadline_ns=deadline_ns,
            sampled=draw < self.sample_rate,
        )

    def next_span_id(self) -> int:
        """Process-unique span id for caller-side hop spans."""
        with self._lock:
            self._next_span += 1
            return self._next_span

    # ------------------------------------------------------------------
    # tail sampling
    # ------------------------------------------------------------------
    @staticmethod
    def is_interesting(span: Span) -> bool:
        """Depth-first scan for anything worth always keeping."""
        attrs = span.attrs
        if attrs:
            if attrs.get("error"):
                return True
            if attrs.get("degraded") is True:
                return True
            if attrs.get("hedge_win") or attrs.get("winner") == "hedge":
                return True
            if attrs.get("failover"):
                return True
            if attrs.get("deadline_missed"):
                return True
            if attrs.get("reason") not in _OK_REASONS:
                return True
        return any(TraceStore.is_interesting(c) for c in span.children)

    def record(
        self,
        ctx: TraceContext,
        root: Span,
        *,
        interesting: bool = False,
        kind: str = "",
    ) -> bool:
        """Apply the tail decision for a finished trace; True if kept.

        ``interesting`` lets the caller pass outcome knowledge the tree
        may not carry yet (e.g. a losing hedge that has not settled).
        """
        keep_interesting = interesting or self.is_interesting(root)
        keep = keep_interesting or ctx.sampled
        with self._lock:
            self.traces_recorded += 1
            if not keep:
                self.dropped += 1
                return False
            if keep_interesting:
                self.kept_interesting += 1
            else:
                self.kept_sampled += 1
            self._ring[ctx.trace_id] = {
                "trace_id": ctx.trace_id,
                "kind": kind,
                "interesting": keep_interesting,
                "sampled": ctx.sampled,
                "root": root,
            }
            while len(self._ring) > self.cap:
                oldest = next(iter(self._ring))
                del self._ring[oldest]
        return True

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def get(self, trace_id: "int | str") -> "Span | None":
        """Root span of a kept trace, by id (int or hex), or None."""
        key = parse_trace_id(trace_id)
        with self._lock:
            rec = self._ring.get(key)
            return None if rec is None else rec["root"]

    def trace_ids(self) -> list[str]:
        """Hex ids of kept traces, oldest first."""
        with self._lock:
            return [fmt_trace_id(t) for t in self._ring]

    def records(self) -> list[dict]:
        """Shallow copies of the kept records, oldest first."""
        with self._lock:
            return [dict(rec) for rec in self._ring.values()]

    def find(self, span_name: str) -> "Span | None":
        """Newest kept trace containing a span named ``span_name``."""
        with self._lock:
            recs = list(self._ring.values())
        for rec in reversed(recs):
            if rec["root"].find(span_name) is not None:
                return rec["root"]
        return None

    def format(self, trace_id: "int | str") -> str:
        """Render the cross-replica tree (per-hop wall + sim timings)."""
        root = self.get(trace_id)
        if root is None:
            return f"trace {trace_id} not found (evicted or never kept)"
        return format_tree(root)

    def stats(self) -> dict:
        """Sampling accounting (the trace-smoke CLI prints this)."""
        with self._lock:
            return {
                "started": self.traces_started,
                "recorded": self.traces_recorded,
                "kept": len(self._ring),
                "kept_interesting": self.kept_interesting,
                "kept_sampled": self.kept_sampled,
                "dropped": self.dropped,
                "cap": self.cap,
                "sample_rate": self.sample_rate,
            }

    def clear(self) -> None:
        """Drop every kept trace (bench phase isolation)."""
        with self._lock:
            self._ring.clear()


#: Process-wide store; None until a cluster/CLI installs one, so the
#: disabled path stays a single global load.
_STORE: "TraceStore | None" = None


def get_trace_store() -> "TraceStore | None":
    """The process-wide trace store, or None when tracing is local-only."""
    return _STORE


def install_trace_store(store: "TraceStore | None") -> "TraceStore | None":
    """Install (or clear, with None) the process-wide store; returns the
    previous one so tests can restore it."""
    global _STORE
    old, _STORE = _STORE, store
    return old
