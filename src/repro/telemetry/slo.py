"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOSpec` names an objective over a sliding window on the
**simulated clock** (the clock faults and deadlines act on, so chaos
runs evaluate deterministically):

* ``availability`` — fraction of requests served non-degraded;
* ``latency`` — fraction of requests at or under ``threshold_ns``
  (a p-quantile SLO: objective 0.99 + threshold = "p99 <= threshold");
* ``false_negative`` — the one-sided-error budget: *any* bad event
  burns the entire budget instantly (burn rate = +inf), because a range
  filter that returns a false negative has broken its contract, not
  missed a target.

Alerting follows the multi-window burn-rate recipe: a severity fires
only when the burn rate — observed error rate divided by the budget
``1 - objective`` — exceeds its threshold over BOTH a short and a long
window, so a single bad batch cannot page but a sustained burn pages
fast.  Alert state transitions are recorded three ways: in the
engine's transition log (the ``SLO_REPORT.json`` artifact), as metrics
(``slo_alert_active``/``slo_alert_transitions``/``slo_burn_rate``),
and as one-shot tracer spans (``slo.alert``) when tracing is on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .registry import MetricsRegistry
from .tracing import get_tracer

__all__ = [
    "SLOSpec",
    "BurnRule",
    "SLOEngine",
    "DEFAULT_BURN_RULES",
    "default_cluster_slos",
]

_INF = float("inf")


@dataclass(frozen=True)
class SLOSpec:
    """One objective: ``objective`` fraction of events good over
    ``window_ns`` of simulated time."""

    name: str
    kind: str  # "availability" | "latency" | "false_negative"
    objective: float = 0.99
    threshold_ns: "int | None" = None  # latency kind only
    window_ns: int = 5_000_000_000

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency", "false_negative"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1): {self.objective}")
        if self.kind == "latency" and self.threshold_ns is None:
            raise ValueError("latency SLOs need threshold_ns")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnRule:
    """Fire ``severity`` when burn rate exceeds ``threshold`` over both
    the short and long windows (fractions of the spec window)."""

    severity: str  # "page" | "ticket"
    short_frac: float
    long_frac: float
    threshold: float


#: Page on a fast sustained burn, ticket on a slow one — the classic
#: two-tier pairing, scaled to the spec's own window.
DEFAULT_BURN_RULES: tuple[BurnRule, ...] = (
    BurnRule("page", short_frac=1 / 12, long_frac=1 / 2, threshold=10.0),
    BurnRule("ticket", short_frac=1 / 2, long_frac=1.0, threshold=2.0),
)


def default_cluster_slos(window_ns: int = 5_000_000_000) -> list[SLOSpec]:
    """The stock cluster objectives ``FilterCluster.enable_slo`` wires.

    The latency threshold is deliberately loose (it guards against
    pathology, not regressions — the perf gate owns those), so a
    fault-free control run never fires; availability is what chaos
    faults burn.
    """
    return [
        SLOSpec("availability", "availability", 0.99, window_ns=window_ns),
        SLOSpec(
            "p99-latency",
            "latency",
            0.99,
            threshold_ns=250_000_000,
            window_ns=window_ns,
        ),
        SLOSpec(
            "zero-false-negative",
            "false_negative",
            0.999999,
            window_ns=window_ns,
        ),
    ]


class _SloState:
    __slots__ = ("spec", "events", "firing")

    def __init__(self, spec: SLOSpec) -> None:
        self.spec = spec
        #: coalesced (bucket_start_ns, good, bad) triples, oldest first.
        self.events: list[list[float]] = []
        self.firing: dict[str, bool] = {}


class SLOEngine:
    """Sliding-window burn-rate evaluator on the simulated clock."""

    #: Events are coalesced into window/BUCKETS-wide buckets so memory
    #: stays bounded no matter the request rate.
    BUCKETS = 64

    def __init__(
        self,
        clock,
        registry: "MetricsRegistry | None" = None,
        burn_rules: tuple[BurnRule, ...] = DEFAULT_BURN_RULES,
    ) -> None:
        self.clock = clock
        self.registry = registry
        self.burn_rules = burn_rules
        self._lock = threading.Lock()
        self._slos: dict[str, _SloState] = {}
        self.transitions: list[dict] = []

    # ------------------------------------------------------------------
    # spec + event intake
    # ------------------------------------------------------------------
    def add(self, spec: SLOSpec) -> SLOSpec:
        """Register one objective and zero its per-severity alert state."""
        with self._lock:
            if spec.name in self._slos:
                raise ValueError(f"SLO {spec.name!r} already registered")
            state = _SloState(spec)
            for rule in self.burn_rules:
                state.firing[rule.severity] = False
            self._slos[spec.name] = state
        if self.registry is not None:
            for rule in self.burn_rules:
                self.registry.gauge(
                    "slo_alert_active",
                    "1 while the severity is firing",
                    {"slo": spec.name, "severity": rule.severity},
                ).set(0.0)
        return spec

    def specs(self) -> list[SLOSpec]:
        """The registered objectives, in registration order."""
        with self._lock:
            return [s.spec for s in self._slos.values()]

    def record(self, name: str, good: int = 0, bad: int = 0) -> None:
        """Count good/bad events at the current simulated time."""
        if good == 0 and bad == 0:
            return
        now = self.clock.now_ns()
        with self._lock:
            state = self._slos[name]
            bucket_ns = max(1, state.spec.window_ns // self.BUCKETS)
            bucket = now - (now % bucket_ns)
            events = state.events
            if events and events[-1][0] == bucket:
                events[-1][1] += good
                events[-1][2] += bad
            else:
                events.append([bucket, good, bad])
            horizon = now - state.spec.window_ns - bucket_ns
            while events and events[0][0] < horizon:
                events.pop(0)

    def record_latency(self, name: str, latency_ns: int) -> None:
        """Classify one latency sample against the spec threshold."""
        with self._lock:
            threshold = self._slos[name].spec.threshold_ns
        if threshold is not None and latency_ns > threshold:
            self.record(name, bad=1)
        else:
            self.record(name, good=1)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _burn(self, state: _SloState, window_ns: int, now: int) -> float:
        spec = state.spec
        horizon = now - window_ns
        good = bad = 0.0
        for bucket, g, b in state.events:
            if bucket >= horizon:
                good += g
                bad += b
        if bad == 0:
            return 0.0
        if spec.kind == "false_negative":
            return _INF
        rate = bad / (good + bad)
        return rate / spec.budget if spec.budget > 0 else _INF

    def evaluate(self) -> list[dict]:
        """Re-derive alert states; returns the new transitions."""
        now = self.clock.now_ns()
        new_transitions: list[dict] = []
        with self._lock:
            states = list(self._slos.values())
        for state in states:
            spec = state.spec
            for rule in self.burn_rules:
                short = self._burn(
                    state, max(1, int(spec.window_ns * rule.short_frac)), now
                )
                long = self._burn(
                    state, max(1, int(spec.window_ns * rule.long_frac)), now
                )
                firing = short >= rule.threshold and long >= rule.threshold
                if self.registry is not None:
                    self.registry.gauge(
                        "slo_burn_rate",
                        "burn rate over the rule's short window",
                        {"slo": spec.name, "severity": rule.severity},
                    ).set(min(short, 1e9))
                if firing == state.firing[rule.severity]:
                    continue
                state.firing[rule.severity] = firing
                transition = {
                    "slo": spec.name,
                    "severity": rule.severity,
                    "to": "firing" if firing else "resolved",
                    "at_sim_ns": now,
                    "burn_short": short if short != _INF else "inf",
                    "burn_long": long if long != _INF else "inf",
                }
                new_transitions.append(transition)
                self._record_transition(spec, rule, firing, short, long)
        with self._lock:
            self.transitions.extend(new_transitions)
        return new_transitions

    def _record_transition(
        self, spec: SLOSpec, rule: BurnRule, firing: bool, short, long
    ) -> None:
        if self.registry is not None:
            self.registry.counter(
                "slo_alert_transitions",
                "alert state changes",
                {
                    "slo": spec.name,
                    "severity": rule.severity,
                    "to": "firing" if firing else "resolved",
                },
            ).inc()
            self.registry.gauge(
                "slo_alert_active",
                "1 while the severity is firing",
                {"slo": spec.name, "severity": rule.severity},
            ).set(1.0 if firing else 0.0)
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("slo.alert") as sp:
                sp.set(
                    slo=spec.name,
                    severity=rule.severity,
                    to="firing" if firing else "resolved",
                    burn_short=round(short, 3) if short != _INF else "inf",
                    burn_long=round(long, 3) if long != _INF else "inf",
                )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def active_alerts(self) -> list[tuple[str, str]]:
        """(slo, severity) pairs currently firing."""
        with self._lock:
            return [
                (state.spec.name, sev)
                for state in self._slos.values()
                for sev, firing in state.firing.items()
                if firing
            ]

    def ever_fired(self) -> set[tuple[str, str]]:
        """(slo, severity) pairs that fired at least once."""
        with self._lock:
            return {
                (t["slo"], t["severity"])
                for t in self.transitions
                if t["to"] == "firing"
            }

    def report(self) -> dict:
        """JSON-safe dump — the ``SLO_REPORT.json`` artifact."""
        with self._lock:
            return {
                "sim_now_ns": self.clock.now_ns(),
                "specs": [
                    {
                        "name": s.spec.name,
                        "kind": s.spec.kind,
                        "objective": s.spec.objective,
                        "threshold_ns": s.spec.threshold_ns,
                        "window_ns": s.spec.window_ns,
                    }
                    for s in self._slos.values()
                ],
                "burn_rules": [
                    {
                        "severity": r.severity,
                        "short_frac": r.short_frac,
                        "long_frac": r.long_frac,
                        "threshold": r.threshold,
                    }
                    for r in self.burn_rules
                ],
                "active": [
                    {"slo": name, "severity": sev}
                    for state in self._slos.values()
                    for sev, firing in state.firing.items()
                    if firing
                    for name in (state.spec.name,)
                ],
                "transitions": list(self.transitions),
            }
