"""Unified telemetry: metrics registry, request tracing, profiling.

The observability substrate for the whole repository (DESIGN.md §9):

* :mod:`repro.telemetry.registry` — typed Counter/Gauge/Histogram
  instruments with JSON and Prometheus-text exposition; the backing
  store :class:`~repro.storage.env.IoStats` and
  :class:`~repro.service.health.ServiceStats` are thin views over.
* :mod:`repro.telemetry.tracing` — ``Span``/``Tracer`` request tracing
  on the wall *and* simulated clocks, propagated from
  ``FilterService.submit`` down to individual RBF block fetches.
* :mod:`repro.telemetry.instrument` — the ``Instrumented`` mixin that
  exposes filter-internal gauges (load factor ``P1``, stored-level
  span, fetch-cache hit ratio, serialize timings).
* :mod:`repro.telemetry.profiler` — the ``REPRO_PROFILE=1`` sampling
  profiler hook that lands per-phase breakdowns in bench JSON.

Cluster-scale pieces (DESIGN.md §14), sharing the same span/metric
model:

* :mod:`repro.telemetry.context` — ``TraceContext`` propagation across
  router→replica exchanges and the tail-sampling ``TraceStore``.
* :mod:`repro.telemetry.federation` — ``FederatedRegistry`` merging
  every replica registry into one labeled namespace; ``ClusterTop``.
* :mod:`repro.telemetry.slo` — declarative SLOs with multi-window
  burn-rate alerting on the simulated clock.
* :mod:`repro.telemetry.drift` — per-shard workload sketches scored
  with a PSI-style divergence between trailing windows.
"""

from repro.telemetry.context import (
    TraceContext,
    TraceStore,
    get_trace_store,
    install_trace_store,
)
from repro.telemetry.drift import DEFAULT_DRIFT_THRESHOLD, DriftDetector
from repro.telemetry.federation import (
    ClusterTop,
    FederatedRegistry,
    stratified_percentile,
)
from repro.telemetry.instrument import Instrumented
from repro.telemetry.profiler import PhaseProfiler, get_profiler, profile_phase
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reservoir,
    global_registry,
    percentile,
    set_global_registry,
)
from repro.telemetry.slo import BurnRule, SLOEngine, SLOSpec, default_cluster_slos
from repro.telemetry.tracing import (
    Span,
    Tracer,
    child_span,
    current_span,
    format_tree,
    get_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Reservoir",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "global_registry",
    "set_global_registry",
    "percentile",
    "Span",
    "Tracer",
    "get_tracer",
    "current_span",
    "child_span",
    "format_tree",
    "Instrumented",
    "PhaseProfiler",
    "get_profiler",
    "profile_phase",
    "TraceContext",
    "TraceStore",
    "get_trace_store",
    "install_trace_store",
    "FederatedRegistry",
    "ClusterTop",
    "stratified_percentile",
    "SLOSpec",
    "SLOEngine",
    "BurnRule",
    "default_cluster_slos",
    "DriftDetector",
    "DEFAULT_DRIFT_THRESHOLD",
]
