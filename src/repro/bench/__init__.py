"""Benchmark harness: filter registry, metric runners, and the per-figure
experiment drivers that regenerate every table and figure of the paper's
evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
paper-vs-measured record)."""

from repro.bench.experiments import ExperimentConfig
from repro.bench.metrics import (
    FilterRun,
    measure_fpr,
    run_filter,
    run_point_filter,
)
from repro.bench.registry import FILTER_NAMES, build_filter
from repro.bench.tables import format_series, format_table

__all__ = [
    "ExperimentConfig",
    "FilterRun",
    "measure_fpr",
    "run_filter",
    "run_point_filter",
    "FILTER_NAMES",
    "build_filter",
    "format_series",
    "format_table",
]
