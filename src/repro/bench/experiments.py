"""Experiment drivers — one function per table/figure of the paper.

Each driver regenerates the data behind one evaluation artifact (workload
generation, parameter sweep, baselines, measurement) and returns
``(data, text)``: structured results for assertions plus a formatted table
mirroring the figure.  The ``benchmarks/`` tree wraps each driver in a
pytest-benchmark target; EXPERIMENTS.md records paper-vs-measured.

Scale knobs come from :class:`ExperimentConfig`; environment variables
``REPRO_N_KEYS`` / ``REPRO_N_QUERIES`` let a user rerun everything at
paper scale (50M keys) given patience.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.analysis.bounds import space_for_fpr
from repro.analysis.independence import independence_table
from repro.bench.metrics import (
    DEFAULT_IO_COST_NS,
    FilterRun,
    run_filter,
    run_point_filter,
)
from repro.bench.registry import build_filter
from repro.bench.tables import format_series, format_table
from repro.core.rencoder import REncoder
from repro.core.variants import REncoderSS
from repro.workloads.datasets import generate_keys, split_keys
from repro.workloads.queries import (
    correlated_range_queries,
    left_bounded_range_queries,
    point_queries,
    uniform_range_queries,
)

__all__ = [
    "ExperimentConfig",
    "fig3_build_time",
    "fig3_workload_time",
    "fig4_overall_time",
    "fig5_fpr_range",
    "fig6_throughput_range",
    "fig7_point_queries",
    "fig8_point_optimised",
    "fig9_correlated_queries",
    "fig10_real_datasets",
    "table1_summary",
    "table2_space_cost",
    "table4_independence",
]

#: Filters shown in the range-query figures (Figures 5, 6, 9, 10).
RANGE_FILTERS = (
    "SuRF",
    "Rosetta",
    "SNARF",
    "Proteus",
    "ProteusNS",
    "REncoder",
    "REncoderSS",
    "REncoderSE",
)


@dataclass
class ExperimentConfig:
    """Shared scale/seed knobs for every driver."""

    n_keys: int = int(os.environ.get("REPRO_N_KEYS", 20_000))
    n_queries: int = int(os.environ.get("REPRO_N_QUERIES", 2_000))
    bpks: Sequence[int] = (10, 14, 18, 22, 26)
    key_bits: int = 64
    seed: int = 42
    io_cost_ns: int = DEFAULT_IO_COST_NS
    sample_fraction: float = 0.1  # sampled queries for use-case-B filters
    keys: np.ndarray | None = field(default=None, repr=False)

    def dataset(self, distribution: str = "uniform") -> np.ndarray:
        """Key set for the named distribution (cached for uniform)."""
        if distribution == "uniform" and self.keys is not None:
            return self.keys
        return generate_keys(
            self.n_keys, distribution, key_bits=self.key_bits, seed=self.seed
        )

    def n_samples(self) -> int:
        """How many queries the use-case-B filters may sample."""
        return max(10, int(self.n_queries * self.sample_fraction))


def _sweep(
    cfg: ExperimentConfig,
    filters: Sequence[str],
    keys: np.ndarray,
    queries: list[tuple[int, int]],
    sample_queries: list[tuple[int, int]],
    *,
    point: bool = False,
) -> dict[str, list[FilterRun]]:
    """Build each filter at every BPK and run the workload."""
    results: dict[str, list[FilterRun]] = {name: [] for name in filters}
    for name in filters:
        for bpk in cfg.bpks:
            start = time.perf_counter()
            filt = build_filter(
                name,
                keys,
                bpk,
                key_bits=cfg.key_bits,
                seed=cfg.seed,
                sample_queries=sample_queries,
            )
            build_seconds = time.perf_counter() - start
            runner = run_point_filter if point else run_filter
            results[name].append(
                runner(
                    filt,
                    queries,
                    io_cost_ns=cfg.io_cost_ns,
                    build_seconds=build_seconds,
                )
            )
    return results


def _series_text(
    cfg: ExperimentConfig,
    results: dict[str, list[FilterRun]],
    metric: str,
    title: str,
) -> str:
    series = {
        name: [getattr(r, metric) for r in runs]
        for name, runs in results.items()
    }
    return format_series("bpk", list(cfg.bpks), series, title)


# ----------------------------------------------------------------------
# Figure 3(a): build time, REncoder vs Bloom filter
# ----------------------------------------------------------------------
def fig3_build_time(
    cfg: ExperimentConfig | None = None,
    n_keys_list: Sequence[int] | None = None,
    bits_per_key: float = 18.0,
):
    """Build time vs number of keys (Figure 3a).

    Paper shape: both linear in n; REncoder within a small constant of the
    Bloom filter (82% of Bloom's build speed) because bulk BT insertion
    amortises the per-prefix work.
    """
    cfg = cfg or ExperimentConfig()
    if n_keys_list is None:
        base = cfg.n_keys
        n_keys_list = [base // 4, base // 2, base, base * 2]
    rows = []
    for n in n_keys_list:
        keys = generate_keys(n, "uniform", key_bits=cfg.key_bits, seed=cfg.seed)
        timings = {}
        for name in ("Bloom", "REncoder"):
            start = time.perf_counter()
            build_filter(name, keys, bits_per_key, key_bits=cfg.key_bits,
                         seed=cfg.seed)
            timings[name] = time.perf_counter() - start
        rows.append(
            {
                "n_keys": n,
                "bloom_ms": timings["Bloom"] * 1e3,
                "rencoder_ms": timings["REncoder"] * 1e3,
                "ratio": timings["REncoder"] / max(timings["Bloom"], 1e-12),
            }
        )
    return rows, format_table(rows, "Figure 3(a): build time vs #keys")


# ----------------------------------------------------------------------
# Figure 3(b): workload execution time, REncoder vs Bloom filter
# ----------------------------------------------------------------------
def fig3_workload_time(cfg: ExperimentConfig | None = None):
    """Workload (10k empty 2-32 range queries) execution time vs BPK.

    Paper shape: REncoder about an order of magnitude faster than using a
    Bloom filter for range queries, across all BPKs — the Bloom baseline
    must probe every key in the range and still eats false-positive I/Os.
    """
    cfg = cfg or ExperimentConfig()
    keys = cfg.dataset()
    queries = uniform_range_queries(
        keys, cfg.n_queries, min_size=2, max_size=32,
        key_bits=cfg.key_bits, seed=cfg.seed + 1,
    )
    results = _sweep(cfg, ("Bloom", "REncoder"), keys, queries, [])
    rows = []
    for i, bpk in enumerate(cfg.bpks):
        row = {"bpk": bpk}
        for name in ("Bloom", "REncoder"):
            run = results[name][i]
            workload_s = run.filter_seconds + run.positives * cfg.io_cost_ns * 1e-9
            row[f"{name.lower()}_s"] = workload_s
            row[f"{name.lower()}_fpr"] = run.fpr
        row["speedup"] = row["bloom_s"] / max(row["rencoder_s"], 1e-12)
        rows.append(row)
    return rows, format_table(
        rows, "Figure 3(b): workload execution time vs BPK (range 2-32)"
    )


# ----------------------------------------------------------------------
# Figure 4: overall time (build + workload)
# ----------------------------------------------------------------------
def fig4_overall_time(cfg: ExperimentConfig | None = None):
    """Overall time = build + workload, Bloom vs REncoder vs SS/SE.

    Paper shape: despite a slightly slower build, REncoder's overall time
    beats the Bloom filter by an order of magnitude; REncoderSS(SE) is
    better still.
    """
    cfg = cfg or ExperimentConfig()
    keys = cfg.dataset()
    queries = uniform_range_queries(
        keys, cfg.n_queries, min_size=2, max_size=32,
        key_bits=cfg.key_bits, seed=cfg.seed + 1,
    )
    sample = queries[: cfg.n_samples()]
    results = _sweep(
        cfg, ("Bloom", "REncoder", "REncoderSS", "REncoderSE"),
        keys, queries, sample,
    )
    rows = []
    for i, bpk in enumerate(cfg.bpks):
        row = {"bpk": bpk}
        for name, runs in results.items():
            run = runs[i]
            total = (
                run.build_seconds
                + run.filter_seconds
                + run.positives * cfg.io_cost_ns * 1e-9
            )
            row[f"{name}_s"] = total
        rows.append(row)
    return rows, format_table(rows, "Figure 4: overall time vs BPK")


# ----------------------------------------------------------------------
# Figures 5 & 6: range queries (FPR, filter throughput, overall)
# ----------------------------------------------------------------------
def _range_experiment(cfg: ExperimentConfig, max_size: int):
    keys = cfg.dataset()
    queries = uniform_range_queries(
        keys, cfg.n_queries, min_size=2, max_size=max_size,
        key_bits=cfg.key_bits, seed=cfg.seed + 1,
    )
    sample = uniform_range_queries(
        keys, cfg.n_samples(), min_size=2, max_size=max_size,
        key_bits=cfg.key_bits, seed=cfg.seed + 2,
    )
    return _sweep(cfg, RANGE_FILTERS, keys, queries, sample)


def fig5_fpr_range(cfg: ExperimentConfig | None = None, max_size: int = 32):
    """FPR vs BPK on uniform range queries (Figure 5a: 2-32, 5b: 2-64).

    Paper shape: REncoder(SS/SE) lowest or near-lowest at every BPK; SuRF
    flat (no memory knob); Rosetta competitive at high BPK.
    """
    cfg = cfg or ExperimentConfig()
    results = _range_experiment(cfg, max_size)
    text = _series_text(
        cfg, results, "fpr", f"Figure 5: FPR vs BPK (range 2-{max_size})"
    )
    return results, text


def fig6_throughput_range(
    cfg: ExperimentConfig | None = None, max_size: int = 32
):
    """Filter and overall throughput vs BPK (Figure 6).

    Paper shape: filter throughput REncoder >> Rosetta (probe counts tell
    the same story architecture-independently); overall throughput
    REncoderSS(SE) highest nearly everywhere.
    """
    cfg = cfg or ExperimentConfig()
    results = _range_experiment(cfg, max_size)
    text = "\n\n".join(
        [
            _series_text(
                cfg, results, "filter_kqps",
                f"Figure 6(a-b): filter throughput kq/s (range 2-{max_size})",
            ),
            _series_text(
                cfg, results, "probes_per_query",
                "Figure 6 (probe-count view): memory probes per query",
            ),
            _series_text(
                cfg, results, "overall_kqps",
                f"Figure 6(c-d): overall throughput kq/s (range 2-{max_size})",
            ),
        ]
    )
    return results, text


# ----------------------------------------------------------------------
# Figure 7: point queries
# ----------------------------------------------------------------------
def fig7_point_queries(cfg: ExperimentConfig | None = None):
    """Point-query FPR and filter throughput vs BPK (Figure 7).

    Paper shape: every filter's FPR improves vs range queries; Rosetta's
    point throughput beats REncoder's (it probes only its bottom Bloom
    filter); REncoder keeps the lowest FPR band.
    """
    cfg = cfg or ExperimentConfig()
    keys = cfg.dataset()
    queries = point_queries(
        keys, cfg.n_queries, key_bits=cfg.key_bits, seed=cfg.seed + 3
    )
    sample = uniform_range_queries(
        keys, cfg.n_samples(), min_size=2, max_size=64,
        key_bits=cfg.key_bits, seed=cfg.seed + 2,
    )
    results = _sweep(cfg, RANGE_FILTERS, keys, queries, sample, point=True)
    text = "\n\n".join(
        [
            _series_text(cfg, results, "fpr", "Figure 7(a): point-query FPR"),
            _series_text(
                cfg, results, "filter_kqps",
                "Figure 7(b): point-query filter throughput kq/s",
            ),
            _series_text(
                cfg, results, "probes_per_query",
                "Figure 7 (probe-count view): probes per point query",
            ),
        ]
    )
    return results, text


# ----------------------------------------------------------------------
# Figure 8: REncoderPO crossover
# ----------------------------------------------------------------------
def fig8_point_optimised(cfg: ExperimentConfig | None = None):
    """Overall point-query throughput: Rosetta vs REncoder vs REncoderPO.

    Paper shape: at low BPK (high FPRs) REncoder wins on accuracy; at high
    BPK (negligible FPRs) REncoderPO wins on raw probe speed — a
    crossover around the middle of the sweep.

    Note: the figure is about the regime where point FPRs are negligible
    and first-level speed dominates, so this driver caps the simulated
    I/O cost at 100 µs; with the heavy default I/O cost the FPR term
    swamps the single-fetch saving.  In this reproduction the base
    REncoder's point path already enjoys the Bitmap-Tree locality (its
    deepest mini-tree answers several levels per fetch), so PO's extra
    margin is smaller than the paper's — EXPERIMENTS.md discusses this.
    """
    cfg = cfg or ExperimentConfig()
    if cfg.io_cost_ns > 100_000:
        cfg = replace(cfg, io_cost_ns=100_000)
    keys = cfg.dataset()
    queries = point_queries(
        keys, cfg.n_queries, key_bits=cfg.key_bits, seed=cfg.seed + 3
    )
    results = _sweep(
        cfg, ("Rosetta", "REncoder", "REncoderPO"), keys, queries, [],
        point=True,
    )
    text = "\n\n".join(
        [
            _series_text(
                cfg, results, "overall_kqps",
                "Figure 8: overall point-query throughput kq/s",
            ),
            _series_text(cfg, results, "fpr", "Figure 8 (FPR view)"),
        ]
    )
    return results, text


# ----------------------------------------------------------------------
# Figure 9: correlated queries
# ----------------------------------------------------------------------
def fig9_correlated_queries(cfg: ExperimentConfig | None = None):
    """Correlated-workload FPR and throughput vs BPK (Figure 9).

    Paper shape: SuRF, SNARF, ProteusNS and REncoderSS collapse to FPR 1;
    Rosetta, Proteus, REncoder and REncoderSE stay low.
    """
    cfg = cfg or ExperimentConfig()
    keys = cfg.dataset()
    queries = correlated_range_queries(
        keys, cfg.n_queries, key_bits=cfg.key_bits, seed=cfg.seed + 4
    )
    sample = correlated_range_queries(
        keys, cfg.n_samples(), key_bits=cfg.key_bits, seed=cfg.seed + 5
    )
    results = _sweep(cfg, RANGE_FILTERS, keys, queries, sample)
    text = "\n\n".join(
        [
            _series_text(cfg, results, "fpr", "Figure 9(a): correlated FPR"),
            _series_text(
                cfg, results, "filter_kqps",
                "Figure 9(b): correlated filter throughput kq/s",
            ),
        ]
    )
    return results, text


# ----------------------------------------------------------------------
# Figure 10: real datasets
# ----------------------------------------------------------------------
def fig10_real_datasets(
    cfg: ExperimentConfig | None = None,
    datasets: Sequence[str] = ("amzn", "face", "osmc", "wiki"),
):
    """FPR and filter throughput per SOSD-like dataset (Figure 10).

    Paper shape: REncoder(SS/SE) lowest-or-near-lowest FPR on every
    dataset; SS/SE gain most on the unskewed ones (osmc, amzn); filter
    throughput dips on the skewed ones (face, wiki).
    """
    cfg = cfg or ExperimentConfig()
    all_results = {}
    texts = []
    for ds in datasets:
        keys_all = generate_keys(
            cfg.n_keys + cfg.n_keys // 10, ds,
            key_bits=cfg.key_bits, seed=cfg.seed,
        )
        keys, holdout = split_keys(keys_all, cfg.n_keys // 10, seed=cfg.seed)
        queries = left_bounded_range_queries(
            keys, holdout, cfg.n_queries,
            key_bits=cfg.key_bits, seed=cfg.seed + 6,
        )
        sample = left_bounded_range_queries(
            keys, holdout, cfg.n_samples(),
            key_bits=cfg.key_bits, seed=cfg.seed + 7,
        )
        results = _sweep(cfg, RANGE_FILTERS, keys, queries, sample)
        all_results[ds] = results
        texts.append(
            _series_text(cfg, results, "fpr", f"Figure 10: {ds} FPR")
        )
        texts.append(
            _series_text(
                cfg, results, "filter_kqps",
                f"Figure 10: {ds} filter throughput kq/s",
            )
        )
    return all_results, "\n\n".join(texts)


# ----------------------------------------------------------------------
# Table I: normalised cross-filter summary
# ----------------------------------------------------------------------
def table1_summary(cfg: ExperimentConfig | None = None):
    """Table I: per-use-case summary, normalised as in the paper's footnote.

    FPR column: ``ln(FPR_filter / FPR_SuRF)`` averaged over experiments;
    filter throughput normalised by Rosetta; overall throughput by SuRF.
    Use case A = no sampling, no bound (SuRF, SNARF, ProteusNS,
    REncoderSS); B = sampling allowed (Rosetta, Proteus, REncoderSE);
    C = bound without sampling (REncoder).
    """
    cfg = cfg or ExperimentConfig()
    range_results = _range_experiment(cfg, 32)

    def _avg(name: str, metric: str) -> float:
        return float(
            np.mean([getattr(r, metric) for r in range_results[name]])
        )

    eps = 1e-6
    surf_fpr = max(_avg("SuRF", "fpr"), eps)
    rosetta_ft = max(_avg("Rosetta", "filter_kqps"), eps)
    rosetta_probes = max(_avg("Rosetta", "probes_per_query"), eps)
    surf_ot = max(_avg("SuRF", "overall_kqps"), eps)
    use_cases = {
        "A": ("SuRF", "SNARF", "ProteusNS", "REncoderSS"),
        "B": ("Rosetta", "Proteus", "REncoderSE"),
        "C": ("REncoder",),
    }
    rows = []
    for case, names in use_cases.items():
        for name in names:
            rows.append(
                {
                    "use_case": case,
                    "filter": name,
                    "ln_fpr_vs_surf": math.log(
                        max(_avg(name, "fpr"), eps) / surf_fpr
                    ),
                    "ft_vs_rosetta": _avg(name, "filter_kqps") / rosetta_ft,
                    # Deterministic counterpart of the FT column: memory
                    # probes relative to Rosetta (lower is better).
                    "probes_vs_rosetta": _avg(name, "probes_per_query")
                    / rosetta_probes,
                    "ot_vs_surf": _avg(name, "overall_kqps") / surf_ot,
                }
            )
    return rows, format_table(rows, "Table I: normalised summary (range 2-32)")


# ----------------------------------------------------------------------
# Table II: space cost for target FPRs
# ----------------------------------------------------------------------
def table2_space_cost(
    cfg: ExperimentConfig | None = None,
    targets: Sequence[float] = (0.5, 0.25, 0.10, 0.05, 0.01),
):
    """Table II: bits per key needed for each target FPR.

    Two columns per variant: the Theorem 5 prediction and the empirical
    BPK found by binary search with measured FPR on uniform keys/queries.
    Paper shape: REncoderSS(SE) needs a few bits per key less than the
    base REncoder at every target.
    """
    cfg = cfg or ExperimentConfig()
    keys = cfg.dataset()
    queries = uniform_range_queries(
        keys, cfg.n_queries, min_size=2, max_size=64,
        key_bits=cfg.key_bits, seed=cfg.seed + 1,
    )

    def measured_bpk(cls, target: float) -> float:
        lo_b, hi_b = 2.0, 64.0
        for _ in range(10):
            mid = (lo_b + hi_b) / 2
            filt = cls(keys, bits_per_key=mid, key_bits=cfg.key_bits,
                       seed=cfg.seed)
            fpr = sum(filt.query_range(*q) for q in queries) / len(queries)
            if fpr > target:
                lo_b = mid
            else:
                hi_b = mid
        return hi_b

    rows = []
    for target in targets:
        rows.append(
            {
                "target_fpr": target,
                "theory_bpk": space_for_fpr(target),
                "rencoder_bpk": measured_bpk(REncoder, target),
                "rencoder_ss_bpk": measured_bpk(REncoderSS, target),
            }
        )
    return rows, format_table(rows, "Table II: space cost (bits per key)")


# ----------------------------------------------------------------------
# Table IV: bit independence in the RBF
# ----------------------------------------------------------------------
def table4_independence(cfg: ExperimentConfig | None = None):
    """Table IV: conditional bit probabilities in a built RBF.

    Paper shape: ``P(1 | preceding pattern)`` stays close to the
    unconditional ``P1`` for every pattern, supporting the independence
    assumption of the Section IV analysis.
    """
    cfg = cfg or ExperimentConfig()
    keys = cfg.dataset()
    enc = REncoder(keys, bits_per_key=18, key_bits=cfg.key_bits, seed=cfg.seed)
    table = independence_table(enc.rbf._array[:-1], context=2)
    rows = [
        {"pattern": pattern or "(none)", "p0": probs[0], "p1": probs[1]}
        for pattern, probs in table.items()
    ]
    return rows, format_table(rows, "Table IV: bit independence in the RBF")
