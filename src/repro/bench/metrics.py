"""Metric runners: FPR, filter throughput, overall throughput.

The three metrics of Section V-B:

* **FPR** — fraction of empty queries answered positive (every workload in
  the evaluation is all-empty, so positives are exactly false positives);
* **filter throughput** — queries per second against the filter alone.
  Because pure-Python absolute speed is meaningless next to the paper's
  C++/AVX numbers, :class:`FilterRun` also records *probes per query* —
  the architecture-independent memory-access count that drives the paper's
  throughput ordering (REncoder ≈ one fetch per mini-tree vs Rosetta's
  per-level re-hashing);
* **overall throughput** — queries per second through the simulated
  two-level store: measured filter time plus one second-level access per
  positive, at ``io_cost_ns`` each (the paper's simulation environment;
  see :mod:`repro.storage.env`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Sequence

from repro.filters.base import RangeFilter

__all__ = [
    "DEFAULT_IO_COST_NS",
    "FilterRun",
    "RecoveryRun",
    "ServiceRun",
    "measure_fpr",
    "run_filter",
    "run_point_filter",
    "run_batch_filter",
    "run_recovery",
    "run_service_load",
]

#: Simulated second-level latency.  2 ms per I/O keeps the paper's rough
#: three-orders-of-magnitude gap over a (Python-scaled) filter probe;
#: override with the REPRO_IO_COST_NS environment variable.
DEFAULT_IO_COST_NS = int(os.environ.get("REPRO_IO_COST_NS", 2_000_000))


@dataclass
class FilterRun:
    """One (filter, workload) measurement."""

    name: str
    n_keys: int
    bits: int
    bits_per_key: float
    n_queries: int
    positives: int
    fpr: float
    filter_seconds: float
    filter_kqps: float
    probes_per_query: float
    overall_kqps: float
    build_seconds: float = 0.0
    #: "scalar" for the per-query loop, "batch" for the vectorised engine.
    mode: str = "scalar"
    #: Fetch-cache hit rate of the batch engine (0.0 on the scalar path
    #: or for filters without a cache).
    cache_hit_rate: float = 0.0

    def as_row(self) -> dict:
        """Result-table row used by the figure benches."""
        return {
            "filter": self.name,
            "mode": self.mode,
            "bpk": round(self.bits_per_key, 1),
            "fpr": self.fpr,
            "filter_kqps": round(self.filter_kqps, 1),
            "probes/q": round(self.probes_per_query, 1),
            "cache_hit_rate": round(self.cache_hit_rate, 3),
            "batch_seconds": round(self.filter_seconds, 4),
            "overall_kqps": round(self.overall_kqps, 2),
        }


@dataclass
class RecoveryRun:
    """One crash-recovery measurement of an LSM tree (fault bench).

    ``recovery_seconds`` is wall-clock for the whole
    :meth:`~repro.storage.lsm.LSMTree.recover` pass;
    ``baseline_seconds`` is the same pass with no faults injected, so
    ``overhead`` isolates what the injected faults cost (corrupt-blob
    detection plus in-place rebuilds).  Fault/retry totals are copied out
    of :class:`~repro.storage.env.IoStats` at measurement time.
    """

    n_tables: int
    loaded: int
    rebuilt: int
    degraded: int
    recovery_seconds: float
    baseline_seconds: float
    faults: dict

    @property
    def overhead(self) -> float:
        """Recovery time relative to the fault-free baseline (>= 1.0-ish)."""
        if self.baseline_seconds <= 0:
            return float("inf") if self.recovery_seconds > 0 else 1.0
        return self.recovery_seconds / self.baseline_seconds

    def as_row(self) -> dict:
        """Result-table row used by the fault-recovery bench."""
        return {
            "tables": self.n_tables,
            "loaded": self.loaded,
            "rebuilt": self.rebuilt,
            "degraded": self.degraded,
            "recovery_s": round(self.recovery_seconds, 4),
            "baseline_s": round(self.baseline_seconds, 4),
            "overhead": round(self.overhead, 2),
            **self.faults,
        }


@dataclass
class ServiceRun:
    """One offered-load measurement of a :class:`FilterService`.

    ``goodput_qps`` counts only non-degraded (``ok``) answers — the
    quantity load shedding exists to protect; ``completed_qps`` counts
    every settled promise.  Latency percentiles are wall-clock
    submit→resolve over *completed* requests (rejected submissions never
    enter the pipeline and are excluded — they cost the client one
    exception, not a queue wait).
    """

    label: str
    offered_load: float  # multiple of the measured saturation capacity
    offered_qps: float
    n_requests: int
    duration_seconds: float
    completed: int
    ok: int
    goodput_qps: float
    completed_qps: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    max_ms: float
    degraded_rate: float
    deadline_expired: int
    breaker_denied: int
    shed: int
    rejected: int
    faults: int
    breaker_trips: int

    def as_row(self) -> dict:
        """Result-table row used by the overload bench (JSON-safe: an
        infinite offered load — a burst — renders as ``"burst"``)."""
        import math

        return {
            "config": self.label,
            "load": (
                round(self.offered_load, 2)
                if math.isfinite(self.offered_load)
                else "burst"
            ),
            "offered_qps": round(self.offered_qps, 1),
            "goodput_qps": round(self.goodput_qps, 1),
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "degraded_rate": self.degraded_rate,
            "shed": self.shed,
            "rejected": self.rejected,
            "deadline": self.deadline_expired,
            "breaker": self.breaker_denied,
        }


def run_service_load(
    service,
    ranges: Sequence[tuple[int, int]],
    *,
    rate_qps: "float | None" = None,
    batch_size: "int | None" = None,
    label: str = "",
    offered_load: float = 0.0,
) -> ServiceRun:
    """Offer a range-query workload to a running service and measure it.

    ``rate_qps`` paces submissions open-loop (a request is offered on
    schedule whether or not earlier ones finished — the regime where
    backlogs actually build); ``None`` submits the whole workload as one
    burst, i.e. effectively infinite offered rate.  ``batch_size`` chunks
    the ranges into batch requests of that many ranges each (one
    submission, one response per chunk) — heavier requests make paced
    rates meaningful where scalar inter-arrival times would be below
    ``time.sleep`` resolution.  Rejected submissions
    (:class:`~repro.service.admission.ServiceOverloadError`) are counted
    and skipped.  Use a *fresh* service per run — its stats accumulate
    for life.
    """
    from repro.service.admission import ServiceOverloadError

    if not ranges:
        raise ValueError("need at least one request")
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if batch_size is None:
        requests = list(ranges)
        submit = service.submit_range
    else:
        requests = [
            ranges[i : i + batch_size]
            for i in range(0, len(ranges), batch_size)
        ]
        submit = service.submit_range_batch
    futures = []
    start = time.perf_counter()
    next_at = start
    for req in requests:
        if rate_qps:
            next_at += 1.0 / rate_qps
            delay = next_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        try:
            if batch_size is None:
                futures.append(submit(*req))
            else:
                futures.append(submit(req))
        except ServiceOverloadError:
            pass  # counted in service.stats.rejected
    for future in futures:
        future.result()
    duration = time.perf_counter() - start
    snap = service.stats.snapshot()
    n = len(requests)
    return ServiceRun(
        label=label,
        offered_load=offered_load,
        offered_qps=(rate_qps if rate_qps else n / duration),
        n_requests=n,
        duration_seconds=duration,
        completed=snap["completed"],
        ok=snap["ok"],
        goodput_qps=snap["ok"] / duration,
        completed_qps=snap["completed"] / duration,
        p50_ms=snap["p50_ms"],
        p99_ms=snap["p99_ms"],
        p999_ms=snap["p999_ms"],
        max_ms=snap["max_ms"],
        degraded_rate=snap["degraded_rate"],
        deadline_expired=snap["deadline_expired"],
        breaker_denied=snap["breaker_denied"],
        shed=snap["shed"],
        rejected=snap["rejected"],
        faults=snap["faults"],
        breaker_trips=service.breaker.snapshot()["trips"],
    )


def run_recovery(lsm, *, baseline_seconds: float = 0.0) -> RecoveryRun:
    """Time one :meth:`LSMTree.recover` pass and snapshot fault counters.

    The caller owns the injector configuration (and should
    ``env.stats.reset()`` beforehand if it wants this pass isolated);
    passing the fault-free ``baseline_seconds`` makes ``overhead``
    meaningful.
    """
    start = time.perf_counter()
    summary = lsm.recover()
    elapsed = time.perf_counter() - start
    return RecoveryRun(
        n_tables=summary["tables"],
        loaded=summary["loaded"],
        rebuilt=summary["rebuilt"],
        degraded=summary["degraded"],
        recovery_seconds=elapsed,
        baseline_seconds=baseline_seconds,
        faults=lsm.env.stats.fault_counts(),
    )


def measure_fpr(
    filt: RangeFilter, queries: Sequence[tuple[int, int]]
) -> float:
    """FPR over all-empty queries (positives / queries)."""
    if not queries:
        raise ValueError("need at least one query")
    positives = sum(filt.query_range(lo, hi) for lo, hi in queries)
    return positives / len(queries)


def _run(
    filt: RangeFilter,
    queries: Sequence[tuple[int, int]],
    point: bool,
    io_cost_ns: int,
    build_seconds: float,
) -> FilterRun:
    if not queries:
        raise ValueError("need at least one query")
    filt.reset_counters()
    positives = 0
    start = time.perf_counter()
    if point:
        for lo, _ in queries:
            positives += filt.query_point(lo)
    else:
        for lo, hi in queries:
            positives += filt.query_range(lo, hi)
    elapsed = time.perf_counter() - start
    n = len(queries)
    overall_seconds = elapsed + positives * io_cost_ns * 1e-9
    n_keys = getattr(filt, "n_keys", 0) or 1
    bits = filt.size_in_bits()
    return FilterRun(
        name=type(filt).name,
        n_keys=n_keys,
        bits=bits,
        bits_per_key=bits / n_keys,
        n_queries=n,
        positives=positives,
        fpr=positives / n,
        filter_seconds=elapsed,
        filter_kqps=n / elapsed / 1e3 if elapsed else float("inf"),
        probes_per_query=filt.probe_count / n,
        overall_kqps=n / overall_seconds / 1e3 if overall_seconds else float("inf"),
        build_seconds=build_seconds,
    )


def run_filter(
    filt: RangeFilter,
    queries: Sequence[tuple[int, int]],
    *,
    io_cost_ns: int = DEFAULT_IO_COST_NS,
    build_seconds: float = 0.0,
) -> FilterRun:
    """Run a range-query workload and collect all three metrics."""
    return _run(filt, queries, point=False, io_cost_ns=io_cost_ns,
                build_seconds=build_seconds)


def run_point_filter(
    filt: RangeFilter,
    queries: Sequence[tuple[int, int]],
    *,
    io_cost_ns: int = DEFAULT_IO_COST_NS,
    build_seconds: float = 0.0,
) -> FilterRun:
    """Run a point-query workload through ``query_point``."""
    return _run(filt, queries, point=True, io_cost_ns=io_cost_ns,
                build_seconds=build_seconds)


def run_batch_filter(
    filt: RangeFilter,
    queries: Sequence[tuple[int, int]],
    *,
    point: bool = False,
    io_cost_ns: int = DEFAULT_IO_COST_NS,
    build_seconds: float = 0.0,
    engine: "str | None" = None,
) -> FilterRun:
    """Run a workload through the vectorised batch engine.

    Same metrics as :func:`run_filter` / :func:`run_point_filter`, but
    the whole workload goes through ``query_many`` /
    ``query_point_many`` in one call, and the run additionally records
    ``mode="batch"``, the batch wall time (``filter_seconds``) and the
    fetch-cache hit rate when the filter exposes one.  ``engine``
    selects the batch kernel backend on filters that support fused
    kernels (:mod:`repro.core.kernels`); other filters ignore it.
    """
    if not queries:
        raise ValueError("need at least one query")
    kernels = getattr(filt, "supports_kernels", False)
    filt.reset_counters()
    start = time.perf_counter()
    if point:
        points = [lo for lo, _ in queries]
        if kernels:
            answers = filt.query_point_many(points, engine=engine)
        else:
            answers = filt.query_point_many(points)
    else:
        answers = filt.query_many(queries, engine=engine)
    elapsed = time.perf_counter() - start
    positives = int(sum(bool(a) for a in answers))
    n = len(queries)
    overall_seconds = elapsed + positives * io_cost_ns * 1e-9
    n_keys = getattr(filt, "n_keys", 0) or 1
    bits = filt.size_in_bits()
    return FilterRun(
        name=type(filt).name,
        n_keys=n_keys,
        bits=bits,
        bits_per_key=bits / n_keys,
        n_queries=n,
        positives=positives,
        fpr=positives / n,
        filter_seconds=elapsed,
        filter_kqps=n / elapsed / 1e3 if elapsed else float("inf"),
        probes_per_query=filt.probe_count / n,
        overall_kqps=n / overall_seconds / 1e3 if overall_seconds else float("inf"),
        build_seconds=build_seconds,
        mode="batch",
        cache_hit_rate=float(getattr(filt, "cache_hit_rate", 0.0)),
    )
