"""Metric runners: FPR, filter throughput, overall throughput.

The three metrics of Section V-B:

* **FPR** — fraction of empty queries answered positive (every workload in
  the evaluation is all-empty, so positives are exactly false positives);
* **filter throughput** — queries per second against the filter alone.
  Because pure-Python absolute speed is meaningless next to the paper's
  C++/AVX numbers, :class:`FilterRun` also records *probes per query* —
  the architecture-independent memory-access count that drives the paper's
  throughput ordering (REncoder ≈ one fetch per mini-tree vs Rosetta's
  per-level re-hashing);
* **overall throughput** — queries per second through the simulated
  two-level store: measured filter time plus one second-level access per
  positive, at ``io_cost_ns`` each (the paper's simulation environment;
  see :mod:`repro.storage.env`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Sequence

from repro.filters.base import RangeFilter

__all__ = [
    "DEFAULT_IO_COST_NS",
    "FilterRun",
    "RecoveryRun",
    "measure_fpr",
    "run_filter",
    "run_point_filter",
    "run_batch_filter",
    "run_recovery",
]

#: Simulated second-level latency.  2 ms per I/O keeps the paper's rough
#: three-orders-of-magnitude gap over a (Python-scaled) filter probe;
#: override with the REPRO_IO_COST_NS environment variable.
DEFAULT_IO_COST_NS = int(os.environ.get("REPRO_IO_COST_NS", 2_000_000))


@dataclass
class FilterRun:
    """One (filter, workload) measurement."""

    name: str
    n_keys: int
    bits: int
    bits_per_key: float
    n_queries: int
    positives: int
    fpr: float
    filter_seconds: float
    filter_kqps: float
    probes_per_query: float
    overall_kqps: float
    build_seconds: float = 0.0
    #: "scalar" for the per-query loop, "batch" for the vectorised engine.
    mode: str = "scalar"
    #: Fetch-cache hit rate of the batch engine (0.0 on the scalar path
    #: or for filters without a cache).
    cache_hit_rate: float = 0.0

    def as_row(self) -> dict:
        """Result-table row used by the figure benches."""
        return {
            "filter": self.name,
            "mode": self.mode,
            "bpk": round(self.bits_per_key, 1),
            "fpr": self.fpr,
            "filter_kqps": round(self.filter_kqps, 1),
            "probes/q": round(self.probes_per_query, 1),
            "cache_hit_rate": round(self.cache_hit_rate, 3),
            "batch_seconds": round(self.filter_seconds, 4),
            "overall_kqps": round(self.overall_kqps, 2),
        }


@dataclass
class RecoveryRun:
    """One crash-recovery measurement of an LSM tree (fault bench).

    ``recovery_seconds`` is wall-clock for the whole
    :meth:`~repro.storage.lsm.LSMTree.recover` pass;
    ``baseline_seconds`` is the same pass with no faults injected, so
    ``overhead`` isolates what the injected faults cost (corrupt-blob
    detection plus in-place rebuilds).  Fault/retry totals are copied out
    of :class:`~repro.storage.env.IoStats` at measurement time.
    """

    n_tables: int
    loaded: int
    rebuilt: int
    degraded: int
    recovery_seconds: float
    baseline_seconds: float
    faults: dict

    @property
    def overhead(self) -> float:
        """Recovery time relative to the fault-free baseline (>= 1.0-ish)."""
        if self.baseline_seconds <= 0:
            return float("inf") if self.recovery_seconds > 0 else 1.0
        return self.recovery_seconds / self.baseline_seconds

    def as_row(self) -> dict:
        """Result-table row used by the fault-recovery bench."""
        return {
            "tables": self.n_tables,
            "loaded": self.loaded,
            "rebuilt": self.rebuilt,
            "degraded": self.degraded,
            "recovery_s": round(self.recovery_seconds, 4),
            "baseline_s": round(self.baseline_seconds, 4),
            "overhead": round(self.overhead, 2),
            **self.faults,
        }


def run_recovery(lsm, *, baseline_seconds: float = 0.0) -> RecoveryRun:
    """Time one :meth:`LSMTree.recover` pass and snapshot fault counters.

    The caller owns the injector configuration (and should
    ``env.stats.reset()`` beforehand if it wants this pass isolated);
    passing the fault-free ``baseline_seconds`` makes ``overhead``
    meaningful.
    """
    start = time.perf_counter()
    summary = lsm.recover()
    elapsed = time.perf_counter() - start
    return RecoveryRun(
        n_tables=summary["tables"],
        loaded=summary["loaded"],
        rebuilt=summary["rebuilt"],
        degraded=summary["degraded"],
        recovery_seconds=elapsed,
        baseline_seconds=baseline_seconds,
        faults=lsm.env.stats.fault_counts(),
    )


def measure_fpr(
    filt: RangeFilter, queries: Sequence[tuple[int, int]]
) -> float:
    """FPR over all-empty queries (positives / queries)."""
    if not queries:
        raise ValueError("need at least one query")
    positives = sum(filt.query_range(lo, hi) for lo, hi in queries)
    return positives / len(queries)


def _run(
    filt: RangeFilter,
    queries: Sequence[tuple[int, int]],
    point: bool,
    io_cost_ns: int,
    build_seconds: float,
) -> FilterRun:
    if not queries:
        raise ValueError("need at least one query")
    filt.reset_counters()
    positives = 0
    start = time.perf_counter()
    if point:
        for lo, _ in queries:
            positives += filt.query_point(lo)
    else:
        for lo, hi in queries:
            positives += filt.query_range(lo, hi)
    elapsed = time.perf_counter() - start
    n = len(queries)
    overall_seconds = elapsed + positives * io_cost_ns * 1e-9
    n_keys = getattr(filt, "n_keys", 0) or 1
    bits = filt.size_in_bits()
    return FilterRun(
        name=type(filt).name,
        n_keys=n_keys,
        bits=bits,
        bits_per_key=bits / n_keys,
        n_queries=n,
        positives=positives,
        fpr=positives / n,
        filter_seconds=elapsed,
        filter_kqps=n / elapsed / 1e3 if elapsed else float("inf"),
        probes_per_query=filt.probe_count / n,
        overall_kqps=n / overall_seconds / 1e3 if overall_seconds else float("inf"),
        build_seconds=build_seconds,
    )


def run_filter(
    filt: RangeFilter,
    queries: Sequence[tuple[int, int]],
    *,
    io_cost_ns: int = DEFAULT_IO_COST_NS,
    build_seconds: float = 0.0,
) -> FilterRun:
    """Run a range-query workload and collect all three metrics."""
    return _run(filt, queries, point=False, io_cost_ns=io_cost_ns,
                build_seconds=build_seconds)


def run_point_filter(
    filt: RangeFilter,
    queries: Sequence[tuple[int, int]],
    *,
    io_cost_ns: int = DEFAULT_IO_COST_NS,
    build_seconds: float = 0.0,
) -> FilterRun:
    """Run a point-query workload through ``query_point``."""
    return _run(filt, queries, point=True, io_cost_ns=io_cost_ns,
                build_seconds=build_seconds)


def run_batch_filter(
    filt: RangeFilter,
    queries: Sequence[tuple[int, int]],
    *,
    point: bool = False,
    io_cost_ns: int = DEFAULT_IO_COST_NS,
    build_seconds: float = 0.0,
) -> FilterRun:
    """Run a workload through the vectorised batch engine.

    Same metrics as :func:`run_filter` / :func:`run_point_filter`, but
    the whole workload goes through ``query_many`` /
    ``query_point_many`` in one call, and the run additionally records
    ``mode="batch"``, the batch wall time (``filter_seconds``) and the
    fetch-cache hit rate when the filter exposes one.
    """
    if not queries:
        raise ValueError("need at least one query")
    filt.reset_counters()
    start = time.perf_counter()
    if point:
        answers = filt.query_point_many([lo for lo, _ in queries])
    else:
        answers = filt.query_many(queries)
    elapsed = time.perf_counter() - start
    positives = int(sum(bool(a) for a in answers))
    n = len(queries)
    overall_seconds = elapsed + positives * io_cost_ns * 1e-9
    n_keys = getattr(filt, "n_keys", 0) or 1
    bits = filt.size_in_bits()
    return FilterRun(
        name=type(filt).name,
        n_keys=n_keys,
        bits=bits,
        bits_per_key=bits / n_keys,
        n_queries=n,
        positives=positives,
        fpr=positives / n,
        filter_seconds=elapsed,
        filter_kqps=n / elapsed / 1e3 if elapsed else float("inf"),
        probes_per_query=filt.probe_count / n,
        overall_kqps=n / overall_seconds / 1e3 if overall_seconds else float("inf"),
        build_seconds=build_seconds,
        mode="batch",
        cache_hit_rate=float(getattr(filt, "cache_hit_rate", 0.0)),
    )
