"""Uniform construction of every filter the paper evaluates.

The experiments sweep filters over a bits-per-key axis; this registry maps
the paper's filter names to constructors with one shared signature so the
harness and the figure benches stay declarative.

Notes mirrored from the paper's experiment settings (Section V-C):

* SuRF is the *mixed* variant and has no memory knob — it takes whatever
  the pruned trie needs, so it ignores ``bits_per_key``;
* Rosetta and Proteus are the use-case-B filters: they receive the sampled
  queries;
* ProteusNS is Proteus' no-sampling default (32-bit prefix Bloom filter);
* REncoderSE receives the sampled queries; REncoder/REncoderSS do not.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.rencoder import REncoder
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS
from repro.filters.arf import AdaptiveRangeFilter
from repro.filters.base import RangeFilter
from repro.filters.bloom import BloomFilter
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.proteus import Proteus, ProteusNS
from repro.filters.rosetta import Rosetta
from repro.filters.snarf import Snarf
from repro.filters.surf import SuRF

__all__ = ["FILTER_NAMES", "build_filter"]

FILTER_NAMES = (
    "REncoder",
    "REncoderSS",
    "REncoderSE",
    "REncoderPO",
    "Rosetta",
    "SuRF",
    "SNARF",
    "Proteus",
    "ProteusNS",
    "Bloom",
    "PrefixBloom",
    "ARF",
)


def build_filter(
    name: str,
    keys: np.ndarray,
    bits_per_key: float,
    *,
    key_bits: int = 64,
    seed: int = 0,
    sample_queries: Sequence[tuple[int, int]] = (),
    rmax: int = 64,
) -> RangeFilter:
    """Build the named filter at the given memory budget."""
    if name == "REncoder":
        return REncoder(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed,
            rmax=rmax,
        )
    if name == "REncoderSS":
        return REncoderSS(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed,
            rmax=rmax,
        )
    if name == "REncoderSE":
        return REncoderSE(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed,
            rmax=rmax, sample_queries=sample_queries,
        )
    if name == "REncoderPO":
        return REncoderPO(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed,
            rmax=rmax,
        )
    if name == "Rosetta":
        return Rosetta(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed,
            rmax=rmax, sample_queries=sample_queries,
        )
    if name == "SuRF":
        return SuRF(keys, key_bits=key_bits, seed=seed)
    if name == "SNARF":
        return Snarf(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed
        )
    if name == "Proteus":
        return Proteus(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed,
            sample_queries=sample_queries,
        )
    if name == "ProteusNS":
        return ProteusNS(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed
        )
    if name == "Bloom":
        return BloomFilter(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed
        )
    if name == "PrefixBloom":
        return PrefixBloomFilter(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed,
            prefix_len=min(32, key_bits),
        )
    if name == "ARF":
        return AdaptiveRangeFilter(
            keys, bits_per_key=bits_per_key, key_bits=key_bits, seed=seed,
            training_queries=sample_queries,
        )
    raise ValueError(f"unknown filter {name!r}; choose from {FILTER_NAMES}")
