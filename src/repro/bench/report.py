"""Consolidated report generation from saved bench results.

Every bench under ``benchmarks/`` saves its table to
``benchmarks/results/<name>.txt``; :func:`build_report` stitches those
files into a single Markdown report with the experiment inventory, so a
full reproduction run ends with one reviewable artifact:

    pytest benchmarks/ --benchmark-only
    python -m repro report            # writes REPORT.md
"""

from __future__ import annotations

import datetime
from pathlib import Path

__all__ = ["build_report", "RESULT_SECTIONS"]

#: Section ordering and titles for known result files.
RESULT_SECTIONS: list[tuple[str, str]] = [
    ("fig3a_build_time", "Figure 3(a) — build time"),
    ("fig3b_workload_time", "Figure 3(b) — workload execution time"),
    ("fig4_overall_time", "Figure 4 — overall time"),
    ("fig5a_fpr_2_32", "Figure 5(a) — FPR, ranges 2–32"),
    ("fig5b_fpr_2_64", "Figure 5(b) — FPR, ranges 2–64"),
    ("fig6_throughput_2_32", "Figure 6 — throughput, ranges 2–32"),
    ("fig6_throughput_2_64", "Figure 6 — throughput, ranges 2–64"),
    ("fig7_point_queries", "Figure 7 — point queries"),
    ("fig8_point_optimised", "Figure 8 — REncoderPO"),
    ("fig9_correlated", "Figure 9 — correlated queries"),
    ("fig10_real_datasets", "Figure 10 — real-dataset stand-ins"),
    ("table1_summary", "Table I — normalised summary"),
    ("table2_space_cost", "Table II — space cost"),
    ("table4_independence", "Table IV — bit independence"),
    ("ablation_group_bits", "Ablation — mini-tree size B"),
    ("ablation_hash_count", "Ablation — hash count k"),
    ("ablation_ancestor_checks", "Ablation — ancestor checks"),
    ("ablation_levels_per_round", "Ablation — insertion round size"),
    ("ablation_rosetta_allocation", "Ablation — Rosetta allocation"),
    ("ablation_surf_modes", "Ablation — SuRF suffix modes"),
    ("ablation_snarf_rice", "Ablation — SNARF Rice parameter"),
    ("ablation_lsm_policy", "Ablation — LSM compaction policy"),
    ("float_two_stage", "Float keys — Two-Stage vs naive"),
    ("scale_invariance", "Scale sweep — FPR/probes vs key count"),
    ("usecase_lsm_ycsb", "Use case 1 — LSM under YCSB"),
    ("usecase_btree", "Use case 2 — B+tree scans"),
    ("usecase_rtree", "Use case 3 — R-tree rectangles"),
]


def build_report(
    results_dir: str | Path,
    output: str | Path | None = None,
    *,
    title: str = "REncoder reproduction — measured results",
) -> str:
    """Assemble the Markdown report; optionally write it to ``output``.

    Returns the report text.  Missing result files are listed as
    not-yet-run rather than failing, so partial runs still report.
    """
    results_dir = Path(results_dir)
    lines = [
        f"# {title}",
        "",
        f"Generated {datetime.datetime.now():%Y-%m-%d %H:%M} from "
        f"`{results_dir}`.",
        "Regenerate any section with "
        "`pytest benchmarks/<bench file> --benchmark-only`.",
        "",
    ]
    missing = []
    known = {name for name, _ in RESULT_SECTIONS}
    for name, heading in RESULT_SECTIONS:
        path = results_dir / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    extras = sorted(
        p.stem for p in results_dir.glob("*.txt") if p.stem not in known
    ) if results_dir.exists() else []
    for name in extras:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append((results_dir / f"{name}.txt").read_text().rstrip())
        lines.append("```")
        lines.append("")
    if missing:
        lines.append("## Not yet run")
        lines.append("")
        for name in missing:
            lines.append(f"- {name}")
        lines.append("")
    text = "\n".join(lines)
    if output is not None:
        Path(output).write_text(text)
    return text
