"""Plain-text table/series formatting for the figure benches.

The paper's figures are line plots (metric vs BPK, one series per filter);
the benches print the same data as aligned text tables so the shapes —
who wins, by what factor, where crossovers fall — are inspectable in the
benchmark log and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if 0 < abs(value) < 0.01:
            return f"{value:.1e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]], title: str | None = None
) -> str:
    """Render dict rows as an aligned text table (first row sets columns)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    out.append("  ".join("-" * w for w in widths))
    for line in cells:
        out.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(out)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render figure-style data: one row per x value, one column per series."""
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else float("nan")
        rows.append(row)
    return format_table(rows, title)
