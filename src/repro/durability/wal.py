"""Segmented, CRC-framed write-ahead log on the StorageEnv blob store.

Every acknowledged mutation is framed (:mod:`repro.durability.codec`)
and *group-appended* to the current segment blob via
:meth:`~repro.storage.env.StorageEnv.append_blob` before the in-memory
structure changes.  Appends can only damage their own suffix, so a torn
append never endangers previously acknowledged records — the failure
modes are exactly:

* **torn append** — ``append_blob`` raises
  :class:`~repro.core.errors.TornAppendError` after persisting a prefix
  of the batch.  The records are *not acknowledged*; :meth:`sync`
  rotates to a fresh segment and retries the batch once (a second tear
  propagates the error, leaving the records unacked).  Replay parses
  each segment independently and truncates its torn tail, so the
  damaged suffix is invisible; any complete frames of the failed batch
  that did land replay as harmless duplicates (dropped by LSN).
* **crash between append and apply** — the record is in the log but not
  the memtable; replay re-applies it.  Conversely a record applied but
  never synced was never acknowledged, so losing it is correct.

Group commit: ``append(..., sync=False)`` buffers frames and one
:meth:`sync` persists the whole batch with a single blob append — the
amortisation ``group_records / group_appends`` measures.  LSNs are
monotonic from 1; :meth:`safe_lsn` gives the checkpoint the highest LSN
with no in-flight (appended-but-not-yet-applied) record at or below it,
which is what makes "checkpoint + WAL tail" crash-consistent without
stalling writers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import TornAppendError
from repro.durability.codec import (
    decode_record,
    encode_record,
    frame,
    iter_frames,
    peek_lsn,
)
from repro.storage.env import StorageEnv
from repro.telemetry.tracing import child_span

__all__ = ["WriteAheadLog", "ReplayResult"]

#: Records per segment before rotation (keeps truncation granular).
DEFAULT_SEGMENT_RECORDS = 2048


@dataclass
class ReplayResult:
    """What :meth:`WriteAheadLog.open` recovered from the blob store."""

    records: list[tuple[int, int, Any]] = field(default_factory=list)
    segments: int = 0
    torn_segments: int = 0
    records_scanned: int = 0
    records_skipped: int = 0
    duplicates_dropped: int = 0
    truncated_bytes: int = 0

    @property
    def last_lsn(self) -> int:
        return self.records[-1][0] if self.records else 0


class WriteAheadLog:
    """Per-tree segmented WAL (see module docstring).

    A fresh instance starts a new segment *after* any segments already
    in the namespace (it scans, it does not replay) — use :meth:`open`
    for the crash-recovery path that replays them.
    """

    def __init__(
        self,
        env: StorageEnv,
        name: str = "tree",
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
    ) -> None:
        if segment_records < 1:
            raise ValueError(
                f"segment_records must be >= 1, got {segment_records}"
            )
        self.env = env
        self.name = name
        self.prefix = f"wal:{name}:"
        self.segment_records = segment_records
        self._lock = threading.Lock()
        existing = env.list_blobs(self.prefix)
        self._seq = (
            max(self._seq_of(n) for n in existing) + 1 if existing else 0
        )
        #: Sealed segments: (seq, blob_name, max_lsn synced into it).
        self._sealed: list[tuple[int, str, int]] = []
        self._records_in_segment = 0
        self._next_lsn = 1
        self._last_synced = 0
        #: Framed-but-unsynced records: (lsn, framed bytes).
        self._pending: list[tuple[int, bytes]] = []
        #: Synced records whose in-memory apply has not finished.
        self._inflight: set[int] = set()
        reg = env.stats.registry
        labels = {"component": "durability", "log": name}
        self._c_records = reg.counter(
            "wal_records_appended", help="records synced to the WAL",
            labels=labels,
        )
        self._c_appends = reg.counter(
            "wal_group_appends", help="blob appends (group commits)",
            labels=labels,
        )
        self._c_torn = reg.counter(
            "wal_torn_appends", help="appends torn by a fault",
            labels=labels,
        )
        self._c_rotations = reg.counter(
            "wal_segments_sealed", help="segments sealed (incl. tears)",
            labels=labels,
        )
        self._c_truncated = reg.counter(
            "wal_segments_truncated", help="segments dropped by truncation",
            labels=labels,
        )

    def _seq_of(self, blob_name: str) -> int:
        return int(blob_name[len(self.prefix):])

    def _segment_name(self, seq: int) -> str:
        return f"{self.prefix}{seq:08d}"

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, key: int, value: Any, *, sync: bool = True) -> int:
        """Frame one record; returns its LSN (synced iff ``sync``)."""
        (first, _last) = self.append_many([(key, value)], sync=sync)
        return first

    def append_many(
        self, pairs, *, sync: bool = True
    ) -> tuple[int, int]:
        """Frame a batch of ``(key, value)``; returns ``(first, last)`` LSN.

        With ``sync=True`` the batch (plus anything already pending) is
        persisted as **one** blob append — the group-commit path.
        """
        pairs = list(pairs)
        if not pairs:
            raise ValueError("append_many needs at least one record")
        with self._lock:
            first = self._next_lsn
            for key, value in pairs:
                lsn = self._next_lsn
                self._next_lsn += 1
                self._inflight.add(lsn)
                self._pending.append(
                    (lsn, frame(encode_record(lsn, int(key), value)))
                )
            last = self._next_lsn - 1
        if sync:
            self.sync()
        return first, last

    def sync(self) -> None:
        """Persist all pending frames with a single group append.

        On a torn append the batch is unacknowledged: the log rotates to
        a fresh segment and retries once (the torn segment's tail is
        truncated by the next replay).  A second tear re-raises
        :class:`TornAppendError` — the caller must fail the write, and
        the abandoned LSNs replay at worst as unacknowledged duplicates.
        """
        with self._lock:
            if not self._pending:
                return
            batch = self._pending
            self._pending = []
            data = b"".join(fragment for _, fragment in batch)
            lsns = [lsn for lsn, _ in batch]
            with child_span("wal.append") as sp:
                if sp is not None:
                    sp.set(log=self.name, records=len(lsns))
                for attempt in (0, 1):
                    name = self._segment_name(self._seq)
                    try:
                        self.env.append_blob(name, data)
                    except TornAppendError:
                        self._c_torn.inc()
                        self._seal_locked()
                        if sp is not None:
                            sp.set(torn=True)
                        if attempt == 1:
                            for lsn in lsns:
                                self._inflight.discard(lsn)
                            raise
                        continue
                    break
            self._last_synced = lsns[-1]
            self._records_in_segment += len(lsns)
            self._c_records.inc(len(lsns))
            self._c_appends.inc()
            if self._records_in_segment >= self.segment_records:
                self._seal_locked()

    def _seal_locked(self) -> None:
        """Close the current segment and open the next (lock held)."""
        self._sealed.append(
            (self._seq, self._segment_name(self._seq), self._last_synced)
        )
        self._seq += 1
        self._records_in_segment = 0
        self._c_rotations.inc()

    # ------------------------------------------------------------------
    # apply tracking (checkpoint consistency)
    # ------------------------------------------------------------------
    def mark_applied(self, first_lsn: int, last_lsn: "int | None" = None) -> None:
        """Record that the in-memory apply of these LSNs finished."""
        last_lsn = first_lsn if last_lsn is None else last_lsn
        with self._lock:
            for lsn in range(first_lsn, last_lsn + 1):
                self._inflight.discard(lsn)

    def safe_lsn(self) -> int:
        """Highest LSN below which every synced record is also applied."""
        with self._lock:
            if self._inflight:
                return min(self._inflight) - 1
            return self._last_synced

    @property
    def last_synced_lsn(self) -> int:
        with self._lock:
            return self._last_synced

    # ------------------------------------------------------------------
    # truncation
    # ------------------------------------------------------------------
    def truncate_through(self, lsn: int) -> int:
        """Drop sealed segments wholly covered by a checkpoint at ``lsn``.

        Only whole segments go; the current segment always stays.
        Returns the number of segments deleted.
        """
        dropped = 0
        with self._lock:
            keep: list[tuple[int, str, int]] = []
            for seq, name, max_lsn in self._sealed:
                if max_lsn <= lsn:
                    self.env.delete_blob(name)
                    dropped += 1
                else:
                    keep.append((seq, name, max_lsn))
            self._sealed = keep
            if dropped:
                self._c_truncated.inc(dropped)
        return dropped

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        env: StorageEnv,
        name: str = "tree",
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        after_lsn: int = 0,
    ) -> tuple["WriteAheadLog", ReplayResult]:
        """Recover the log from the blob store after a crash.

        Scans every ``wal:{name}:`` segment, parses frames per segment
        (truncating each torn tail independently — a tear-then-rotate
        sequence leaves later segments fully replayable), sorts by LSN
        and drops duplicate LSNs from retried batches.  Returns the
        ready-to-append log plus the replayable records.

        ``after_lsn`` is the checkpoint fence: records at or below it
        are already covered by the checkpoint being restored, so replay
        peeks their LSN (:func:`~repro.durability.codec.peek_lsn`) and
        skips the key/value decode entirely.  The one-checkpoint
        truncation slack means most retained records are below the
        fence at recovery time; skipping them is what makes restore
        land its "much faster than rebuild" headline.  Skipped records
        still advance the LSN bookkeeping (``_next_lsn``, per-segment
        ``max_lsn``) so appending and truncation behave identically.
        """
        wal = cls(env, name, segment_records=segment_records)
        result = ReplayResult()
        records: dict[int, tuple[int, Any]] = {}
        sealed: list[tuple[int, str, int]] = []
        max_seen = 0
        for blob_name in env.list_blobs(wal.prefix):
            seq = wal._seq_of(blob_name)
            data = env.get_blob_with_retry(blob_name)
            scan = iter_frames(data)
            result.segments += 1
            if scan.torn:
                result.torn_segments += 1
                result.truncated_bytes += len(data) - scan.valid_len
            max_lsn = 0
            for payload in scan.payloads:
                lsn = peek_lsn(payload)
                result.records_scanned += 1
                if lsn > max_lsn:
                    max_lsn = lsn
                if lsn <= after_lsn:
                    result.records_skipped += 1
                    continue
                if lsn in records:
                    result.duplicates_dropped += 1
                    continue
                _, key, value = decode_record(payload)
                records[lsn] = (key, value)
            sealed.append((seq, blob_name, max_lsn))
            if max_lsn > max_seen:
                max_seen = max_lsn
        with wal._lock:
            wal._sealed = sealed
            if max_seen:
                wal._next_lsn = max_seen + 1
                wal._last_synced = max_seen
        result.records = [
            (lsn, key, value)
            for lsn, (key, value) in sorted(records.items())
        ]
        return wal, result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counter snapshot for health endpoints and tests."""
        with self._lock:
            sealed = len(self._sealed)
            pending = len(self._pending)
            last = self._last_synced
        return {
            "records_appended": int(self._c_records.value),
            "group_appends": int(self._c_appends.value),
            "torn_appends": int(self._c_torn.value),
            "segments_sealed": int(self._c_rotations.value),
            "segments_truncated": int(self._c_truncated.value),
            "live_segments": sealed + 1,
            "pending_records": pending,
            "last_synced_lsn": last,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WriteAheadLog(name={self.name!r}, seq={self._seq}, "
            f"last_synced={self._last_synced})"
        )
