"""Background scrubber: walk a tree's blobs, find rot, repair locally.

Bit rot at rest is the fault no write path ever observes — a cold
SSTable's data blob or a persisted filter image silently loses a bit
and nothing notices until a crash-restore needs exactly that blob.  The
scrubber closes the window: :meth:`Scrubber.scrub` re-reads every
durable blob the tree owns and validates it against the intended
length + CRC32 its manifest recorded at write time.

Repair is tiered by what is still available:

* **data blob rot with the table alive** — the in-memory pairs are
  intact (SSTables are immutable), so the blob is simply re-encoded and
  re-persisted: a *local* repair, no sibling needed;
* **filter blob rot** — the filter is rebuilt from the table's keys and
  re-persisted (the PR 2 machinery);
* **checkpoint rot** — the newest checkpoint fails validation; the tree
  writes a fresh one (the old, corrupt blob then ages out).

What the scrubber *cannot* fix locally — a table whose in-memory copy
died with the process — surfaces at restore time as a quarantined
range, and the cluster's anti-entropy (:mod:`repro.cluster.repair`)
re-fetches it from a healthy sibling.  Every detection advances
``stats.corruptions_detected``; every local fix is counted in the
returned report, which the durability-chaos CI job uploads as
``SCRUB_REPORT``.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import FilterCorruptionError, TransientIOError
from repro.core.serialize import checksum
from repro.durability.durable_lsm import DurableLSM
from repro.telemetry.tracing import child_span

__all__ = ["Scrubber"]


class Scrubber:
    """CRC-walks one :class:`DurableLSM`'s durable blobs (see module doc)."""

    def __init__(self, tree: DurableLSM) -> None:
        self.tree = tree
        reg = tree.env.stats.registry
        labels = {"component": "durability", "log": tree.name}
        self._c_checked = reg.counter(
            "scrub_blobs_checked", help="blobs CRC-validated by the scrubber",
            labels=labels,
        )
        self._c_rot = reg.counter(
            "scrub_rot_detected", help="blobs failing length/CRC validation",
            labels=labels,
        )
        self._c_repaired = reg.counter(
            "scrub_repaired_local", help="blobs repaired from local state",
            labels=labels,
        )

    def scrub(self, *, repair: bool = True) -> dict[str, Any]:
        """Validate data blobs, filter blobs and the newest checkpoint.

        Returns the scrub report; with ``repair=True`` every locally
        repairable finding is fixed in the same pass and re-validated
        counts appear under ``repaired_local``.
        """
        with child_span("lsm.scrub") as sp:
            report = self._scrub_inner(repair=repair)
            if sp is not None:
                sp.set(
                    blobs_checked=report["blobs_checked"],
                    rot_detected=report["rot_detected"],
                    repaired_local=report["repaired_local"],
                )
            return report

    def _scrub_inner(self, *, repair: bool) -> dict[str, Any]:
        report: dict[str, Any] = {
            "blobs_checked": 0,
            "rot_detected": 0,
            "repaired_local": 0,
            "unrepairable": [],
            "findings": [],
        }
        tables = {t.table_id: t for t in self.tree.read_view().tables}
        records = self.tree.data_records()
        # Only live tables' blobs are scrubbed: a dead (compacted-away)
        # table's blob has no local copy to repair from — if the retained
        # checkpoint still references it, restore-time fallback +
        # quarantine + anti-entropy own that case.
        for table_id in sorted(tables):
            record = records.get(table_id)
            if record is None:
                continue
            report["blobs_checked"] += 1
            self._c_checked.inc()
            problem = self._validate(
                record.blob_name, record.blob_len, record.crc32
            )
            if problem is None:
                continue
            self._found(report, "data", record.blob_name, problem)
            table = tables.get(table_id)
            if repair and table is not None:
                # The in-memory pairs are intact; re-persisting yields
                # byte-identical content, so the record stays valid.
                self.tree._persist_table_data(table)
                if (
                    self._validate(
                        record.blob_name, record.blob_len, record.crc32
                    )
                    is None
                ):
                    report["repaired_local"] += 1
                    self._c_repaired.inc()
                    continue
            report["unrepairable"].append(record.blob_name)
        for table in tables.values():
            manifest = table.manifest_record
            if manifest is None:
                continue
            report["blobs_checked"] += 1
            self._c_checked.inc()
            problem = self._validate(
                manifest.blob_name, manifest.blob_len, manifest.crc32
            )
            if problem is None:
                continue
            self._found(report, "filter", manifest.blob_name, problem)
            if repair and table.filter_factory is not None and len(table):
                table.rebuild_filter()
                report["repaired_local"] += 1
                self._c_repaired.inc()
            else:
                report["unrepairable"].append(manifest.blob_name)
        ckpt = self.tree.checkpoints.verify_latest()
        if ckpt is not None:
            report["blobs_checked"] += 1
            self._c_checked.inc()
            if not ckpt["ok"]:
                self._found(report, "checkpoint", ckpt["blob"], ckpt["error"])
                if repair:
                    self.tree.checkpoint()
                    report["repaired_local"] += 1
                    self._c_repaired.inc()
                else:
                    report["unrepairable"].append(ckpt["blob"])
        return report

    def _validate(
        self, blob_name: str, blob_len: int, crc32: int
    ) -> "str | None":
        """None when the blob matches its record, else the problem."""
        stored_len = self.tree.env.blob_len(blob_name)
        if stored_len is None:
            return "missing"
        if stored_len != blob_len:
            return f"length {stored_len} != {blob_len}"
        try:
            data = self.tree.env.get_blob_with_retry(blob_name)
        except (FilterCorruptionError, TransientIOError) as exc:
            return f"unreadable: {exc}"
        if checksum(data) != crc32:
            return "crc mismatch"
        return None

    def _found(
        self, report: dict, kind: str, blob_name: str, problem: str
    ) -> None:
        report["rot_detected"] += 1
        self._c_rot.inc()
        self.tree.env.stats.bump(corruptions_detected=1)
        report["findings"].append(
            {"kind": kind, "blob": blob_name, "problem": problem}
        )
