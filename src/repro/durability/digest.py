"""Seeded splitmix64 merkle digests over dyadic key segments.

Anti-entropy needs to answer "do two replicas hold the same data for
this key segment?" without shipping the data.  A
:class:`SegmentDigestTree` summarises a replica's live pairs:

* the key space is cut into the cluster's ``2**segment_bits`` dyadic
  segments (the same top-bits split :mod:`repro.cluster.topology` routes
  by, so a divergent leaf maps directly to a repairable segment);
* each leaf holds ``(count, acc)`` where ``acc`` XOR-accumulates a
  per-pair fingerprint ``mix64(mix64(key ^ seed) ^ value_fingerprint)``
  — XOR makes the digest order-independent, so two replicas that hold
  the same set agree no matter what order writes arrived in;
* internal merkle nodes combine children with an *asymmetric* splitmix64
  mix, so :meth:`diff` descends from the root and touches only the
  O(divergent × log segments) nodes that actually disagree.

The seed keys the fingerprints: digests from different seeds are
incomparable (deliberately — a comparison across epochs of the
anti-entropy round must be explicit, not accidental).
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable

from repro.durability.codec import encode_value
from repro.hashing.mix64 import mix64

__all__ = ["SegmentDigestTree"]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _pair_fingerprint(key: int, value: Any, seed: int) -> int:
    hk = mix64((key ^ mix64(seed)) & _MASK64)
    hv = mix64(
        (zlib.crc32(encode_value(value)) ^ mix64(seed ^ 0xA5A5A5A5)) & _MASK64
    )
    return mix64(hk ^ ((hv << 1) | (hv >> 63)) & _MASK64)


class SegmentDigestTree:
    """Merkle summary of a key→value set, one leaf per dyadic segment."""

    def __init__(
        self, *, segment_bits: int, key_bits: int = 64, seed: int = 0
    ) -> None:
        if not 0 < segment_bits <= key_bits:
            raise ValueError(
                f"segment_bits must be in (0, {key_bits}], got {segment_bits}"
            )
        self.segment_bits = segment_bits
        self.key_bits = key_bits
        self.seed = seed
        self._shift = key_bits - segment_bits
        n = 1 << segment_bits
        self._counts = [0] * n
        self._accs = [0] * n

    @classmethod
    def build(
        cls,
        pairs: Iterable[tuple[int, Any]],
        *,
        segment_bits: int,
        key_bits: int = 64,
        seed: int = 0,
    ) -> "SegmentDigestTree":
        """Summarise ``pairs`` in one pass (the common constructor)."""
        tree = cls(segment_bits=segment_bits, key_bits=key_bits, seed=seed)
        for key, value in pairs:
            tree.add(key, value)
        return tree

    def add(self, key: int, value: Any) -> None:
        """Fold one pair in (XOR: adding twice removes it again)."""
        seg = int(key) >> self._shift
        self._counts[seg] += 1
        self._accs[seg] ^= _pair_fingerprint(int(key), value, self.seed)

    # ------------------------------------------------------------------
    # merkle structure
    # ------------------------------------------------------------------
    def _leaf_digest(self, seg: int) -> int:
        return mix64(
            self._accs[seg] ^ mix64((self._counts[seg] ^ self.seed) & _MASK64)
        )

    def _levels(self) -> list[list[int]]:
        """Digest levels, leaves first, root last."""
        level = [self._leaf_digest(s) for s in range(len(self._counts))]
        levels = [level]
        while len(level) > 1:
            level = [
                mix64(
                    (level[i] ^ ((level[i + 1] << 1) | (level[i + 1] >> 63)))
                    & _MASK64
                )
                for i in range(0, len(level), 2)
            ]
            levels.append(level)
        return levels

    def root(self) -> int:
        """Root digest: equal roots ⇒ equal data (w.h.p.)."""
        return self._levels()[-1][0]

    def diff(self, other: "SegmentDigestTree") -> list[int]:
        """Segments where the two summaries disagree (merkle descent)."""
        if (
            self.segment_bits != other.segment_bits
            or self.key_bits != other.key_bits
            or self.seed != other.seed
        ):
            raise ValueError(
                "digest trees with different geometry/seed are incomparable"
            )
        mine = self._levels()
        theirs = other._levels()
        # Descend from the root; a matching node prunes its subtree.
        suspects = [0]
        for depth in range(len(mine) - 1, 0, -1):
            next_suspects: list[int] = []
            for node in suspects:
                if mine[depth][node] == theirs[depth][node]:
                    continue
                next_suspects.extend((2 * node, 2 * node + 1))
            suspects = next_suspects
        return [
            s
            for s in suspects
            if s < len(mine[0]) and mine[0][s] != theirs[0][s]
        ]

    def segment_count(self, seg: int) -> int:
        """Pairs folded into one leaf (repair sizing)."""
        return self._counts[seg]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SegmentDigestTree):
            return NotImplemented
        return (
            self.segment_bits == other.segment_bits
            and self.seed == other.seed
            and self.root() == other.root()
        )

    def __hash__(self) -> int:  # pragma: no cover - set membership only
        return hash((self.segment_bits, self.seed, self.root()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SegmentDigestTree(segments={1 << self.segment_bits}, "
            f"seed={self.seed}, root={self.root():#x})"
        )
