"""Durability & self-healing: WAL, checkpoints, digests, scrubbing.

The subsystem that makes acknowledged writes survive crashes and makes
at-rest corruption detectable and repairable:

* :mod:`repro.durability.codec` — CRC-framed record/pair encoding;
* :mod:`repro.durability.wal` — segmented write-ahead log with group
  append and torn-tail truncation on replay;
* :mod:`repro.durability.checkpoint` — atomic-rename checkpoints with
  fallback on corruption;
* :mod:`repro.durability.durable_lsm` — the WAL-logged, checkpointable
  LSM-tree whose recovery is *checkpoint + WAL tail*;
* :mod:`repro.durability.digest` — seeded splitmix64 merkle digests
  over dyadic segments for anti-entropy comparison;
* :mod:`repro.durability.scrub` — background CRC scrubbing with local
  repair.

Cluster-side repair (digest exchange, sibling re-fetch, read-repair)
lives in :mod:`repro.cluster.repair` — it needs the cluster topology.
"""

from repro.durability.checkpoint import CheckpointData, CheckpointManager
from repro.durability.digest import SegmentDigestTree
from repro.durability.durable_lsm import DurableLSM, TableDataRecord
from repro.durability.scrub import Scrubber
from repro.durability.wal import ReplayResult, WriteAheadLog

__all__ = [
    "CheckpointData",
    "CheckpointManager",
    "DurableLSM",
    "ReplayResult",
    "Scrubber",
    "SegmentDigestTree",
    "TableDataRecord",
    "WriteAheadLog",
]
