"""CRC-framed record codec shared by the WAL, checkpoints and data blobs.

Everything the durability layer persists is built from one primitive,
the **frame**::

    u32 payload_len | u32 crc32(payload) | payload

A reader that hits a frame whose header is short, whose payload is
short, or whose CRC disagrees stops *at the last good frame* — that is
the torn-tail truncation rule the WAL relies on (a torn append can only
damage the suffix, so every frame before the tear is intact and every
acknowledged record lives in an intact frame).

On top of frames sit two payload shapes:

* **WAL records** — ``u64 lsn | u64 key | tagged value`` via
  :func:`encode_record` / :func:`decode_record`;
* **pair blocks** — a whole memtable or SSTable as one payload via
  :func:`encode_pairs` / :func:`decode_pairs`, with a vectorised numpy
  path when every value is a plain int (the common bench shape), so a
  million-key checkpoint encodes in milliseconds, not seconds.

Values are typed with a one-byte tag: ``None``, tombstone, int, bytes,
str.  Tombstones round-trip to the storage layer's canonical
:data:`~repro.storage.memtable.TOMBSTONE` sentinel so replayed deletes
shadow exactly like live ones.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterable

import numpy as np

from repro.core.errors import FilterCorruptionError
from repro.storage.memtable import TOMBSTONE

__all__ = [
    "frame",
    "iter_frames",
    "FrameScan",
    "encode_value",
    "decode_value",
    "encode_record",
    "decode_record",
    "encode_pairs",
    "decode_pairs",
]

_HDR = struct.Struct("<II")
_REC = struct.Struct("<QQ")

_TAG_NONE = 0
_TAG_TOMBSTONE = 1
_TAG_INT = 2
_TAG_BYTES = 3
_TAG_STR = 4
_TAG_BIGINT = 5

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in the length+CRC32 frame header."""
    return _HDR.pack(len(payload), zlib.crc32(payload)) + payload


class FrameScan:
    """Result of :func:`iter_frames`: payloads plus the tear diagnosis.

    ``valid_len`` is the byte offset of the end of the last intact
    frame; ``torn`` is True when bytes remain past it (a torn tail or
    at-rest damage inside the final frames).
    """

    __slots__ = ("payloads", "valid_len", "torn")

    def __init__(
        self, payloads: list[bytes], valid_len: int, torn: bool
    ) -> None:
        self.payloads = payloads
        self.valid_len = valid_len
        self.torn = torn


def iter_frames(data: bytes) -> FrameScan:
    """Parse consecutive frames, stopping cleanly at the first bad one."""
    payloads: list[bytes] = []
    offset = 0
    n = len(data)
    while offset + _HDR.size <= n:
        length, crc = _HDR.unpack_from(data, offset)
        start = offset + _HDR.size
        end = start + length
        if end > n:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        payloads.append(payload)
        offset = end
    return FrameScan(payloads, offset, offset < n)


# ----------------------------------------------------------------------
# tagged values
# ----------------------------------------------------------------------
def encode_value(value: Any) -> bytes:
    """Encode one value as tag byte + body."""
    if value is None:
        return bytes([_TAG_NONE])
    if value is TOMBSTONE:
        return bytes([_TAG_TOMBSTONE])
    if isinstance(value, bool):
        raise TypeError("bool values are not durable-codable")
    if isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            return bytes([_TAG_INT]) + struct.pack("<q", value)
        body = str(value).encode("ascii")
        return bytes([_TAG_BIGINT]) + struct.pack("<I", len(body)) + body
    if isinstance(value, bytes):
        return bytes([_TAG_BYTES]) + struct.pack("<I", len(value)) + value
    if isinstance(value, str):
        body = value.encode("utf-8")
        return bytes([_TAG_STR]) + struct.pack("<I", len(body)) + body
    raise TypeError(f"value of type {type(value).__name__} is not codable")


def decode_value(data: bytes, offset: int) -> tuple[Any, int]:
    """Decode one tagged value; returns ``(value, next_offset)``."""
    if offset >= len(data):
        raise FilterCorruptionError("value tag past end of payload")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TOMBSTONE:
        return TOMBSTONE, offset
    if tag == _TAG_INT:
        if offset + 8 > len(data):
            raise FilterCorruptionError("short int value")
        return struct.unpack_from("<q", data, offset)[0], offset + 8
    if tag in (_TAG_BYTES, _TAG_STR, _TAG_BIGINT):
        if offset + 4 > len(data):
            raise FilterCorruptionError("short value length")
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        if offset + length > len(data):
            raise FilterCorruptionError("short value body")
        body = data[offset : offset + length]
        offset += length
        if tag == _TAG_BYTES:
            return bytes(body), offset
        if tag == _TAG_STR:
            return body.decode("utf-8"), offset
        return int(body.decode("ascii")), offset
    raise FilterCorruptionError(f"unknown value tag {tag}")


# ----------------------------------------------------------------------
# WAL records
# ----------------------------------------------------------------------
def encode_record(lsn: int, key: int, value: Any) -> bytes:
    """One WAL record payload: ``u64 lsn | u64 key | tagged value``."""
    return _REC.pack(lsn, key) + encode_value(value)


def peek_lsn(payload: bytes) -> int:
    """A WAL record's LSN without decoding key or value.

    Replay uses this to skip whole records below the checkpoint fence —
    at recovery time most retained records are dead (the one-checkpoint
    truncation slack keeps them around), and decoding their values would
    dominate restore time for nothing.
    """
    if len(payload) < _REC.size:
        raise FilterCorruptionError("WAL record payload too short")
    return _REC.unpack_from(payload, 0)[0]


def decode_record(payload: bytes) -> tuple[int, int, Any]:
    """Inverse of :func:`encode_record`; strict about trailing bytes."""
    if len(payload) < _REC.size:
        raise FilterCorruptionError("WAL record payload too short")
    lsn, key = _REC.unpack_from(payload, 0)
    value, end = decode_value(payload, _REC.size)
    if end != len(payload):
        raise FilterCorruptionError(
            f"WAL record has {len(payload) - end} trailing bytes"
        )
    return lsn, key, value


# ----------------------------------------------------------------------
# pair blocks (checkpoint memtables, SSTable data blobs)
# ----------------------------------------------------------------------
_PAIRS_INT = 0
_PAIRS_GENERIC = 1


def encode_pairs(pairs: Iterable[tuple[int, Any]]) -> bytes:
    """Encode a (key, value) sequence as one payload.

    All-int values take the vectorised path: one numpy dump of the key
    array and one of the value array.  Mixed values fall back to the
    per-pair tagged encoding.
    """
    pair_list = list(pairs)
    n = len(pair_list)
    if pair_list and all(
        isinstance(v, int)
        and not isinstance(v, bool)
        and _I64_MIN <= v <= _I64_MAX
        for _, v in pair_list
    ):
        keys = np.array([k for k, _ in pair_list], dtype=np.uint64)
        values = np.array([v for _, v in pair_list], dtype=np.int64)
        return (
            struct.pack("<BI", _PAIRS_INT, n)
            + keys.tobytes()
            + values.tobytes()
        )
    parts = [struct.pack("<BI", _PAIRS_GENERIC, n)]
    for key, value in pair_list:
        parts.append(struct.pack("<Q", key) + encode_value(value))
    return b"".join(parts)


def decode_pairs(payload: bytes) -> list[tuple[int, Any]]:
    """Inverse of :func:`encode_pairs`."""
    if len(payload) < 5:
        raise FilterCorruptionError("pair block payload too short")
    shape, n = struct.unpack_from("<BI", payload, 0)
    offset = 5
    if shape == _PAIRS_INT:
        need = offset + 16 * n
        if len(payload) != need:
            raise FilterCorruptionError(
                f"int pair block is {len(payload)} bytes, expected {need}"
            )
        keys = np.frombuffer(payload, dtype=np.uint64, count=n, offset=offset)
        values = np.frombuffer(
            payload, dtype=np.int64, count=n, offset=offset + 8 * n
        )
        return list(zip((int(k) for k in keys), (int(v) for v in values)))
    if shape != _PAIRS_GENERIC:
        raise FilterCorruptionError(f"unknown pair block shape {shape}")
    out: list[tuple[int, Any]] = []
    for _ in range(n):
        if offset + 8 > len(payload):
            raise FilterCorruptionError("short pair key")
        (key,) = struct.unpack_from("<Q", payload, offset)
        value, offset = decode_value(payload, offset + 8)
        out.append((key, value))
    if offset != len(payload):
        raise FilterCorruptionError(
            f"pair block has {len(payload) - offset} trailing bytes"
        )
    return out
