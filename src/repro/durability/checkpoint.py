"""Crash-consistent checkpoints with an atomic rename commit protocol.

A checkpoint is one CRC-framed blob::

    frame( u32 meta_len | meta JSON | payload )

written with the classic three-step protocol:

1. write the body to ``ckpt:{name}:{seq}.tmp`` (this write may be torn
   or flipped by the fault injector — exactly like a real partial
   write);
2. :meth:`~repro.storage.env.StorageEnv.rename_blob` it to its final
   name — atomic metadata, the commit point;
3. update the ``CURRENT`` pointer blob (an optimisation only: recovery
   falls back to scanning the namespace when the pointer is damaged).

Because damage can land at any step, :meth:`CheckpointManager.load_latest`
validates the whole frame (length + CRC) and *falls back* to the
previous checkpoint — the manager keeps ``keep`` finals — and ultimately
to "no checkpoint, replay the full WAL".  A corrupt or truncated
checkpoint therefore costs recovery time, never data.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any

from repro.core.errors import FilterCorruptionError, TransientIOError
from repro.durability.codec import frame, iter_frames
from repro.storage.env import StorageEnv

__all__ = ["CheckpointManager", "CheckpointData"]


@dataclass
class CheckpointData:
    """A validated checkpoint: its sequence, WAL fence and contents."""

    seq: int
    wal_lsn: int
    meta: dict[str, Any]
    payload: bytes
    blob_name: str
    fallbacks: int = 0


class CheckpointManager:
    """Writes, validates, prunes and recovers ``ckpt:{name}:*`` blobs."""

    def __init__(
        self, env: StorageEnv, name: str = "tree", *, keep: int = 2
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.env = env
        self.name = name
        self.prefix = f"ckpt:{name}:"
        self.current_name = f"{self.prefix}CURRENT"
        self.keep = keep
        reg = env.stats.registry
        labels = {"component": "durability", "log": name}
        self._c_written = reg.counter(
            "checkpoints_written", help="checkpoints committed",
            labels=labels,
        )
        self._c_fallbacks = reg.counter(
            "checkpoint_fallbacks",
            help="corrupt checkpoints skipped during recovery",
            labels=labels,
        )
        self._c_pruned = reg.counter(
            "checkpoints_pruned", help="old checkpoints deleted",
            labels=labels,
        )

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def _final_name(self, seq: int) -> str:
        return f"{self.prefix}{seq:08d}"

    def _finals(self) -> list[str]:
        """Committed checkpoint blobs, oldest first."""
        return [
            n
            for n in self.env.list_blobs(self.prefix)
            if n != self.current_name and not n.endswith(".tmp")
        ]

    def _seq_of(self, blob_name: str) -> int:
        return int(blob_name[len(self.prefix):])

    def latest_name(self) -> "str | None":
        """Blob name of the newest committed checkpoint (chaos targets it)."""
        finals = self._finals()
        return finals[-1] if finals else None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def write(
        self, meta: dict[str, Any], payload: bytes, *, wal_lsn: int
    ) -> str:
        """Commit a checkpoint; returns the final blob name."""
        finals = self._finals()
        seq = (self._seq_of(finals[-1]) + 1) if finals else 1
        body_meta = dict(meta)
        body_meta["seq"] = seq
        body_meta["wal_lsn"] = wal_lsn
        meta_bytes = json.dumps(body_meta, sort_keys=True).encode("utf-8")
        body = frame(
            struct.pack("<I", len(meta_bytes)) + meta_bytes + payload
        )
        tmp = f"{self._final_name(seq)}.tmp"
        self.env.put_blob(tmp, body)
        self.env.rename_blob(tmp, self._final_name(seq))
        self.env.put_blob(
            self.current_name,
            frame(json.dumps({"seq": seq}).encode("utf-8")),
        )
        self._c_written.inc()
        self._prune()
        return self._final_name(seq)

    def _prune(self) -> None:
        finals = self._finals()
        for name in finals[: max(0, len(finals) - self.keep)]:
            self.env.delete_blob(name)
            self._c_pruned.inc()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _decode(self, blob_name: str, data: bytes) -> CheckpointData:
        """Strictly validate and unpack one checkpoint blob."""
        scan = iter_frames(data)
        if len(scan.payloads) != 1 or scan.torn:
            raise FilterCorruptionError(
                f"checkpoint {blob_name!r} is torn or malformed"
            )
        body = scan.payloads[0]
        if len(body) < 4:
            raise FilterCorruptionError(
                f"checkpoint {blob_name!r} body too short"
            )
        (meta_len,) = struct.unpack_from("<I", body, 0)
        if 4 + meta_len > len(body):
            raise FilterCorruptionError(
                f"checkpoint {blob_name!r} meta overruns body"
            )
        try:
            meta = json.loads(body[4 : 4 + meta_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FilterCorruptionError(
                f"checkpoint {blob_name!r} meta is not JSON: {exc}"
            ) from exc
        if not isinstance(meta, dict) or "wal_lsn" not in meta:
            raise FilterCorruptionError(
                f"checkpoint {blob_name!r} meta missing wal_lsn"
            )
        return CheckpointData(
            seq=int(meta.get("seq", self._seq_of(blob_name))),
            wal_lsn=int(meta["wal_lsn"]),
            meta=meta,
            payload=body[4 + meta_len :],
            blob_name=blob_name,
        )

    def load_latest(self) -> "CheckpointData | None":
        """Newest checkpoint that validates, or None (full WAL replay).

        Walks committed checkpoints newest-first; every torn, rotted or
        unreadable candidate counts a fallback and recovery moves to the
        next older one.  Detected corruptions advance
        ``stats.corruptions_detected`` so scrub reports see them.
        """
        fallbacks = 0
        for blob_name in reversed(self._finals()):
            try:
                data = self.env.get_blob_with_retry(blob_name)
                ckpt = self._decode(blob_name, data)
            except FilterCorruptionError:
                self.env.stats.bump(corruptions_detected=1)
                self._c_fallbacks.inc()
                fallbacks += 1
                continue
            except TransientIOError:
                self._c_fallbacks.inc()
                fallbacks += 1
                continue
            ckpt.fallbacks = fallbacks
            return ckpt
        return None

    def verify_latest(self) -> "dict[str, Any] | None":
        """Scrub hook: validate the newest checkpoint without loading it.

        Returns None when no checkpoint exists, else a report dict with
        ``ok`` False on any damage (the scrubber responds by writing a
        fresh checkpoint).
        """
        name = self.latest_name()
        if name is None:
            return None
        try:
            self._decode(name, self.env.get_blob_with_retry(name))
        except (FilterCorruptionError, TransientIOError) as exc:
            return {"ok": False, "blob": name, "error": str(exc)}
        return {"ok": True, "blob": name}

    def stats(self) -> dict[str, int]:
        """Counter snapshot for health endpoints and tests."""
        return {
            "written": int(self._c_written.value),
            "fallbacks": int(self._c_fallbacks.value),
            "pruned": int(self._c_pruned.value),
            "kept": len(self._finals()),
        }
