"""LSM-tree with a write-ahead log, data-blob persistence and checkpoints.

:class:`DurableLSM` closes PR 2's durability gap: the base tree's
``recover`` only reloads *filters* — the keys themselves lived in
process memory, so a crash meant rebuild-everything from an external
copy.  Here every mutation is WAL-logged before it is acknowledged,
every flushed/compacted SSTable's pairs are persisted as a CRC-recorded
data blob, and :meth:`checkpoint` snapshots the memtable + table
manifest so that

    recovery = last valid checkpoint + WAL tail

via :meth:`restore`, instead of re-inserting the world.  The write
path:

* :meth:`put` / :meth:`delete` append to the WAL (group-commit capable)
  and only then mutate the tree — an un-synced record was never
  acknowledged, so a crash between the two loses nothing it promised.
* :meth:`_new_table` persists each new SSTable's pairs to
  ``data:{name}:{table_id}`` with intended length + CRC32 recorded in a
  :class:`TableDataRecord`; the fault injector may tear or flip the
  stored copy, and restore/scrub detect exactly that gap.
* :meth:`checkpoint` writes the memtable + per-table records through
  the atomic-rename :class:`~repro.durability.checkpoint.CheckpointManager`,
  prunes data blobs of dead (compacted-away) tables, and truncates the
  WAL with one checkpoint of slack — so even if the newest checkpoint
  is later corrupted, the previous one plus the retained WAL still
  reconstructs everything.

One-sided contract at restore: a table whose data blob fails its CRC
cannot serve its keys, so it is **quarantined** — dropped from the tree
and reported as a key range the *replica* layer answers all-positive
for until anti-entropy repair re-fetches the segment from a healthy
sibling (``repro.cluster.repair``).  A missing answer becomes extra
I/O, never a false negative.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any

from repro.core.errors import FilterCorruptionError, TransientIOError
from repro.core.serialize import checksum
from repro.durability.checkpoint import CheckpointManager
from repro.durability.codec import decode_pairs, encode_pairs, frame, iter_frames
from repro.durability.wal import DEFAULT_SEGMENT_RECORDS, WriteAheadLog
from repro.storage.lsm import LSMTree
from repro.storage.manifest import ManifestRecord
from repro.storage.memtable import TOMBSTONE
from repro.storage.sstable import SSTable
from repro.telemetry.tracing import child_span

__all__ = ["DurableLSM", "TableDataRecord"]


@dataclass(frozen=True)
class TableDataRecord:
    """Manifest of one SSTable's persisted pair blob (intended bytes)."""

    table_id: int
    blob_name: str
    n_entries: int
    min_key: int
    max_key: int
    blob_len: int
    crc32: int

    def as_dict(self) -> dict:
        """JSON-safe form for checkpoint metadata."""
        return {
            "table_id": self.table_id,
            "blob_name": self.blob_name,
            "n_entries": self.n_entries,
            "min_key": self.min_key,
            "max_key": self.max_key,
            "blob_len": self.blob_len,
            "crc32": self.crc32,
        }

    @classmethod
    def from_dict(cls, raw: object) -> "TableDataRecord":
        """Strictly parse checkpoint metadata (corruption on mismatch)."""
        if not isinstance(raw, dict):
            raise FilterCorruptionError(
                f"table data record must be a dict, got {type(raw).__name__}"
            )
        try:
            return cls(
                table_id=int(raw["table_id"]),
                blob_name=str(raw["blob_name"]),
                n_entries=int(raw["n_entries"]),
                min_key=int(raw["min_key"]),
                max_key=int(raw["max_key"]),
                blob_len=int(raw["blob_len"]),
                crc32=int(raw["crc32"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FilterCorruptionError(
                f"malformed table data record: {exc}"
            ) from exc


class DurableLSM(LSMTree):
    """WAL-logged, checkpointable LSM-tree (see module docstring).

    ``checkpoint_every`` > 0 auto-checkpoints after that many logged
    mutations; 0 leaves checkpointing to the caller.
    """

    def __init__(
        self,
        filter_factory=None,
        *,
        name: str = "tree",
        wal_segment_records: int = DEFAULT_SEGMENT_RECORDS,
        checkpoint_every: int = 0,
        keep_checkpoints: int = 2,
        _attach: bool = False,
        **lsm_kwargs,
    ) -> None:
        # Durable trees persist their filters by default: restore-time
        # filter reload is what keeps recovery cheap.
        lsm_kwargs.setdefault("persist_filters", filter_factory is not None)
        super().__init__(filter_factory, **lsm_kwargs)
        self.name = name
        self.checkpoint_every = checkpoint_every
        self._wal_segment_records = wal_segment_records
        #: Guards the data-record map and checkpoint bookkeeping.
        self._durability_lock = threading.Lock()
        self._data_records: dict[int, TableDataRecord] = {}
        self._ops_since_checkpoint = 0
        #: WAL fence of the *previous* checkpoint — truncation keeps one
        #: checkpoint of slack so a corrupt newest checkpoint can fall
        #: back without losing records.
        self._prev_ckpt_lsn = 0
        self._last_ckpt_lsn = 0
        #: Data blobs referenced by the previous retained checkpoint —
        #: never pruned even if their table compacted away, so the
        #: fallback checkpoint stays fully loadable.
        self._prev_ckpt_blobs: set[str] = set()
        #: Key ranges whose data is locally lost (quarantined at a past
        #: restore, not yet refilled).  Carried through checkpoints: a
        #: checkpoint written while data is missing must not launder the
        #: loss into a clean-looking restore.
        self._lost_ranges: list[tuple[int, int]] = []
        self.checkpoints = CheckpointManager(
            self.env, name=name, keep=keep_checkpoints
        )
        # restore() replays the existing namespace and installs its own
        # WAL; the normal constructor starts a fresh segment after any
        # leftovers.
        self.wal: "WriteAheadLog | None" = (
            None
            if _attach
            else WriteAheadLog(
                self.env, name=name, segment_records=wal_segment_records
            )
        )

    # ------------------------------------------------------------------
    # logged writes
    # ------------------------------------------------------------------
    def put(self, key: int, value: Any) -> None:
        """WAL-append, then insert; acknowledged only if both succeed."""
        if value is TOMBSTONE:
            raise ValueError("use delete() to remove keys")
        lsn = self.wal.append(int(key), value, sync=True)
        try:
            super().put(key, value)
        finally:
            self.wal.mark_applied(lsn)
        self._after_write(1)

    def delete(self, key: int) -> None:
        """WAL-append a tombstone, then delete."""
        lsn = self.wal.append(int(key), TOMBSTONE, sync=True)
        try:
            super().delete(key)
        finally:
            self.wal.mark_applied(lsn)
        self._after_write(1)

    def put_many(self, pairs) -> int:
        """Group-commit a batch: one WAL append for all records."""
        pairs = [(int(k), v) for k, v in pairs]
        if not pairs:
            return 0
        if any(v is TOMBSTONE for _, v in pairs):
            raise ValueError("use delete() to remove keys")
        first, last = self.wal.append_many(pairs, sync=True)
        try:
            for key, value in pairs:
                super().put(key, value)
        finally:
            self.wal.mark_applied(first, last)
        self._after_write(len(pairs))
        return len(pairs)

    def _after_write(self, n: int) -> None:
        if not self.checkpoint_every:
            return
        with self._durability_lock:
            self._ops_since_checkpoint += n
            due = self._ops_since_checkpoint >= self.checkpoint_every
        if due:
            self.checkpoint()

    # ------------------------------------------------------------------
    # data-blob persistence
    # ------------------------------------------------------------------
    def _new_table(self, items) -> SSTable:
        table = super()._new_table(items)
        if len(table):
            self._persist_table_data(table)
        return table

    def _persist_table_data(self, table: SSTable) -> TableDataRecord:
        """Persist a table's pairs as one CRC-recorded data blob.

        A restored table gets a fresh in-process ``table_id`` but keeps
        the blob its checkpoint record points at, so a re-persist (the
        scrubber's rot repair) must write *that* blob — deriving a new
        name from the new id would leave the recorded blob rotted.
        """
        payload = frame(encode_pairs(table.scan()))
        with self._durability_lock:
            prev = self._data_records.get(table.table_id)
        blob_name = (
            prev.blob_name
            if prev is not None
            else f"data:{self.name}:{table.table_id}"
        )
        self.env.put_blob(blob_name, payload)
        record = TableDataRecord(
            table_id=table.table_id,
            blob_name=blob_name,
            n_entries=len(table),
            min_key=table.min_key,
            max_key=table.max_key,
            blob_len=len(payload),
            crc32=checksum(payload),
        )
        with self._durability_lock:
            self._data_records[table.table_id] = record
        return record

    def data_records(self) -> dict[int, TableDataRecord]:
        """Snapshot of table-id → data record (scrubber input)."""
        with self._durability_lock:
            return dict(self._data_records)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict[str, Any]:
        """Write a crash-consistent snapshot; prune blobs; truncate WAL."""
        with child_span("lsm.checkpoint") as _ckpt_span:
            return self._checkpoint_inner(_ckpt_span)

    def _checkpoint_inner(self, ckpt_span) -> dict[str, Any]:
        with self._lock:
            wal_lsn = self.wal.safe_lsn()
            mem: dict[int, Any] = {}
            for memtable in reversed((self.memtable, *self._flushing)):
                for key, value in memtable.items():
                    mem[key] = value
            mem_pairs = sorted(mem.items())
            tables_meta: list[dict] = []
            for level_idx, level in enumerate(self.levels):
                for table in level:
                    if len(table) == 0:
                        continue
                    with self._durability_lock:
                        record = self._data_records.get(table.table_id)
                    if record is None:
                        record = self._persist_table_data(table)
                    entry = record.as_dict()
                    entry["level"] = level_idx
                    if table.manifest_record is not None:
                        entry["filter"] = table.manifest_record.as_dict()
                    tables_meta.append(entry)
        with self._durability_lock:
            lost_ranges = [[lo, hi] for lo, hi in self._lost_ranges]
        meta = {
            "tables": tables_meta,
            "memtable_capacity": self.memtable.capacity,
            "quarantined": lost_ranges,
        }
        blob_name = self.checkpoints.write(
            meta, encode_pairs(mem_pairs), wal_lsn=wal_lsn
        )
        # Prune data blobs of dead tables — but only those referenced by
        # neither retained checkpoint and not live *now* (a flush or
        # compaction may have run since the snapshot above).
        with self._lock:
            live_now = {t.table_id for t in self._iter_tables()}
        ckpt_blobs = {entry["blob_name"] for entry in tables_meta}
        with self._durability_lock:
            protected = ckpt_blobs | self._prev_ckpt_blobs
            dead = [
                tid
                for tid, rec in self._data_records.items()
                if tid not in live_now and rec.blob_name not in protected
            ]
            for tid in dead:
                self.env.delete_blob(self._data_records.pop(tid).blob_name)
            self._prev_ckpt_blobs = ckpt_blobs
            slack_lsn = self._prev_ckpt_lsn
            self._prev_ckpt_lsn = self._last_ckpt_lsn
            self._last_ckpt_lsn = wal_lsn
            self._ops_since_checkpoint = 0
        truncated = self.wal.truncate_through(slack_lsn)
        if ckpt_span is not None:
            ckpt_span.set(
                wal_lsn=wal_lsn,
                tables=len(tables_meta),
                memtable_pairs=len(mem_pairs),
            )
        return {
            "blob": blob_name,
            "wal_lsn": wal_lsn,
            "tables": len(tables_meta),
            "memtable_pairs": len(mem_pairs),
            "data_blobs_pruned": len(dead),
            "wal_segments_truncated": truncated,
        }

    # ------------------------------------------------------------------
    # restore (checkpoint + WAL tail)
    # ------------------------------------------------------------------
    @classmethod
    def restore(
        cls,
        filter_factory=None,
        *,
        env,
        name: str = "tree",
        rebuild: str = "immediate",
        **kwargs,
    ) -> tuple["DurableLSM", dict[str, Any]]:
        """Rebuild a tree from its blobs: last checkpoint + WAL tail.

        Returns ``(tree, report)``.  The report's ``quarantined`` list
        holds ``[min_key, max_key]`` ranges of tables whose data blob
        failed validation — their keys are *gone from this tree* and the
        replica layer must answer all-positive over those ranges until
        anti-entropy repair refills them from a sibling.
        """
        tree = cls(
            filter_factory, env=env, name=name, _attach=True, **kwargs
        )
        report: dict[str, Any] = {
            "checkpoint_seq": 0,
            "checkpoint_fallbacks": 0,
            "tables_loaded": 0,
            "tables_quarantined": 0,
            "quarantined": [],
            "filters": {"loaded": 0, "rebuilt": 0, "degraded": 0},
            "memtable_pairs": 0,
            "wal_records_replayed": 0,
            "wal_torn_segments": 0,
            "wal_duplicates_dropped": 0,
        }
        applied_lsn = 0
        fallbacks_before = tree.checkpoints.stats()["fallbacks"]
        ckpt = tree.checkpoints.load_latest()
        report["checkpoint_fallbacks"] = (
            tree.checkpoints.stats()["fallbacks"] - fallbacks_before
        )
        if ckpt is not None:
            applied_lsn = ckpt.wal_lsn
            report["checkpoint_seq"] = ckpt.seq
            # Losses the checkpointed tree already knew about stay lost
            # until anti-entropy refills them — a checkpoint cycle must
            # not launder a quarantine away.
            for lo, hi in ckpt.meta.get("quarantined", ()):
                report["quarantined"].append([lo, hi])
            tree._restore_tables(ckpt.meta, rebuild, report)
            mem_pairs = decode_pairs(ckpt.payload)
            report["memtable_pairs"] = len(mem_pairs)
            for key, value in mem_pairs:
                # Parent-class writes: replay must not re-log to the WAL.
                if value is TOMBSTONE:
                    LSMTree.delete(tree, key)
                else:
                    LSMTree.put(tree, key, value)
        # The checkpoint fence lets replay peek-skip dead records (the
        # truncation slack keeps up to two checkpoints' worth around).
        wal, replay = WriteAheadLog.open(
            env,
            name=name,
            segment_records=tree._wal_segment_records,
            after_lsn=applied_lsn,
        )
        tree.wal = wal
        report["wal_torn_segments"] = replay.torn_segments
        report["wal_duplicates_dropped"] = replay.duplicates_dropped
        for lsn, key, value in replay.records:
            if lsn <= applied_lsn:
                continue
            if value is TOMBSTONE:
                LSMTree.delete(tree, key)
            else:
                LSMTree.put(tree, key, value)
            report["wal_records_replayed"] += 1
        if ckpt is None and replay.records and replay.records[0][0] > 1:
            # No readable checkpoint, and the WAL was already truncated
            # against one: records 1..first-1 are unrecoverable here.
            # Quarantine the whole key space — the replica answers
            # all-positive (one-sided) until anti-entropy refills it
            # from a healthy sibling; silent loss would mean false
            # negatives.
            first_lsn = replay.records[0][0]
            report["wal_gap"] = [1, first_lsn - 1]
            report["quarantined"].append([0, (1 << 64) - 1])
        with tree._durability_lock:
            tree._prev_ckpt_lsn = applied_lsn
            tree._last_ckpt_lsn = applied_lsn
            tree._lost_ranges = [
                (int(lo), int(hi)) for lo, hi in report["quarantined"]
            ]
            if ckpt is not None:
                tree._prev_ckpt_blobs = {
                    str(entry.get("blob_name", ""))
                    for entry in ckpt.meta.get("tables", ())
                }
        return tree, report

    def lost_ranges(self) -> list[tuple[int, int]]:
        """Quarantined key ranges this tree still carries (unrefilled)."""
        with self._durability_lock:
            return list(self._lost_ranges)

    def clear_lost_range(self, lo: int, hi: int) -> bool:
        """Drop one carried lost range after anti-entropy refilled it."""
        with self._durability_lock:
            before = len(self._lost_ranges)
            self._lost_ranges = [
                r for r in self._lost_ranges if r != (lo, hi)
            ]
            return len(self._lost_ranges) < before

    def _restore_tables(
        self, meta: dict, rebuild: str, report: dict
    ) -> None:
        """Reload checkpointed SSTables from their data blobs."""
        levels: list[list[SSTable]] = [[]]
        for entry in meta.get("tables", ()):
            record = TableDataRecord.from_dict(entry)
            level_idx = int(entry.get("level", 0))
            try:
                pairs = self._load_table_pairs(record)
            except FilterCorruptionError:
                self.env.stats.bump(corruptions_detected=1)
                report["tables_quarantined"] += 1
                report["quarantined"].append(
                    [record.min_key, record.max_key]
                )
                continue
            except TransientIOError:
                # Unreachable is not provably corrupt, but the keys are
                # equally unusable — quarantine (all-positive) either way.
                report["tables_quarantined"] += 1
                report["quarantined"].append(
                    [record.min_key, record.max_key]
                )
                continue
            table = SSTable(pairs, None, self.env)
            table.filter_factory = self.filter_factory
            filter_meta = entry.get("filter")
            if filter_meta is not None and self.filter_factory is not None:
                table.manifest_record = ManifestRecord.from_dict(filter_meta)
                state = table.reload_filter(rebuild=rebuild)
                report["filters"][
                    state if state in report["filters"] else "loaded"
                ] += 1
            while len(levels) <= level_idx:
                levels.append([])
            levels[level_idx].append(table)
            with self._durability_lock:
                self._data_records[table.table_id] = replace(
                    record, table_id=table.table_id
                )
            report["tables_loaded"] += 1
        with self._lock:
            self.levels = levels
            self.epoch += 1

    def _load_table_pairs(
        self, record: TableDataRecord
    ) -> list[tuple[int, Any]]:
        """Fetch + validate one data blob against its record."""
        data = self.env.get_blob_with_retry(record.blob_name)
        if len(data) != record.blob_len:
            raise FilterCorruptionError(
                f"data blob {record.blob_name!r} is {len(data)} bytes, "
                f"record says {record.blob_len}"
            )
        if checksum(data) != record.crc32:
            raise FilterCorruptionError(
                f"data blob {record.blob_name!r} fails its CRC32"
            )
        scan = iter_frames(data)
        if len(scan.payloads) != 1 or scan.torn:
            raise FilterCorruptionError(
                f"data blob {record.blob_name!r} frame is malformed"
            )
        pairs = decode_pairs(scan.payloads[0])
        if len(pairs) != record.n_entries:
            raise FilterCorruptionError(
                f"data blob {record.blob_name!r} holds {len(pairs)} "
                f"pairs, record says {record.n_entries}"
            )
        return pairs

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def durability_stats(self) -> dict[str, Any]:
        """Health-endpoint block: WAL + checkpoint + blob bookkeeping."""
        with self._durability_lock:
            data_blobs = len(self._data_records)
            last_ckpt = self._last_ckpt_lsn
            since = self._ops_since_checkpoint
        return {
            "wal": self.wal.stats() if self.wal is not None else {},
            "checkpoints": self.checkpoints.stats(),
            "data_blobs": data_blobs,
            "last_checkpoint_lsn": last_ckpt,
            "ops_since_checkpoint": since,
        }
