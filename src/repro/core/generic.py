"""Generic local encoding for arity-``a`` tree structures.

The paper's contribution 1 claims the Bitmap-Tree/RBF encoding "is
generic, and it can be applied to various tree structures".  This module
makes that concrete: :class:`LocalTreeEncoder` numbers the nodes of an
arity-``a`` mini-tree in BFS order and encodes root-to-leaf paths into
bitmaps, and :class:`GenericPrefixFilter` stores digit-string prefixes of
keys in a Range Bloom Filter through that encoding — the binary REncoder
is the ``arity=2`` instance of this machinery.

The showcase instance is :class:`QuadtreeFilter`: 2-D points as base-4
digit strings (one quadtree branch per digit, i.e. one x-bit/y-bit pair),
rectangle queries decomposed into quadtree cells, one RBF fetch per
mini-tree of four levels — 2-D range filtering without flattening to a
binary tree first.

Mini-tree geometry for arity ``a`` and ``G`` levels per group: nodes at
depth ``d`` start at ``(a^d − 1)/(a − 1)``; a group has
``(a^{G+1} − 1)/(a − 1)`` nodes, and the bitmap is that rounded up to a
power of two (arity 4, G = 4 → 341 nodes → a 512-bit BT, the same block
the paper's AVX configuration uses).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.rbf import RangeBloomFilter
from repro.hashing.mix64 import seeds_for

__all__ = ["LocalTreeEncoder", "GenericPrefixFilter", "QuadtreeFilter"]


class LocalTreeEncoder:
    """BFS node numbering and bitmap geometry for arity-``a`` mini-trees."""

    def __init__(self, arity: int, group_levels: int) -> None:
        if arity < 2:
            raise ValueError(f"arity must be >= 2, got {arity}")
        if group_levels < 1:
            raise ValueError(
                f"group_levels must be >= 1, got {group_levels}"
            )
        self.arity = arity
        self.group_levels = group_levels
        #: first node index per depth: S_d = (a^d - 1)/(a - 1).
        self.depth_start = [0]
        for _ in range(group_levels + 1):
            self.depth_start.append(self.depth_start[-1] * arity + 1)
        self.n_nodes = self.depth_start[group_levels + 1]
        bits = 1
        while bits < self.n_nodes:
            bits <<= 1
        self.bt_bits = max(8, bits)
        self.bt_words = max(1, self.bt_bits // 64)

    def node_index(self, suffix: int, depth: int) -> int:
        """Node reached by the last ``depth`` base-``a`` digits."""
        if not 0 <= depth <= self.group_levels:
            raise ValueError(
                f"depth {depth} outside [0, {self.group_levels}]"
            )
        span = self.arity**depth
        return self.depth_start[depth] + (suffix % span)

    def encode_path(self, suffix: int, depth: int) -> np.ndarray:
        """Bitmap with the root-to-node path of a ``depth``-digit suffix."""
        bt = np.zeros(self.bt_words, dtype=np.uint64)
        for d in range(depth + 1):
            node = self.node_index(suffix // (self.arity ** (depth - d)), d)
            bt[node >> 6] |= np.uint64(1 << (node & 63))
        return bt

    def get_node(self, bt: np.ndarray, node: int) -> bool:
        """Read one node bit from a bitmap."""
        return bool((int(bt[node >> 6]) >> (node & 63)) & 1)


class GenericPrefixFilter:
    """Prefix-membership filter over base-``a`` digit strings.

    Keys are integers read as ``num_digits`` base-``arity`` digits (most
    significant first).  All digit-prefixes from ``start_level`` down are
    stored.  ``query_prefix`` answers one-prefix membership;
    ``query_subtree`` adds the doubting descent to the deepest level, so
    a caller holding a prefix cover of any region (e.g. quadtree cells of
    a rectangle) gets REncoder-style verification.
    """

    def __init__(
        self,
        keys: Iterable[int],
        total_bits: int,
        *,
        arity: int = 4,
        num_digits: int = 16,
        group_levels: int = 4,
        mandatory_levels: int = 4,
        target_p1: float = 0.5,
        k: int = 2,
        seed: int = 0,
        max_expansion: int = 4096,
    ) -> None:
        if num_digits < 1:
            raise ValueError(f"num_digits must be >= 1, got {num_digits}")
        if not 1 <= mandatory_levels <= num_digits:
            raise ValueError(
                f"mandatory_levels must be in [1, {num_digits}], "
                f"got {mandatory_levels}"
            )
        self.encoder = LocalTreeEncoder(arity, group_levels)
        self.arity = arity
        self.num_digits = num_digits
        self.max_expansion = max_expansion
        self.num_groups = (
            num_digits + group_levels - 1
        ) // group_levels
        self._tags = seeds_for(self.num_groups + 2, seed ^ 0x6765_6E65)
        self.rbf = RangeBloomFilter(
            total_bits, k, group_bits=8, seed=seed,
            block_bits=self.encoder.bt_bits,
        )
        key_list = list(keys)
        self.n_keys = len(key_list)
        top = arity**num_digits
        for key in key_list:
            if not 0 <= key < top:
                raise ValueError(f"key {key} outside the digit domain")
        # Adaptive stored levels, REncoder-style: the bottom
        # ``mandatory_levels`` always, then grow upward while P1 < target.
        self.stored_levels: set[int] = set()
        for level in range(num_digits, 0, -1):
            mandatory = level > num_digits - mandatory_levels
            if not mandatory and self.rbf.p1 >= target_p1:
                break
            self._insert_level(key_list, level)
        self.start_level = min(self.stored_levels) if self.stored_levels else 1

    def _insert_level(self, key_list: list[int], level: int) -> None:
        self.stored_levels.add(level)
        span = self.arity ** (self.num_digits - level)
        for key in key_list:
            prefix = key // span
            group, depth = self._locate(level)
            suffix = prefix % (self.arity**depth)
            bt = self.encoder.encode_path(suffix, depth)
            self.rbf.insert_bt(self._hash_key(prefix, level), bt)

    # ------------------------------------------------------------------
    def _locate(self, level: int) -> tuple[int, int]:
        """(group, depth-in-group) of digit-level ``level``."""
        group = (level + self.encoder.group_levels - 1) // self.encoder.group_levels
        depth = level - (group - 1) * self.encoder.group_levels
        return group, depth

    def _hash_key(self, prefix: int, level: int) -> int:
        group, depth = self._locate(level)
        hp = prefix // (self.arity**depth)
        return hp ^ self._tags[group]

    def insert(self, key: int) -> None:
        """Insert every stored-level prefix of ``key`` (incremental)."""
        if not 0 <= key < self.arity**self.num_digits:
            raise ValueError(f"key {key} outside the digit domain")
        self.n_keys += 1
        for level in sorted(self.stored_levels):
            prefix = key // (self.arity ** (self.num_digits - level))
            group, depth = self._locate(level)
            suffix = prefix % (self.arity**depth)
            bt = self.encoder.encode_path(suffix, depth)
            self.rbf.insert_bt(self._hash_key(prefix, level), bt)

    # ------------------------------------------------------------------
    def query_prefix(self, prefix: int, level: int, cache=None) -> bool:
        """Is the length-``level`` digit prefix possibly present?"""
        if level not in self.stored_levels:
            return self.n_keys > 0  # unstored levels are unknown
        group, depth = self._locate(level)
        hp = prefix // (self.arity**depth)
        key = (group, hp)
        bt = None if cache is None else cache.get(key)
        if bt is None:
            bt = self.rbf.fetch_bt(hp ^ self._tags[group])
            if cache is not None:
                cache[key] = bt
        node = self.encoder.node_index(prefix, depth)
        return self.encoder.get_node(bt, node)

    def query_subtree(self, prefix: int, level: int, cache=None) -> bool:
        """Doubting verification: any stored key below this prefix?

        As in the binary REncoder, every stored ancestor level is probed
        first (nearly free through the shared mini-tree fetches) before
        the descent — without this, a query covered by many cells
        compounds per-cell false positives.  Pass a shared ``cache`` dict
        when verifying several cells of one query.
        """
        if not 0 <= level <= self.num_digits:
            raise ValueError(f"level {level} outside [0, {self.num_digits}]")
        if cache is None:
            cache = {}
        for anc_level in sorted(self.stored_levels):
            if anc_level >= level:
                break
            ancestor = prefix // (self.arity ** (level - anc_level))
            if not self.query_prefix(ancestor, anc_level, cache):
                return False
        budget = self.max_expansion
        stack = [(prefix, level)]
        while stack:
            p, l = stack.pop()
            if l in self.stored_levels and not self.query_prefix(p, l, cache):
                continue
            if l == self.num_digits:
                return True
            budget -= self.arity
            if budget < 0:
                return True  # conservative
            base = p * self.arity
            for digit in range(self.arity - 1, -1, -1):
                stack.append((base + digit, l + 1))
        return False

    def size_in_bits(self) -> int:
        """Occupied memory in bits."""
        return self.rbf.size_in_bits()


class QuadtreeFilter:
    """Native 2-D range filter: a quadtree locally encoded into an RBF.

    Points become base-4 digit strings (each digit one (x, y) bit pair,
    most significant first — i.e. Morton digits); a rectangle query is
    decomposed into quadtree cells, each verified with the generic
    doubting descent.  One RBF fetch covers four quadtree levels.
    """

    def __init__(
        self,
        points: Sequence[tuple[int, int]],
        *,
        coord_bits: int = 16,
        bits_per_key: float = 24.0,
        k: int = 2,
        seed: int = 0,
        max_cells: int = 128,
    ) -> None:
        if not 1 <= coord_bits <= 32:
            raise ValueError(f"coord_bits must be in [1, 32], got {coord_bits}")
        self.coord_bits = coord_bits
        self.max_cells = max_cells
        codes = sorted(
            {self._morton(x, y) for x, y in points}
        )
        total_bits = max(512, int(bits_per_key * max(1, len(codes))))
        self.filter = GenericPrefixFilter(
            codes,
            total_bits,
            arity=4,
            num_digits=coord_bits,
            group_levels=4,
            # A cell of a small query rectangle sits within ~4 digit
            # levels of the bottom; mandatory levels mirror REncoder's
            # rmax rule and the rest fill adaptively.
            mandatory_levels=min(4, coord_bits),
            k=k,
            seed=seed,
        )
        self.n_points = len(codes)

    def _morton(self, x: int, y: int) -> int:
        top = (1 << self.coord_bits) - 1
        if not (0 <= x <= top and 0 <= y <= top):
            raise ValueError(f"point ({x}, {y}) outside the domain")
        code = 0
        for d in range(self.coord_bits - 1, -1, -1):
            code = code * 4 + (((x >> d) & 1) << 1 | ((y >> d) & 1))
        return code

    def _cells(self, x_lo, x_hi, y_lo, y_hi) -> list[tuple[int, int]]:
        """Quadtree cells (prefix, level) covering the rectangle."""
        cells: list[tuple[int, int]] = []
        stack = [(0, 0, 0, self.coord_bits)]  # x0, y0, prefix, log-size
        while stack:
            x0, y0, prefix, log = stack.pop()
            size = 1 << log
            x1, y1 = x0 + size - 1, y0 + size - 1
            if x1 < x_lo or x0 > x_hi or y1 < y_lo or y0 > y_hi:
                continue
            covered = (
                x_lo <= x0 and x1 <= x_hi and y_lo <= y0 and y1 <= y_hi
            )
            if covered or log == 0 or len(cells) + len(stack) >= self.max_cells:
                cells.append((prefix, self.coord_bits - log))
                continue
            half = size >> 1
            for dx in (0, 1):
                for dy in (0, 1):
                    stack.append(
                        (
                            x0 + dx * half,
                            y0 + dy * half,
                            prefix * 4 + (dx << 1 | dy),
                            log - 1,
                        )
                    )
        return cells

    def query_rect(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> bool:
        """May any stored point lie in the rectangle?"""
        if x_lo > x_hi or y_lo > y_hi:
            raise ValueError("empty rectangle")
        cache: dict = {}
        return any(
            self.filter.query_subtree(prefix, level, cache)
            for prefix, level in self._cells(x_lo, x_hi, y_lo, y_hi)
        )

    def query_point(self, x: int, y: int) -> bool:
        """May the exact point be stored?"""
        code = self._morton(x, y)
        return self.filter.query_subtree(code, self.coord_bits)

    def size_in_bits(self) -> int:
        """Occupied memory in bits."""
        return self.filter.size_in_bits()
