"""Two-Stage REncoder — float/double key support (Section III-D).

A positive IEEE-754 float, with its sign bit dropped, orders identically to
its raw bit pattern, so a float key can be treated as a 31-bit integer
(8 exponent bits + 23 mantissa bits; doubles: 11 + 52).  The Two-Stage
REncoder allocates its stored levels in two phases:

* **Stage 1 (exponent):** start at level ``exp_bits`` (the boundary between
  exponent and mantissa) and grow *upward* — coarser and coarser magnitude
  ranges — until the RBF load factor reaches ``t_exp`` (< 0.5).
* **Stage 2 (mantissa):** start at level ``exp_bits + 1`` and grow
  *downward* — finer and finer precision — until ``P1`` is close to 0.5.

Negative keys are handled by shifting the whole dataset by the absolute
value of the smallest key before encoding, as the paper prescribes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.rencoder import REncoder

__all__ = [
    "TwoStageREncoder",
    "float_to_key",
    "key_to_float",
    "double_to_key",
    "key_to_double",
]


def float_to_key(value: float) -> int:
    """Map a non-negative finite float32 value to its 31-bit integer key."""
    if value < 0:
        raise ValueError(f"float keys must be non-negative, got {value}")
    bits = int(np.float32(value).view(np.uint32))
    return bits & 0x7FFF_FFFF


def key_to_float(key: int) -> float:
    """Inverse of :func:`float_to_key`."""
    if not 0 <= key <= 0x7FFF_FFFF:
        raise ValueError(f"key {key} outside the 31-bit float domain")
    return float(np.uint32(key).view(np.float32))


def double_to_key(value: float) -> int:
    """Map a non-negative finite float64 value to its 63-bit integer key.

    The paper: "the solution is similar for the double type" — drop the
    sign bit and treat the 11-bit exponent + 52-bit mantissa as an
    order-preserving integer.
    """
    if value < 0:
        raise ValueError(f"double keys must be non-negative, got {value}")
    bits = int(np.float64(value).view(np.uint64))
    return bits & 0x7FFF_FFFF_FFFF_FFFF


def key_to_double(key: int) -> float:
    """Inverse of :func:`double_to_key`."""
    if not 0 <= key <= 0x7FFF_FFFF_FFFF_FFFF:
        raise ValueError(f"key {key} outside the 63-bit double domain")
    return float(np.uint64(key).view(np.float64))


class TwoStageREncoder(REncoder):
    """REncoder over float keys with exponent/mantissa staged levels.

    Parameters are those of :class:`~repro.core.rencoder.REncoder` plus:

    t_exp:
        Stage-1 load-factor threshold ``T_exp`` (must be below
        ``target_p1``); the paper leaves tuning it per workload as future
        work — :meth:`tune_t_exp` implements that tuning as a small
        sampled search.
    precision:
        ``"single"`` (31-bit keys, 8-bit exponent — the paper's worked
        case) or ``"double"`` (63-bit keys, 11-bit exponent).
    exp_bits / key_bits:
        Overridable; default from ``precision``.
    """

    name = "TwoStageREncoder"

    def __init__(
        self,
        keys: Iterable[float],
        total_bits: int | None = None,
        *,
        t_exp: float = 0.3,
        precision: str = "single",
        exp_bits: int | None = None,
        key_bits: int | None = None,
        **kwargs,
    ) -> None:
        if precision not in ("single", "double"):
            raise ValueError(
                f'precision must be "single" or "double", got {precision!r}'
            )
        self.precision = precision
        if exp_bits is None:
            exp_bits = 8 if precision == "single" else 11
        if key_bits is None:
            key_bits = 31 if precision == "single" else 63
        if not 1 <= exp_bits < key_bits:
            raise ValueError(
                f"exp_bits must be in [1, key_bits), got {exp_bits}"
            )
        target_p1 = kwargs.get("target_p1", 0.5)
        if not 0.0 < t_exp < target_p1:
            raise ValueError(
                f"t_exp must be in (0, target_p1={target_p1}), got {t_exp}"
            )
        self.t_exp = t_exp
        self.exp_bits = exp_bits
        self._encode = float_to_key if precision == "single" else double_to_key
        values = [float(v) for v in keys]
        self.offset = -min((v for v in values), default=0.0)
        if self.offset < 0:
            self.offset = 0.0
        int_keys = [self._encode(v + self.offset) for v in values]
        # The staged build stores many levels; the "auto" k rule keys off
        # the plan's mandatory count, which the staged build bypasses.
        kwargs.setdefault("k", 2)
        super().__init__(int_keys, total_bits, key_bits=key_bits, **kwargs)

    # ------------------------------------------------------------------
    # staged construction
    # ------------------------------------------------------------------
    def _plan_levels(self, keys: np.ndarray) -> tuple[list[int], list[int]]:
        # Unused: _build is overridden to run the two stages explicitly.
        return [], []

    def _build(self, keys: np.ndarray, mandatory, optional) -> None:
        # Stage 1: exponent levels, upward from the exponent boundary.
        stage1 = list(range(self.exp_bits, 0, -1))
        # Stage 2: mantissa levels, downward from just below the boundary.
        stage2 = list(range(self.exp_bits + 1, self.key_bits + 1))
        self._insert_level_bulk(keys, stage1[0])
        for level in stage1[1:]:
            if keys.size and self.rbf.p1 >= self.t_exp:
                break
            self._insert_level_bulk(keys, level)
        self._insert_level_bulk(keys, stage2[0])
        for level in stage2[1:]:
            if keys.size and self.rbf.p1 >= self.target_p1:
                break
            self._insert_level_bulk(keys, level)
        self.final_p1 = self.rbf.p1

    # ------------------------------------------------------------------
    # float-domain queries
    # ------------------------------------------------------------------
    def query_float_range(self, lo: float, hi: float) -> bool:
        """Range membership in the float domain (inclusive bounds)."""
        if lo > hi:
            raise ValueError(f"invalid float range [{lo}, {hi}]")
        lo_key = self._encode(max(0.0, lo + self.offset))
        hi_key = self._encode(max(0.0, hi + self.offset))
        return self.query_range(lo_key, hi_key)

    def query_float(self, value: float) -> bool:
        """Point membership in the float domain."""
        return self.query_float_range(value, value)

    # ------------------------------------------------------------------
    # T_exp tuning (the paper's stated future work)
    # ------------------------------------------------------------------
    @classmethod
    def tune_t_exp(
        cls,
        keys,
        sample_queries,
        *,
        candidates=(0.1, 0.2, 0.3, 0.4),
        **kwargs,
    ) -> "TwoStageREncoder":
        """Pick ``T_exp`` by measured FPR on sampled float ranges.

        "We can set T_exp according to dataset/workload to achieve better
        performance, which is left for future work" — this is that
        tuning: build one filter per candidate threshold, measure its FPR
        on the sampled (assumed-empty) queries, and keep the best.
        """
        sample = list(sample_queries)
        if not sample:
            raise ValueError("tune_t_exp needs at least one sample query")
        values = [float(v) for v in keys]
        best = None
        best_fpr = float("inf")
        for t_exp in candidates:
            filt = cls(values, t_exp=t_exp, **kwargs)
            fpr = sum(
                filt.query_float_range(lo, hi) for lo, hi in sample
            ) / len(sample)
            if fpr < best_fpr:
                best, best_fpr = filt, fpr
        best.tuned_fpr = best_fpr
        return best
