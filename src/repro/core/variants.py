"""REncoder variants: SS, SE, and PO (Sections III-C and V-F).

* :class:`REncoderSS` — *Select Start*: no query sampling, no error bound
  (use case A).  Computes ``l_kk``, the maximum longest-common-prefix over
  key pairs, and stores levels starting at ``l_kk + 1`` (the shallowest
  level that already distinguishes every key) growing upward.  Lowest FPR
  and fewest probes on uncorrelated workloads; like SuRF it collapses on
  correlated ones because the bottom levels are absent.
* :class:`REncoderSE` — *Select End*: samples queries (use case B).  Also
  computes ``l_kq``, the maximum LCP between keys and sampled query
  boundaries.  When ``l_kq <= l_kk`` it behaves exactly like SS; otherwise
  it stores from level ``l_kq + 1`` in the opposite direction (downward),
  so the levels that tell correlated queries apart from stored keys are
  present.
* :class:`REncoderPO` — *Point Optimised* (Figure 8): same storage as the
  base REncoder, but point queries probe only the deepest stored level —
  one fetch, like Rosetta's bottom Bloom filter — trading FPR for filter
  throughput.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.rencoder import FetchCache, REncoder
from repro.core.segment_tree import max_key_lcp, max_key_query_lcp
from repro.filters.base import as_key_array

__all__ = ["REncoderSS", "REncoderSE", "REncoderPO"]


class REncoderSS(REncoder):
    """REncoder that Selects the Start level from the dataset (use case A)."""

    name = "REncoderSS"

    def _plan_levels(self, keys: np.ndarray) -> tuple[list[int], list[int]]:
        self.l_kk = max_key_lcp(keys, self.key_bits)
        start = min(self.l_kk + 1, self.key_bits)
        mandatory = [start]
        optional = list(range(start - 1, 0, -1))
        return mandatory, optional


class REncoderSE(REncoder):
    """REncoder that Selects the End level from sampled queries (use case B).

    Parameters are those of :class:`REncoder` plus ``sample_queries``, an
    iterable of ``(lo, hi)`` ranges drawn from the expected workload.
    """

    name = "REncoderSE"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        total_bits: int | None = None,
        *,
        sample_queries: Sequence[tuple[int, int]] = (),
        **kwargs,
    ) -> None:
        self._sample_queries = list(sample_queries)
        super().__init__(keys, total_bits, **kwargs)

    def _plan_levels(self, keys: np.ndarray) -> tuple[list[int], list[int]]:
        self.l_kk = max_key_lcp(keys, self.key_bits)
        bounds: list[int] = []
        for lo, hi in self._sample_queries:
            bounds.append(lo)
            bounds.append(hi)
        self.l_kq = max_key_query_lcp(keys, bounds, self.key_bits)
        if self.l_kq <= self.l_kk:
            # Sampled queries are no closer to the keys than the keys are to
            # each other: the SS plan is already safe.
            start = min(self.l_kk + 1, self.key_bits)
            return [start], list(range(start - 1, 0, -1))
        # Correlated workload: store downward from l_kq + 1 so the
        # distinguishing levels exist; if budget remains after reaching the
        # bottom, continue upward (engineering extension, documented in
        # DESIGN.md).
        start = min(self.l_kq + 1, self.key_bits)
        optional = list(range(start + 1, self.key_bits + 1))
        optional += list(range(start - 1, 0, -1))
        return [start], optional


class REncoderPO(REncoder):
    """Point-query-optimised REncoder (Figure 8).

    Storage and range queries are identical to the base REncoder; a point
    query fetches only the mini-tree holding the key's longest stored
    prefix — a single RBF fetch, like Rosetta's bottom-filter probe — and
    checks every stored level *inside that one Bitmap Tree* for free.
    Ancestor levels in other mini-trees are skipped, which is where the
    (slightly) worse FPR comes from and why the probe count is minimal.
    """

    name = "REncoderPO"

    def query_point(self, key: int) -> bool:
        self._check_range(key, key)
        deepest = self._deepest
        group_start = (
            (deepest - 1) // self.group_bits
        ) * self.group_bits  # level of the mini-tree root
        cache: dict[tuple[int, int], np.ndarray] = {}
        for level in self._stored_sorted:
            if level <= group_start or level > deepest:
                continue
            prefix = key >> (self.key_bits - level)
            if not self._probe(prefix, level, cache):
                return False
        return True

    def query_point_many(
        self,
        keys,
        *,
        cache: "FetchCache | None" = None,
        engine: "str | None" = None,
    ) -> np.ndarray:
        """Batch :meth:`query_point`: one vectorised probe per stored
        level inside the deepest mini-tree.  Routed through the fused
        kernels like the base class (their point plan is PO-aware);
        an explicit ``cache=`` selects the legacy FetchCache engine."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        n = keys.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        if self.key_bits < 64 and int(keys.max()) >= (1 << self.key_bits):
            raise ValueError(
                f"key outside {self.key_bits}-bit domain in batch"
            )
        kernel = self._kernel_for(cache, engine)
        if kernel is not None:
            return kernel.point_many(keys)
        deepest = self._deepest
        group_start = ((deepest - 1) // self.group_bits) * self.group_bits
        cache = cache if cache is not None else FetchCache()
        alive = np.ones(n, dtype=bool)
        for level in self._stored_sorted:
            if level <= group_start or level > deepest:
                continue
            sel = np.flatnonzero(alive)
            if sel.size == 0:
                break
            ok = self._probe_many(
                keys[sel] >> np.uint64(self.key_bits - level), level, cache
            )
            alive[sel[~ok]] = False
        self._absorb_cache_stats(cache)
        return alive


def build_variant(
    name: str,
    keys: Iterable[int] | np.ndarray,
    total_bits: int | None = None,
    *,
    sample_queries: Sequence[tuple[int, int]] = (),
    **kwargs,
):
    """Factory used by the bench harness: build a variant by name."""
    key_arr = as_key_array(keys)
    if name == "REncoder":
        return REncoder(key_arr, total_bits, **kwargs)
    if name == "REncoderSS":
        return REncoderSS(key_arr, total_bits, **kwargs)
    if name == "REncoderSE":
        return REncoderSE(
            key_arr, total_bits, sample_queries=sample_queries, **kwargs
        )
    if name == "REncoderPO":
        return REncoderPO(key_arr, total_bits, **kwargs)
    raise ValueError(f"unknown REncoder variant: {name!r}")
